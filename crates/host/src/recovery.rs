//! Host-side recovery policy for offloaded NDP work.
//!
//! When an offloaded batch times out (stalled or hung unit, dropped
//! instruction) or its polled result payload fails its CRC, the host
//! driver retries under a [`RetryPolicy`]: each retry waits an
//! exponentially growing but capped backoff before the batch is
//! re-issued, and a bounded retry budget guarantees the driver eventually
//! stops trusting the NDP path and computes the affected distances itself
//! (the exact-fallback guarantee — faults cost cycles, never accuracy).

/// Bounded exponential-backoff retry policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries allowed after the initial attempt (0 disables retrying:
    /// the first failure goes straight to host fallback).
    pub max_retries: u32,
    /// Backoff before the first retry, in memory cycles.
    pub base_backoff: u64,
    /// Upper bound on any single backoff, in memory cycles.
    pub max_backoff: u64,
}

impl RetryPolicy {
    /// The default NDP recovery policy: three retries backing off from
    /// 256 cycles, each wait capped at 16 k cycles (≈ 6.7 µs at DDR5-4800
    /// — long enough for a refresh storm to drain, short enough that a
    /// dead rank costs less than a handful of comparisons).
    pub fn default_ndp() -> Self {
        RetryPolicy {
            max_retries: 3,
            base_backoff: 256,
            max_backoff: 16_384,
        }
    }

    /// No retries: every failure falls back to the host immediately.
    pub fn no_retries() -> Self {
        RetryPolicy {
            max_retries: 0,
            base_backoff: 0,
            max_backoff: 0,
        }
    }

    /// Backoff before the `attempt`-th retry (0-based):
    /// `base_backoff · 2^attempt`, saturating, capped at `max_backoff`.
    pub fn backoff(&self, attempt: u32) -> u64 {
        let factor = 1u64.checked_shl(attempt).unwrap_or(u64::MAX);
        self.base_backoff
            .saturating_mul(factor)
            .min(self.max_backoff)
    }

    /// Whether `retries_done` retries have exhausted the budget.
    pub fn exhausted(&self, retries_done: u32) -> bool {
        retries_done >= self.max_retries
    }

    /// Total backoff cycles if the whole budget is consumed (the
    /// worst-case recovery delay one batch can add before fallback).
    pub fn total_backoff(&self) -> u64 {
        (0..self.max_retries).fold(0u64, |acc, a| acc.saturating_add(self.backoff(a)))
    }
}

impl std::fmt::Display for RetryPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.max_retries == 0 {
            write!(f, "no retries (immediate host fallback)")
        } else {
            write!(
                f,
                "{} retries, backoff {}..{} cycles (worst case {})",
                self.max_retries,
                self.base_backoff,
                self.max_backoff,
                self.total_backoff()
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_until_cap() {
        let p = RetryPolicy {
            max_retries: 10,
            base_backoff: 100,
            max_backoff: 1_000,
        };
        assert_eq!(p.backoff(0), 100);
        assert_eq!(p.backoff(1), 200);
        assert_eq!(p.backoff(2), 400);
        assert_eq!(p.backoff(3), 800);
        assert_eq!(p.backoff(4), 1_000, "capped");
        assert_eq!(p.backoff(63), 1_000);
        assert_eq!(p.backoff(200), 1_000, "huge attempts saturate at the cap");
    }

    #[test]
    fn budget_exhaustion() {
        let p = RetryPolicy::default_ndp();
        assert!(!p.exhausted(0));
        assert!(!p.exhausted(2));
        assert!(p.exhausted(3));
        assert!(p.exhausted(99));
    }

    #[test]
    fn no_retries_policy() {
        let p = RetryPolicy::no_retries();
        assert!(p.exhausted(0));
        assert_eq!(p.backoff(0), 0);
        assert_eq!(p.total_backoff(), 0);
    }

    #[test]
    fn total_backoff_sums_the_schedule() {
        let p = RetryPolicy {
            max_retries: 3,
            base_backoff: 256,
            max_backoff: 16_384,
        };
        assert_eq!(p.total_backoff(), 256 + 512 + 1024);
    }

    #[test]
    fn default_is_bounded() {
        let p = RetryPolicy::default_ndp();
        // The worst-case added delay of one failing batch stays far below
        // a millisecond of DDR5-4800 cycles.
        assert!(p.total_backoff() < 2_400_000);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// For every policy, the backoff schedule is monotone
            /// non-decreasing in the attempt number and never exceeds the
            /// configured bound — including huge attempt counts where the
            /// doubling saturates.
            fn backoff_monotone_and_capped(
                base in 0u64..1_000_000,
                cap in 0u64..100_000_000,
                attempts in 1u32..200,
            ) {
                let p = RetryPolicy {
                    max_retries: attempts,
                    base_backoff: base,
                    max_backoff: cap,
                };
                let mut prev = 0u64;
                for a in 0..attempts {
                    let b = p.backoff(a);
                    prop_assert!(b >= prev, "attempt {a}: {b} < {prev}");
                    prop_assert!(b <= cap, "attempt {a}: {b} exceeds cap {cap}");
                    prev = b;
                }
                // Saturated attempts stay at the cap (or 0 base forever).
                let saturated = if base == 0 { 0 } else { cap };
                prop_assert_eq!(p.backoff(63), saturated);
                prop_assert_eq!(p.backoff(200), saturated);
                prop_assert!(p.total_backoff() <= (attempts as u64).saturating_mul(cap));
            }

            /// The retry budget is exhausted exactly at `max_retries`,
            /// never before.
            fn exhaustion_boundary(retries in 0u32..100) {
                let p = RetryPolicy {
                    max_retries: retries,
                    base_backoff: 7,
                    max_backoff: 70,
                };
                if retries > 0 {
                    prop_assert!(!p.exhausted(retries - 1));
                }
                prop_assert!(p.exhausted(retries));
                prop_assert!(p.exhausted(retries + 1));
            }
        }
    }
}
