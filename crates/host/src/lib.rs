//! Host CPU timing model for the ANSMET reproduction (Table 1): a
//! 16-core, 3.2 GHz out-of-order host with a three-level cache hierarchy
//! (64 kB L1, 1 MB L2, 8 MB LLC) and an analytical per-operation cost
//! model for the search phases the CPU executes — index traversal, heap
//! maintenance, SIMD distance computation, NDP task offloading, and
//! result collection.
//!
//! # Example
//!
//! ```
//! use ansmet_host::{CacheHierarchy, CacheConfig, AccessResult};
//!
//! let mut caches = CacheHierarchy::new(CacheConfig::table1());
//! let first = caches.access(0x4000);
//! assert_eq!(first, AccessResult::Miss);
//! let second = caches.access(0x4000);
//! assert_eq!(second, AccessResult::Hit { level: 1 });
//! ```

pub mod cache;
pub mod cpu;
pub mod health;
pub mod recovery;

pub use cache::{AccessResult, Cache, CacheConfig, CacheHierarchy};
pub use cpu::{CpuModel, HostCosts};
pub use health::{BreakerConfig, BreakerState, BreakerTransition, HealthTracker, EWMA_SCALE};
pub use recovery::RetryPolicy;
