//! Cross-query rank-group health tracking and circuit breaking.
//!
//! Per-query recovery ([`RetryPolicy`](crate::RetryPolicy)) survives a
//! fault, but it rediscovers a *persistently* sick rank group from
//! scratch on every query: each one burns its full retry budget against
//! a unit that has been hung for a million cycles. [`HealthTracker`]
//! closes that gap with state that lives *across* queries: a per-group
//! fixed-point EWMA of offload failures plus a consecutive-failure
//! counter drive a classic closed → open → half-open circuit breaker.
//! While a group's breaker is open, the driver stops offering it work
//! (re-routing to a replica group or computing on the host instead);
//! after a cooldown the breaker lets a probe through, and a run of probe
//! successes closes it again.
//!
//! Everything here is integer arithmetic on the caller's simulated
//! clock, so the tracker is deterministic: the same sequence of
//! `(cycle, outcome)` observations produces the same transitions, no
//! matter the host, thread count, or wall-clock time.

/// Circuit-breaker state for one rank group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum BreakerState {
    /// Healthy: offloads flow normally.
    Closed,
    /// Tripped: the group receives no work until the cooldown elapses.
    Open,
    /// Probing: one offload at a time is allowed through; successes
    /// close the breaker, a failure re-opens it.
    HalfOpen,
}

impl BreakerState {
    /// Stable lowercase name for reports and JSON.
    pub fn as_str(&self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half_open",
        }
    }
}

impl std::fmt::Display for BreakerState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Fixed-point scale of the failure-rate EWMA (1.0 == `EWMA_SCALE`).
pub const EWMA_SCALE: u32 = 1 << 16;

/// Circuit-breaker policy knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// EWMA time constant: each observation moves the failure rate by
    /// `1/2^ewma_shift` of the gap toward 0 (success) or 1 (failure).
    pub ewma_shift: u32,
    /// Open when the EWMA failure rate reaches this fraction of
    /// [`EWMA_SCALE`].
    pub open_threshold: u32,
    /// Open after this many consecutive failures regardless of the EWMA
    /// (fast trip for a group that just died).
    pub consecutive_failures: u32,
    /// Cycles an open breaker waits before letting a probe through.
    pub cooldown_cycles: u64,
    /// Probe successes required to close a half-open breaker.
    pub probe_successes: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            ewma_shift: 3,
            open_threshold: EWMA_SCALE * 6 / 10,
            consecutive_failures: 3,
            cooldown_cycles: 100_000,
            probe_successes: 2,
        }
    }
}

impl BreakerConfig {
    /// A fast-tripping preset for coarse-grained callers (one breaker
    /// observation per *shard visit* rather than per offload batch): a
    /// single failure opens the breaker and the cooldown is short, so a
    /// storm-afflicted shard stops eating timeout penalties after its
    /// first hung dispatch yet probes again soon after recovery.
    pub fn fast_trip() -> Self {
        BreakerConfig {
            ewma_shift: 1,
            consecutive_failures: 1,
            cooldown_cycles: 20_000,
            probe_successes: 1,
            ..BreakerConfig::default()
        }
    }
}

/// One recorded breaker transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerTransition {
    /// Simulated cycle at which the transition happened.
    pub cycle: u64,
    /// The rank group whose breaker moved.
    pub group: usize,
    /// The state it moved to.
    pub to: BreakerState,
}

#[derive(Debug, Clone)]
struct GroupHealth {
    state: BreakerState,
    /// EWMA failure rate in `[0, EWMA_SCALE]`.
    ewma: u32,
    consecutive: u32,
    /// Cycle at which the breaker last opened.
    opened_at: u64,
    probe_ok: u32,
    failures: u64,
    successes: u64,
}

impl GroupHealth {
    fn new() -> Self {
        GroupHealth {
            state: BreakerState::Closed,
            ewma: 0,
            consecutive: 0,
            opened_at: 0,
            probe_ok: 0,
            failures: 0,
            successes: 0,
        }
    }
}

/// Deterministic per-rank-group health state shared across queries.
#[derive(Debug, Clone)]
pub struct HealthTracker {
    groups: Vec<GroupHealth>,
    cfg: BreakerConfig,
    transitions: Vec<BreakerTransition>,
    opens: u64,
    closes: u64,
}

impl HealthTracker {
    /// A tracker over `n_groups` rank groups, all breakers closed.
    pub fn new(n_groups: usize, cfg: BreakerConfig) -> Self {
        HealthTracker {
            groups: (0..n_groups).map(|_| GroupHealth::new()).collect(),
            cfg,
            transitions: Vec::new(),
            opens: 0,
            closes: 0,
        }
    }

    /// Rank groups tracked.
    pub fn n_groups(&self) -> usize {
        self.groups.len()
    }

    /// The configured policy.
    pub fn config(&self) -> &BreakerConfig {
        &self.cfg
    }

    /// Current breaker state of `group`.
    pub fn state(&self, group: usize) -> BreakerState {
        self.groups[group].state
    }

    /// EWMA failure rate of `group` as a fraction in `[0, 1]`.
    pub fn failure_rate(&self, group: usize) -> f64 {
        self.groups[group].ewma as f64 / EWMA_SCALE as f64
    }

    /// Groups whose breaker is currently open.
    pub fn open_groups(&self) -> usize {
        self.groups
            .iter()
            .filter(|g| g.state == BreakerState::Open)
            .count()
    }

    /// Times any breaker opened / closed so far.
    pub fn opens(&self) -> u64 {
        self.opens
    }

    /// Times any breaker returned to closed.
    pub fn closes(&self) -> u64 {
        self.closes
    }

    /// Every transition recorded so far, in observation order.
    pub fn transitions(&self) -> &[BreakerTransition] {
        &self.transitions
    }

    /// Whether `group` would accept work at `cycle` without mutating any
    /// state (no open → half-open promotion). Used to pick re-route and
    /// hedge targets: only groups in steady closed state qualify.
    pub fn would_accept(&self, group: usize) -> bool {
        self.groups[group].state == BreakerState::Closed
    }

    /// Whether `group` accepts an offload at `cycle`. An open breaker
    /// whose cooldown has elapsed transitions to half-open here (the
    /// caller's offload becomes the probe) and the transition is
    /// recorded.
    pub fn admits(&mut self, group: usize, cycle: u64) -> bool {
        let cooldown = self.cfg.cooldown_cycles;
        let g = &mut self.groups[group];
        match g.state {
            BreakerState::Closed | BreakerState::HalfOpen => true,
            BreakerState::Open => {
                if cycle >= g.opened_at.saturating_add(cooldown) {
                    g.state = BreakerState::HalfOpen;
                    g.probe_ok = 0;
                    self.transitions.push(BreakerTransition {
                        cycle,
                        group,
                        to: BreakerState::HalfOpen,
                    });
                    true
                } else {
                    false
                }
            }
        }
    }

    fn ewma_observe(g: &mut GroupHealth, shift: u32, fail: bool) {
        let target = if fail { EWMA_SCALE as i64 } else { 0 };
        let delta = (target - g.ewma as i64) >> shift;
        g.ewma = (g.ewma as i64 + delta).clamp(0, EWMA_SCALE as i64) as u32;
    }

    /// Record a successful offload on `group` at `cycle`. Returns the
    /// transition if this success closed a half-open breaker.
    pub fn record_success(&mut self, group: usize, cycle: u64) -> Option<BreakerTransition> {
        let cfg = self.cfg;
        let g = &mut self.groups[group];
        g.successes += 1;
        g.consecutive = 0;
        Self::ewma_observe(g, cfg.ewma_shift, false);
        if g.state == BreakerState::HalfOpen {
            g.probe_ok += 1;
            if g.probe_ok >= cfg.probe_successes {
                g.state = BreakerState::Closed;
                g.ewma = 0;
                let t = BreakerTransition {
                    cycle,
                    group,
                    to: BreakerState::Closed,
                };
                self.transitions.push(t);
                self.closes += 1;
                return Some(t);
            }
        }
        None
    }

    /// Record a failed offload (timeout, CRC rejection) on `group` at
    /// `cycle`. Returns the transition if this failure opened (or
    /// re-opened) the breaker.
    pub fn record_failure(&mut self, group: usize, cycle: u64) -> Option<BreakerTransition> {
        let cfg = self.cfg;
        let g = &mut self.groups[group];
        g.failures += 1;
        g.consecutive += 1;
        Self::ewma_observe(g, cfg.ewma_shift, true);
        let trip = match g.state {
            // A probe failure re-opens immediately.
            BreakerState::HalfOpen => true,
            BreakerState::Closed => {
                g.consecutive >= cfg.consecutive_failures || g.ewma >= cfg.open_threshold
            }
            BreakerState::Open => false,
        };
        if trip {
            g.state = BreakerState::Open;
            g.opened_at = cycle;
            let t = BreakerTransition {
                cycle,
                group,
                to: BreakerState::Open,
            };
            self.transitions.push(t);
            self.opens += 1;
            return Some(t);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> BreakerConfig {
        BreakerConfig {
            ewma_shift: 2,
            open_threshold: EWMA_SCALE / 2,
            consecutive_failures: 3,
            cooldown_cycles: 1_000,
            probe_successes: 2,
        }
    }

    #[test]
    fn fast_trip_opens_on_one_failure_and_closes_on_one_probe() {
        let mut h = HealthTracker::new(2, BreakerConfig::fast_trip());
        let t = h.record_failure(0, 100).expect("single failure opens");
        assert_eq!(t.to, BreakerState::Open);
        assert!(!h.admits(0, 101));
        assert!(h.admits(0, 100 + BreakerConfig::fast_trip().cooldown_cycles));
        let t = h.record_success(0, 30_000).expect("one probe closes");
        assert_eq!(t.to, BreakerState::Closed);
    }

    #[test]
    fn consecutive_failures_trip_the_breaker() {
        let mut h = HealthTracker::new(4, cfg());
        assert!(h.record_failure(1, 10).is_none());
        assert!(h.record_failure(1, 20).is_none());
        let t = h.record_failure(1, 30).expect("third strike opens");
        assert_eq!(t.to, BreakerState::Open);
        assert_eq!(h.state(1), BreakerState::Open);
        assert_eq!(h.open_groups(), 1);
        assert_eq!(h.opens(), 1);
        // Other groups are untouched.
        assert_eq!(h.state(0), BreakerState::Closed);
    }

    #[test]
    fn open_breaker_rejects_until_cooldown_then_probes() {
        let mut h = HealthTracker::new(2, cfg());
        for c in [0, 1, 2] {
            h.record_failure(0, c);
        }
        assert_eq!(h.state(0), BreakerState::Open);
        assert!(!h.admits(0, 500), "cooldown not elapsed");
        assert!(h.admits(0, 2_000), "cooldown elapsed: probe allowed");
        assert_eq!(h.state(0), BreakerState::HalfOpen);
        // A probe failure re-opens with a fresh cooldown.
        let t = h.record_failure(0, 2_100).expect("probe failure re-opens");
        assert_eq!(t.to, BreakerState::Open);
        assert!(!h.admits(0, 2_500));
        assert!(h.admits(0, 3_200));
        // Two probe successes close it.
        assert!(h.record_success(0, 3_300).is_none());
        let t = h.record_success(0, 3_400).expect("second success closes");
        assert_eq!(t.to, BreakerState::Closed);
        assert_eq!(h.state(0), BreakerState::Closed);
        assert_eq!(h.closes(), 1);
        assert_eq!(h.failure_rate(0), 0.0, "ewma resets on close");
    }

    #[test]
    fn ewma_rate_trips_without_consecutive_run() {
        let mut h = HealthTracker::new(
            1,
            BreakerConfig {
                consecutive_failures: u32::MAX,
                ..cfg()
            },
        );
        // Alternate failure/success: consecutive never exceeds 1, but the
        // EWMA climbs toward ~2/3 > 1/2 under 2:1 failures.
        let mut opened = false;
        for i in 0..64u64 {
            if i % 3 == 2 {
                h.record_success(0, i);
            } else if h.record_failure(0, i).is_some() {
                opened = true;
                break;
            }
        }
        assert!(opened, "ewma {} must trip", h.failure_rate(0));
    }

    #[test]
    fn successes_keep_breaker_closed() {
        let mut h = HealthTracker::new(2, cfg());
        for i in 0..100u64 {
            assert!(h.record_success(0, i).is_none());
        }
        // A sparse failure here and there never trips.
        for i in 0..20u64 {
            h.record_failure(0, 1_000 + i * 50);
            for j in 0..5 {
                h.record_success(0, 1_000 + i * 50 + j + 1);
            }
        }
        assert_eq!(h.state(0), BreakerState::Closed);
        assert_eq!(h.opens(), 0);
        assert!(h.transitions().is_empty());
    }

    #[test]
    fn would_accept_is_pure() {
        let mut h = HealthTracker::new(1, cfg());
        for c in [0, 1, 2] {
            h.record_failure(0, c);
        }
        assert!(!h.would_accept(0));
        // Past the cooldown, would_accept still refuses (no promotion)…
        assert!(!h.would_accept(0));
        assert_eq!(h.state(0), BreakerState::Open);
        // …while admits promotes to half-open.
        assert!(h.admits(0, 5_000));
        assert_eq!(h.state(0), BreakerState::HalfOpen);
    }

    #[test]
    fn transitions_log_is_ordered_and_complete() {
        let mut h = HealthTracker::new(2, cfg());
        for c in [10, 20, 30] {
            h.record_failure(1, c);
        }
        assert!(h.admits(1, 5_000));
        h.record_success(1, 5_100);
        h.record_success(1, 5_200);
        let tos: Vec<_> = h.transitions().iter().map(|t| (t.group, t.to)).collect();
        assert_eq!(
            tos,
            vec![
                (1, BreakerState::Open),
                (1, BreakerState::HalfOpen),
                (1, BreakerState::Closed),
            ]
        );
        let cycles: Vec<_> = h.transitions().iter().map(|t| t.cycle).collect();
        assert!(cycles.windows(2).all(|w| w[0] <= w[1]));
    }
}
