//! Analytical per-operation CPU cost model.
//!
//! The host executes index traversal, heap maintenance, and (in the CPU
//! designs) SIMD distance computation. Costs are expressed in CPU cycles
//! at the Table 1 clock (3.2 GHz, 16 out-of-order cores at 7 W each) and
//! converted to the memory-clock time base of the DRAM simulator
//! (2.4 GHz) when composed.

/// Per-operation cycle costs.
#[derive(Debug, Clone, PartialEq)]
pub struct HostCosts {
    /// Cycles to pop the search set and bookkeep one traversal hop
    /// (visited-set checks, neighbor list walk).
    pub hop_overhead: u64,
    /// Cycles per candidate inserted into the search/result heaps.
    pub heap_update: u64,
    /// SIMD compute cycles per 64 B of vector data (the paper measures
    /// ~0.125 op/byte arithmetic intensity; one AVX pass per 64 B plus
    /// amortized reduction).
    pub simd_per_line: u64,
    /// Fixed cycles per distance comparison (loop setup + final reduce +
    /// compare).
    pub compare_overhead: u64,
    /// Cycles to assemble and issue one NDP instruction (one DDR WRITE).
    pub offload_command: u64,
    /// Cycles to process one poll response (parse results, merge).
    pub poll_process: u64,
}

impl Default for HostCosts {
    fn default() -> Self {
        HostCosts {
            hop_overhead: 60,
            heap_update: 25,
            simd_per_line: 4,
            compare_overhead: 24,
            offload_command: 12,
            poll_process: 30,
        }
    }
}

/// The host CPU model.
#[derive(Debug, Clone, PartialEq)]
pub struct CpuModel {
    /// Core clock in MHz (Table 1: 3200).
    pub clock_mhz: u64,
    /// Number of cores (Table 1: 16).
    pub cores: usize,
    /// Power per core in watts (Table 1: 7 W).
    pub watts_per_core: f64,
    /// Per-operation costs.
    pub costs: HostCosts,
}

impl Default for CpuModel {
    fn default() -> Self {
        CpuModel {
            clock_mhz: 3200,
            cores: 16,
            watts_per_core: 7.0,
            costs: HostCosts::default(),
        }
    }
}

impl CpuModel {
    /// Convert CPU cycles to memory-clock cycles (rounding up).
    pub fn to_mem_cycles(&self, cpu_cycles: u64, mem_clock_mhz: u64) -> u64 {
        (cpu_cycles * mem_clock_mhz).div_ceil(self.clock_mhz)
    }

    /// Convert memory-clock cycles to CPU cycles (rounding up).
    pub fn from_mem_cycles(&self, mem_cycles: u64, mem_clock_mhz: u64) -> u64 {
        (mem_cycles * self.clock_mhz).div_ceil(mem_clock_mhz)
    }

    /// CPU cycles to compute a distance over `lines` 64 B chunks of
    /// vector data (data already in registers/L1).
    pub fn distance_compute_cycles(&self, lines: usize) -> u64 {
        self.costs.compare_overhead + self.costs.simd_per_line * lines as u64
    }

    /// CPU cycles of host-side traversal work for a hop that produced
    /// `evals` comparisons and `accepted` heap insertions.
    pub fn hop_cycles(&self, evals: usize, accepted: usize) -> u64 {
        self.costs.hop_overhead + self.costs.heap_update * accepted as u64 + 4 * evals as u64
        // visited-set probe per neighbor
    }

    /// CPU cycles to offload `tasks` comparisons to NDP units
    /// (set-search WRITEs carry up to 8 tasks each) on top of an
    /// already-uploaded query.
    pub fn offload_cycles(&self, tasks: usize) -> u64 {
        let writes = tasks.div_ceil(8).max(1);
        self.costs.offload_command * writes as u64
    }

    /// CPU cycles to upload a query of `query_bytes` to one NDP unit.
    pub fn query_upload_cycles(&self, query_bytes: usize) -> u64 {
        self.costs.offload_command * query_bytes.div_ceil(64) as u64
    }

    /// CPU cycles to issue and digest one poll.
    pub fn poll_cycles(&self) -> u64 {
        self.costs.offload_command + self.costs.poll_process
    }

    /// Energy in nanojoules for `cpu_cycles` of single-core activity.
    pub fn energy_nj(&self, cpu_cycles: u64) -> f64 {
        let seconds = cpu_cycles as f64 / (self.clock_mhz as f64 * 1e6);
        self.watts_per_core * seconds * 1e9
    }

    /// Background energy of the whole socket over a wall-clock duration
    /// expressed in memory cycles.
    pub fn socket_energy_nj(&self, mem_cycles: u64, mem_clock_mhz: u64, active_frac: f64) -> f64 {
        let seconds = mem_cycles as f64 / (mem_clock_mhz as f64 * 1e6);
        self.watts_per_core * self.cores as f64 * active_frac * seconds * 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_conversion_roundtrips_within_rounding() {
        let cpu = CpuModel::default();
        let mem = cpu.to_mem_cycles(3200, 2400);
        assert_eq!(mem, 2400);
        assert_eq!(cpu.from_mem_cycles(2400, 2400), 3200);
    }

    #[test]
    fn distance_cost_scales_with_lines() {
        let cpu = CpuModel::default();
        let d2 = cpu.distance_compute_cycles(2);
        let d60 = cpu.distance_compute_cycles(60);
        assert!(d60 > d2);
        assert_eq!(d60 - d2, 58 * cpu.costs.simd_per_line);
    }

    #[test]
    fn offload_batches_by_eight() {
        let cpu = CpuModel::default();
        assert_eq!(cpu.offload_cycles(1), cpu.costs.offload_command);
        assert_eq!(cpu.offload_cycles(8), cpu.costs.offload_command);
        assert_eq!(cpu.offload_cycles(9), 2 * cpu.costs.offload_command);
    }

    #[test]
    fn query_upload_1kb_takes_16_writes() {
        let cpu = CpuModel::default();
        assert_eq!(
            cpu.query_upload_cycles(1024),
            16 * cpu.costs.offload_command
        );
    }

    #[test]
    fn energy_positive_and_linear() {
        let cpu = CpuModel::default();
        let a = cpu.energy_nj(1000);
        let b = cpu.energy_nj(2000);
        assert!(a > 0.0);
        assert!((b - 2.0 * a).abs() < 1e-9);
    }

    #[test]
    fn hop_cost_components() {
        let cpu = CpuModel::default();
        let base = cpu.hop_cycles(0, 0);
        assert_eq!(base, cpu.costs.hop_overhead);
        assert!(cpu.hop_cycles(10, 5) > base);
    }
}
