//! Set-associative cache simulation (LRU), per Table 1.

/// Geometry and latency of the three cache levels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheConfig {
    /// (capacity bytes, ways, hit latency in CPU cycles) per level.
    pub levels: Vec<(usize, usize, u64)>,
    /// Line size in bytes.
    pub line: usize,
}

impl CacheConfig {
    /// The paper's Table 1 hierarchy: 64 kB 8-way L1 (4 cycles), 1 MB
    /// 8-way L2 (14 cycles), 8 MB 16-way LLC (60 cycles).
    pub fn table1() -> Self {
        CacheConfig {
            levels: vec![
                (64 * 1024, 8, 4),
                (1024 * 1024, 8, 14),
                (8 * 1024 * 1024, 16, 60),
            ],
            line: 64,
        }
    }

    /// A tiny hierarchy for tests.
    pub fn tiny() -> Self {
        CacheConfig {
            levels: vec![(512, 2, 1), (2048, 4, 5)],
            line: 64,
        }
    }
}

/// Result of a hierarchy access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessResult {
    /// Hit at cache level `level` (1-based).
    Hit {
        /// 1 = L1, 2 = L2, 3 = LLC.
        level: usize,
    },
    /// Missed every level (DRAM access required).
    Miss,
}

/// One set-associative LRU cache level.
#[derive(Debug, Clone)]
pub struct Cache {
    sets: Vec<Vec<(u64, u64)>>, // (tag, last-use stamp)
    ways: usize,
    line_shift: u32,
    hit_latency: u64,
    clock: u64,
    hits: u64,
    misses: u64,
}

impl Cache {
    /// Build a cache of `capacity` bytes, `ways`-way associative, with
    /// `line`-byte lines.
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not divide evenly.
    pub fn new(capacity: usize, ways: usize, line: usize, hit_latency: u64) -> Self {
        assert!(
            capacity.is_multiple_of(ways * line),
            "geometry must divide evenly"
        );
        let n_sets = capacity / (ways * line);
        assert!(n_sets.is_power_of_two(), "set count must be a power of two");
        Cache {
            sets: vec![Vec::with_capacity(ways); n_sets],
            ways,
            line_shift: line.trailing_zeros(),
            hit_latency,
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Hit latency of this level in CPU cycles.
    pub fn hit_latency(&self) -> u64 {
        self.hit_latency
    }

    /// Access `addr`; returns whether it hit, filling the line on a miss.
    pub fn access(&mut self, addr: u64) -> bool {
        self.clock += 1;
        let line = addr >> self.line_shift;
        let set_idx = (line as usize) & (self.sets.len() - 1);
        let tag = line >> self.sets.len().trailing_zeros();
        let set = &mut self.sets[set_idx];
        if let Some(entry) = set.iter_mut().find(|(t, _)| *t == tag) {
            entry.1 = self.clock;
            self.hits += 1;
            return true;
        }
        self.misses += 1;
        if set.len() >= self.ways {
            // Evict the least-recently-used way.
            let lru = set
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, stamp))| *stamp)
                .map(|(i, _)| i)
                .expect("non-empty set");
            set.swap_remove(lru);
        }
        set.push((tag, self.clock));
        false
    }

    /// (hits, misses) so far.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

/// The full cache hierarchy.
#[derive(Debug, Clone)]
pub struct CacheHierarchy {
    levels: Vec<Cache>,
}

impl CacheHierarchy {
    /// Build from a [`CacheConfig`].
    pub fn new(config: CacheConfig) -> Self {
        CacheHierarchy {
            levels: config
                .levels
                .iter()
                .map(|&(cap, ways, lat)| Cache::new(cap, ways, config.line, lat))
                .collect(),
        }
    }

    /// Access `addr` through the hierarchy; lower levels are filled on
    /// miss (inclusive hierarchy).
    pub fn access(&mut self, addr: u64) -> AccessResult {
        let mut hit_level = None;
        for (i, level) in self.levels.iter_mut().enumerate() {
            if level.access(addr) {
                hit_level = Some(i + 1);
                break;
            }
        }
        match hit_level {
            Some(level) => AccessResult::Hit { level },
            None => AccessResult::Miss,
        }
    }

    /// CPU-cycle latency of an access that resolved as `result`, with
    /// `dram_cycles` charged for misses.
    pub fn latency(&self, result: AccessResult, dram_cycles: u64) -> u64 {
        match result {
            AccessResult::Hit { level } => self.levels[level - 1].hit_latency(),
            AccessResult::Miss => self.levels.last().map_or(0, Cache::hit_latency) + dram_cycles,
        }
    }

    /// Per-level (hits, misses).
    pub fn stats(&self) -> Vec<(u64, u64)> {
        self.levels.iter().map(Cache::stats).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn second_access_hits_l1() {
        let mut h = CacheHierarchy::new(CacheConfig::table1());
        assert_eq!(h.access(0x1000), AccessResult::Miss);
        assert_eq!(h.access(0x1000), AccessResult::Hit { level: 1 });
        // Same line, different byte.
        assert_eq!(h.access(0x103f), AccessResult::Hit { level: 1 });
    }

    #[test]
    fn eviction_falls_back_to_l2() {
        let mut h = CacheHierarchy::new(CacheConfig::tiny());
        // tiny L1: 512 B, 2-way, 64 B lines → 4 sets. Fill set 0 with 3
        // conflicting lines (stride = 4 × 64 = 256).
        h.access(0);
        h.access(256);
        h.access(512); // evicts line 0 from L1 (still in L2)
        assert_eq!(h.access(0), AccessResult::Hit { level: 2 });
    }

    #[test]
    fn full_miss_after_both_levels_evict() {
        let mut h = CacheHierarchy::new(CacheConfig::tiny());
        // Touch enough conflicting lines to push the first out of both.
        for i in 0..40u64 {
            h.access(i * 256);
        }
        assert_eq!(h.access(0), AccessResult::Miss);
    }

    #[test]
    fn lru_keeps_recent_line() {
        let mut c = Cache::new(512, 2, 64, 1);
        // Set 0 holds two ways; lines 0 and 256 conflict there.
        c.access(0);
        c.access(256);
        c.access(0); // refresh 0
        c.access(512); // evicts 256 (LRU), not 0
        assert!(c.access(0));
        assert!(!c.access(256));
    }

    #[test]
    fn latency_accounting() {
        let h = CacheHierarchy::new(CacheConfig::table1());
        assert_eq!(h.latency(AccessResult::Hit { level: 1 }, 300), 4);
        assert_eq!(h.latency(AccessResult::Hit { level: 3 }, 300), 60);
        assert_eq!(h.latency(AccessResult::Miss, 300), 360);
    }

    #[test]
    fn stats_track_hits_and_misses() {
        let mut h = CacheHierarchy::new(CacheConfig::tiny());
        h.access(0);
        h.access(0);
        let stats = h.stats();
        assert_eq!(stats[0], (1, 1));
    }

    #[test]
    #[should_panic(expected = "divide evenly")]
    fn bad_geometry_panics() {
        Cache::new(1000, 3, 64, 1);
    }
}
