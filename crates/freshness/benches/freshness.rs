//! Freshness microbenchmarks: streaming-insert throughput (incremental
//! HNSW and IVF append), tombstone + compaction cost, and snapshot
//! save/load round trips — the hot paths of the churn loop.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use ansmet_freshness::{load, save, EpochMeta, LayoutArtifacts, MutableIndex};
use ansmet_index::{HnswParams, IvfParams};
use ansmet_vecdata::{Dataset, SynthSpec};

const LEVEL_SEED: u64 = 77;

/// A base index over the first `base` vectors plus the remaining
/// vectors as a pending insert pool.
fn setup(n: usize, base: usize) -> (Dataset, Vec<Vec<f32>>) {
    let (data, _) = SynthSpec::sift().scaled(n, 1).generate();
    let pending: Vec<Vec<f32>> = (base..n).map(|i| data.vector(i).to_vec()).collect();
    let base_data = Dataset::from_values(
        "bench",
        data.dtype(),
        data.metric(),
        data.dim(),
        (0..base).flat_map(|i| data.vector(i).to_vec()).collect(),
    );
    (base_data, pending)
}

fn bench_insert(c: &mut Criterion) {
    let mut group = c.benchmark_group("freshness_insert");
    let (base, pending) = setup(1_200, 1_000);
    group.bench_function("hnsw-stream-200", |b| {
        b.iter(|| {
            let mut idx = MutableIndex::build_hnsw(base.clone(), HnswParams::quick(), LEVEL_SEED);
            for v in &pending {
                black_box(idx.insert(v));
            }
            idx.generation()
        })
    });
    group.bench_function("ivf-stream-200", |b| {
        b.iter(|| {
            let mut idx = MutableIndex::build_ivf(base.clone(), IvfParams::default());
            for v in &pending {
                black_box(idx.insert(v));
            }
            idx.generation()
        })
    });
    group.finish();
}

fn bench_compact(c: &mut Criterion) {
    let mut group = c.benchmark_group("freshness_compact");
    let (base, _) = setup(1_000, 1_000);
    group.bench_function("hnsw-delete100-compact", |b| {
        b.iter(|| {
            let mut idx = MutableIndex::build_hnsw(base.clone(), HnswParams::quick(), LEVEL_SEED);
            for id in (0..1_000).step_by(10) {
                idx.delete(id);
            }
            black_box(idx.compact())
        })
    });
    group.bench_function("ivf-delete100-compact", |b| {
        b.iter(|| {
            let mut idx = MutableIndex::build_ivf(base.clone(), IvfParams::default());
            for id in (0..1_000).step_by(10) {
                idx.delete(id);
            }
            black_box(idx.compact())
        })
    });
    group.finish();
}

fn bench_snapshot(c: &mut Criterion) {
    let mut group = c.benchmark_group("freshness_snapshot");
    let (base, _) = setup(1_000, 1_000);
    let idx = MutableIndex::build_hnsw(base, HnswParams::quick(), LEVEL_SEED);
    let layout = LayoutArtifacts::plan(&idx, 0.01);
    let meta = EpochMeta {
        epoch: 3,
        last_epoch_cycle: 1_000_000,
    };
    group.bench_function("save", |b| b.iter(|| black_box(save(&idx, &layout, &meta))));
    let blob = save(&idx, &layout, &meta);
    group.bench_function("load", |b| {
        b.iter(|| black_box(load(&blob).expect("clean blob loads")))
    });
    group.finish();
}

criterion_group!(benches, bench_insert, bench_compact, bench_snapshot);
criterion_main!(benches);
