//! Index freshness for the ANSMET simulator: online inserts/deletes,
//! epoch snapshots, and churn-aware serving.
//!
//! The offline stack ([`ansmet_sim`]) and the serving layer
//! ([`ansmet_serve`]) both assume a *static* index: the dataset, graph,
//! and the ANSMET layout-optimizer artifacts (dual-granularity fetch
//! plan, common-prefix tables, hot-vector replica sets) are frozen at
//! build time. Real deployments churn. This crate adds the freshness
//! regime on top of the same deterministic machinery:
//!
//! * [`mutable`] — [`MutableIndex`]: streaming inserts (incremental HNSW
//!   insertion with the build's level distribution; IVF list append with
//!   centroid-drift counters) and tombstone deletes behind a wrapper the
//!   existing search paths consume unchanged.
//! * [`oracle`] — [`FreshEtOracle`]: early termination that serves
//!   not-yet-revalidated vectors with a conservative exact full fetch,
//!   so ET bounds stay correct under churn.
//! * [`revalidate`] — [`LayoutArtifacts`]: the frozen layout plan plus
//!   epoch re-validation, which admits fresh vectors whose prefix/
//!   outlier assumptions still hold, re-plans when too many do not, and
//!   refreshes the hot-vector replica set.
//! * [`epoch`] — [`EpochManager`]: background compaction (tombstone
//!   purge, IVF rebalance) plus re-validation on a fixed cycle cadence,
//!   with a deterministic pause-cost model.
//! * [`snapshot`] — a checksummed, versioned binary snapshot of index +
//!   layout plan + epoch metadata, with torn-write detection and
//!   recovery-on-load from a fallback snapshot.
//! * [`serving`] — a mixed read/write serving loop: seeded update
//!   tenants share the WFQ admission machinery with query tenants,
//!   epochs fire on the event wheel, and every read is served through
//!   both the ET and the exact oracle to prove losslessness in flight.
//! * [`experiment`] — the `freshness` experiment driver emitting
//!   `BENCH_freshness.json`.
//!
//! Determinism contract: seeded arrivals and level draws, integer cycle
//! arithmetic, and canonical orderings (sorted IVF lists, sorted replica
//! sets) make every report a pure function of its config — bit-identical
//! across reruns and host thread counts.

pub mod epoch;
pub mod experiment;
pub mod mutable;
pub mod oracle;
pub mod revalidate;
pub mod serving;
pub mod snapshot;

pub use epoch::{EpochConfig, EpochManager, EpochReport};
pub use experiment::freshness_experiment;
pub use mutable::{CompactStats, ListDrift, MutableIndex};
pub use oracle::FreshEtOracle;
pub use revalidate::{LayoutArtifacts, RevalidationReport};
pub use serving::{
    run_churn, run_churn_with_sink, ChurnConfig, ChurnReport, UpdateOp, UpdateTenantSpec,
};
pub use snapshot::{load, load_with_fallback, save, EpochMeta, Snapshot, SnapshotError};
