//! The frozen ANSMET layout plan, and its re-validation against a
//! mutated dataset.
//!
//! The layout optimizer chooses three artifacts at plan time: a
//! common-prefix spec (outlier-aware, per-dimension), a fetch schedule
//! over the residual bits, and a hot-vector replica set (the upper-layer
//! HNSW nodes every rank group mirrors). All three bake in assumptions
//! about the data distribution *at plan time*. Under churn those
//! assumptions rot:
//!
//! * A fresh insert may not fit the frozen prefix format — and even if
//!   it is an outlier, no uncompressed backup slot was provisioned for
//!   it in the outlier region. Until re-validation, such vectors are
//!   served **conservatively** (exact natural-layout fetch, see
//!   [`FreshEtOracle`](crate::FreshEtOracle)), which keeps every ET
//!   bound trivially correct.
//! * The hot set shifts as upper-layer nodes are inserted or unlinked;
//!   replica sets must be diffed and re-shipped.
//!
//! [`LayoutArtifacts::revalidate`] runs at every epoch: it admits
//! conservative vectors that the frozen format *does* cover, keeps the
//! rest conservative, and — when the conservative share exceeds the
//! configured headroom — re-plans prefix and schedule from the live data
//! so efficiency recovers.

use ansmet_core::{EtConfig, FetchSchedule, PrefixSpec};
use ansmet_ndp::ReplicaSet;

use crate::mutable::MutableIndex;

/// Largest deterministic sample used when (re-)choosing the prefix spec.
const PLAN_SAMPLE_CAP: usize = 256;

/// The frozen layout plan: prefix spec, fetch schedule, replica set.
#[derive(Debug, Clone)]
pub struct LayoutArtifacts {
    /// Fetch schedule over the residual (post-prefix) bits.
    pub schedule: FetchSchedule,
    /// Common-prefix elimination spec chosen at plan time.
    pub prefix: PrefixSpec,
    /// Hot-vector replica set (upper-layer HNSW nodes; empty for IVF).
    pub replicas: ReplicaSet,
    /// Outlier budget handed to the prefix chooser at (re-)plan time.
    pub outlier_budget_frac: f64,
}

/// What one re-validation pass decided.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RevalidationReport {
    /// Conservative flags examined.
    pub checked: usize,
    /// Vectors admitted to the transformed layout (flag cleared).
    pub admitted: usize,
    /// Vectors kept conservative (outliers without a provisioned
    /// backup slot under the frozen format).
    pub kept_conservative: usize,
    /// Whether the prefix/schedule pair was re-planned from live data.
    pub replanned: bool,
    /// Live vectors that are outliers under the (possibly old) prefix.
    pub outlier_frac: f64,
    /// Replica ids newly added by the refresh.
    pub replicas_added: usize,
    /// Replica ids dropped by the refresh.
    pub replicas_removed: usize,
}

impl std::fmt::Display for RevalidationReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "revalidated {} vectors: {} admitted, {} kept conservative{}; \
             outlier share {:.2}%; replicas +{}/-{}",
            self.checked,
            self.admitted,
            self.kept_conservative,
            if self.replanned { ", re-planned" } else { "" },
            self.outlier_frac * 100.0,
            self.replicas_added,
            self.replicas_removed,
        )
    }
}

impl LayoutArtifacts {
    /// Plan the layout artifacts from the index's current live data: a
    /// prefix spec over a deterministic live sample, a fetch schedule
    /// over the residual bits (the paper's chunk heuristic), and the
    /// hot-vector replica set.
    pub fn plan(index: &MutableIndex, outlier_budget_frac: f64) -> Self {
        let sample = plan_sample(index);
        let prefix = PrefixSpec::choose(index.data(), &sample, outlier_budget_frac);
        let schedule = schedule_for(&prefix, index);
        LayoutArtifacts {
            schedule,
            prefix,
            replicas: replica_plan(index),
            outlier_budget_frac,
        }
    }

    /// The ET config this plan induces (what the engine is built from).
    pub fn et_config(&self) -> EtConfig {
        if self.prefix.is_disabled() {
            EtConfig::new(self.schedule.clone())
        } else {
            EtConfig::with_prefix(self.schedule.clone(), self.prefix.clone())
        }
    }

    /// Re-validate the plan against the mutated index.
    ///
    /// Per conservative id: dead ids are dropped; ids the frozen prefix
    /// format covers (no outlier dimensions) are admitted; outliers stay
    /// conservative — their backup slot was never provisioned. When the
    /// still-conservative share of the live set exceeds `headroom`, the
    /// prefix and schedule are re-planned from live data and everything
    /// is admitted. Finally the replica set is refreshed and diffed.
    pub fn revalidate(&mut self, index: &mut MutableIndex, headroom: f64) -> RevalidationReport {
        assert!(
            (0.0..=1.0).contains(&headroom),
            "headroom is a fraction of the live set"
        );
        let live = index.live_ids();
        let mut checked = 0usize;
        let mut admitted = 0usize;
        let mut kept = 0usize;
        for id in 0..index.len() {
            if !index.conservative[id] {
                continue;
            }
            checked += 1;
            if !index.is_live(id) {
                // Dead: the flag no longer matters, retire it.
                index.conservative[id] = false;
            } else if self.prefix.is_disabled() || !self.prefix.vector_has_outlier(index.data(), id)
            {
                index.conservative[id] = false;
                admitted += 1;
            } else {
                kept += 1;
            }
        }
        let outliers = if self.prefix.is_disabled() {
            0
        } else {
            self.prefix.outlier_vector_count(index.data(), &live)
        };
        let outlier_frac = outliers as f64 / live.len().max(1) as f64;
        let replanned = kept as f64 > headroom * live.len() as f64;
        if replanned {
            let sample = plan_sample(index);
            self.prefix = PrefixSpec::choose(index.data(), &sample, self.outlier_budget_frac);
            self.schedule = schedule_for(&self.prefix, index);
            // The re-plan re-lays every live vector out (outlier backups
            // included), so nothing stays conservative.
            for &id in &live {
                index.conservative[id] = false;
            }
            admitted += kept;
            kept = 0;
        }
        let fresh = replica_plan(index);
        let (added, removed) = self.replicas.diff(&fresh);
        self.replicas = fresh;
        RevalidationReport {
            checked,
            admitted,
            kept_conservative: kept,
            replanned,
            outlier_frac,
            replicas_added: added.len(),
            replicas_removed: removed.len(),
        }
    }
}

/// Deterministic live-id sample for prefix planning: every live id when
/// small, otherwise a fixed-stride subsample capped at
/// [`PLAN_SAMPLE_CAP`].
fn plan_sample(index: &MutableIndex) -> Vec<usize> {
    let live = index.live_ids();
    if live.len() <= PLAN_SAMPLE_CAP {
        return live;
    }
    let stride = live.len().div_ceil(PLAN_SAMPLE_CAP);
    live.into_iter().step_by(stride).collect()
}

/// The paper's chunk heuristic over the residual bits: 8-bit steps for
/// floats, 4-bit for integers, after the eliminated prefix.
fn schedule_for(prefix: &PrefixSpec, index: &MutableIndex) -> FetchSchedule {
    let dtype = index.data().dtype();
    if prefix.is_disabled() {
        FetchSchedule::simple_heuristic(dtype)
    } else {
        let n = if dtype.is_float() { 8 } else { 4 };
        FetchSchedule::uniform_after_prefix(dtype, prefix.len(), n)
    }
}

/// The hot-vector replica set: live upper-layer HNSW nodes (what every
/// rank group mirrors so greedy descent never crosses groups). IVF has
/// no descent phase, so its replica set is empty.
fn replica_plan(index: &MutableIndex) -> ReplicaSet {
    match index.hnsw() {
        Some(h) => ReplicaSet::new(
            h.nodes_at_or_above_layer(1)
                .into_iter()
                .filter(|&id| index.is_live(id)),
        ),
        None => ReplicaSet::new(std::iter::empty()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ansmet_index::HnswParams;
    use ansmet_vecdata::SynthSpec;

    fn churned_index(n: usize, held_out: usize) -> (MutableIndex, Vec<Vec<f32>>) {
        let (data, _) = SynthSpec::sift().scaled(n, 1).generate();
        let pending: Vec<Vec<f32>> = (n - held_out..n).map(|i| data.vector(i).to_vec()).collect();
        let base = ansmet_vecdata::Dataset::from_values(
            "t",
            data.dtype(),
            data.metric(),
            data.dim(),
            (0..n - held_out)
                .flat_map(|i| data.vector(i).to_vec())
                .collect(),
        );
        (
            MutableIndex::build_hnsw(base, HnswParams::quick(), 5),
            pending,
        )
    }

    #[test]
    fn plan_config_is_engine_compatible() {
        let (idx, _) = churned_index(300, 0);
        let layout = LayoutArtifacts::plan(&idx, 0.01);
        let cfg = layout.et_config();
        // Building an engine from the induced config must not panic and
        // must agree on the schedule.
        let engine = ansmet_core::EtEngine::new(idx.data(), cfg);
        assert_eq!(engine.config().schedule, layout.schedule);
    }

    #[test]
    fn revalidation_admits_covered_inserts() {
        let (mut idx, pending) = churned_index(400, 40);
        let mut layout = LayoutArtifacts::plan(&idx, 0.01);
        for v in &pending {
            idx.insert(v);
        }
        assert_eq!(idx.conservative_count(), 40);
        let report = layout.revalidate(&mut idx, 1.0);
        assert_eq!(report.checked, 40);
        assert_eq!(report.admitted + report.kept_conservative, 40);
        assert!(
            !report.replanned,
            "headroom 1.0 must never trigger a re-plan"
        );
        assert_eq!(idx.conservative_count(), report.kept_conservative);
        // Second pass: admitted vectors are no longer checked.
        let again = layout.revalidate(&mut idx, 1.0);
        assert_eq!(again.checked, report.kept_conservative);
    }

    #[test]
    fn zero_headroom_forces_a_replan_when_outliers_persist() {
        let (mut idx, pending) = churned_index(400, 40);
        let mut layout = LayoutArtifacts::plan(&idx, 0.01);
        for v in &pending {
            idx.insert(v);
        }
        let report = layout.revalidate(&mut idx, 0.0);
        if report.kept_conservative > 0 {
            panic!("a re-plan must clear every conservative flag");
        }
        // Either everything fit the frozen format, or a re-plan fired;
        // both ways no conservative vector survives a zero headroom.
        assert_eq!(idx.conservative_count(), 0);
    }

    #[test]
    fn replica_refresh_tracks_upper_layer_changes() {
        let (mut idx, pending) = churned_index(400, 60);
        let mut layout = LayoutArtifacts::plan(&idx, 0.01);
        let before = layout.replicas.sorted_ids();
        for v in &pending {
            idx.insert(v);
        }
        let report = layout.revalidate(&mut idx, 1.0);
        let after = layout.replicas.sorted_ids();
        // Streaming 60 inserts at the build level distribution promotes
        // ~1/ln(16) of them above layer 0 in expectation; the diff
        // accounting must match the set difference exactly.
        let added = after.iter().filter(|id| !before.contains(id)).count();
        let removed = before.iter().filter(|id| !after.contains(id)).count();
        assert_eq!(report.replicas_added, added);
        assert_eq!(report.replicas_removed, removed);
    }

    #[test]
    fn display_is_stable() {
        let r = RevalidationReport {
            checked: 12,
            admitted: 10,
            kept_conservative: 2,
            replanned: false,
            outlier_frac: 0.008,
            replicas_added: 3,
            replicas_removed: 1,
        };
        assert_eq!(
            r.to_string(),
            "revalidated 12 vectors: 10 admitted, 2 kept conservative; \
             outlier share 0.80%; replicas +3/-1"
        );
    }
}
