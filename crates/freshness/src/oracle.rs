//! Churn-aware early-termination oracle.
//!
//! [`FreshEtOracle`] wraps an [`EtEngine`] exactly like
//! [`EtOracle`](ansmet_core::EtOracle), with one addition: ids flagged
//! *conservative* by the [`MutableIndex`](crate::MutableIndex) bypass
//! the transformed layout entirely and are answered with an exact
//! distance at natural full-fetch cost. A vector is conservative when
//! the layout-optimizer artifacts (common-prefix tables, dual-
//! granularity fetch plan, outlier backups) were planned before it
//! existed — its prefix/outlier assumptions have not been re-validated,
//! so the only sound move is the full fetch. The epoch manager clears
//! the flag once re-validation proves the frozen format covers the
//! vector (see [`LayoutArtifacts::revalidate`](crate::LayoutArtifacts)).
//!
//! Because both the conservative and the engine path return *exact*
//! distances for accepted candidates (ET is lossless), searches through
//! this oracle are bit-identical to exact searches — the flag only moves
//! cost, never results.

use ansmet_core::EtEngine;
use ansmet_index::{DistanceOracle, DistanceOutcome};

/// ET oracle that serves non-revalidated ids with a conservative exact
/// full fetch.
#[derive(Debug)]
pub struct FreshEtOracle<'a> {
    engine: &'a EtEngine<'a>,
    conservative: &'a [bool],
    comparisons: u64,
    /// Transformed-layout lines fetched so far (conservative fetches
    /// count their natural-layout lines here too).
    pub lines: u64,
    /// Backup lines fetched so far.
    pub backup_lines: u64,
    /// Comparisons pruned by early termination.
    pub pruned: u64,
    /// Comparisons served via the conservative full-fetch path.
    pub conservative_fetches: u64,
}

impl<'a> FreshEtOracle<'a> {
    /// Wrap `engine` with per-id conservative flags (one per dataset
    /// vector, typically [`MutableIndex::conservative_flags`](crate::MutableIndex::conservative_flags)).
    ///
    /// # Panics
    ///
    /// Panics if the flag slice and the engine's dataset disagree on
    /// length.
    pub fn new(engine: &'a EtEngine<'a>, conservative: &'a [bool]) -> Self {
        assert_eq!(
            conservative.len(),
            engine.dataset().len(),
            "conservative flags cover {} ids, dataset has {}",
            conservative.len(),
            engine.dataset().len()
        );
        FreshEtOracle {
            engine,
            conservative,
            comparisons: 0,
            lines: 0,
            backup_lines: 0,
            pruned: 0,
            conservative_fetches: 0,
        }
    }

    /// Lines a non-terminating design would have fetched for the same
    /// comparisons.
    pub fn baseline_lines(&self) -> u64 {
        self.comparisons * self.engine.full_lines() as u64
    }
}

impl DistanceOracle for FreshEtOracle<'_> {
    fn evaluate(&mut self, id: usize, query: &[f32], threshold: f32) -> DistanceOutcome {
        self.comparisons += 1;
        if self.conservative[id] {
            self.conservative_fetches += 1;
            self.lines += self.engine.natural_lines() as u64;
            return DistanceOutcome::Exact(self.engine.dataset().distance_to(id, query));
        }
        let cost = self.engine.evaluate(id, query, threshold);
        self.lines += cost.lines as u64;
        self.backup_lines += cost.backup_lines as u64;
        if cost.pruned {
            self.pruned += 1;
            DistanceOutcome::Pruned
        } else {
            match cost.effective_distance() {
                Some(d) => DistanceOutcome::Exact(d),
                None => DistanceOutcome::Pruned,
            }
        }
    }

    fn comparisons(&self) -> u64 {
        self.comparisons
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ansmet_core::{EtConfig, FetchSchedule};
    use ansmet_vecdata::SynthSpec;

    #[test]
    fn conservative_ids_cost_full_fetch_but_stay_exact() {
        let (data, queries) = SynthSpec::sift().scaled(60, 2).generate();
        let cfg = EtConfig::new(FetchSchedule::simple_heuristic(data.dtype()));
        let engine = EtEngine::new(&data, cfg);
        let mut flags = vec![false; data.len()];
        flags[5] = true;
        let mut oracle = FreshEtOracle::new(&engine, &flags);
        // Conservative id: exact distance regardless of threshold.
        let out = oracle.evaluate(5, &queries[0], 0.0);
        assert_eq!(
            out,
            DistanceOutcome::Exact(data.distance_to(5, &queries[0]))
        );
        assert_eq!(oracle.conservative_fetches, 1);
        assert_eq!(oracle.lines, engine.natural_lines() as u64);
        // Regular id under an infinite threshold: exact as well.
        let out = oracle.evaluate(6, &queries[0], f32::INFINITY);
        assert_eq!(
            out,
            DistanceOutcome::Exact(data.distance_to(6, &queries[0]))
        );
        assert_eq!(oracle.comparisons(), 2);
    }

    #[test]
    #[should_panic(expected = "conservative flags cover")]
    fn flag_shape_is_checked() {
        let (data, _) = SynthSpec::sift().scaled(10, 1).generate();
        let cfg = EtConfig::new(FetchSchedule::simple_heuristic(data.dtype()));
        let engine = EtEngine::new(&data, cfg);
        let flags = vec![false; 3];
        let _ = FreshEtOracle::new(&engine, &flags);
    }
}
