//! Epoch manager: periodic compaction + layout re-validation with a
//! deterministic pause-cost model.
//!
//! Freshness work is batched into *epochs* on the serving clock: every
//! `interval_cycles` the manager stops the (simulated) device, purges
//! tombstones, rebalances IVF lists, re-validates the layout artifacts
//! against the mutated data, and ships replica diffs. The pause is
//! charged in integer cycles from fixed per-unit costs, so compaction
//! pressure shows up as measurable tail latency in the churn report —
//! and the whole schedule is bit-reproducible.

use crate::mutable::{CompactStats, MutableIndex};
use crate::revalidate::{LayoutArtifacts, RevalidationReport};

/// Fixed cost of entering/leaving an epoch (quiesce + barrier).
pub const EPOCH_BASE_CYCLES: u64 = 4_096;
/// Cycles to unlink one tombstoned graph node (or purge one IVF entry).
pub const COMPACT_PURGE_CYCLES: u64 = 1_024;
/// Cycles to move one IVF member between lists during rebalance.
pub const COMPACT_MOVE_CYCLES: u64 = 96;
/// Cycles to re-validate one live vector against the layout plan.
pub const REVALIDATE_CYCLES_PER_VECTOR: u64 = 12;
/// Cycles to ship one replica add/remove to a rank group.
pub const REPLICA_SHIP_CYCLES: u64 = 320;

/// Epoch cadence and re-validation policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochConfig {
    /// Cycles between epoch starts on the serving clock.
    pub interval_cycles: u64,
    /// Largest tolerated share of the live set served conservatively;
    /// above it, re-validation re-plans the prefix and schedule.
    pub conservative_headroom: f64,
}

impl Default for EpochConfig {
    fn default() -> Self {
        EpochConfig {
            interval_cycles: 2_000_000,
            conservative_headroom: 0.02,
        }
    }
}

/// What one epoch did, and what it cost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochReport {
    /// 1-based epoch number.
    pub epoch: u64,
    /// Compaction outcome.
    pub compacted: CompactStats,
    /// Re-validation outcome.
    pub revalidated: RevalidationReport,
    /// Modeled stop-the-device pause, in cycles.
    pub pause_cycles: u64,
}

impl std::fmt::Display for EpochReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "epoch {}: purged {}, moved {}, paused {} cycles; {}",
            self.epoch,
            self.compacted.purged,
            self.compacted.moved,
            self.pause_cycles,
            self.revalidated,
        )
    }
}

/// Drives compaction + re-validation epochs.
#[derive(Debug, Clone)]
pub struct EpochManager {
    cfg: EpochConfig,
    epoch: u64,
}

impl EpochManager {
    /// Manager with no epochs run yet.
    ///
    /// # Panics
    ///
    /// Panics on a zero interval.
    pub fn new(cfg: EpochConfig) -> Self {
        assert!(cfg.interval_cycles > 0, "epoch interval must be positive");
        EpochManager { cfg, epoch: 0 }
    }

    /// Resume at a saved epoch count (snapshot restore).
    pub fn resume(cfg: EpochConfig, epochs_run: u64) -> Self {
        let mut m = Self::new(cfg);
        m.epoch = epochs_run;
        m
    }

    /// The active config.
    pub fn config(&self) -> &EpochConfig {
        &self.cfg
    }

    /// Epochs completed so far.
    pub fn epochs_run(&self) -> u64 {
        self.epoch
    }

    /// When the next epoch should fire, given the current clock.
    pub fn next_wake(&self, now: u64) -> u64 {
        now + self.cfg.interval_cycles
    }

    /// Run one epoch: compact the index, re-validate the layout, and
    /// charge the modeled pause.
    pub fn run_epoch(
        &mut self,
        index: &mut MutableIndex,
        layout: &mut LayoutArtifacts,
    ) -> EpochReport {
        let compacted = index.compact();
        let revalidated = layout.revalidate(index, self.cfg.conservative_headroom);
        let pause_cycles = EPOCH_BASE_CYCLES
            + compacted.purged as u64 * COMPACT_PURGE_CYCLES
            + compacted.moved as u64 * COMPACT_MOVE_CYCLES
            + index.live_len() as u64 * REVALIDATE_CYCLES_PER_VECTOR
            + (revalidated.replicas_added + revalidated.replicas_removed) as u64
                * REPLICA_SHIP_CYCLES;
        self.epoch += 1;
        EpochReport {
            epoch: self.epoch,
            compacted,
            revalidated,
            pause_cycles,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ansmet_index::HnswParams;
    use ansmet_vecdata::SynthSpec;

    #[test]
    fn epoch_compacts_and_charges_a_pause() {
        let (data, _) = SynthSpec::sift().scaled(300, 1).generate();
        let mut idx = MutableIndex::build_hnsw(data, HnswParams::quick(), 9);
        let mut layout = LayoutArtifacts::plan(&idx, 0.01);
        let mut mgr = EpochManager::new(EpochConfig::default());
        for id in [5, 17, 200] {
            idx.delete(id);
        }
        let r = mgr.run_epoch(&mut idx, &mut layout);
        assert_eq!(r.epoch, 1);
        assert_eq!(r.compacted.purged, 3);
        assert!(
            r.pause_cycles
                >= EPOCH_BASE_CYCLES
                    + 3 * COMPACT_PURGE_CYCLES
                    + idx.live_len() as u64 * REVALIDATE_CYCLES_PER_VECTOR,
            "pause must cover purge + scan costs"
        );
        assert_eq!(idx.pending_dead(), 0);
        assert_eq!(mgr.epochs_run(), 1);
        // Deterministic: the same mutation sequence costs the same pause.
        let (data2, _) = SynthSpec::sift().scaled(300, 1).generate();
        let mut idx2 = MutableIndex::build_hnsw(data2, HnswParams::quick(), 9);
        let mut layout2 = LayoutArtifacts::plan(&idx2, 0.01);
        let mut mgr2 = EpochManager::new(EpochConfig::default());
        for id in [5, 17, 200] {
            idx2.delete(id);
        }
        assert_eq!(mgr2.run_epoch(&mut idx2, &mut layout2), r);
    }

    #[test]
    fn resume_continues_the_epoch_count() {
        let mgr = EpochManager::resume(EpochConfig::default(), 7);
        assert_eq!(mgr.epochs_run(), 7);
        assert_eq!(
            mgr.next_wake(100),
            100 + EpochConfig::default().interval_cycles
        );
    }

    #[test]
    #[should_panic(expected = "interval must be positive")]
    fn zero_interval_rejected() {
        EpochManager::new(EpochConfig {
            interval_cycles: 0,
            conservative_headroom: 0.1,
        });
    }
}
