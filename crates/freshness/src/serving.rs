//! Churn-aware serving: a mixed read/write arrival stream through shared
//! WFQ admission, with epochs firing on the event wheel.
//!
//! Query tenants ([`TenantSpec`], the serving layer's seeded arrival
//! processes) and *update tenants* ([`UpdateTenantSpec`], seeded
//! insert/delete streams) share one weighted-fair queue and one
//! queue-depth admission limit — an update burst steals service slots
//! from readers exactly as the WFQ weights dictate, and overload sheds
//! both classes. The device is a serial cycle-domain model:
//!
//! * A read runs the search twice — through [`FreshEtOracle`] (charged:
//!   base + fetched lines) and through an exact oracle — and records
//!   whether the two disagree, proving ET losslessness *in flight* on
//!   the mutated index.
//! * An insert extends the index incrementally (charged per touched
//!   HNSW layer); a delete writes a tombstone.
//! * Epoch wakeups are scheduled on an [`EventWheel`]; when one fires,
//!   the [`EpochManager`] pauses the device for its modeled compaction
//!   cost, which surfaces as queueing delay in the read tail.
//!
//! Everything is integer-cycle and seed-driven: the report — including
//! the chained fingerprint over every served read result — is a pure
//! function of the config, bit-identical across reruns and host thread
//! counts.

use std::collections::VecDeque;

use ansmet_core::EtEngine;
use ansmet_index::{ExactOracle, SearchScratch};
use ansmet_obs::{fingerprint64, EventKind, LatencyHistogram, NoopSink, Phase, TraceSink};
use ansmet_serve::{generate_arrivals, TenantSpec};
use ansmet_sim::EventWheel;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::epoch::{EpochConfig, EpochManager, EpochReport};
use crate::mutable::MutableIndex;
use crate::oracle::FreshEtOracle;
use crate::revalidate::LayoutArtifacts;

/// Fixed read service cost before any line is fetched.
pub const READ_BASE_CYCLES: u64 = 512;
/// Service cycles per fetched line (transformed or natural layout).
pub const CYCLES_PER_LINE: u64 = 32;
/// Fixed insert cost (dataset append + bookkeeping).
pub const INSERT_BASE_CYCLES: u64 = 2_048;
/// Additional insert cost per HNSW layer the new node joins.
pub const INSERT_LAYER_CYCLES: u64 = 1_024;
/// Tombstone-write cost of a delete.
pub const DELETE_CYCLES: u64 = 512;

const TOKEN_EPOCH: u32 = 1;

/// One update operation kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateOp {
    /// Stream one held-out vector into the index.
    Insert,
    /// Tombstone a seeded-random live vector.
    Delete,
}

/// One tenant's seeded update stream.
#[derive(Debug, Clone, PartialEq)]
pub struct UpdateTenantSpec {
    /// Display name (keys the per-tenant report).
    pub name: String,
    /// Weighted-fair-queueing weight, shared scale with query tenants.
    pub weight: u64,
    /// Offered update rate in operations per second (Poisson).
    pub qps: f64,
    /// Operations offered over the run.
    pub ops: usize,
    /// Fraction of operations that are deletes, in `[0, 1]`.
    pub delete_frac: f64,
}

/// Churn run configuration.
#[derive(Debug, Clone)]
pub struct ChurnConfig {
    /// Master seed for arrivals and update streams.
    pub seed: u64,
    /// Memory clock translating offered QPS into cycle gaps.
    pub mem_clock_mhz: u64,
    /// Query tenants (read side of the stream).
    pub read_tenants: Vec<TenantSpec>,
    /// Update tenants (write side of the stream).
    pub update_tenants: Vec<UpdateTenantSpec>,
    /// Neighbors returned per read.
    pub k: usize,
    /// Beam width (HNSW) / probe count (IVF) per read.
    pub ef: usize,
    /// Shared admission limit: total queued items across all tenants.
    pub queue_depth_limit: usize,
    /// Epoch cadence and re-validation policy.
    pub epoch: EpochConfig,
}

/// What a churn run measured.
#[derive(Debug, Clone)]
pub struct ChurnReport {
    /// Reads served to completion.
    pub reads_served: u64,
    /// Reads shed at admission.
    pub reads_shed: u64,
    /// Inserts applied.
    pub inserts_applied: u64,
    /// Deletes applied.
    pub deletes_applied: u64,
    /// Updates shed at admission.
    pub updates_shed: u64,
    /// Updates that became no-ops (exhausted insert pool / live set at
    /// the guard floor).
    pub updates_noop: u64,
    /// Reads where the ET and exact oracles disagreed (must be 0: ET is
    /// lossless, and tombstone filtering is oracle-independent).
    pub et_mismatches: u64,
    /// Transformed + natural lines fetched by the ET oracle.
    pub lines_fetched: u64,
    /// Lines a no-ET design would have fetched for the same reads.
    pub lines_baseline: u64,
    /// Comparisons served via the conservative full-fetch path.
    pub conservative_fetches: u64,
    /// Read total latency (arrival → completion), cycles.
    pub read_latency: LatencyHistogram,
    /// Update total latency (arrival → completion), cycles.
    pub update_latency: LatencyHistogram,
    /// Epoch pause durations, cycles.
    pub pause: LatencyHistogram,
    /// Every epoch that ran, in order (the last one is the final
    /// drain-time epoch).
    pub epochs: Vec<EpochReport>,
    /// Chained FNV fingerprint over every served read's neighbor ids.
    pub results_fingerprint: u64,
    /// Per-tenant (name, items served).
    pub tenants_served: Vec<(String, u64)>,
    /// Cycle at which the run (including the final epoch) completed.
    pub end_cycle: u64,
}

impl ChurnReport {
    /// Updates applied per wall-second of simulated time.
    pub fn update_throughput_per_sec(&self, mem_clock_mhz: u64) -> f64 {
        let secs = self.end_cycle as f64 / (mem_clock_mhz as f64 * 1e6);
        (self.inserts_applied + self.deletes_applied) as f64 / secs.max(1e-12)
    }

    /// Epochs that re-planned the layout.
    pub fn replans(&self) -> u64 {
        self.epochs
            .iter()
            .filter(|e| e.revalidated.replanned)
            .count() as u64
    }

    /// Tombstones purged across all epochs.
    pub fn total_purged(&self) -> u64 {
        self.epochs.iter().map(|e| e.compacted.purged as u64).sum()
    }

    /// Replica adds + removes shipped across all epochs.
    pub fn replicas_shipped(&self) -> u64 {
        self.epochs
            .iter()
            .map(|e| (e.revalidated.replicas_added + e.revalidated.replicas_removed) as u64)
            .sum()
    }
}

impl std::fmt::Display for ChurnReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "reads: {} served, {} shed, p50 {} / p99 {} cycles",
            self.reads_served,
            self.reads_shed,
            self.read_latency.quantile(0.50),
            self.read_latency.quantile(0.99),
        )?;
        writeln!(
            f,
            "updates: {} inserts + {} deletes applied, {} shed, {} no-op, p99 {} cycles",
            self.inserts_applied,
            self.deletes_applied,
            self.updates_shed,
            self.updates_noop,
            self.update_latency.quantile(0.99),
        )?;
        writeln!(
            f,
            "epochs: {} run ({} re-plans), purge total {}, pause p99 {} cycles",
            self.epochs.len(),
            self.replans(),
            self.total_purged(),
            self.pause.quantile(0.99),
        )?;
        write!(
            f,
            "ET under churn: {} mismatches, {} lines vs {} baseline, {} conservative fetches",
            self.et_mismatches, self.lines_fetched, self.lines_baseline, self.conservative_fetches,
        )
    }
}

/// A merged arrival: read or update.
#[derive(Debug, Clone)]
enum ItemKind {
    Read { query: usize },
    Update { op: UpdateOp, draw: u64 },
}

#[derive(Debug, Clone)]
struct Item {
    cycle: u64,
    tenant: usize,
    seq: u64,
    kind: ItemKind,
}

#[derive(Debug, Clone, Copy)]
struct Queued {
    idx: usize,
    arrival: u64,
    tag: u64,
}

/// Generate one update tenant's seeded Poisson op stream. Sub-seeded by
/// the tenant's *absolute* index (after the read tenants), so read and
/// update streams never share an RNG and adding one never perturbs
/// another.
fn generate_updates(
    specs: &[UpdateTenantSpec],
    first_tenant: usize,
    seed: u64,
    mem_clock_mhz: u64,
) -> Vec<Item> {
    let mut all = Vec::new();
    for (u, spec) in specs.iter().enumerate() {
        assert!(
            spec.weight > 0,
            "update tenant {} has zero weight",
            spec.name
        );
        assert!(
            spec.qps.is_finite() && spec.qps > 0.0,
            "update tenant {} has non-positive rate",
            spec.name
        );
        assert!(
            (0.0..=1.0).contains(&spec.delete_frac),
            "delete fraction out of range"
        );
        let tenant = first_tenant + u;
        let mut rng =
            SmallRng::seed_from_u64(seed ^ (tenant as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let rate = spec.qps / (mem_clock_mhz as f64 * 1e6);
        let mut now = 0u64;
        for seq in 0..spec.ops as u64 {
            let gap: f64 = rng.gen_range(0.0..1.0);
            now += ((-(1.0 - gap).ln() / rate).round() as u64).max(1);
            let op = if rng.gen_range(0.0..1.0) < spec.delete_frac {
                UpdateOp::Delete
            } else {
                UpdateOp::Insert
            };
            let draw = rng.gen_range(0..1_000_000_007usize) as u64;
            all.push(Item {
                cycle: now,
                tenant,
                seq,
                kind: ItemKind::Update { op, draw },
            });
        }
    }
    all
}

/// Run the churn loop: serve the merged read/update stream against
/// `index`, firing epochs on the event wheel, then run one final
/// drain-time epoch.
///
/// `queries` is the read tenants' query pool; `pending_inserts` is the
/// held-out vector pool insert ops consume (cycling when exhausted —
/// an empty pool turns inserts into no-ops).
///
/// # Panics
///
/// Panics on an empty tenant list or an empty query pool.
pub fn run_churn(
    index: &mut MutableIndex,
    layout: &mut LayoutArtifacts,
    queries: &[Vec<f32>],
    pending_inserts: &[Vec<f32>],
    cfg: &ChurnConfig,
) -> ChurnReport {
    run_churn_with_sink(index, layout, queries, pending_inserts, cfg, &mut NoopSink)
}

/// [`run_churn`] with a [`TraceSink`] observing the run: per-read
/// `QueryComplete` events with `Queue`/`Execute` spans and
/// `churn.{queue,exec,total}_cycles` records, `Shed` events at
/// admission, `CompactionPause` events when an epoch pauses the device,
/// and `churn.queue_depth` samples on the serving clock. The sink is
/// observe-only: the report is bit-identical to the unsunk run.
pub fn run_churn_with_sink<S: TraceSink>(
    index: &mut MutableIndex,
    layout: &mut LayoutArtifacts,
    queries: &[Vec<f32>],
    pending_inserts: &[Vec<f32>],
    cfg: &ChurnConfig,
    sink: &mut S,
) -> ChurnReport {
    assert!(
        !cfg.read_tenants.is_empty() || !cfg.update_tenants.is_empty(),
        "need at least one tenant"
    );
    let n_read = cfg.read_tenants.len();
    let n_tenants = n_read + cfg.update_tenants.len();

    // Merge the two arrival streams into one (cycle, tenant, seq) order.
    let mut items: Vec<Item> = Vec::new();
    if !cfg.read_tenants.is_empty() {
        assert!(!queries.is_empty(), "read tenants need a query pool");
        for a in generate_arrivals(
            &cfg.read_tenants,
            queries.len(),
            cfg.seed,
            cfg.mem_clock_mhz,
        ) {
            items.push(Item {
                cycle: a.cycle,
                tenant: a.tenant,
                seq: a.seq,
                kind: ItemKind::Read { query: a.query },
            });
        }
    }
    items.extend(generate_updates(
        &cfg.update_tenants,
        n_read,
        cfg.seed,
        cfg.mem_clock_mhz,
    ));
    items.sort_by_key(|i| (i.cycle, i.tenant, i.seq));

    let weight_of = |tenant: usize| -> u64 {
        if tenant < n_read {
            cfg.read_tenants[tenant].weight
        } else {
            cfg.update_tenants[tenant - n_read].weight
        }
    };

    let mut wfq = ansmet_serve::WfqState::new(n_tenants.max(1));
    let mut queues: Vec<VecDeque<Queued>> = vec![VecDeque::new(); n_tenants];
    let mut wheel = EventWheel::new(0);
    let mut mgr = EpochManager::new(cfg.epoch);
    wheel.schedule(cfg.epoch.interval_cycles, TOKEN_EPOCH);

    let mut report = ChurnReport {
        reads_served: 0,
        reads_shed: 0,
        inserts_applied: 0,
        deletes_applied: 0,
        updates_shed: 0,
        updates_noop: 0,
        et_mismatches: 0,
        lines_fetched: 0,
        lines_baseline: 0,
        conservative_fetches: 0,
        read_latency: LatencyHistogram::new(),
        update_latency: LatencyHistogram::new(),
        pause: LatencyHistogram::new(),
        epochs: Vec::new(),
        results_fingerprint: 0,
        tenants_served: Vec::new(),
        end_cycle: 0,
    };
    let mut served_per_tenant = vec![0u64; n_tenants];
    let mut scratch = SearchScratch::with_headroom(index.len(), pending_inserts.len().max(64));
    let mut insert_cursor = 0usize;

    let mut now = 0u64;
    let mut busy_until = 0u64;
    let mut epoch_pending = false;
    let mut next_arrival = 0usize;

    loop {
        // Admit everything that has arrived by `now` under the shared
        // depth limit, tagging admitted items with their WFQ finish tag.
        while next_arrival < items.len() && items[next_arrival].cycle <= now {
            let item = &items[next_arrival];
            let depth: usize = queues.iter().map(|q| q.len()).sum();
            if depth >= cfg.queue_depth_limit {
                match item.kind {
                    ItemKind::Read { .. } => report.reads_shed += 1,
                    ItemKind::Update { .. } => report.updates_shed += 1,
                }
                sink.event(now, EventKind::Shed { deadline: false });
            } else {
                let tag = wfq.admit_tag(item.tenant, weight_of(item.tenant));
                queues[item.tenant].push_back(Queued {
                    idx: next_arrival,
                    arrival: item.cycle,
                    tag,
                });
            }
            next_arrival += 1;
        }

        // Collect due wheel wakeups (epoch timer).
        while wheel.next_due().is_some_and(|c| c <= now) {
            if let Some(w) = wheel.pop_next() {
                if w.token == TOKEN_EPOCH {
                    epoch_pending = true;
                }
            }
        }

        if sink.enabled() {
            let depth: usize = queues.iter().map(|q| q.len()).sum();
            sink.sample(now, "churn.queue_depth", depth as u64);
        }

        let device_free = now >= busy_until;
        if device_free && epoch_pending {
            let er = mgr.run_epoch(index, layout);
            report.pause.record(er.pause_cycles);
            busy_until = now + er.pause_cycles;
            sink.event(
                now,
                EventKind::CompactionPause {
                    epoch: er.epoch.min(u32::MAX as u64) as u32,
                    cycles: er.pause_cycles.min(u32::MAX as u64) as u32,
                },
            );
            report.epochs.push(er);
            epoch_pending = false;
            wheel.schedule(now + cfg.epoch.interval_cycles, TOKEN_EPOCH);
            continue;
        }

        if device_free {
            let head = ansmet_serve::WfqState::next_tenant(
                queues
                    .iter()
                    .enumerate()
                    .filter_map(|(t, q)| q.front().map(|h| (t, h.tag))),
            );
            if let Some(t) = head {
                let q = queues[t].pop_front().expect("head tenant has an item");
                wfq.advance_to(q.tag);
                let item = items[q.idx].clone();
                let service = match item.kind {
                    ItemKind::Read { query } => {
                        let cycles = execute_read(
                            index,
                            layout,
                            &queries[query],
                            cfg.k,
                            cfg.ef,
                            &mut scratch,
                            &mut report,
                        );
                        report.reads_served += 1;
                        report.read_latency.record(now + cycles - q.arrival);
                        if sink.enabled() {
                            let completion = now + cycles;
                            sink.event(
                                completion,
                                EventKind::QueryComplete {
                                    query: query.min(u32::MAX as usize) as u32,
                                    tenant: t as u32,
                                },
                            );
                            if now > q.arrival {
                                sink.span(Phase::Queue, q.arrival, now);
                            }
                            sink.span(Phase::Execute, now, completion);
                            sink.record("churn.queue_cycles", now - q.arrival);
                            sink.record("churn.exec_cycles", cycles);
                            sink.record("churn.total_cycles", completion - q.arrival);
                        }
                        cycles
                    }
                    ItemKind::Update { op, draw } => {
                        let cycles = execute_update(
                            index,
                            op,
                            draw,
                            pending_inserts,
                            &mut insert_cursor,
                            cfg.k,
                            &mut report,
                        );
                        report.update_latency.record(now + cycles - q.arrival);
                        cycles
                    }
                };
                served_per_tenant[t] += 1;
                busy_until = now + service;
                continue;
            }
        }

        // Nothing runnable at `now`: jump to the next event, or stop
        // once the stream is drained and the device is idle.
        let drained =
            next_arrival >= items.len() && queues.iter().all(|q| q.is_empty()) && !epoch_pending;
        if drained && device_free {
            break;
        }
        let mut next = u64::MAX;
        if next_arrival < items.len() {
            next = next.min(items[next_arrival].cycle);
        }
        if !device_free {
            next = next.min(busy_until);
        }
        if let Some(c) = wheel.next_due() {
            // The epoch timer only matters while work remains; after the
            // drain it would keep the loop alive forever.
            if !drained {
                next = next.min(c);
            }
        }
        assert!(next > now, "event loop failed to advance");
        now = next;
    }

    // Final drain-time epoch: purge whatever the last interval left.
    let er = mgr.run_epoch(index, layout);
    report.pause.record(er.pause_cycles);
    report.end_cycle = now.max(busy_until) + er.pause_cycles;
    sink.event(
        now.max(busy_until),
        EventKind::CompactionPause {
            epoch: er.epoch.min(u32::MAX as u64) as u32,
            cycles: er.pause_cycles.min(u32::MAX as u64) as u32,
        },
    );
    report.epochs.push(er);

    report.tenants_served = cfg
        .read_tenants
        .iter()
        .map(|t| t.name.clone())
        .chain(cfg.update_tenants.iter().map(|t| t.name.clone()))
        .zip(served_per_tenant)
        .collect();
    report
}

/// Serve one read through both oracles; returns the charged cycles.
fn execute_read(
    index: &MutableIndex,
    layout: &LayoutArtifacts,
    query: &[f32],
    k: usize,
    ef: usize,
    scratch: &mut SearchScratch,
    report: &mut ChurnReport,
) -> u64 {
    // The engine classifies vectors against the *current* data; fresh
    // inserts it has never been re-validated for are routed around it by
    // the conservative flags.
    let engine = EtEngine::new(index.data(), layout.et_config());
    let mut et = FreshEtOracle::new(&engine, index.conservative_flags());
    let r_et = index.search_with(query, k, ef, &mut et, scratch);
    let mut exact = ExactOracle::new(index.data());
    let r_exact = index.search_with(query, k, ef, &mut exact, scratch);
    if r_et.ids() != r_exact.ids() {
        report.et_mismatches += 1;
    }
    report.lines_fetched += et.lines + et.backup_lines;
    report.lines_baseline += et.baseline_lines();
    report.conservative_fetches += et.conservative_fetches;
    let mut chain = Vec::with_capacity(8 + r_et.neighbors().len() * 8);
    chain.extend_from_slice(&report.results_fingerprint.to_le_bytes());
    for n in r_et.neighbors() {
        chain.extend_from_slice(&(n.id as u64).to_le_bytes());
    }
    report.results_fingerprint = fingerprint64(&chain);
    READ_BASE_CYCLES + (et.lines + et.backup_lines) * CYCLES_PER_LINE
}

/// Apply one update; returns the charged cycles.
fn execute_update(
    index: &mut MutableIndex,
    op: UpdateOp,
    draw: u64,
    pending_inserts: &[Vec<f32>],
    insert_cursor: &mut usize,
    k: usize,
    report: &mut ChurnReport,
) -> u64 {
    match op {
        UpdateOp::Insert => {
            if pending_inserts.is_empty() {
                report.updates_noop += 1;
                return DELETE_CYCLES; // bookkeeping-only cost
            }
            let v = &pending_inserts[*insert_cursor % pending_inserts.len()];
            *insert_cursor += 1;
            let id = index.insert(v);
            report.inserts_applied += 1;
            match index.hnsw() {
                Some(h) => INSERT_BASE_CYCLES + (h.level(id) as u64 + 1) * INSERT_LAYER_CYCLES,
                None => INSERT_BASE_CYCLES,
            }
        }
        UpdateOp::Delete => {
            // Keep enough live vectors for k-NN to stay meaningful.
            if index.live_len() <= k + 1 {
                report.updates_noop += 1;
                return DELETE_CYCLES;
            }
            let rank = (draw % index.live_len() as u64) as usize;
            let victim = (0..index.len())
                .filter(|&i| index.is_live(i))
                .nth(rank)
                .expect("rank is bounded by the live count");
            let applied = index.delete(victim);
            debug_assert!(applied, "victim was chosen among live ids");
            report.deletes_applied += 1;
            DELETE_CYCLES
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ansmet_index::HnswParams;
    use ansmet_serve::ArrivalProcess;
    use ansmet_vecdata::{Dataset, SynthSpec};

    fn setup(
        n: usize,
        held: usize,
    ) -> (MutableIndex, LayoutArtifacts, Vec<Vec<f32>>, Vec<Vec<f32>>) {
        let (data, queries) = SynthSpec::sift().scaled(n, 3).generate();
        let pending: Vec<Vec<f32>> = (n - held..n).map(|i| data.vector(i).to_vec()).collect();
        let base = Dataset::from_values(
            "t",
            data.dtype(),
            data.metric(),
            data.dim(),
            (0..n - held)
                .flat_map(|i| data.vector(i).to_vec())
                .collect(),
        );
        let idx = MutableIndex::build_hnsw(base, HnswParams::quick(), 33);
        let layout = LayoutArtifacts::plan(&idx, 0.01);
        (idx, layout, queries, pending)
    }

    fn config(reads: usize, ops: usize) -> ChurnConfig {
        ChurnConfig {
            seed: 0xC0FFEE,
            mem_clock_mhz: 2400,
            read_tenants: vec![TenantSpec {
                name: "interactive".into(),
                weight: 4,
                process: ArrivalProcess::Poisson { qps: 200_000.0 },
                slo_cycles: 1_000_000,
                queries: reads,
            }],
            update_tenants: vec![UpdateTenantSpec {
                name: "writer".into(),
                weight: 2,
                qps: 100_000.0,
                ops,
                delete_frac: 0.4,
            }],
            k: 5,
            ef: 40,
            queue_depth_limit: 64,
            epoch: EpochConfig {
                interval_cycles: 400_000,
                conservative_headroom: 0.05,
            },
        }
    }

    #[test]
    fn churn_run_is_deterministic_and_lossless() {
        let (mut idx, mut layout, queries, pending) = setup(400, 60);
        let cfg = config(40, 30);
        let a = run_churn(&mut idx, &mut layout, &queries, &pending, &cfg);
        assert_eq!(a.et_mismatches, 0, "ET must stay lossless under churn");
        assert_eq!(a.reads_served + a.reads_shed, 40);
        assert!(a.inserts_applied + a.deletes_applied > 0);
        assert!(!a.epochs.is_empty(), "the drain-time epoch always runs");
        assert!(a.end_cycle > 0);
        // Bit-identical rerun from identical initial state.
        let (mut idx2, mut layout2, queries2, pending2) = setup(400, 60);
        let b = run_churn(&mut idx2, &mut layout2, &queries2, &pending2, &cfg);
        assert_eq!(a.results_fingerprint, b.results_fingerprint);
        assert_eq!(a.reads_served, b.reads_served);
        assert_eq!(a.end_cycle, b.end_cycle);
        assert_eq!(idx.generation(), idx2.generation());
    }

    #[test]
    fn shed_kicks_in_under_a_tiny_depth_limit() {
        let (mut idx, mut layout, queries, pending) = setup(300, 30);
        let mut cfg = config(60, 20);
        cfg.queue_depth_limit = 1;
        let r = run_churn(&mut idx, &mut layout, &queries, &pending, &cfg);
        assert!(
            r.reads_shed + r.updates_shed > 0,
            "depth limit 1 must shed under this load"
        );
    }

    #[test]
    fn writer_weight_shapes_service_share() {
        let (mut idx, mut layout, queries, pending) = setup(300, 80);
        let mut cfg = config(50, 50);
        cfg.update_tenants[0].weight = 8;
        let r = run_churn(&mut idx, &mut layout, &queries, &pending, &cfg);
        let writer_served = r
            .tenants_served
            .iter()
            .find(|(n, _)| n == "writer")
            .map(|&(_, c)| c)
            .expect("writer tenant reported");
        assert!(writer_served > 0);
        assert!(r.update_latency.count() == writer_served);
    }

    #[test]
    fn sink_is_observe_only_and_the_ops_plane_assembles_the_run() {
        let (mut idx, mut layout, queries, pending) = setup(300, 40);
        let cfg = config(40, 30);
        let a = run_churn(&mut idx, &mut layout, &queries, &pending, &cfg);
        let (mut idx2, mut layout2, queries2, pending2) = setup(300, 40);
        let mut plane = ansmet_obs::OpsPlane::new(ansmet_obs::OpsConfig::default());
        let b = run_churn_with_sink(
            &mut idx2,
            &mut layout2,
            &queries2,
            &pending2,
            &cfg,
            &mut plane,
        );
        // Observe-only: the instrumented run is bit-identical.
        assert_eq!(a.results_fingerprint, b.results_fingerprint);
        assert_eq!(a.end_cycle, b.end_cycle);
        assert_eq!(a.reads_served, b.reads_served);
        // The plane saw every served read and every epoch pause.
        let report = plane.finish();
        assert_eq!(report.completed, b.reads_served);
        assert_eq!(
            report.series.counter_total("ops.compaction_pauses"),
            b.epochs.len() as u64
        );
    }

    #[test]
    fn epochs_fire_on_the_interval() {
        let (mut idx, mut layout, queries, pending) = setup(300, 40);
        let mut cfg = config(60, 40);
        cfg.epoch.interval_cycles = 100_000;
        let r = run_churn(&mut idx, &mut layout, &queries, &pending, &cfg);
        assert!(
            r.epochs.len() >= 2,
            "short interval must fire epochs mid-run (got {})",
            r.epochs.len()
        );
        // Epoch numbering is contiguous from 1.
        for (i, e) in r.epochs.iter().enumerate() {
            assert_eq!(e.epoch, i as u64 + 1);
        }
    }
}
