//! The `freshness` experiment: recall under churn vs a static rebuild,
//! update throughput, compaction pause tails, and snapshot round-trip
//! cost — rendered as text and as the `BENCH_freshness.json` artifact.
//!
//! The run streams a held-out 20 % of the dataset into a live HNSW index
//! while deletes tombstone seeded victims, with reads and updates
//! contending through the shared WFQ admission path and epochs firing on
//! the event wheel. After the churn drains:
//!
//! * **Recall under churn** — exact-oracle recall of the mutated index
//!   against brute-force ground truth over its live set, compared with a
//!   *freshly rebuilt* index over the same live vectors (the static
//!   control). The acceptance bar is `churn >= static - epsilon`.
//! * **Snapshot round trip** — the index + layout + epoch metadata are
//!   saved, re-saved (byte-stability), re-loaded (search equivalence),
//!   and recovered from a simulated torn write via the fallback path;
//!   save/restore cost is modeled in cycles from the blob size.
//!
//! Everything is seeded and integer-cycle, so the artifact is
//! bit-identical across reruns and host thread counts.

use std::fmt::Write as _;

use ansmet_index::HnswParams;
use ansmet_obs::{json_f64, json_string};
use ansmet_serve::{ArrivalProcess, TenantSpec};
use ansmet_sim::experiment::Scale;
use ansmet_sim::SystemConfig;
use ansmet_vecdata::{Dataset, SynthSpec};

use crate::epoch::EpochConfig;
use crate::mutable::MutableIndex;
use crate::revalidate::LayoutArtifacts;
use crate::serving::{run_churn, ChurnConfig, ChurnReport, UpdateTenantSpec};
use crate::snapshot::{load, load_with_fallback, save, EpochMeta};

/// Modeled snapshot streaming cost per KiB (save and restore alike).
pub const SNAPSHOT_CYCLES_PER_KIB: u64 = 2_048;

/// Recall floor: churn recall may trail the static rebuild by this much.
pub const RECALL_EPSILON: f64 = 0.05;

/// Neighbors per read.
const K: usize = 10;
/// Beam width per read.
const EF: usize = 64;
/// Level-sampling seed shared by the live index and the static rebuild.
const LEVEL_SEED: u64 = 0xF5E5;

fn churn_config(scale: Scale, mem_clock_mhz: u64) -> ChurnConfig {
    let (reads, ops) = match scale {
        Scale::Quick => (80, 60),
        Scale::Full => (400, 300),
    };
    ChurnConfig {
        seed: 0xF8E5,
        mem_clock_mhz,
        read_tenants: vec![
            TenantSpec {
                name: "interactive".into(),
                weight: 4,
                process: ArrivalProcess::Poisson { qps: 150_000.0 },
                slo_cycles: 1_000_000,
                queries: reads,
            },
            TenantSpec {
                name: "bulk".into(),
                weight: 1,
                process: ArrivalProcess::Bursty {
                    base_qps: 20_000.0,
                    burst_qps: 120_000.0,
                    period_cycles: 2_000_000,
                    burst_frac: 0.2,
                },
                slo_cycles: 4_000_000,
                queries: reads / 2,
            },
        ],
        update_tenants: vec![UpdateTenantSpec {
            name: "writer".into(),
            weight: 2,
            qps: 50_000.0,
            ops,
            delete_frac: 0.35,
        }],
        k: K,
        ef: EF,
        queue_depth_limit: 128,
        epoch: EpochConfig {
            interval_cycles: 600_000,
            conservative_headroom: 0.02,
        },
    }
}

/// Mean recall@k of `results` (global ids, one row per query) against
/// brute-force ground truth rows.
fn mean_recall(results: &[Vec<usize>], truth: &[Vec<usize>]) -> f64 {
    assert_eq!(results.len(), truth.len());
    let mut acc = 0.0;
    for (got, want) in results.iter().zip(truth) {
        let hit = got.iter().filter(|id| want.contains(id)).count();
        acc += hit as f64 / want.len().max(1) as f64;
    }
    acc / results.len().max(1) as f64
}

struct RecallComparison {
    churn: f64,
    static_rebuild: f64,
}

/// Recall of the mutated index vs a fresh rebuild over its live set,
/// both against the same brute-force ground truth.
fn compare_recall(index: &MutableIndex, queries: &[Vec<f32>]) -> RecallComparison {
    let truth: Vec<Vec<usize>> = queries
        .iter()
        .map(|q| index.live_ground_truth(q, K))
        .collect();
    let churned: Vec<Vec<usize>> = queries
        .iter()
        .map(|q| index.search_exact(q, K, EF).ids())
        .collect();

    // Static control: rebuild from scratch over exactly the live
    // vectors, with the same build params and level seed, then map the
    // rebuild's local ids back to global ids.
    let live = index.live_ids();
    let data = index.data();
    let compacted = Dataset::from_values(
        "rebuild",
        data.dtype(),
        data.metric(),
        data.dim(),
        live.iter()
            .flat_map(|&id| data.vector(id).to_vec())
            .collect(),
    );
    let rebuilt = MutableIndex::build_hnsw(compacted, build_params(), LEVEL_SEED);
    let statics: Vec<Vec<usize>> = queries
        .iter()
        .map(|q| {
            rebuilt
                .search_exact(q, K, EF)
                .ids()
                .into_iter()
                .map(|local| live[local])
                .collect()
        })
        .collect();

    RecallComparison {
        churn: mean_recall(&churned, &truth),
        static_rebuild: mean_recall(&statics, &truth),
    }
}

fn build_params() -> HnswParams {
    HnswParams::quick()
}

struct SnapshotProbe {
    bytes: usize,
    byte_stable: bool,
    round_trip_ok: bool,
    torn_recovered: bool,
    save_cycles: u64,
    restore_cycles: u64,
}

/// Save/load/recover the mutated index and verify every invariant.
fn probe_snapshot(
    index: &MutableIndex,
    layout: &LayoutArtifacts,
    report: &ChurnReport,
    probe_query: &[f32],
) -> SnapshotProbe {
    let meta = EpochMeta {
        epoch: report.epochs.len() as u64,
        last_epoch_cycle: report.end_cycle,
    };
    let blob = save(index, layout, &meta);
    let byte_stable = blob == save(index, layout, &meta);

    let restored = load(&blob).expect("clean snapshot must load");
    let round_trip_ok = restored.meta == meta
        && restored.index.live_len() == index.live_len()
        && restored.index.generation() == index.generation()
        && restored.index.search_exact(probe_query, K, EF).ids()
            == index.search_exact(probe_query, K, EF).ids();

    // Torn-write drill: chop the tail off a copy, then recover through
    // the fallback path.
    let torn = ansmet_faults::snapshot::torn_tail(&blob, blob.len() / 2);
    let torn_recovered = match load_with_fallback(&torn, &blob) {
        Ok((snap, used_fallback)) => used_fallback && snap.index.live_len() == index.live_len(),
        Err(_) => false,
    };

    let stream_cycles = (blob.len() as u64).div_ceil(1024) * SNAPSHOT_CYCLES_PER_KIB;
    SnapshotProbe {
        bytes: blob.len(),
        byte_stable,
        round_trip_ok,
        torn_recovered,
        save_cycles: stream_cycles,
        restore_cycles: stream_cycles,
    }
}

/// Run the freshness experiment at `scale`; returns `(text, json)` where
/// `json` is the `BENCH_freshness.json` artifact body.
pub fn freshness_experiment(scale: Scale) -> (String, String) {
    let spec = scale.spec(SynthSpec::sift());
    let (full_data, queries) = spec.generate();
    let n = full_data.len();
    let held = n / 5;
    let base_n = n - held;

    // The last 20 % of the dataset is held out and streamed in by the
    // writer tenant's insert ops.
    let base = Dataset::from_values(
        full_data.name(),
        full_data.dtype(),
        full_data.metric(),
        full_data.dim(),
        (0..base_n)
            .flat_map(|i| full_data.vector(i).to_vec())
            .collect(),
    );
    let pending: Vec<Vec<f32>> = (base_n..n).map(|i| full_data.vector(i).to_vec()).collect();

    let mut index = MutableIndex::build_hnsw(base, build_params(), LEVEL_SEED);
    let mut layout = LayoutArtifacts::plan(&index, 0.01);

    let sys = SystemConfig::default();
    let cfg = churn_config(scale, sys.dram.clock_mhz);
    let report = run_churn(&mut index, &mut layout, &queries, &pending, &cfg);

    let recall = compare_recall(&index, &queries);
    let within = recall.churn >= recall.static_rebuild - RECALL_EPSILON;
    let snap = probe_snapshot(&index, &layout, &report, &queries[0]);
    let update_tput = report.update_throughput_per_sec(cfg.mem_clock_mhz);
    let line_savings = 1.0 - report.lines_fetched as f64 / report.lines_baseline.max(1) as f64;

    let mut text = String::new();
    let _ = writeln!(
        text,
        "freshness — {} ({} base vectors + {} held out, k={K}, ef={EF}, epoch every {} cycles)",
        full_data.name(),
        base_n,
        held,
        cfg.epoch.interval_cycles,
    );
    let _ = writeln!(text, "   {report}");
    let _ = writeln!(
        text,
        "   update throughput: {:.0} ops/s over {} cycles",
        update_tput, report.end_cycle,
    );
    let _ = writeln!(
        text,
        "   ET lines under churn: {} vs {} baseline ({:.1}% saved)",
        report.lines_fetched,
        report.lines_baseline,
        line_savings * 100.0,
    );
    let _ = writeln!(
        text,
        "   recall@{K}: churn {:.4} vs static rebuild {:.4} (epsilon {RECALL_EPSILON}): {}",
        recall.churn,
        recall.static_rebuild,
        if within { "within bound" } else { "REGRESSED" },
    );
    let _ = writeln!(
        text,
        "   snapshot: {} bytes, save/restore {} cycles each, byte-stable: {}, round-trip: {}, torn-write recovery: {}",
        snap.bytes,
        snap.save_cycles,
        if snap.byte_stable { "yes" } else { "NO" },
        if snap.round_trip_ok { "ok" } else { "BROKEN" },
        if snap.torn_recovered { "ok" } else { "BROKEN" },
    );

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"experiment\": \"freshness\",");
    let _ = writeln!(
        json,
        "  \"scale\": \"{}\",",
        match scale {
            Scale::Quick => "quick",
            Scale::Full => "full",
        }
    );
    let _ = writeln!(json, "  \"dataset\": {},", json_string(full_data.name()));
    let _ = writeln!(
        json,
        "  \"config\": {{\"seed\": {}, \"mem_clock_mhz\": {}, \"k\": {K}, \"ef\": {EF}, \
         \"base_vectors\": {base_n}, \"held_out\": {held}, \"queue_depth_limit\": {}, \
         \"epoch_interval_cycles\": {}, \"conservative_headroom\": {}}},",
        cfg.seed,
        cfg.mem_clock_mhz,
        cfg.queue_depth_limit,
        cfg.epoch.interval_cycles,
        json_f64(cfg.epoch.conservative_headroom),
    );
    let _ = writeln!(
        json,
        "  \"reads\": {{\"served\": {}, \"shed\": {}, \"latency_p50_cycles\": {}, \
         \"latency_p99_cycles\": {}, \"lines_fetched\": {}, \"lines_baseline\": {}, \
         \"line_savings_frac\": {}, \"conservative_fetches\": {}, \"et_mismatches\": {}}},",
        report.reads_served,
        report.reads_shed,
        report.read_latency.quantile(0.50),
        report.read_latency.quantile(0.99),
        report.lines_fetched,
        report.lines_baseline,
        json_f64(line_savings),
        report.conservative_fetches,
        report.et_mismatches,
    );
    let _ = writeln!(
        json,
        "  \"updates\": {{\"inserts_applied\": {}, \"deletes_applied\": {}, \"shed\": {}, \
         \"noop\": {}, \"latency_p99_cycles\": {}, \"throughput_per_sec\": {}}},",
        report.inserts_applied,
        report.deletes_applied,
        report.updates_shed,
        report.updates_noop,
        report.update_latency.quantile(0.99),
        json_f64(update_tput),
    );
    let _ = writeln!(
        json,
        "  \"epochs\": {{\"count\": {}, \"replans\": {}, \"purged_total\": {}, \
         \"replicas_shipped\": {}, \"pause_p50_cycles\": {}, \"pause_p99_cycles\": {}, \
         \"pause_max_cycles\": {}, \"runs\": [{}]}},",
        report.epochs.len(),
        report.replans(),
        report.total_purged(),
        report.replicas_shipped(),
        report.pause.quantile(0.50),
        report.pause.quantile(0.99),
        report.pause.max(),
        report
            .epochs
            .iter()
            .map(|e| {
                format!(
                    "{{\"epoch\": {}, \"purged\": {}, \"moved\": {}, \"admitted\": {}, \
                     \"kept_conservative\": {}, \"replanned\": {}, \"pause_cycles\": {}}}",
                    e.epoch,
                    e.compacted.purged,
                    e.compacted.moved,
                    e.revalidated.admitted,
                    e.revalidated.kept_conservative,
                    e.revalidated.replanned,
                    e.pause_cycles,
                )
            })
            .collect::<Vec<_>>()
            .join(", "),
    );
    let _ = writeln!(
        json,
        "  \"recall\": {{\"k\": {K}, \"churn\": {}, \"static_rebuild\": {}, \
         \"epsilon\": {}, \"within_epsilon\": {within}}},",
        json_f64(recall.churn),
        json_f64(recall.static_rebuild),
        json_f64(RECALL_EPSILON),
    );
    let _ = writeln!(
        json,
        "  \"snapshot\": {{\"bytes\": {}, \"byte_stable\": {}, \"round_trip_ok\": {}, \
         \"torn_write_recovered\": {}, \"save_cycles\": {}, \"restore_cycles\": {}}},",
        snap.bytes,
        snap.byte_stable,
        snap.round_trip_ok,
        snap.torn_recovered,
        snap.save_cycles,
        snap.restore_cycles,
    );
    let _ = writeln!(
        json,
        "  \"results_fingerprint\": {},",
        json_string(&format!("{:016x}", report.results_fingerprint)),
    );
    let _ = writeln!(json, "  \"end_cycle\": {}", report.end_cycle);
    json.push_str("}\n");

    (text, json)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_experiment_holds_its_invariants() {
        let (t, j) = freshness_experiment(Scale::Quick);
        assert!(t.contains("within bound"), "recall regressed:\n{t}");
        assert!(t.contains("torn-write recovery: ok"), "{t}");
        assert!(t.contains("round-trip: ok"), "{t}");
        assert!(j.contains("\"experiment\": \"freshness\""));
        assert!(j.contains("\"et_mismatches\": 0"), "{j}");
        assert!(j.contains("\"within_epsilon\": true"), "{j}");
        assert!(j.contains("\"byte_stable\": true"), "{j}");
        assert!(j.contains("\"torn_write_recovered\": true"), "{j}");
    }

    #[test]
    fn quick_experiment_is_bit_identical_across_reruns() {
        let (t1, j1) = freshness_experiment(Scale::Quick);
        let (t2, j2) = freshness_experiment(Scale::Quick);
        assert_eq!(t1, t2, "text report must be bit-identical");
        assert_eq!(j1, j2, "json artifact must be bit-identical");
    }
}
