//! Checksummed, versioned epoch snapshots: dataset + index + layout
//! plan + epoch metadata in one self-validating byte buffer.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! offset 0   u32  magic  "ANSF"
//! offset 4   u16  format version (currently 1)
//! offset 6   u16  reserved (0)
//! offset 8   u64  total snapshot length, checksum included
//! offset 16  ...  sections (dataset, backend, mutation state, layout,
//!                 epoch metadata)
//! tail       u64  FNV-1a checksum over everything before it
//! ```
//!
//! The explicit length makes torn writes (a crash mid-`write`) a
//! *typed* failure — [`SnapshotError::Torn`] — distinct from bit rot
//! ([`SnapshotError::ChecksumMismatch`]), and [`load_with_fallback`]
//! turns both into recovery-on-load from the previous epoch's snapshot.
//! The `ansmet-faults` snapshot injector (`flip_byte`, `torn_tail`)
//! exercises exactly these paths in tests.
//!
//! Restore is bit-exact: the dataset is rebuilt from raw storage words
//! ([`Dataset::from_raw`]), the index from its structural parts, and the
//! streaming level RNG is replayed to its saved position — searches and
//! subsequent inserts on a restored index are byte-identical to the
//! original's.

use ansmet_core::{FetchSchedule, PrefixSpec};
use ansmet_index::{Hnsw, HnswParams, Ivf};
use ansmet_ndp::ReplicaSet;
use ansmet_obs::fingerprint64;
use ansmet_vecdata::{Dataset, ElemType, Metric};

use crate::mutable::{ListDrift, MutableIndex};
use crate::revalidate::LayoutArtifacts;

const MAGIC: u32 = u32::from_le_bytes(*b"ANSF");
const VERSION: u16 = 1;
const HEADER_LEN: usize = 16;
const CHECKSUM_LEN: usize = 8;

/// Why a snapshot failed to load.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The buffer ends before the named section is complete.
    Truncated {
        /// Which part of the format was being read.
        section: &'static str,
    },
    /// The first four bytes are not the snapshot magic.
    BadMagic {
        /// The bytes found instead.
        found: u32,
    },
    /// A format version this build cannot read.
    UnsupportedVersion {
        /// The version found in the header.
        found: u16,
    },
    /// Torn write: the header promises more bytes than are present.
    Torn {
        /// Length the header promises.
        expected: u64,
        /// Bytes actually present.
        actual: u64,
    },
    /// The trailing checksum disagrees with the content.
    ChecksumMismatch {
        /// Checksum stored in the snapshot.
        expected: u64,
        /// Checksum recomputed over the content.
        actual: u64,
    },
    /// Structurally invalid content (bad enum code, shape mismatch).
    Malformed {
        /// What was wrong.
        what: String,
    },
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Truncated { section } => {
                write!(f, "snapshot truncated while reading {section}")
            }
            SnapshotError::BadMagic { found } => {
                write!(f, "not a snapshot: bad magic {found:#010x}")
            }
            SnapshotError::UnsupportedVersion { found } => {
                write!(
                    f,
                    "unsupported snapshot version {found} (this build reads {VERSION})"
                )
            }
            SnapshotError::Torn { expected, actual } => {
                write!(
                    f,
                    "torn snapshot: header promises {expected} bytes, found {actual}"
                )
            }
            SnapshotError::ChecksumMismatch { expected, actual } => {
                write!(
                    f,
                    "snapshot checksum mismatch: stored {expected:#018x}, computed {actual:#018x}"
                )
            }
            SnapshotError::Malformed { what } => write!(f, "malformed snapshot: {what}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Epoch bookkeeping carried alongside the index in a snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpochMeta {
    /// Epochs completed when the snapshot was taken.
    pub epoch: u64,
    /// Serving-clock cycle of the last completed epoch.
    pub last_epoch_cycle: u64,
}

/// A fully restored snapshot.
#[derive(Debug)]
pub struct Snapshot {
    /// The restored mutable index (dataset, backend, tombstones, RNG).
    pub index: MutableIndex,
    /// The restored layout plan.
    pub layout: LayoutArtifacts,
    /// Epoch bookkeeping.
    pub meta: EpochMeta,
}

/// Serialize `index` + `layout` + `meta` into one checksummed buffer.
///
/// # Panics
///
/// Panics if the index holds more than `u32::MAX` vectors (ids are
/// stored as `u32`).
pub fn save(index: &MutableIndex, layout: &LayoutArtifacts, meta: &EpochMeta) -> Vec<u8> {
    assert!(
        index.len() < u32::MAX as usize,
        "snapshot ids are stored as u32"
    );
    let mut w = Writer::new();
    write_dataset(&mut w, index.data());
    match (index.hnsw(), index.ivf()) {
        (Some(h), None) => {
            w.u8(0);
            write_hnsw(&mut w, h);
        }
        (None, Some(v)) => {
            w.u8(1);
            write_ivf(&mut w, v);
        }
        _ => unreachable!("MutableIndex always has exactly one backend"),
    }
    w.bools(&index.tombstones);
    w.bools(&index.purged);
    w.bools(&index.conservative);
    w.u64(index.generation);
    w.u64(index.level_seed);
    w.u64(index.levels_drawn);
    w.u64(index.inserts);
    w.u64(index.deletes);
    w.u32(index.drift.len() as u32);
    for d in &index.drift {
        w.u64(d.appends);
        w.f64(d.dist_sum);
    }
    write_layout(&mut w, layout);
    w.u64(meta.epoch);
    w.u64(meta.last_epoch_cycle);
    w.finish()
}

/// Validate and parse one snapshot buffer.
pub fn load(bytes: &[u8]) -> Result<Snapshot, SnapshotError> {
    if bytes.len() < HEADER_LEN {
        return Err(SnapshotError::Truncated { section: "header" });
    }
    let magic = u32::from_le_bytes(bytes[0..4].try_into().expect("sliced 4 bytes"));
    if magic != MAGIC {
        return Err(SnapshotError::BadMagic { found: magic });
    }
    let version = u16::from_le_bytes(bytes[4..6].try_into().expect("sliced 2 bytes"));
    if version != VERSION {
        return Err(SnapshotError::UnsupportedVersion { found: version });
    }
    let total = u64::from_le_bytes(bytes[8..16].try_into().expect("sliced 8 bytes"));
    if (bytes.len() as u64) < total {
        return Err(SnapshotError::Torn {
            expected: total,
            actual: bytes.len() as u64,
        });
    }
    if (total as usize) < HEADER_LEN + CHECKSUM_LEN {
        return Err(SnapshotError::Malformed {
            what: format!("impossible total length {total}"),
        });
    }
    let total = total as usize;
    let body_end = total - CHECKSUM_LEN;
    let stored = u64::from_le_bytes(bytes[body_end..total].try_into().expect("sliced 8 bytes"));
    let computed = fingerprint64(&bytes[..body_end]);
    if stored != computed {
        return Err(SnapshotError::ChecksumMismatch {
            expected: stored,
            actual: computed,
        });
    }
    let mut r = Reader {
        buf: &bytes[HEADER_LEN..body_end],
        pos: 0,
    };
    let data = read_dataset(&mut r)?;
    let backend = r.u8("backend tag")?;
    let (hnsw, ivf) = match backend {
        0 => (Some(read_hnsw(&mut r)?), None),
        1 => (None, Some(read_ivf(&mut r, data.dim())?)),
        other => {
            return Err(SnapshotError::Malformed {
                what: format!("unknown backend tag {other}"),
            })
        }
    };
    let n = data.len();
    let tombstones = r.bools(n, "tombstones")?;
    let purged = r.bools(n, "purge flags")?;
    let conservative = r.bools(n, "conservative flags")?;
    let generation = r.u64("generation")?;
    let level_seed = r.u64("level seed")?;
    let levels_drawn = r.u64("levels drawn")?;
    let inserts = r.u64("insert count")?;
    let deletes = r.u64("delete count")?;
    let n_drift = r.u32("drift count")? as usize;
    let mut drift = Vec::with_capacity(n_drift);
    for _ in 0..n_drift {
        drift.push(ListDrift {
            appends: r.u64("drift appends")?,
            dist_sum: r.f64("drift distance")?,
        });
    }
    let layout = read_layout(&mut r)?;
    let meta = EpochMeta {
        epoch: r.u64("epoch count")?,
        last_epoch_cycle: r.u64("last epoch cycle")?,
    };
    if r.pos != r.buf.len() {
        return Err(SnapshotError::Malformed {
            what: format!(
                "{} trailing bytes after the last section",
                r.buf.len() - r.pos
            ),
        });
    }
    let index = MutableIndex::restore(
        data,
        hnsw,
        ivf,
        tombstones,
        purged,
        conservative,
        generation,
        level_seed,
        levels_drawn,
        inserts,
        deletes,
        drift,
    );
    Ok(Snapshot {
        index,
        layout,
        meta,
    })
}

/// Load `primary`, recovering from `fallback` (the previous epoch's
/// snapshot) when the primary is torn or corrupt. Returns the snapshot
/// and whether the fallback was used. When both fail, the *primary*'s
/// error is returned.
pub fn load_with_fallback(
    primary: &[u8],
    fallback: &[u8],
) -> Result<(Snapshot, bool), SnapshotError> {
    match load(primary) {
        Ok(s) => Ok((s, false)),
        Err(primary_err) => match load(fallback) {
            Ok(s) => Ok((s, true)),
            Err(_) => Err(primary_err),
        },
    }
}

// ---- element serializers ------------------------------------------------

fn dtype_code(dtype: ElemType) -> u8 {
    match dtype {
        ElemType::U8 => 0,
        ElemType::I8 => 1,
        ElemType::F32 => 2,
        ElemType::F16 => 3,
        ElemType::Bf16 => 4,
    }
}

fn dtype_from(code: u8) -> Result<ElemType, SnapshotError> {
    Ok(match code {
        0 => ElemType::U8,
        1 => ElemType::I8,
        2 => ElemType::F32,
        3 => ElemType::F16,
        4 => ElemType::Bf16,
        other => {
            return Err(SnapshotError::Malformed {
                what: format!("unknown dtype code {other}"),
            })
        }
    })
}

fn metric_code(metric: Metric) -> u8 {
    match metric {
        Metric::L2 => 0,
        Metric::Ip => 1,
        // Cosine folds to IP before a dataset is ever constructed.
        Metric::Cosine => unreachable!("datasets store the folded search metric"),
    }
}

fn metric_from(code: u8) -> Result<Metric, SnapshotError> {
    Ok(match code {
        0 => Metric::L2,
        1 => Metric::Ip,
        other => {
            return Err(SnapshotError::Malformed {
                what: format!("unknown metric code {other}"),
            })
        }
    })
}

fn write_dataset(w: &mut Writer, data: &Dataset) {
    w.str(data.name());
    w.u8(dtype_code(data.dtype()));
    w.u8(metric_code(data.metric()));
    w.u32(data.dim() as u32);
    w.u32(data.len() as u32);
    for i in 0..data.len() {
        for &word in data.raw_vector(i) {
            w.u32(word);
        }
    }
}

fn read_dataset(r: &mut Reader) -> Result<Dataset, SnapshotError> {
    let name = r.str("dataset name")?;
    let dtype = dtype_from(r.u8("dataset dtype")?)?;
    let metric = metric_from(r.u8("dataset metric")?)?;
    let dim = r.u32("dataset dim")? as usize;
    let n = r.u32("dataset length")? as usize;
    if dim == 0 {
        return Err(SnapshotError::Malformed {
            what: "zero-dimensional dataset".into(),
        });
    }
    let mut raw = Vec::with_capacity(n * dim);
    for _ in 0..n * dim {
        raw.push(r.u32("dataset raw words")?);
    }
    Ok(Dataset::from_raw(name, dtype, metric, dim, raw))
}

fn write_hnsw(w: &mut Writer, h: &Hnsw) {
    let p = h.params();
    w.u32(p.m as u32);
    w.u32(p.m_max0 as u32);
    w.u32(p.ef_construction as u32);
    w.u64(p.seed);
    match p.level_mult {
        Some(m) => {
            w.u8(1);
            w.f64(m);
        }
        None => w.u8(0),
    }
    w.u32(h.entry_point() as u32);
    w.u32(h.layer_count() as u32);
    w.u32(h.len() as u32);
    for &level in h.levels() {
        w.u32(level as u32);
    }
    for layer in 0..h.layer_count() {
        for node in 0..h.len() {
            let links = h.neighbors(layer, node);
            w.u32(links.len() as u32);
            for &nb in links {
                w.u32(nb as u32);
            }
        }
    }
}

fn read_hnsw(r: &mut Reader) -> Result<Hnsw, SnapshotError> {
    let m = r.u32("hnsw m")? as usize;
    let m_max0 = r.u32("hnsw m_max0")? as usize;
    let ef_construction = r.u32("hnsw ef_construction")? as usize;
    let seed = r.u64("hnsw seed")?;
    let level_mult = if r.u8("hnsw level_mult flag")? != 0 {
        Some(r.f64("hnsw level_mult")?)
    } else {
        None
    };
    let params = HnswParams {
        m,
        m_max0,
        ef_construction,
        seed,
        level_mult,
    };
    let entry = r.u32("hnsw entry")? as usize;
    let layers = r.u32("hnsw layer count")? as usize;
    let n = r.u32("hnsw node count")? as usize;
    let mut levels = Vec::with_capacity(n);
    for _ in 0..n {
        levels.push(r.u32("hnsw levels")? as usize);
    }
    let mut links = Vec::with_capacity(layers);
    for _ in 0..layers {
        let mut layer = Vec::with_capacity(n);
        for _ in 0..n {
            let deg = r.u32("hnsw degree")? as usize;
            let mut nbs = Vec::with_capacity(deg);
            for _ in 0..deg {
                let nb = r.u32("hnsw link")? as usize;
                if nb >= n {
                    return Err(SnapshotError::Malformed {
                        what: format!("hnsw link {nb} beyond {n} nodes"),
                    });
                }
                nbs.push(nb);
            }
            layer.push(nbs);
        }
        links.push(layer);
    }
    if entry >= n || layers == 0 {
        return Err(SnapshotError::Malformed {
            what: "hnsw entry/layer shape invalid".into(),
        });
    }
    Ok(Hnsw::from_parts(links, levels, entry, params))
}

fn write_ivf(w: &mut Writer, v: &Ivf) {
    w.u8(metric_code(v.metric()));
    w.u32(v.n_lists() as u32);
    for c in v.centroids() {
        for &x in c {
            w.u32(x.to_bits());
        }
    }
    for c in 0..v.n_lists() {
        let list = v.list(c);
        w.u32(list.len() as u32);
        for &id in list {
            w.u32(id as u32);
        }
    }
}

fn read_ivf(r: &mut Reader, dim: usize) -> Result<Ivf, SnapshotError> {
    let metric = metric_from(r.u8("ivf metric")?)?;
    let k = r.u32("ivf list count")? as usize;
    let mut centroids = Vec::with_capacity(k);
    for _ in 0..k {
        let mut c = Vec::with_capacity(dim);
        for _ in 0..dim {
            c.push(f32::from_bits(r.u32("ivf centroid")?));
        }
        centroids.push(c);
    }
    let mut lists = Vec::with_capacity(k);
    for _ in 0..k {
        let len = r.u32("ivf list length")? as usize;
        let mut list = Vec::with_capacity(len);
        for _ in 0..len {
            list.push(r.u32("ivf member")? as usize);
        }
        lists.push(list);
    }
    Ok(Ivf::from_parts(centroids, lists, metric))
}

fn write_layout(w: &mut Writer, layout: &LayoutArtifacts) {
    w.u8(dtype_code(layout.schedule.dtype()));
    w.u32(layout.schedule.prefix_len());
    w.u32(layout.schedule.steps().len() as u32);
    for &s in layout.schedule.steps() {
        w.u32(s);
    }
    w.u8(dtype_code(layout.prefix.dtype()));
    w.u32(layout.prefix.len());
    w.u32(layout.prefix.dim_prefixes().len() as u32);
    for &p in layout.prefix.dim_prefixes() {
        w.u32(p);
    }
    let replicas = layout.replicas.sorted_ids();
    w.u32(replicas.len() as u32);
    for id in replicas {
        w.u32(id as u32);
    }
    w.f64(layout.outlier_budget_frac);
}

fn read_layout(r: &mut Reader) -> Result<LayoutArtifacts, SnapshotError> {
    let sched_dtype = dtype_from(r.u8("schedule dtype")?)?;
    let prefix_len = r.u32("schedule prefix length")?;
    let n_steps = r.u32("schedule step count")? as usize;
    let mut steps = Vec::with_capacity(n_steps);
    for _ in 0..n_steps {
        steps.push(r.u32("schedule steps")?);
    }
    let schedule = FetchSchedule::from_steps(sched_dtype, prefix_len, steps);
    let prefix_dtype = dtype_from(r.u8("prefix dtype")?)?;
    let plen = r.u32("prefix length")?;
    let n_dims = r.u32("prefix dim count")? as usize;
    let mut dim_prefixes = Vec::with_capacity(n_dims);
    for _ in 0..n_dims {
        dim_prefixes.push(r.u32("prefix values")?);
    }
    let prefix = PrefixSpec::from_parts(prefix_dtype, plen, dim_prefixes);
    let n_replicas = r.u32("replica count")? as usize;
    let mut replicas = Vec::with_capacity(n_replicas);
    for _ in 0..n_replicas {
        replicas.push(r.u32("replica ids")? as usize);
    }
    let outlier_budget_frac = r.f64("outlier budget")?;
    Ok(LayoutArtifacts {
        schedule,
        prefix,
        replicas: ReplicaSet::new(replicas),
        outlier_budget_frac,
    })
}

// ---- byte-level writer/reader -------------------------------------------

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn new() -> Self {
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC.to_le_bytes());
        buf.extend_from_slice(&VERSION.to_le_bytes());
        buf.extend_from_slice(&0u16.to_le_bytes());
        buf.extend_from_slice(&0u64.to_le_bytes()); // total length, patched in finish()
        Writer { buf }
    }

    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    fn bools(&mut self, flags: &[bool]) {
        self.u32(flags.len() as u32);
        self.buf.extend(flags.iter().map(|&b| b as u8));
    }

    fn finish(mut self) -> Vec<u8> {
        let total = (self.buf.len() + CHECKSUM_LEN) as u64;
        self.buf[8..16].copy_from_slice(&total.to_le_bytes());
        let checksum = fingerprint64(&self.buf);
        self.buf.extend_from_slice(&checksum.to_le_bytes());
        self.buf
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize, section: &'static str) -> Result<&'a [u8], SnapshotError> {
        if self.pos + n > self.buf.len() {
            return Err(SnapshotError::Truncated { section });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self, section: &'static str) -> Result<u8, SnapshotError> {
        Ok(self.take(1, section)?[0])
    }

    fn u32(&mut self, section: &'static str) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(
            self.take(4, section)?.try_into().expect("sliced 4 bytes"),
        ))
    }

    fn u64(&mut self, section: &'static str) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(
            self.take(8, section)?.try_into().expect("sliced 8 bytes"),
        ))
    }

    fn f64(&mut self, section: &'static str) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(self.u64(section)?))
    }

    fn str(&mut self, section: &'static str) -> Result<String, SnapshotError> {
        let len = self.u32(section)? as usize;
        let bytes = self.take(len, section)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| SnapshotError::Malformed {
            what: format!("non-UTF-8 {section}"),
        })
    }

    fn bools(&mut self, expect: usize, section: &'static str) -> Result<Vec<bool>, SnapshotError> {
        let len = self.u32(section)? as usize;
        if len != expect {
            return Err(SnapshotError::Malformed {
                what: format!("{section}: {len} flags for {expect} vectors"),
            });
        }
        Ok(self.take(len, section)?.iter().map(|&b| b != 0).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ansmet_faults::snapshot::{corruption_offset, flip_byte, torn_tail};
    use ansmet_index::{HnswParams, IvfParams};
    use ansmet_vecdata::SynthSpec;

    fn churned(n: usize) -> (MutableIndex, LayoutArtifacts, Vec<Vec<f32>>) {
        let (data, queries) = SynthSpec::sift().scaled(n, 3).generate();
        let held: Vec<Vec<f32>> = (n - 10..n).map(|i| data.vector(i).to_vec()).collect();
        let base = Dataset::from_values(
            "t",
            data.dtype(),
            data.metric(),
            data.dim(),
            (0..n - 10).flat_map(|i| data.vector(i).to_vec()).collect(),
        );
        let mut idx = MutableIndex::build_hnsw(base, HnswParams::quick(), 21);
        let mut layout = LayoutArtifacts::plan(&idx, 0.01);
        for v in &held[..5] {
            idx.insert(v);
        }
        idx.delete(3);
        idx.delete(17);
        layout.revalidate(&mut idx, 1.0);
        (idx, layout, queries)
    }

    fn meta() -> EpochMeta {
        EpochMeta {
            epoch: 4,
            last_epoch_cycle: 123_456,
        }
    }

    #[test]
    fn round_trip_preserves_search_and_state() {
        let (idx, layout, queries) = churned(200);
        let bytes = save(&idx, &layout, &meta());
        let snap = load(&bytes).expect("clean snapshot loads");
        assert_eq!(snap.meta, meta());
        assert_eq!(snap.index.len(), idx.len());
        assert_eq!(snap.index.generation(), idx.generation());
        assert_eq!(snap.index.pending_dead(), idx.pending_dead());
        assert_eq!(snap.index.conservative_flags(), idx.conservative_flags());
        assert_eq!(
            snap.layout.replicas.sorted_ids(),
            layout.replicas.sorted_ids()
        );
        assert_eq!(snap.layout.schedule, layout.schedule);
        for q in &queries {
            assert_eq!(
                snap.index.search_exact(q, 10, 60).ids(),
                idx.search_exact(q, 10, 60).ids(),
                "restored index must search bit-identically"
            );
        }
    }

    #[test]
    fn save_is_byte_stable() {
        let (idx, layout, _) = churned(120);
        assert_eq!(save(&idx, &layout, &meta()), save(&idx, &layout, &meta()));
    }

    #[test]
    fn ivf_round_trips_too() {
        let (data, queries) = SynthSpec::sift().scaled(250, 2).generate();
        let mut idx = MutableIndex::build_ivf(data, IvfParams::default());
        let v0 = idx.data().vector(0).to_vec();
        idx.insert(&v0);
        idx.delete(7);
        let layout = LayoutArtifacts::plan(&idx, 0.01);
        let bytes = save(&idx, &layout, &meta());
        let snap = load(&bytes).expect("ivf snapshot loads");
        assert_eq!(snap.index.drift(), idx.drift());
        for q in &queries {
            assert_eq!(
                snap.index.search_exact(q, 5, 16).ids(),
                idx.search_exact(q, 5, 16).ids()
            );
        }
    }

    #[test]
    fn flipped_byte_is_a_typed_error() {
        let (idx, layout, _) = churned(80);
        let clean = save(&idx, &layout, &meta());
        // Sweep a few deterministic offsets from the fault injector; a
        // flip must never load successfully and never panic.
        for seed in 0..8u64 {
            let mut bytes = clean.clone();
            let off = corruption_offset(seed, bytes.len());
            flip_byte(&mut bytes, off, 0x40);
            let err = load(&bytes).expect_err("corrupt snapshot must not load");
            assert!(
                matches!(
                    err,
                    SnapshotError::ChecksumMismatch { .. }
                        | SnapshotError::Torn { .. }
                        | SnapshotError::BadMagic { .. }
                        | SnapshotError::UnsupportedVersion { .. }
                ),
                "unexpected error class: {err}"
            );
        }
    }

    #[test]
    fn torn_write_is_detected_and_recovered() {
        let (idx, layout, _) = churned(80);
        let clean = save(&idx, &layout, &meta());
        let torn = torn_tail(&clean, clean.len() / 2);
        match load(&torn).expect_err("torn snapshot must not load") {
            SnapshotError::Torn { expected, actual } => {
                assert_eq!(expected, clean.len() as u64);
                assert_eq!(actual, (clean.len() / 2) as u64);
            }
            other => panic!("expected Torn, got {other}"),
        }
        let (snap, recovered) = load_with_fallback(&torn, &clean).expect("fallback must recover");
        assert!(recovered);
        assert_eq!(snap.index.len(), idx.len());
        // Both broken: the primary's error surfaces.
        let err = load_with_fallback(&torn, &torn[..HEADER_LEN - 1]).expect_err("both broken");
        assert!(matches!(err, SnapshotError::Torn { .. }));
    }

    #[test]
    fn error_display_is_informative() {
        let e = SnapshotError::Torn {
            expected: 100,
            actual: 60,
        };
        assert_eq!(
            e.to_string(),
            "torn snapshot: header promises 100 bytes, found 60"
        );
        assert!(load(b"nope").is_err());
    }
}
