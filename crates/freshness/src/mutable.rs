//! Mutable wrapper over the static indexes: streaming inserts, tombstone
//! deletes, and compaction.
//!
//! [`MutableIndex`] owns the dataset plus exactly one index backend
//! (HNSW or IVF) and keeps the *read path unchanged*: searches go
//! through the same `search_with` machinery as the static indexes, with
//! any [`DistanceOracle`]. Mutations are layered around it:
//!
//! * **Insert** appends to the dataset ([`Dataset::push_vector`]) and
//!   incrementally extends the index — HNSW insertion draws its layer
//!   from the same exponential distribution as construction (a dedicated
//!   streaming RNG, reconstructible from `(level_seed, levels_drawn)` so
//!   snapshots restore the exact stream position); IVF appends to the
//!   nearest list and accrues a centroid-drift counter.
//! * **Delete** sets a tombstone. The vector stays in the graph/list
//!   until the next compaction; reads over-fetch by the number of
//!   unpurged tombstones and filter, so results never contain dead ids
//!   and recall over the live set is unaffected.
//! * **Compact** (run by the epoch manager) unlinks tombstoned HNSW
//!   nodes / purges IVF lists, and runs one Lloyd rebalance step on IVF
//!   so appended vectors migrate to their true nearest centroid.
//!
//! Every mutation bumps a generation counter; searches hand it to
//! [`SearchScratch::sync_generation`] so scratch buffers (in particular
//! the epoch-based visited set) stay valid across mutations without
//! reallocation.

use ansmet_index::{
    DistanceOracle, ExactOracle, Hnsw, HnswParams, Ivf, IvfParams, Neighbor, SearchResult,
    SearchScratch, VisitedSet,
};
use ansmet_vecdata::Dataset;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Per-IVF-list centroid-drift accumulator: how many vectors were
/// appended since the last rebalance and how far (summed) they landed
/// from the stale centroid. The epoch manager reads this as a rebalance
/// urgency signal; compaction resets it.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ListDrift {
    /// Vectors appended to the list since the last rebalance.
    pub appends: u64,
    /// Summed distance of those appends to the (stale) centroid.
    pub dist_sum: f64,
}

/// What one compaction pass did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompactStats {
    /// Tombstoned vectors structurally removed from the index.
    pub purged: usize,
    /// IVF members that changed list during the rebalance step (always 0
    /// for HNSW).
    pub moved: usize,
}

impl std::fmt::Display for CompactStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "purged {}, moved {}", self.purged, self.moved)
    }
}

/// A dataset plus one index backend, mutable online.
///
/// Exactly one of the HNSW/IVF backends is present. All mutations are
/// deterministic: the same construction and mutation sequence produces a
/// bit-identical index, dataset, and level-RNG position on every run.
#[derive(Debug, Clone)]
pub struct MutableIndex {
    pub(crate) data: Dataset,
    pub(crate) hnsw: Option<Hnsw>,
    pub(crate) ivf: Option<Ivf>,
    /// `true` for deleted ids (dead from the reader's perspective).
    pub(crate) tombstones: Vec<bool>,
    /// `true` for tombstoned ids already removed from the index
    /// structure by a past compaction.
    pub(crate) purged: Vec<bool>,
    /// `true` for ids served conservatively (exact full fetch) because
    /// the ANSMET layout artifacts have not been re-validated for them
    /// yet — fresh inserts until the next epoch. See `revalidate`.
    pub(crate) conservative: Vec<bool>,
    /// Bumped on every mutation; drives scratch revalidation.
    pub(crate) generation: u64,
    /// Seed of the streaming level RNG (HNSW level assignment).
    pub(crate) level_seed: u64,
    /// Levels drawn so far — with `level_seed`, pins the RNG position so
    /// a restored snapshot continues the exact same level stream.
    pub(crate) levels_drawn: u64,
    /// Total inserts applied over the index lifetime.
    pub(crate) inserts: u64,
    /// Total deletes applied over the index lifetime.
    pub(crate) deletes: u64,
    /// Per-list drift counters (empty for HNSW).
    pub(crate) drift: Vec<ListDrift>,
    /// Tombstoned ids total (purged or not).
    dead: usize,
    /// Tombstoned ids still physically present in the index.
    unpurged_dead: usize,
    rng: SmallRng,
    insert_visited: VisitedSet,
}

impl MutableIndex {
    /// Wrap an already-built HNSW index. `level_seed` seeds the
    /// *streaming* level RNG (independent of the build seed, so a
    /// snapshot can replay it without replaying the build).
    ///
    /// # Panics
    ///
    /// Panics if the index and dataset disagree on length.
    pub fn from_hnsw(data: Dataset, hnsw: Hnsw, level_seed: u64) -> Self {
        assert_eq!(
            hnsw.len(),
            data.len(),
            "index covers {} vectors, dataset has {}",
            hnsw.len(),
            data.len()
        );
        let n = data.len();
        MutableIndex {
            data,
            hnsw: Some(hnsw),
            ivf: None,
            tombstones: vec![false; n],
            purged: vec![false; n],
            conservative: vec![false; n],
            generation: 0,
            level_seed,
            levels_drawn: 0,
            inserts: 0,
            deletes: 0,
            drift: Vec::new(),
            dead: 0,
            unpurged_dead: 0,
            rng: SmallRng::seed_from_u64(level_seed),
            insert_visited: VisitedSet::new(n),
        }
    }

    /// Build an HNSW backend over `data` and wrap it.
    pub fn build_hnsw(data: Dataset, params: HnswParams, level_seed: u64) -> Self {
        let hnsw = Hnsw::build(&data, params);
        Self::from_hnsw(data, hnsw, level_seed)
    }

    /// Wrap an already-built IVF index.
    ///
    /// # Panics
    ///
    /// Panics if any list id is out of range for the dataset.
    pub fn from_ivf(data: Dataset, ivf: Ivf) -> Self {
        let n = data.len();
        for c in 0..ivf.n_lists() {
            for &id in ivf.list(c) {
                assert!(id < n, "IVF list {c} references id {id} beyond dataset");
            }
        }
        let n_lists = ivf.n_lists();
        MutableIndex {
            data,
            hnsw: None,
            ivf: Some(ivf),
            tombstones: vec![false; n],
            purged: vec![false; n],
            conservative: vec![false; n],
            generation: 0,
            level_seed: 0,
            levels_drawn: 0,
            inserts: 0,
            deletes: 0,
            drift: vec![ListDrift::default(); n_lists],
            dead: 0,
            unpurged_dead: 0,
            rng: SmallRng::seed_from_u64(0),
            insert_visited: VisitedSet::new(n),
        }
    }

    /// Build an IVF backend over `data` and wrap it.
    pub fn build_ivf(data: Dataset, params: IvfParams) -> Self {
        let ivf = Ivf::build(&data, params);
        Self::from_ivf(data, ivf)
    }

    /// Rebuild from snapshot parts, replaying the level RNG to its saved
    /// position so subsequent inserts draw the same levels the original
    /// index would have.
    #[allow(clippy::too_many_arguments)] // snapshot-restore constructor: one arg per persisted field
    pub(crate) fn restore(
        data: Dataset,
        hnsw: Option<Hnsw>,
        ivf: Option<Ivf>,
        tombstones: Vec<bool>,
        purged: Vec<bool>,
        conservative: Vec<bool>,
        generation: u64,
        level_seed: u64,
        levels_drawn: u64,
        inserts: u64,
        deletes: u64,
        drift: Vec<ListDrift>,
    ) -> Self {
        assert!(
            hnsw.is_some() ^ ivf.is_some(),
            "exactly one index backend per snapshot"
        );
        let n = data.len();
        assert_eq!(tombstones.len(), n, "tombstone flags out of shape");
        assert_eq!(purged.len(), n, "purge flags out of shape");
        assert_eq!(conservative.len(), n, "conservative flags out of shape");
        let mut rng = SmallRng::seed_from_u64(level_seed);
        if let Some(h) = &hnsw {
            let params = h.params().clone();
            for _ in 0..levels_drawn {
                let _ = params.sample_level(&mut rng);
            }
        }
        let dead = tombstones.iter().filter(|&&t| t).count();
        let unpurged_dead = tombstones
            .iter()
            .zip(&purged)
            .filter(|&(&t, &p)| t && !p)
            .count();
        MutableIndex {
            data,
            hnsw,
            ivf,
            tombstones,
            purged,
            conservative,
            generation,
            level_seed,
            levels_drawn,
            inserts,
            deletes,
            drift,
            dead,
            unpurged_dead,
            rng,
            insert_visited: VisitedSet::new(n),
        }
    }

    /// The underlying dataset (live and tombstoned vectors interleaved).
    pub fn data(&self) -> &Dataset {
        &self.data
    }

    /// The HNSW backend, if this index uses one.
    pub fn hnsw(&self) -> Option<&Hnsw> {
        self.hnsw.as_ref()
    }

    /// The IVF backend, if this index uses one.
    pub fn ivf(&self) -> Option<&Ivf> {
        self.ivf.as_ref()
    }

    /// Total vectors ever stored (live + tombstoned).
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the index holds no vectors at all.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Vectors a search may return.
    pub fn live_len(&self) -> usize {
        self.data.len() - self.dead
    }

    /// Whether `id` is present and not deleted.
    pub fn is_live(&self, id: usize) -> bool {
        id < self.tombstones.len() && !self.tombstones[id]
    }

    /// Ascending ids of all live vectors.
    pub fn live_ids(&self) -> Vec<usize> {
        (0..self.tombstones.len())
            .filter(|&i| !self.tombstones[i])
            .collect()
    }

    /// Mutation generation (bumped by insert/delete/compact).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Tombstoned vectors still physically inside the index structure
    /// (the read-path over-fetch margin).
    pub fn pending_dead(&self) -> usize {
        self.unpurged_dead
    }

    /// Per-id conservative-serving flags (see [`crate::FreshEtOracle`]).
    pub fn conservative_flags(&self) -> &[bool] {
        &self.conservative
    }

    /// Ids currently served conservatively.
    pub fn conservative_count(&self) -> usize {
        self.conservative.iter().filter(|&&c| c).count()
    }

    /// Total inserts applied over the index lifetime.
    pub fn insert_count(&self) -> u64 {
        self.inserts
    }

    /// Total deletes applied over the index lifetime.
    pub fn delete_count(&self) -> u64 {
        self.deletes
    }

    /// Per-list IVF drift counters (empty for HNSW).
    pub fn drift(&self) -> &[ListDrift] {
        &self.drift
    }

    /// Insert one vector; returns its id.
    ///
    /// The vector is quantized through the dataset dtype, the index is
    /// extended incrementally, and the new id starts *conservative*: the
    /// ANSMET layout artifacts (prefix tables, fetch plan) were chosen
    /// before it existed, so until the next epoch re-validates it, early
    /// termination serves it with an exact full fetch.
    ///
    /// # Panics
    ///
    /// Panics if `vector.len()` differs from the dataset dimension.
    pub fn insert(&mut self, vector: &[f32]) -> usize {
        let id = self.data.push_vector(vector);
        self.tombstones.push(false);
        self.purged.push(false);
        self.conservative.push(true);
        if let Some(hnsw) = self.hnsw.as_mut() {
            let level = hnsw.params().sample_level(&mut self.rng);
            self.levels_drawn += 1;
            let node = hnsw.insert_point(&self.data, level, &mut self.insert_visited);
            debug_assert_eq!(node, id, "index and dataset ids diverged");
        } else {
            let ivf = self.ivf.as_mut().expect("one backend always present");
            let (list, dist) = ivf.append(&self.data, id);
            let d = &mut self.drift[list];
            d.appends += 1;
            d.dist_sum += f64::from(dist);
        }
        self.inserts += 1;
        self.generation += 1;
        id
    }

    /// Tombstone `id`. Returns `false` when the id is out of range or
    /// already dead. The vector stays in the index until the next
    /// [`MutableIndex::compact`]; reads filter it immediately.
    ///
    /// # Panics
    ///
    /// Panics when asked to delete the last live vector (a graph index
    /// cannot repair an entry point with no survivors).
    pub fn delete(&mut self, id: usize) -> bool {
        if id >= self.tombstones.len() || self.tombstones[id] {
            return false;
        }
        assert!(self.live_len() > 1, "cannot tombstone the last live vector");
        self.tombstones[id] = true;
        self.dead += 1;
        self.unpurged_dead += 1;
        self.deletes += 1;
        self.generation += 1;
        true
    }

    /// Structurally remove tombstoned vectors and (for IVF) run one
    /// Lloyd rebalance step. Called by the epoch manager; safe to call
    /// at any time.
    pub fn compact(&mut self) -> CompactStats {
        let mut stats = CompactStats::default();
        if self.unpurged_dead > 0 {
            if let Some(hnsw) = self.hnsw.as_mut() {
                let alive: Vec<bool> = self.tombstones.iter().map(|&t| !t).collect();
                for id in 0..self.tombstones.len() {
                    if self.tombstones[id] && !self.purged[id] {
                        hnsw.unlink(&self.data, id, &alive);
                        self.purged[id] = true;
                        stats.purged += 1;
                    }
                }
            } else {
                let ivf = self.ivf.as_mut().expect("one backend always present");
                ivf.purge(&self.tombstones);
                for id in 0..self.tombstones.len() {
                    if self.tombstones[id] && !self.purged[id] {
                        self.purged[id] = true;
                        stats.purged += 1;
                    }
                }
            }
            self.unpurged_dead = 0;
        }
        if let Some(ivf) = self.ivf.as_mut() {
            stats.moved = ivf.rebalance(&self.data);
            for d in &mut self.drift {
                *d = ListDrift::default();
            }
        }
        self.generation += 1;
        stats
    }

    /// Search the live set: `k` nearest live vectors through `oracle`.
    ///
    /// The underlying index search over-fetches by the number of
    /// unpurged tombstones, then dead ids are filtered and the result
    /// truncated back to `k` — so results never contain deleted vectors
    /// and, because the filtering is oracle-independent, ET-on and
    /// ET-off searches stay bit-identical on mutated indexes. `ef` is
    /// the beam width for HNSW and the probe count for IVF (clamped to
    /// the list count).
    pub fn search_with<O: DistanceOracle>(
        &self,
        query: &[f32],
        k: usize,
        ef: usize,
        oracle: &mut O,
        scratch: &mut SearchScratch,
    ) -> SearchResult {
        scratch.sync_generation(self.generation, self.data.len());
        let k_eff = k + self.unpurged_dead;
        let raw = if let Some(hnsw) = &self.hnsw {
            hnsw.search_with(query, k_eff, ef.max(k_eff), oracle, scratch)
        } else {
            let ivf = self.ivf.as_ref().expect("one backend always present");
            let nprobe = ef.clamp(1, ivf.n_lists());
            ivf.search_with(query, k_eff, nprobe, oracle, scratch)
        };
        let kept: Vec<Neighbor> = raw
            .neighbors()
            .iter()
            .filter(|n| !self.tombstones[n.id])
            .take(k)
            .copied()
            .collect();
        SearchResult::from_neighbors(kept)
    }

    /// [`MutableIndex::search_with`] through an exact (full-fetch)
    /// oracle, allocating fresh scratch.
    pub fn search_exact(&self, query: &[f32], k: usize, ef: usize) -> SearchResult {
        let mut oracle = ExactOracle::new(&self.data);
        let mut scratch = SearchScratch::new(self.data.len());
        self.search_with(query, k, ef, &mut oracle, &mut scratch)
    }

    /// Exact k-nearest over the live set by brute force (ground truth
    /// for recall-under-churn measurements). Ties break toward the lower
    /// id, matching the index search order.
    pub fn live_ground_truth(&self, query: &[f32], k: usize) -> Vec<usize> {
        let mut all: Vec<(f32, usize)> = (0..self.tombstones.len())
            .filter(|&i| !self.tombstones[i])
            .map(|i| (self.data.distance_to(i, query), i))
            .collect();
        all.sort_by(|a, b| {
            a.0.partial_cmp(&b.0)
                .expect("non-finite distance in ground truth")
                .then(a.1.cmp(&b.1))
        });
        all.truncate(k);
        all.into_iter().map(|(_, i)| i).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ansmet_vecdata::SynthSpec;

    fn sift(n: usize, q: usize) -> (Dataset, Vec<Vec<f32>>) {
        SynthSpec::sift().scaled(n, q).generate()
    }

    fn hnsw_index(n: usize) -> (MutableIndex, Vec<Vec<f32>>) {
        let (data, queries) = sift(n, 4);
        (
            MutableIndex::build_hnsw(data, HnswParams::quick(), 7),
            queries,
        )
    }

    #[test]
    fn inserts_are_immediately_searchable() {
        let (data, _) = sift(300, 1);
        let held_out: Vec<Vec<f32>> = (260..300).map(|i| data.vector(i).to_vec()).collect();
        let base = Dataset::from_values(
            "t",
            data.dtype(),
            data.metric(),
            data.dim(),
            (0..260).flat_map(|i| data.vector(i).to_vec()).collect(),
        );
        let mut idx = MutableIndex::build_hnsw(base, HnswParams::quick(), 7);
        for v in &held_out {
            let id = idx.insert(v);
            let got = idx.search_exact(v, 1, 40);
            assert_eq!(got.ids()[0], id, "freshly inserted vector not nearest");
        }
        assert_eq!(idx.len(), 300);
        assert_eq!(idx.insert_count(), 40);
        assert_eq!(idx.conservative_count(), 40, "inserts start conservative");
    }

    #[test]
    fn deletes_disappear_before_compaction() {
        let (mut idx, queries) = hnsw_index(300);
        let victims: Vec<usize> = idx.search_exact(&queries[0], 5, 40).ids();
        for &v in &victims {
            assert!(idx.delete(v));
            assert!(!idx.delete(v), "double delete must be a no-op");
        }
        assert_eq!(idx.pending_dead(), 5);
        let after = idx.search_exact(&queries[0], 5, 40);
        for n in after.neighbors() {
            assert!(
                !victims.contains(&n.id),
                "tombstoned id {} served to a reader",
                n.id
            );
        }
        assert_eq!(after.neighbors().len(), 5, "over-fetch must refill to k");
    }

    #[test]
    fn compaction_purges_and_results_match_prefiltered() {
        let (mut idx, queries) = hnsw_index(300);
        for id in [3, 50, 77, 120, 250] {
            idx.delete(id);
        }
        let before = idx.search_exact(&queries[1], 10, 60);
        let stats = idx.compact();
        assert_eq!(stats.purged, 5);
        assert_eq!(idx.pending_dead(), 0);
        let after = idx.search_exact(&queries[1], 10, 60);
        // Same live corpus, same oracle: the top results should agree
        // (compaction may perturb deep graph paths, but the nearest
        // neighbor is found by both).
        assert_eq!(before.ids()[0], after.ids()[0]);
        // Idempotent: a second compact purges nothing.
        assert_eq!(idx.compact().purged, 0);
    }

    #[test]
    fn ivf_churn_keeps_partition_consistent() {
        let (data, queries) = sift(400, 2);
        let held_out: Vec<Vec<f32>> = (360..400).map(|i| data.vector(i).to_vec()).collect();
        let base = Dataset::from_values(
            "t",
            data.dtype(),
            data.metric(),
            data.dim(),
            (0..360).flat_map(|i| data.vector(i).to_vec()).collect(),
        );
        let mut idx = MutableIndex::build_ivf(base, IvfParams::default());
        for v in &held_out {
            idx.insert(v);
        }
        assert!(
            idx.drift().iter().map(|d| d.appends).sum::<u64>() == 40,
            "drift counters must see every append"
        );
        for id in [0, 41, 100, 333] {
            idx.delete(id);
        }
        let stats = idx.compact();
        assert_eq!(stats.purged, 4);
        assert!(idx.drift().iter().all(|d| d.appends == 0));
        // Every live id is in exactly one list; no dead id remains.
        let ivf = idx.ivf().expect("ivf backend");
        let mut seen = vec![0usize; idx.len()];
        for c in 0..ivf.n_lists() {
            for &id in ivf.list(c) {
                seen[id] += 1;
            }
        }
        for (id, &count) in seen.iter().enumerate() {
            assert_eq!(
                count,
                usize::from(idx.is_live(id)),
                "id {id} listed {count} times"
            );
        }
        let r = idx.search_with(
            &queries[0],
            5,
            ivf.n_lists(),
            &mut ExactOracle::new(idx.data()),
            &mut SearchScratch::new(idx.len()),
        );
        assert_eq!(r.ids(), idx.live_ground_truth(&queries[0], 5));
    }

    #[test]
    fn scratch_survives_mutations_without_reallocating() {
        // Satellite regression: searching across an insert with the same
        // scratch must revalidate via the generation counter, not
        // reallocate.
        let (data, queries) = sift(200, 1);
        let extra: Vec<f32> = data.vector(0).to_vec();
        let mut idx = MutableIndex::build_hnsw(data, HnswParams::quick(), 3);
        let mut scratch = SearchScratch::with_headroom(idx.len(), 64);
        let a = {
            let mut oracle = ExactOracle::new(idx.data());
            idx.search_with(&queries[0], 5, 40, &mut oracle, &mut scratch)
        };
        let g0 = idx.generation();
        idx.insert(&extra);
        idx.delete(7);
        assert!(idx.generation() > g0);
        let mut oracle = ExactOracle::new(idx.data());
        let b = idx.search_with(&queries[0], 5, 40, &mut oracle, &mut scratch);
        assert_eq!(
            scratch.reallocations(),
            0,
            "mutation within headroom must not move scratch buffers"
        );
        assert!(!a.ids().is_empty() && !b.ids().is_empty());
        assert!(!b.ids().contains(&7), "deleted id served after mutation");
    }

    #[test]
    fn restore_replays_the_level_stream() {
        let (data, _) = sift(120, 1);
        let extra: Vec<Vec<f32>> = (0..6).map(|i| data.vector(i).to_vec()).collect();
        let mut a = MutableIndex::build_hnsw(data.clone(), HnswParams::quick(), 11);
        for v in &extra[..3] {
            a.insert(v);
        }
        let mut b = MutableIndex::restore(
            a.data.clone(),
            a.hnsw.clone(),
            None,
            a.tombstones.clone(),
            a.purged.clone(),
            a.conservative.clone(),
            a.generation,
            a.level_seed,
            a.levels_drawn,
            a.inserts,
            a.deletes,
            a.drift.clone(),
        );
        for v in &extra[3..] {
            let ia = a.insert(v);
            let ib = b.insert(v);
            assert_eq!(ia, ib);
            let ha = a.hnsw().expect("hnsw");
            let hb = b.hnsw().expect("hnsw");
            assert_eq!(
                ha.level(ia),
                hb.level(ib),
                "restored RNG diverged from the original level stream"
            );
        }
    }

    #[test]
    #[should_panic(expected = "last live vector")]
    fn deleting_everything_is_rejected() {
        let (data, _) = sift(3, 1);
        let mut idx = MutableIndex::build_hnsw(data, HnswParams::quick(), 1);
        for id in 0..3 {
            idx.delete(id);
        }
    }
}
