//! ANSMET — Approximate Nearest Neighbor Search with Near-Memory
//! Processing and Hybrid Early Termination (ISCA 2025) — facade crate.
//!
//! Re-exports the whole reproduction under one roof:
//!
//! * [`vecdata`] — datasets, element types, metrics, ground truth.
//! * [`index`] — HNSW and IVF ANNS indexes.
//! * [`core`] — the hybrid partial-dimension/bit early-termination
//!   algorithm (sortable encodings, bounds, schedules, layouts, the
//!   sampling-based optimizers).
//! * [`dram`] — the cycle-level DDR5 simulator.
//! * [`ndp`] — the NDP hardware model (QSHRs, instructions, partitioning,
//!   polling).
//! * [`host`] — the host CPU timing model.
//! * [`sim`] — the full-system designs, timing engine, energy model, and
//!   the experiment drivers regenerating the paper's tables and figures.
//! * [`serve`] — the online serving layer: open-loop load generation,
//!   dynamic batching, admission control, and tail-latency SLO reports.
//! * [`freshness`] — online inserts/deletes, epoch compaction and layout
//!   re-validation, checksummed snapshots, and churn-aware serving.
//! * [`cluster`] — the sharded cluster plane: partitioned indexes,
//!   scatter-gather routing, and cross-shard early termination.
//! * [`obs`] — the tracing & metrics layer: per-query flight recorder,
//!   cycle attribution, Perfetto export, deterministic metric shards.
//!
//! # Quickstart
//!
//! ```
//! use ansmet::vecdata::SynthSpec;
//! use ansmet::index::{ExactOracle, Hnsw, HnswParams};
//!
//! let (data, queries) = SynthSpec::sift().scaled(500, 2).generate();
//! let hnsw = Hnsw::build(&data, HnswParams::quick());
//! let mut oracle = ExactOracle::new(&data);
//! let top10 = hnsw.search(&queries[0], 10, 60, &mut oracle);
//! assert_eq!(top10.ids().len(), 10);
//! ```

pub use ansmet_cluster as cluster;
pub use ansmet_core as core;
pub use ansmet_dram as dram;
pub use ansmet_freshness as freshness;
pub use ansmet_host as host;
pub use ansmet_index as index;
pub use ansmet_ndp as ndp;
pub use ansmet_obs as obs;
pub use ansmet_serve as serve;
pub use ansmet_sim as sim;
pub use ansmet_vecdata as vecdata;
