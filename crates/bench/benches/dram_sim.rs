//! DRAM simulator throughput benchmarks: host streaming, NDP rank
//! parallelism, and random-access patterns.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use ansmet_dram::{AccessKind, DramConfig, MemorySystem, Port, Request};

fn run_pattern(port: Port, addrs: &[u64]) -> u64 {
    let mut cfg = DramConfig::ddr5_4800();
    cfg.refresh_enabled = false;
    let mut mem = MemorySystem::new(cfg);
    let mut issued = 0usize;
    let mut id = 0u64;
    while issued < addrs.len() {
        while issued < addrs.len()
            && mem
                .enqueue(Request::new(id, AccessKind::Read, addrs[issued], port))
                .is_ok()
        {
            id += 1;
            issued += 1;
        }
        mem.tick();
    }
    mem.drain(10_000_000);
    mem.now()
}

fn bench_dram(c: &mut Criterion) {
    let mut group = c.benchmark_group("dram");
    let stream: Vec<u64> = (0..512u64).map(|i| i * 64).collect();
    let random: Vec<u64> = (0..512u64)
        .map(|i| (i.wrapping_mul(0x9E37_79B9) % (1 << 28)) & !63)
        .collect();
    group.bench_function("host-stream-512", |b| {
        b.iter(|| run_pattern(Port::Host, black_box(&stream)))
    });
    group.bench_function("host-random-512", |b| {
        b.iter(|| run_pattern(Port::Host, black_box(&random)))
    });
    group.bench_function("ndp-stream-512", |b| {
        b.iter(|| run_pattern(Port::Ndp, black_box(&stream)))
    });
    group.finish();
}

criterion_group!(benches, bench_dram);
criterion_main!(benches);
