//! End-to-end HNSW search benchmarks: exact oracle vs. early-terminating
//! oracle.
//!
//! Note the ET oracle is *slower in host wall-clock*: it simulates the
//! NDP unit's per-line bound refinement in software. Its benefit is the
//! memory traffic it avoids (reported by the `experiments` harness and
//! the oracle's line counters), which on the modeled hardware translates
//! to latency — this bench tracks the simulation overhead itself.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use ansmet_core::{EtConfig, EtEngine, EtOracle, FetchSchedule};
use ansmet_index::{ExactOracle, Hnsw, HnswParams};
use ansmet_vecdata::SynthSpec;

fn bench_search(c: &mut Criterion) {
    let (data, queries) = SynthSpec::sift().scaled(4000, 16).generate();
    let hnsw = Hnsw::build(&data, HnswParams::quick());
    let engine = EtEngine::new(
        &data,
        EtConfig::new(FetchSchedule::simple_heuristic(data.dtype())),
    );

    let mut group = c.benchmark_group("hnsw-search");
    group.bench_function("exact-oracle", |b| {
        b.iter(|| {
            let mut o = ExactOracle::new(&data);
            for q in &queries {
                black_box(hnsw.search(black_box(q), 10, 60, &mut o));
            }
        })
    });
    group.bench_function("et-oracle", |b| {
        b.iter(|| {
            let mut o = EtOracle::new(&engine);
            for q in &queries {
                black_box(hnsw.search(black_box(q), 10, 60, &mut o));
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_search);
criterion_main!(benches);
