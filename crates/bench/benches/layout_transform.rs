//! Offline preprocessing micro-benchmarks: the bit-plane layout
//! transform and its recovery (Table 4's preprocessing cost).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use ansmet_core::layout::{recover, transform};
use ansmet_core::{to_sortable, FetchSchedule};
use ansmet_vecdata::SynthSpec;

fn bench_layout(c: &mut Criterion) {
    let mut group = c.benchmark_group("layout");
    for (name, spec, step) in [
        ("sift-4bit", SynthSpec::sift(), 4u32),
        ("gist-8bit", SynthSpec::gist(), 8u32),
    ] {
        let (data, _) = spec.scaled(64, 1).generate();
        let sched = FetchSchedule::uniform(data.dtype(), step);
        let sortables: Vec<Vec<u32>> = (0..data.len())
            .map(|i| {
                data.raw_vector(i)
                    .iter()
                    .map(|&r| to_sortable(data.dtype(), r))
                    .collect()
            })
            .collect();
        group.bench_with_input(BenchmarkId::new("transform", name), &sched, |b, sched| {
            b.iter(|| {
                let mut total = 0usize;
                for s in &sortables {
                    total += transform(black_box(s), sched).lines.len();
                }
                total
            })
        });
        let tv = transform(&sortables[0], &sched);
        group.bench_with_input(BenchmarkId::new("recover", name), &sched, |b, sched| {
            b.iter(|| recover(black_box(&tv), sched, sortables[0].len(), tv.lines.len()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_layout);
criterion_main!(benches);
