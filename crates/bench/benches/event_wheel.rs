//! Event-wheel microbenchmarks: schedule/pop throughput at various
//! pending-set sizes, merge cost, and coalesced (`pop_due`) vs.
//! per-event (`pop_next`) wakeup draining — the access patterns of the
//! cross-stack co-simulation scheduler.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use ansmet_sim::EventWheel;

/// Deterministic pseudo-random gaps (xorshift); the wheel drivers see a
/// mix of near (compute-delay) and far (refresh-horizon) wakeups.
fn gaps(n: usize, spread: u64) -> Vec<u64> {
    let mut x = 0x243F_6A88_85A3_08D3u64;
    (0..n)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            1 + x % spread
        })
        .collect()
}

/// Schedule `n` wakeups then drain them one at a time in cycle order.
fn insert_pop(n: usize, spread: u64) -> u64 {
    let g = gaps(n, spread);
    let mut wheel = EventWheel::new(0);
    for (i, &d) in g.iter().enumerate() {
        wheel.schedule(d, i as u32);
    }
    let mut acc = 0u64;
    while let Some(w) = wheel.pop_next() {
        acc = acc.wrapping_add(w.cycle).wrapping_add(w.token as u64);
    }
    acc
}

/// Steady-state churn: each popped wakeup reschedules itself later, as a
/// QSHR does after every fill completion.
fn churn(n: usize, rounds: usize, spread: u64) -> u64 {
    let g = gaps(n, spread);
    let mut wheel = EventWheel::new(0);
    for (i, &d) in g.iter().enumerate() {
        wheel.schedule(d, i as u32);
    }
    let mut acc = 0u64;
    for _ in 0..rounds {
        let w = wheel.pop_next().expect("non-empty wheel");
        acc = acc.wrapping_add(w.cycle);
        wheel.schedule(w.cycle + 1 + (w.token as u64 % spread), w.token);
    }
    acc
}

/// Drain with one coalesced `pop_due` call per distinct cycle (how the
/// NDP batch driver services all same-cycle completions in one round).
fn drain_coalesced(n: usize, spread: u64) -> u64 {
    let g = gaps(n, spread);
    let mut wheel = EventWheel::new(0);
    for (i, &d) in g.iter().enumerate() {
        wheel.schedule(d, i as u32);
    }
    let mut due = Vec::new();
    let mut acc = 0u64;
    while let Some(cycle) = wheel.next_due() {
        wheel.pop_due(cycle, &mut due);
        acc = acc.wrapping_add(due.len() as u64);
        due.clear();
    }
    acc
}

fn merge_wheels(n: usize, spread: u64) -> usize {
    let g = gaps(n, spread);
    let mut a = EventWheel::new(0);
    let mut b = EventWheel::new(0);
    for (i, &d) in g.iter().enumerate() {
        if i % 2 == 0 {
            a.schedule(d, i as u32);
        } else {
            b.schedule(d, i as u32);
        }
    }
    a.merge(&b);
    a.len()
}

fn bench_wheel(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_wheel");
    for &n in &[1_000usize, 10_000, 100_000] {
        // spread ~4n keeps a realistic near/far mix for every size.
        let spread = (4 * n) as u64;
        group.bench_function(format!("insert-pop-{n}"), |b| {
            b.iter(|| insert_pop(black_box(n), spread))
        });
        group.bench_function(format!("churn-{n}"), |b| {
            b.iter(|| churn(black_box(n), 4 * n, spread))
        });
        group.bench_function(format!("drain-coalesced-{n}"), |b| {
            b.iter(|| drain_coalesced(black_box(n), spread))
        });
        group.bench_function(format!("merge-{n}"), |b| {
            b.iter(|| merge_wheels(black_box(n), spread))
        });
    }
    group.finish();
}

/// Coalesced vs. per-QSHR polling on a same-cycle completion burst: the
/// tick driver polled every in-flight sub-task each round, the wheel
/// driver services exactly the due set.
fn bench_polling(c: &mut Criterion) {
    let mut group = c.benchmark_group("ndp_polling");
    let inflight = 1024usize;
    // 32 distinct completion cycles, 32 sub-tasks due at each.
    let per_cycle = inflight / 32;
    group.bench_function("coalesced-pop-due", |b| {
        b.iter(|| {
            let mut wheel = EventWheel::new(0);
            for i in 0..inflight {
                wheel.schedule(1 + (i / per_cycle) as u64, i as u32);
            }
            let mut due = Vec::new();
            let mut serviced = 0usize;
            while let Some(cycle) = wheel.next_due() {
                wheel.pop_due(cycle, &mut due);
                serviced += due.len();
                due.clear();
            }
            black_box(serviced)
        })
    });
    group.bench_function("per-qshr-scan", |b| {
        b.iter(|| {
            // The pre-wheel pattern: every visited cycle scans the whole
            // in-flight set for ready sub-tasks.
            let ready: Vec<u64> = (0..inflight).map(|i| 1 + (i / per_cycle) as u64).collect();
            let mut done = vec![false; inflight];
            let mut serviced = 0usize;
            for cycle in 1..=(inflight / per_cycle) as u64 {
                for i in 0..inflight {
                    if !done[i] && ready[i] == cycle {
                        done[i] = true;
                        serviced += 1;
                    }
                }
            }
            black_box(serviced)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_wheel, bench_polling);
criterion_main!(benches);
