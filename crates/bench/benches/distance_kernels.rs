//! Distance-kernel micro-benchmarks: L2² and inner product across the
//! paper's dimensionalities.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use ansmet_vecdata::metric::{dot, l2_squared};
use ansmet_vecdata::{Metric, SynthSpec};

fn bench_distances(c: &mut Criterion) {
    let mut group = c.benchmark_group("distance");
    for (name, spec) in [
        ("sift-128", SynthSpec::sift()),
        ("deep-96", SynthSpec::deep()),
        ("gist-960", SynthSpec::gist()),
    ] {
        let (data, queries) = spec.scaled(64, 4).generate();
        let q = queries[0].clone();
        group.bench_with_input(BenchmarkId::new("l2", name), &data, |b, data| {
            b.iter(|| {
                let mut acc = 0.0f32;
                for i in 0..data.len() {
                    acc += l2_squared(black_box(data.vector(i)), black_box(&q));
                }
                acc
            })
        });
        group.bench_with_input(BenchmarkId::new("ip", name), &data, |b, data| {
            b.iter(|| {
                let mut acc = 0.0f32;
                for i in 0..data.len() {
                    acc += dot(black_box(data.vector(i)), black_box(&q));
                }
                acc
            })
        });
        group.bench_with_input(
            BenchmarkId::new("metric-dispatch", name),
            &data,
            |b, data| {
                b.iter(|| {
                    let mut acc = 0.0f32;
                    for i in 0..data.len() {
                        acc += Metric::L2.distance(black_box(data.vector(i)), black_box(&q));
                    }
                    acc
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_distances);
criterion_main!(benches);
