//! Early-termination micro-benchmarks: the per-comparison cost of
//! bound-refining evaluation vs. a full exact distance.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use ansmet_core::{EtConfig, EtEngine, FetchSchedule};
use ansmet_vecdata::SynthSpec;

fn bench_lower_bound(c: &mut Criterion) {
    let mut group = c.benchmark_group("et-evaluate");
    for (name, spec) in [("sift", SynthSpec::sift()), ("gist", SynthSpec::gist())] {
        let (data, queries) = spec.scaled(256, 4).generate();
        let engine = EtEngine::new(
            &data,
            EtConfig::new(FetchSchedule::simple_heuristic(data.dtype())),
        );
        let q = queries[0].clone();
        // A tight threshold exercises the early-exit path; a loose one the
        // full refinement path.
        let d0 = data.distance_to(0, &q);
        for (mode, thr) in [("tight", d0 * 0.2), ("loose", f32::INFINITY)] {
            group.bench_with_input(
                BenchmarkId::new(format!("{name}-{mode}"), data.dim()),
                &engine,
                |b, engine| {
                    b.iter(|| {
                        let mut lines = 0usize;
                        for id in 0..64 {
                            lines += engine
                                .evaluate(black_box(id), black_box(&q), black_box(thr))
                                .lines;
                        }
                        lines
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_lower_bound);
criterion_main!(benches);
