//! Regenerates the paper's tables and figures.
//!
//! ```text
//! experiments [--quick|--full] [--threads N] [--json FILE] [names...]
//! experiments --quick fig6 fig9      # selected experiments
//! experiments --full                 # everything, full scale
//! experiments --quick --threads 4 --json BENCH_timing.json
//! experiments serve --json BENCH_serving.json   # serving artifact
//! ```

use std::fmt::Write as _;

use ansmet_bench::{
    provenance_fields, run_experiment_with_artifacts, Scale, EXPERIMENTS, SERVING_ARTIFACT,
};

fn usage() -> String {
    format!(
        "usage: experiments [--quick|--full] [--threads N] [--json FILE] [names...]\n\
         experiments: {}",
        EXPERIMENTS.join(" ")
    )
}

/// Per-experiment wall-clock record for the `--json` timing report.
struct TimingRecord {
    name: String,
    seconds: f64,
    queries: u64,
    /// DRAM cycles actually ticked by the cycle-accurate model.
    cycles_simulated: u64,
    /// DRAM cycles jumped over by the event-wheel / skip-ahead drivers.
    cycles_skipped: u64,
}

/// Hand-rolled JSON (the repo deliberately carries no serde dependency).
fn timing_json(scale: Scale, threads: usize, records: &[TimingRecord]) -> String {
    let mut s = String::new();
    let total: f64 = records.iter().map(|r| r.seconds).sum();
    s.push_str("{\n");
    s.push_str(&provenance_fields());
    let _ = writeln!(
        s,
        "  \"scale\": \"{}\",",
        match scale {
            Scale::Quick => "quick",
            Scale::Full => "full",
        }
    );
    let _ = writeln!(s, "  \"threads\": {threads},");
    let _ = writeln!(s, "  \"total_seconds\": {total:.3},");
    s.push_str("  \"experiments\": [\n");
    for (i, r) in records.iter().enumerate() {
        // Experiments that replay no queries (table2, table4, ...) have no
        // meaningful rate: emit null rather than a misleading 0.0.
        let qps = if r.queries > 0 && r.seconds > 0.0 {
            format!("{:.1}", r.queries as f64 / r.seconds)
        } else {
            "null".to_string()
        };
        let _ = write!(
            s,
            "    {{\"name\": \"{}\", \"seconds\": {:.3}, \"queries_simulated\": {}, \
             \"queries_per_sec\": {}, \"cycles_simulated\": {}, \"cycles_skipped\": {}}}",
            r.name, r.seconds, r.queries, qps, r.cycles_simulated, r.cycles_skipped
        );
        s.push_str(if i + 1 < records.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ]\n}\n");
    s
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Quick;
    let mut names: Vec<String> = Vec::new();
    let mut json_path: Option<String> = None;
    let mut threads: usize = 1;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => scale = Scale::Quick,
            "--full" => scale = Scale::Full,
            "--threads" => {
                let v = it.next().and_then(|v| v.parse::<usize>().ok());
                match v {
                    Some(n) if n >= 1 => threads = n,
                    _ => {
                        eprintln!("error: --threads needs a positive integer\n{}", usage());
                        std::process::exit(2);
                    }
                }
            }
            "--json" => match it.next() {
                Some(path) => json_path = Some(path.clone()),
                None => {
                    eprintln!("error: --json needs a file path\n{}", usage());
                    std::process::exit(2);
                }
            },
            "--help" | "-h" => {
                println!("{}", usage());
                return;
            }
            flag if flag.starts_with('-') => {
                eprintln!("error: unknown option '{flag}'\n{}", usage());
                std::process::exit(2);
            }
            name => names.push(name.to_string()),
        }
    }
    ansmet_sim::set_default_threads(threads);
    // Validate every requested name up front so a typo fails fast instead
    // of surfacing after minutes of earlier experiments.
    let unknown: Vec<&String> = names
        .iter()
        .filter(|n| !EXPERIMENTS.contains(&n.as_str()))
        .collect();
    if !unknown.is_empty() {
        for n in &unknown {
            eprintln!("error: unknown experiment '{n}'");
        }
        eprintln!("{}", usage());
        std::process::exit(2);
    }
    if names.is_empty() {
        names = EXPERIMENTS.iter().map(|s| s.to_string()).collect();
    }
    // When `serve` is the only requested experiment, `--json` names its
    // artifact directly (`experiments serve --json BENCH_serving.json`);
    // otherwise the artifact goes to its default path and `--json` keeps
    // meaning the timing report.
    let serve_only = names.len() == 1 && names[0] == "serve";
    let mut records: Vec<TimingRecord> = Vec::with_capacity(names.len());
    for name in &names {
        let t0 = std::time::Instant::now();
        let q0 = ansmet_sim::queries_simulated();
        let c0 = ansmet_sim::cycles_simulated();
        let k0 = ansmet_sim::cycles_skipped();
        match run_experiment_with_artifacts(name, scale) {
            Some((report, artifacts)) => {
                println!("{report}");
                let seconds = t0.elapsed().as_secs_f64();
                eprintln!("[{name} finished in {seconds:.1}s]");
                records.push(TimingRecord {
                    name: name.clone(),
                    seconds,
                    queries: ansmet_sim::queries_simulated() - q0,
                    cycles_simulated: ansmet_sim::cycles_simulated() - c0,
                    cycles_skipped: ansmet_sim::cycles_skipped() - k0,
                });
                for a in artifacts {
                    // `experiments serve --json FILE` redirects the serving
                    // artifact; every other artifact goes to its default path.
                    let path = match (&json_path, serve_only, a.path) {
                        (Some(p), true, SERVING_ARTIFACT) => p.clone(),
                        _ => a.path.to_string(),
                    };
                    if let Err(e) = std::fs::write(&path, a.body) {
                        eprintln!("error: cannot write {path}: {e}");
                        std::process::exit(1);
                    }
                    eprintln!("[{name} artifact written to {path}]");
                }
            }
            None => {
                // Unreachable after validation, but keep the exit honest.
                eprintln!("error: unknown experiment '{name}'\n{}", usage());
                std::process::exit(2);
            }
        }
    }
    if let Some(path) = json_path {
        if serve_only {
            return; // --json already consumed by the serve artifact
        }
        let body = timing_json(scale, threads, &records);
        if let Err(e) = std::fs::write(&path, body) {
            eprintln!("error: cannot write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("[timing report written to {path}]");
    }
}
