//! Regenerates the paper's tables and figures.
//!
//! ```text
//! experiments [--quick|--full] [names...]
//! experiments --quick fig6 fig9      # selected experiments
//! experiments --full                 # everything, full scale
//! ```

use ansmet_bench::{run_experiment, Scale, EXPERIMENTS};

fn usage() -> String {
    format!(
        "usage: experiments [--quick|--full] [names...]\nexperiments: {}",
        EXPERIMENTS.join(" ")
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Quick;
    let mut names: Vec<String> = Vec::new();
    for a in &args {
        match a.as_str() {
            "--quick" => scale = Scale::Quick,
            "--full" => scale = Scale::Full,
            "--help" | "-h" => {
                println!("{}", usage());
                return;
            }
            flag if flag.starts_with('-') => {
                eprintln!("error: unknown option '{flag}'\n{}", usage());
                std::process::exit(2);
            }
            name => names.push(name.to_string()),
        }
    }
    // Validate every requested name up front so a typo fails fast instead
    // of surfacing after minutes of earlier experiments.
    let unknown: Vec<&String> = names
        .iter()
        .filter(|n| !EXPERIMENTS.contains(&n.as_str()))
        .collect();
    if !unknown.is_empty() {
        for n in &unknown {
            eprintln!("error: unknown experiment '{n}'");
        }
        eprintln!("{}", usage());
        std::process::exit(2);
    }
    if names.is_empty() {
        names = EXPERIMENTS.iter().map(|s| s.to_string()).collect();
    }
    for name in &names {
        let t0 = std::time::Instant::now();
        match run_experiment(name, scale) {
            Some(report) => {
                println!("{report}");
                eprintln!("[{name} finished in {:.1}s]", t0.elapsed().as_secs_f64());
            }
            None => {
                // Unreachable after validation, but keep the exit honest.
                eprintln!("error: unknown experiment '{name}'\n{}", usage());
                std::process::exit(2);
            }
        }
    }
}
