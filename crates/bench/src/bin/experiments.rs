//! Regenerates the paper's tables and figures.
//!
//! ```text
//! experiments [--quick|--full] [names...]
//! experiments --quick fig6 fig9      # selected experiments
//! experiments --full                 # everything, full scale
//! ```

use ansmet_bench::{run_experiment, Scale, EXPERIMENTS};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Quick;
    let mut names: Vec<String> = Vec::new();
    for a in &args {
        match a.as_str() {
            "--quick" => scale = Scale::Quick,
            "--full" => scale = Scale::Full,
            "--help" | "-h" => {
                eprintln!("usage: experiments [--quick|--full] [names...]");
                eprintln!("experiments: {}", EXPERIMENTS.join(" "));
                return;
            }
            name => names.push(name.to_string()),
        }
    }
    if names.is_empty() {
        names = EXPERIMENTS.iter().map(|s| s.to_string()).collect();
    }
    for name in &names {
        let t0 = std::time::Instant::now();
        match run_experiment(name, scale) {
            Some(report) => {
                println!("{report}");
                eprintln!("[{name} finished in {:.1}s]", t0.elapsed().as_secs_f64());
            }
            None => eprintln!("unknown experiment '{name}' (see --help)"),
        }
    }
}
