//! Benchmark and experiment harness for the ANSMET reproduction.
//!
//! The `experiments` binary regenerates every table and figure of the
//! paper's evaluation; the Criterion benches cover the micro-kernels
//! (distance computation, lower bounds, layout transform, the DRAM
//! simulator, and HNSW search).

pub use ansmet_sim::experiment::Scale;

pub mod ops;

pub use ops::ops_experiment;

/// All experiment names accepted by the `experiments` binary.
pub const EXPERIMENTS: &[&str] = &[
    "table2",
    "fig1",
    "fig3",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "table3",
    "table4",
    "table5",
    "loadbal",
    "ablation",
    "faults",
    "serve",
    "resilience",
    "trace",
    "freshness",
    "ops",
    "cluster",
];

/// Default artifact file written by the `serve` experiment.
pub const SERVING_ARTIFACT: &str = "BENCH_serving.json";
/// Default artifact file written by the `resilience` experiment.
pub const RESILIENCE_ARTIFACT: &str = "BENCH_resilience.json";
/// Default artifact file written by the `freshness` experiment.
pub const FRESHNESS_ARTIFACT: &str = "BENCH_freshness.json";
/// Perfetto trace written by the `trace` experiment.
pub const TRACE_ARTIFACT: &str = "trace.json";
/// Metrics snapshot written by the `trace` experiment.
pub const METRICS_ARTIFACT: &str = "BENCH_metrics.json";
/// Ops-plane artifact written by the `ops` experiment.
pub const OPS_ARTIFACT: &str = "BENCH_ops.json";
/// Prometheus text exposition written by the `ops` experiment.
pub const OPS_EXPOSITION_ARTIFACT: &str = "BENCH_ops.prom";
/// Sharded-cluster artifact written by the `cluster` experiment.
pub const CLUSTER_ARTIFACT: &str = "BENCH_cluster.json";

/// One file an experiment wants written next to its text report.
#[derive(Debug, Clone)]
pub struct Artifact {
    /// Default output path (relative to the working directory).
    pub path: &'static str,
    /// File body, already rendered.
    pub body: String,
}

/// Run one experiment by name, returning its text report plus any
/// artifacts it wants written (`serve` and `resilience` emit their
/// report JSON; `trace` emits a Perfetto trace and a metrics snapshot;
/// everything else emits none). BENCH JSON artifacts carry a provenance
/// header (git revision + config fingerprint).
///
/// Returns `None` for an unknown name.
pub fn run_experiment_with_artifacts(name: &str, scale: Scale) -> Option<(String, Vec<Artifact>)> {
    match name {
        "serve" => {
            let (text, json) = ansmet_serve::serve_experiment(scale);
            Some((
                text,
                vec![Artifact {
                    path: SERVING_ARTIFACT,
                    body: with_provenance(&json),
                }],
            ))
        }
        "resilience" => {
            let (text, json) = ansmet_serve::resilience_experiment(scale);
            Some((
                text,
                vec![Artifact {
                    path: RESILIENCE_ARTIFACT,
                    body: with_provenance(&json),
                }],
            ))
        }
        "freshness" => {
            let (text, json) = ansmet_freshness::freshness_experiment(scale);
            Some((
                text,
                vec![Artifact {
                    path: FRESHNESS_ARTIFACT,
                    body: with_provenance(&json),
                }],
            ))
        }
        "cluster" => {
            let (text, json) = ansmet_cluster::cluster_experiment(scale);
            Some((
                text,
                vec![Artifact {
                    path: CLUSTER_ARTIFACT,
                    body: with_provenance(&json),
                }],
            ))
        }
        "ops" => {
            let (text, json, expo) = ops_experiment(scale);
            Some((
                text,
                vec![
                    Artifact {
                        path: OPS_ARTIFACT,
                        body: with_provenance(&json),
                    },
                    Artifact {
                        path: OPS_EXPOSITION_ARTIFACT,
                        body: expo,
                    },
                ],
            ))
        }
        "trace" => {
            let bundle = ansmet_sim::experiment::trace_bundle(scale);
            Some((
                bundle.report,
                vec![
                    Artifact {
                        path: TRACE_ARTIFACT,
                        body: bundle.perfetto_json,
                    },
                    Artifact {
                        path: METRICS_ARTIFACT,
                        body: with_provenance(&bundle.metrics_json),
                    },
                ],
            ))
        }
        _ => run_experiment(name, scale).map(|text| (text, Vec::new())),
    }
}

/// Run one experiment by name at the given scale.
///
/// Returns `None` for an unknown name.
pub fn run_experiment(name: &str, scale: Scale) -> Option<String> {
    use ansmet_sim::experiment as e;
    let out = match name {
        "table2" => e::table2(scale),
        "fig1" => e::fig1(scale),
        "fig3" => e::fig3(scale),
        "fig6" => {
            let ks: &[usize] = match scale {
                Scale::Quick => &[10],
                Scale::Full => &[1, 5, 10],
            };
            e::fig6(scale, ks)
        }
        "fig7" => e::fig7(scale),
        "fig8" => e::fig8(scale),
        "fig9" => e::fig9(scale),
        "fig10" => e::fig10(scale),
        "fig11" => e::fig11(scale),
        "fig12" => e::fig12(scale),
        "table3" => e::table3(scale),
        "table4" => e::table4(scale),
        "table5" => e::table5(scale),
        "loadbal" => e::loadbal(scale),
        "ablation" => e::ablation(scale),
        "faults" => e::faults(scale),
        "serve" => ansmet_serve::serve_experiment(scale).0,
        "resilience" => ansmet_serve::resilience_experiment(scale).0,
        "freshness" => ansmet_freshness::freshness_experiment(scale).0,
        "ops" => ops_experiment(scale).0,
        "cluster" => ansmet_cluster::cluster_experiment(scale).0,
        "trace" => e::trace(scale),
        _ => return None,
    };
    Some(out)
}

/// The git revision of the working tree (`git describe --always
/// --dirty`), or `"unknown"` outside a repository.
pub fn git_revision() -> String {
    std::process::Command::new("git")
        .args(["describe", "--always", "--dirty"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// FNV-1a fingerprint of the default [`SystemConfig`] — changes whenever
/// any simulated parameter changes, so artifacts record which modeled
/// machine produced them.
///
/// [`SystemConfig`]: ansmet_sim::SystemConfig
pub fn config_fingerprint() -> u64 {
    let cfg = ansmet_sim::SystemConfig::default();
    ansmet_obs::fingerprint64(format!("{cfg:?}").as_bytes())
}

/// The provenance fields embedded in every BENCH JSON artifact, as
/// `"key": value` lines (no surrounding braces).
pub fn provenance_fields() -> String {
    format!(
        "  \"git_revision\": {},\n  \"config_fingerprint\": \"{:#018x}\",\n",
        ansmet_obs::json_string(&git_revision()),
        config_fingerprint(),
    )
}

/// Insert the provenance fields at the top of a JSON object body
/// (which must start with `{`).
pub fn with_provenance(body: &str) -> String {
    let rest = body
        .strip_prefix("{\n")
        .or_else(|| body.strip_prefix('{'))
        .expect("artifact body is a JSON object");
    format!("{{\n{}{}", provenance_fields(), rest)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_experiment_is_none() {
        assert!(run_experiment("fig99", Scale::Quick).is_none());
        assert!(run_experiment_with_artifacts("fig99", Scale::Quick).is_none());
    }

    #[test]
    fn experiment_list_is_complete() {
        assert_eq!(EXPERIMENTS.len(), 22);
        assert!(EXPERIMENTS.contains(&"resilience"));
        assert!(EXPERIMENTS.contains(&"freshness"));
        assert!(EXPERIMENTS.contains(&"ops"));
        assert!(EXPERIMENTS.contains(&"cluster"));
    }

    #[test]
    fn serve_and_trace_emit_artifacts_and_others_do_not() {
        let (text, artifacts) = run_experiment_with_artifacts("serve", Scale::Quick).unwrap();
        assert!(text.contains("serving"));
        assert_eq!(artifacts.len(), 1);
        assert_eq!(artifacts[0].path, SERVING_ARTIFACT);
        assert!(artifacts[0].body.contains("\"experiment\": \"serve\""));
        assert!(artifacts[0].body.contains("\"git_revision\""));

        let (text, artifacts) = run_experiment_with_artifacts("trace", Scale::Quick).unwrap();
        assert!(text.contains("cycle attribution"));
        assert_eq!(artifacts.len(), 2);
        assert_eq!(artifacts[0].path, TRACE_ARTIFACT);
        assert!(artifacts[0].body.contains("\"traceEvents\""));
        assert_eq!(artifacts[1].path, METRICS_ARTIFACT);
        assert!(artifacts[1].body.contains("\"config_fingerprint\""));

        let (_, none) = run_experiment_with_artifacts("table2", Scale::Quick).unwrap();
        assert!(none.is_empty());
    }

    #[test]
    fn provenance_injection_preserves_json_shape() {
        let body = "{\n  \"experiment\": \"x\"\n}\n";
        let out = with_provenance(body);
        assert!(out.starts_with("{\n  \"git_revision\": "));
        assert!(out.contains("\"config_fingerprint\": \"0x"));
        assert!(out.ends_with("  \"experiment\": \"x\"\n}\n"));
        assert_eq!(out.matches('{').count(), out.matches('}').count());
    }

    #[test]
    fn config_fingerprint_is_stable_within_a_build() {
        assert_eq!(config_fingerprint(), config_fingerprint());
        assert_ne!(config_fingerprint(), 0);
    }
}
