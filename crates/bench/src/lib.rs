//! Benchmark and experiment harness for the ANSMET reproduction.
//!
//! The `experiments` binary regenerates every table and figure of the
//! paper's evaluation; the Criterion benches cover the micro-kernels
//! (distance computation, lower bounds, layout transform, the DRAM
//! simulator, and HNSW search).

pub use ansmet_sim::experiment::Scale;

/// All experiment names accepted by the `experiments` binary.
pub const EXPERIMENTS: &[&str] = &[
    "table2", "fig1", "fig3", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "table3",
    "table4", "table5", "loadbal", "ablation", "faults", "serve",
];

/// Default artifact file written by the `serve` experiment.
pub const SERVING_ARTIFACT: &str = "BENCH_serving.json";

/// Run one experiment by name, returning `(text report, optional JSON
/// artifact body)`. Only `serve` emits an artifact today.
///
/// Returns `None` for an unknown name.
pub fn run_experiment_with_artifact(name: &str, scale: Scale) -> Option<(String, Option<String>)> {
    if name == "serve" {
        let (text, json) = ansmet_serve::serve_experiment(scale);
        return Some((text, Some(json)));
    }
    run_experiment(name, scale).map(|text| (text, None))
}

/// Run one experiment by name at the given scale.
///
/// Returns `None` for an unknown name.
pub fn run_experiment(name: &str, scale: Scale) -> Option<String> {
    use ansmet_sim::experiment as e;
    let out = match name {
        "table2" => e::table2(scale),
        "fig1" => e::fig1(scale),
        "fig3" => e::fig3(scale),
        "fig6" => {
            let ks: &[usize] = match scale {
                Scale::Quick => &[10],
                Scale::Full => &[1, 5, 10],
            };
            e::fig6(scale, ks)
        }
        "fig7" => e::fig7(scale),
        "fig8" => e::fig8(scale),
        "fig9" => e::fig9(scale),
        "fig10" => e::fig10(scale),
        "fig11" => e::fig11(scale),
        "fig12" => e::fig12(scale),
        "table3" => e::table3(scale),
        "table4" => e::table4(scale),
        "table5" => e::table5(scale),
        "loadbal" => e::loadbal(scale),
        "ablation" => e::ablation(scale),
        "faults" => e::faults(scale),
        "serve" => ansmet_serve::serve_experiment(scale).0,
        _ => return None,
    };
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_experiment_is_none() {
        assert!(run_experiment("fig99", Scale::Quick).is_none());
    }

    #[test]
    fn experiment_list_is_complete() {
        assert_eq!(EXPERIMENTS.len(), 17);
    }

    #[test]
    fn serve_emits_artifact_and_others_do_not() {
        let (text, artifact) = run_experiment_with_artifact("serve", Scale::Quick).unwrap();
        assert!(text.contains("serving"));
        let body = artifact.expect("serve must produce a JSON artifact");
        assert!(body.contains("\"experiment\": \"serve\""));
        let (_, none) = run_experiment_with_artifact("table2", Scale::Quick).unwrap();
        assert!(none.is_none());
    }
}
