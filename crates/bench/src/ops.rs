//! The `ops` experiment: the streaming operations plane replaying a
//! storm + churn scenario.
//!
//! Two halves share one [`OpsPlane`]-shaped harness:
//!
//! * **Serve storm** — the resilience experiment's scenario (a scripted
//!   single-rank-group outage over the second quarter of the arrival
//!   horizon) served with breakers, hedging, brownout admission, *and* a
//!   periodic maintenance pause, first untraced to derive the clean
//!   p99.9 tail threshold, then through an [`OpsPlane`]: windowed time
//!   series, a multi-window burn-rate alert timeline that must fire
//!   during the storm and clear after it, and a forensic digest for
//!   every completion breaching the threshold.
//! * **Freshness churn** — the churn loop (mixed read/update stream,
//!   epochs pausing the device) through a second plane, with the tail
//!   threshold derived from an untraced run over identical initial
//!   state.
//!
//! Both halves rerun untraced and compare served-results fingerprints:
//! the plane observes, never steers, so the artifact must report
//! `fingerprints_identical: true` twice. Everything is seeded and
//! integer-cycle — `BENCH_ops.json` and the exposition dump are
//! bit-identical across reruns and host thread counts.

use std::fmt::Write as _;

use ansmet_faults::StormPlan;
use ansmet_freshness::{
    run_churn, run_churn_with_sink, ChurnConfig, EpochConfig, LayoutArtifacts, MutableIndex,
    UpdateTenantSpec,
};
use ansmet_host::RetryPolicy;
use ansmet_obs::{ForensicCause, OpsConfig, OpsPlane, OpsReport, SloSpec};
use ansmet_serve::{
    generate_arrivals, ops_serve_config, run_serve, run_serve_with_sink, ArrivalProcess,
    MaintenancePlan, ResilienceConfig, StormProfile, TenantSpec,
};
use ansmet_sim::experiment::Scale;
use ansmet_sim::{saturated_capacity_qps, Design, SystemConfig, Workload};
use ansmet_vecdata::{Dataset, SynthSpec};

/// One instrumented half of the scenario, distilled.
struct HalfOutcome {
    label: &'static str,
    tail_threshold_cycles: u64,
    fingerprints_identical: bool,
    report: OpsReport,
}

impl HalfOutcome {
    /// Digest count per attributed cause, in cause-name order.
    fn cause_histogram(&self) -> Vec<(&'static str, u64)> {
        let mut hist: Vec<(&'static str, u64)> = Vec::new();
        for d in &self.report.digests {
            let key = d.cause.as_str();
            match hist.iter_mut().find(|(k, _)| *k == key) {
                Some((_, n)) => *n += 1,
                None => hist.push((key, 1)),
            }
        }
        hist.sort_by_key(|(k, _)| *k);
        hist
    }

    fn render(&self, text: &mut String) {
        let _ = writeln!(
            text,
            "   {}: {} completions, tail threshold {} cycles, {} digests ({} dropped), traced results identical: {}",
            self.label,
            self.report.completed,
            self.tail_threshold_cycles,
            self.report.digests.len(),
            self.report.dropped_digests,
            if self.fingerprints_identical { "yes" } else { "NO" },
        );
        for (cause, n) in self.cause_histogram() {
            let _ = writeln!(text, "     cause {cause}: {n}");
        }
        for a in &self.report.alerts {
            let _ = writeln!(
                text,
                "     slo {}: first fire {}, last clear {}, firing at end: {}",
                a.slo,
                match a.first_fire() {
                    Some(c) => c.to_string(),
                    None => "never".into(),
                },
                match a.last_clear() {
                    Some(c) => c.to_string(),
                    None => "never".into(),
                },
                a.firing_at_end(),
            );
        }
    }

    fn to_json(&self, extra_fields: &str) -> String {
        let mut s = String::from("{\n");
        let _ = writeln!(
            s,
            "    \"tail_threshold_cycles\": {},\n    \"fingerprints_identical\": {},\n    \
             \"all_digests_attributed\": {},{}",
            self.tail_threshold_cycles,
            self.fingerprints_identical,
            self.report.all_digests_attributed(),
            extra_fields,
        );
        s.push_str("    \"ops\": ");
        s.push_str(&indent_tail(&self.report.to_json(), "    "));
        s.push_str("\n  }");
        s
    }
}

/// Re-indent every line after the first by `pad` so a nested JSON body
/// lines up inside its parent.
fn indent_tail(json: &str, pad: &str) -> String {
    let mut out = String::with_capacity(json.len());
    for (i, line) in json.lines().enumerate() {
        if i > 0 {
            out.push('\n');
            out.push_str(pad);
        }
        out.push_str(line);
    }
    out
}

/// The serve half: storm + resilience + maintenance through the plane.
#[allow(clippy::too_many_lines)]
fn serve_half(scale: Scale) -> (HalfOutcome, u64, u64, u64, MaintenancePlan) {
    let spec = scale.spec(SynthSpec::sift());
    let wl = Workload::prepare_shared(&spec, 10, None);
    let cfg = SystemConfig::default();
    let mem_clock = cfg.dram.clock_mhz;
    let queries = match scale {
        Scale::Quick => 60,
        Scale::Full => 300,
    };

    let capacity = saturated_capacity_qps(&wl, &cfg, Design::NdpEtOpt);
    let per_query = (mem_clock as f64 * 1e6 / capacity.max(1e-9)) as u64;
    let slo_cycles = per_query * 32;
    let base = ops_serve_config(0x0B5E, capacity, queries, slo_cycles);

    // Storm over the second quarter of the arrival horizon (the
    // resilience experiment's envelope), maintenance pauses on a cadence
    // that lands some pauses inside it.
    let arrivals = generate_arrivals(&base.tenants, wl.queries.len(), base.seed, mem_clock);
    let horizon = arrivals.last().map(|a| a.cycle).unwrap_or(0).max(64);
    let (storm_start, storm_end) = (horizon / 4, horizon / 2);
    let storm = StormProfile {
        plan: StormPlan::single_group_outage(0, storm_start, storm_end),
        retry: RetryPolicy::default_ndp(),
    };
    let maintenance = MaintenancePlan {
        interval_cycles: (horizon / 5).max(1),
        pause_cycles: slo_cycles,
    };
    let storm_cfg = base
        .clone()
        .with_storm(storm)
        .with_resilience(ResilienceConfig::default())
        .with_maintenance(maintenance);

    // Clean untraced pass derives the p99.9 tail threshold the forensic
    // recorder arms on.
    let clean = run_serve(&wl, &cfg, &base);
    let tail_threshold = clean.total.p999.max(1);

    // Alert windows sized from the horizon: the slow window equals the
    // storm length (8 fast windows), so the burn rate both accumulates
    // inside the storm and drains after it.
    let fast = (horizon / 32).max(1);
    let slo = SloSpec {
        name: "serve_total_latency",
        threshold_cycles: slo_cycles,
        target: 0.9,
        fast_window_cycles: fast,
        slow_window_cycles: fast * 8,
        fire_burn: 2.0,
        clear_burn: 1.0,
        min_count: 4,
    };

    let mut plane = OpsPlane::new(OpsConfig {
        window_cycles: fast,
        slos: vec![slo],
        tail_threshold_cycles: tail_threshold,
        max_digests: 256,
    });
    let traced = run_serve_with_sink(&wl, &cfg, &storm_cfg, &mut plane);
    let untraced = run_serve(&wl, &cfg, &storm_cfg);
    let outcome = HalfOutcome {
        label: "serve storm",
        tail_threshold_cycles: tail_threshold,
        fingerprints_identical: traced.results_fingerprint == untraced.results_fingerprint,
        report: plane.finish(),
    };
    (outcome, storm_start, storm_end, slo_cycles, maintenance)
}

/// The churn half's configuration (the freshness experiment's stream
/// shape, re-seeded for this scenario).
fn churn_config(scale: Scale, mem_clock_mhz: u64) -> ChurnConfig {
    let (reads, ops) = match scale {
        Scale::Quick => (80, 60),
        Scale::Full => (400, 300),
    };
    ChurnConfig {
        seed: 0x0B5F,
        mem_clock_mhz,
        read_tenants: vec![
            TenantSpec {
                name: "interactive".into(),
                weight: 4,
                process: ArrivalProcess::Poisson { qps: 150_000.0 },
                slo_cycles: 1_000_000,
                queries: reads,
            },
            TenantSpec {
                name: "bulk".into(),
                weight: 1,
                process: ArrivalProcess::Bursty {
                    base_qps: 20_000.0,
                    burst_qps: 120_000.0,
                    period_cycles: 2_000_000,
                    burst_frac: 0.2,
                },
                slo_cycles: 4_000_000,
                queries: reads / 2,
            },
        ],
        update_tenants: vec![UpdateTenantSpec {
            name: "writer".into(),
            weight: 2,
            qps: 50_000.0,
            ops,
            delete_frac: 0.35,
        }],
        k: 10,
        ef: 64,
        queue_depth_limit: 128,
        epoch: EpochConfig {
            interval_cycles: 600_000,
            conservative_headroom: 0.02,
        },
    }
}

/// Build the churn half's initial state: live index over 80 % of the
/// dataset, the rest held out as the insert pool.
fn churn_state(scale: Scale) -> (MutableIndex, LayoutArtifacts, Vec<Vec<f32>>, Vec<Vec<f32>>) {
    let spec = scale.spec(SynthSpec::sift());
    let (full_data, queries) = spec.generate();
    let n = full_data.len();
    let base_n = n - n / 5;
    let base = Dataset::from_values(
        full_data.name(),
        full_data.dtype(),
        full_data.metric(),
        full_data.dim(),
        (0..base_n)
            .flat_map(|i| full_data.vector(i).to_vec())
            .collect(),
    );
    let pending: Vec<Vec<f32>> = (base_n..n).map(|i| full_data.vector(i).to_vec()).collect();
    let index = MutableIndex::build_hnsw(base, ansmet_index::HnswParams::quick(), 0xF5E5);
    let layout = LayoutArtifacts::plan(&index, 0.01);
    (index, layout, queries, pending)
}

/// The churn half: epochs pausing the device under a mixed stream.
fn churn_half(scale: Scale) -> HalfOutcome {
    let sys = SystemConfig::default();
    let cfg = churn_config(scale, sys.dram.clock_mhz);

    // Untraced pass over fresh state derives the read-latency p99.9
    // threshold; the traced pass replays identical initial state.
    let (mut idx, mut layout, queries, pending) = churn_state(scale);
    let untraced = run_churn(&mut idx, &mut layout, &queries, &pending, &cfg);
    let tail_threshold = untraced.read_latency.quantile(0.999).max(1);

    let slo = SloSpec {
        name: "churn_read_latency",
        threshold_cycles: untraced.read_latency.quantile(0.99).max(1),
        target: 0.9,
        fast_window_cycles: cfg.epoch.interval_cycles / 4,
        slow_window_cycles: cfg.epoch.interval_cycles,
        fire_burn: 2.0,
        clear_burn: 1.0,
        min_count: 3,
    };
    let mut plane = OpsPlane::new(OpsConfig {
        window_cycles: cfg.epoch.interval_cycles / 4,
        slos: vec![slo],
        tail_threshold_cycles: tail_threshold,
        max_digests: 256,
    });
    let (mut idx2, mut layout2, queries2, pending2) = churn_state(scale);
    let traced = run_churn_with_sink(
        &mut idx2,
        &mut layout2,
        &queries2,
        &pending2,
        &cfg,
        &mut plane,
    );
    HalfOutcome {
        label: "freshness churn",
        tail_threshold_cycles: tail_threshold,
        fingerprints_identical: traced.results_fingerprint == untraced.results_fingerprint,
        report: plane.finish(),
    }
}

/// Run the ops experiment at `scale`; returns `(text, json, exposition)`
/// where `json` is the `BENCH_ops.json` artifact body and `exposition`
/// is the Prometheus text dump of both halves' run totals.
pub fn ops_experiment(scale: Scale) -> (String, String, String) {
    let (serve, storm_start, storm_end, slo_cycles, maintenance) = serve_half(scale);
    let churn = churn_half(scale);

    let alert = &serve.report.alerts[0];
    let fired_during_storm = alert
        .first_fire()
        .is_some_and(|c| c >= storm_start && c < storm_end);
    let cleared_after_storm =
        alert.last_clear().is_some_and(|c| c >= storm_end) && !alert.firing_at_end();

    let mut text = String::new();
    let _ = writeln!(
        text,
        "ops plane — storm on group 0 over [{storm_start}, {storm_end}), SLO {slo_cycles} cycles, \
         maintenance pause {} cycles every {}",
        maintenance.pause_cycles, maintenance.interval_cycles,
    );
    serve.render(&mut text);
    let _ = writeln!(
        text,
        "   alert fired during storm: {}, cleared after: {}",
        if fired_during_storm { "yes" } else { "NO" },
        if cleared_after_storm { "yes" } else { "NO" },
    );
    churn.render(&mut text);
    let _ = writeln!(
        text,
        "   digests attributed (no unknown cause): serve {}, churn {}",
        if serve.report.all_digests_attributed() {
            "yes"
        } else {
            "NO"
        },
        if churn.report.all_digests_attributed() {
            "yes"
        } else {
            "NO"
        },
    );

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"experiment\": \"ops\",");
    let _ = writeln!(
        json,
        "  \"scale\": \"{}\",",
        match scale {
            Scale::Quick => "quick",
            Scale::Full => "full",
        }
    );
    let _ = writeln!(json, "  \"slo_cycles\": {slo_cycles},");
    let _ = writeln!(
        json,
        "  \"storm\": {{\"group\": 0, \"start_cycle\": {storm_start}, \"end_cycle\": {storm_end}}},",
    );
    let _ = writeln!(
        json,
        "  \"maintenance\": {{\"interval_cycles\": {}, \"pause_cycles\": {}}},",
        maintenance.interval_cycles, maintenance.pause_cycles,
    );
    let serve_extra = format!(
        "\n    \"alert_fired_during_storm\": {fired_during_storm},\n    \
         \"alert_cleared_after_storm\": {cleared_after_storm},",
    );
    let _ = writeln!(json, "  \"serve\": {},", serve.to_json(&serve_extra));
    let _ = writeln!(json, "  \"churn\": {}", churn.to_json(""));
    json.push_str("}\n");

    let mut expo = String::new();
    expo.push_str("# ops experiment: serve storm pass\n");
    expo.push_str(&serve.report.exposition());
    expo.push_str("# ops experiment: freshness churn pass\n");
    expo.push_str(&churn.report.exposition());

    (text, json, expo)
}

/// Assert-friendly view of how many digests carry the given cause.
pub fn digest_cause_count(report: &OpsReport, cause: ForensicCause) -> usize {
    report.digests.iter().filter(|d| d.cause == cause).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_ops_experiment_holds_its_invariants() {
        let (t, j, e) = ops_experiment(Scale::Quick);
        assert!(t.contains("traced results identical: yes"), "{t}");
        assert!(t.contains("alert fired during storm: yes"), "{t}");
        assert!(t.contains("cleared after: yes"), "{t}");
        assert!(
            t.contains("digests attributed (no unknown cause): serve yes, churn yes"),
            "{t}"
        );
        assert!(j.contains("\"experiment\": \"ops\""));
        assert!(j.contains("\"alert_fired_during_storm\": true"), "{j}");
        assert!(j.contains("\"alert_cleared_after_storm\": true"), "{j}");
        assert!(!j.contains("\"fingerprints_identical\": false"), "{j}");
        assert!(!j.contains("\"all_digests_attributed\": false"), "{j}");
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert!(e.contains("# TYPE"), "{e}");
        assert!(e.contains("ansmet_serve_total_cycles_count"), "{e}");
        assert!(e.contains("ansmet_churn_total_cycles_count"), "{e}");
    }

    #[test]
    fn quick_ops_experiment_is_bit_identical_across_reruns() {
        let (t1, j1, e1) = ops_experiment(Scale::Quick);
        let (t2, j2, e2) = ops_experiment(Scale::Quick);
        assert_eq!(t1, t2, "text report must be bit-identical");
        assert_eq!(j1, j2, "json artifact must be bit-identical");
        assert_eq!(e1, e2, "exposition must be bit-identical");
    }
}
