//! Load-Reduced DIMM implementation variant (§5.1).
//!
//! LRDIMMs have no unified buffer chip: the rank's data path runs through
//! separate **data buffers** (DBs, one per DRAM-chip group) plus a
//! register clock driver (RCD). Following MEDAL, ANSMET places a slice of
//! the distance computing unit in every DB — each DB sees only the bytes
//! its DRAM chips contribute to a 64 B burst — and adds a hierarchical
//! inter-chip bus to the RCD, which aggregates the partial sums and makes
//! the early-termination decision.
//!
//! Functionally this computes exactly the same bound (a sum over
//! dimensions is distributive over byte slices); only latency, area, and
//! energy change. [`LrdimmUnit::per_line_latency`] exposes the per-fetch
//! pipeline latency so the system simulator can swap topologies.

use crate::compute::ComputeUnit;

/// LRDIMM NDP topology parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LrdimmConfig {
    /// Data buffers per rank (DDR4/DDR5 LRDIMMs use 8–10).
    pub data_buffers: usize,
    /// NDP-clock cycles per hop on the inter-chip hierarchical bus.
    pub hop_cycles: u64,
    /// NDP-clock cycles for the RCD's final aggregate + compare.
    pub rcd_aggregate_cycles: u64,
}

impl Default for LrdimmConfig {
    fn default() -> Self {
        LrdimmConfig {
            data_buffers: 8,
            hop_cycles: 2,
            rcd_aggregate_cycles: 2,
        }
    }
}

/// The per-rank LRDIMM NDP unit: DB compute slices + RCD aggregation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LrdimmUnit {
    /// Topology parameters.
    pub config: LrdimmConfig,
    /// The compute slice instantiated in each DB (lanes divided by DB
    /// count relative to the unified design).
    pub slice: ComputeUnit,
}

impl LrdimmUnit {
    /// Build from the unified-buffer compute unit: the 16 lanes are
    /// distributed across the DBs (at least one lane each).
    pub fn from_unified(unified: &ComputeUnit, config: LrdimmConfig) -> Self {
        let mut slice = *unified;
        slice.lanes = (unified.lanes / config.data_buffers as u32).max(1);
        // Each DB's area/power scales with its lane share; the RCD adder
        // tree adds a fixed overhead folded into the aggregate cycles.
        slice.active_mw = unified.active_mw / config.data_buffers as f64;
        slice.area_mm2 = unified.area_mm2 / config.data_buffers as f64;
        LrdimmUnit { config, slice }
    }

    /// Elements of one 64 B line processed by each DB (the byte slice its
    /// DRAM chips drive).
    pub fn elements_per_db(&self, elements_in_line: usize) -> usize {
        elements_in_line.div_ceil(self.config.data_buffers)
    }

    /// NDP-clock latency of one 64 B fetch through the distributed
    /// pipeline: the slowest DB slice, plus the hierarchical bus to the
    /// RCD (a binary-tree depth of hops), plus the final aggregation.
    pub fn per_line_latency(&self, elements_in_line: usize) -> u64 {
        let db_latency = self
            .slice
            .cycles_per_line(self.elements_per_db(elements_in_line));
        let tree_depth = (self.config.data_buffers as f64).log2().ceil() as u64;
        db_latency + tree_depth * self.config.hop_cycles + self.config.rcd_aggregate_cycles
    }

    /// Total active power of the rank's NDP logic in mW (all DB slices;
    /// the RCD adder tree is folded into the slice budget).
    pub fn active_mw(&self) -> f64 {
        self.slice.active_mw * self.config.data_buffers as f64
    }

    /// Total area in mm² across the DBs.
    pub fn area_mm2(&self) -> f64 {
        self.slice.area_mm2 * self.config.data_buffers as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit() -> LrdimmUnit {
        LrdimmUnit::from_unified(&ComputeUnit::default(), LrdimmConfig::default())
    }

    #[test]
    fn lanes_distributed_across_dbs() {
        let u = unit();
        assert_eq!(u.slice.lanes, 2); // 16 lanes / 8 DBs
        assert_eq!(u.elements_per_db(64), 8);
        assert_eq!(u.elements_per_db(16), 2);
    }

    #[test]
    fn power_and_area_are_conserved() {
        let unified = ComputeUnit::default();
        let u = unit();
        assert!((u.active_mw() - unified.active_mw).abs() < 1e-9);
        assert!((u.area_mm2() - unified.area_mm2).abs() < 1e-9);
    }

    #[test]
    fn aggregation_adds_latency_over_unified() {
        let unified = ComputeUnit::default();
        let u = unit();
        for elements in [16usize, 64, 512] {
            let mono = unified.cycles_per_line(elements);
            let dist = u.per_line_latency(elements);
            assert!(
                dist >= mono.min(dist),
                "distributed pipeline reported {dist} vs {mono}"
            );
            // The tree and RCD overhead is visible for small lines…
            if elements <= 16 {
                assert!(dist > mono);
            }
        }
    }

    #[test]
    fn wide_lines_amortize_the_tree() {
        // With many elements per line, 8 DBs × 2 lanes beat 16 monolithic
        // lanes only marginally less; the overhead stays bounded.
        let unified = ComputeUnit::default();
        let u = unit();
        let mono = unified.cycles_per_line(512);
        let dist = u.per_line_latency(512);
        assert!(dist <= mono + 12, "distributed {dist} vs unified {mono}");
    }

    #[test]
    fn degenerate_single_db() {
        let u = LrdimmUnit::from_unified(
            &ComputeUnit::default(),
            LrdimmConfig {
                data_buffers: 1,
                hop_cycles: 0,
                rcd_aggregate_cycles: 0,
            },
        );
        assert_eq!(u.slice.lanes, 16);
        assert_eq!(
            u.per_line_latency(64),
            ComputeUnit::default().cycles_per_line(64)
        );
    }
}
