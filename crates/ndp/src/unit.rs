//! Functional (instruction-level) model of one NDP unit (§5.2).
//!
//! The unit sits in the DIMM buffer chip of one rank. It consumes decoded
//! [`NdpInstruction`]s, manages its [`QshrFile`], issues 64 B fetches to
//! the local rank, restores fetched chunks from the transformed layout,
//! refines the conservative distance lower bound after every fetch, and
//! early-terminates tasks whose bound crosses their threshold. This model
//! is *behavioral*: memory is a callback returning line payloads, and time
//! is not modeled (the timing composition lives in `ansmet-sim`). Its
//! value is executable precision — the instruction-level contract between
//! host driver and buffer chip, testable against the algorithmic engine.

use ansmet_core::{DistanceBounder, FetchSchedule, ValueInterval};
use ansmet_vecdata::{ElemType, Metric};

use crate::error::NdpError;
use crate::instruction::{ConfigPayload, NdpInstruction};
use crate::qshr::{QshrFile, QshrState};

/// Outcome of one processed task.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskOutcome {
    /// QSHR that ran the task.
    pub qshr: usize,
    /// Task slot within the QSHR.
    pub slot: usize,
    /// 64 B fetches performed.
    pub fetches: u32,
    /// Final distance if in-bound, else `None` (early-terminated; the
    /// result field keeps the invalid MAX sentinel).
    pub distance: Option<f32>,
}

/// The per-unit configuration established by a configure instruction.
#[derive(Debug, Clone, Copy, PartialEq)]
struct UnitConfig {
    dtype: ElemType,
    dim: usize,
    metric: Metric,
    schedule_steps: (u8, u8, u8, u8), // prefix_len, n_c, t_c, n_f
}

/// One NDP unit: QSHR file + distance pipeline, fed by instructions.
#[derive(Debug)]
pub struct NdpUnit {
    qshrs: QshrFile,
    config: Option<UnitConfig>,
    /// Per-dimension on-chip common prefix values (empty when prefix
    /// elimination is off).
    dim_prefixes: Vec<u32>,
}

impl Default for NdpUnit {
    fn default() -> Self {
        NdpUnit {
            qshrs: QshrFile::new(),
            config: None,
            dim_prefixes: Vec::new(),
        }
    }
}

impl NdpUnit {
    /// A fresh, unconfigured unit.
    pub fn new() -> Self {
        Self::default()
    }

    /// Load the on-chip per-dimension common prefix values (delivered at
    /// preprocessing time alongside the configure instruction).
    pub fn load_dim_prefixes(&mut self, prefixes: Vec<u32>) {
        self.dim_prefixes = prefixes;
    }

    /// The active fetch schedule, if configured.
    pub fn schedule(&self) -> Option<FetchSchedule> {
        let c = self.config?;
        let (prefix_len, n_c, t_c, n_f) = c.schedule_steps;
        Some(if t_c == 0 {
            FetchSchedule::uniform_after_prefix(c.dtype, prefix_len as u32, n_f.max(1) as u32)
        } else {
            FetchSchedule::dual(
                c.dtype,
                prefix_len as u32,
                n_c.max(1) as u32,
                t_c as u32,
                n_f.max(1) as u32,
            )
        })
    }

    /// Execute one host instruction. `Poll` returns the QSHR's result
    /// array; other instructions return `None`.
    ///
    /// # Errors
    ///
    /// Rejects protocol violations the real hardware would reject
    /// (data-path instructions before a configure, task/query delivery to
    /// a QSHR in the wrong state, overfilled task slots). The unit state
    /// is unchanged on error, so the host driver can retry or recover.
    pub fn execute(&mut self, instr: &NdpInstruction) -> Result<Option<Vec<f32>>, NdpError> {
        match instr {
            NdpInstruction::Configure(c) => {
                self.apply_config(c);
                Ok(None)
            }
            NdpInstruction::SetQuery { qshr, seq, .. } => {
                let cfg = self.config.ok_or(NdpError::NotConfigured)?;
                let q = self.qshrs.get_mut(*qshr as usize);
                match q.state() {
                    QshrState::Free => {
                        // First slice implies allocation for a full query.
                        let bytes = cfg.dim * cfg.dtype.bytes();
                        q.allocate(bytes.div_ceil(64).min(16) as u16);
                    }
                    QshrState::Loading => {}
                    other => {
                        return Err(NdpError::BadState {
                            expected: QshrState::Loading,
                            actual: other,
                        })
                    }
                }
                let _ = seq;
                q.receive_query_slice();
                Ok(None)
            }
            NdpInstruction::SetSearch { qshr, tasks } => {
                let cfg = self.config.ok_or(NdpError::NotConfigured)?;
                let q = self.qshrs.get_mut(*qshr as usize);
                if q.state() == QshrState::Free {
                    let bytes = cfg.dim * cfg.dtype.bytes();
                    q.allocate(bytes.div_ceil(64).min(16) as u16);
                }
                q.receive_tasks(tasks)?;
                Ok(None)
            }
            NdpInstruction::Poll { qshr } => {
                Ok(Some(self.qshrs.get(*qshr as usize).poll().to_vec()))
            }
        }
    }

    fn apply_config(&mut self, c: &ConfigPayload) {
        self.config = Some(UnitConfig {
            dtype: c.dtype,
            dim: c.dim as usize,
            metric: c.metric.searched_as(),
            schedule_steps: (c.prefix_len, c.n_c, c.t_c, c.n_f),
        });
    }

    /// Run every ready QSHR to completion.
    ///
    /// `fetch_line(addr, line_index)` supplies the 64 B payloads of the
    /// transformed layout for the search vector at `addr`;
    /// `query_of(qshr)` supplies the uploaded query values (the behavioral
    /// model does not reassemble query bytes). Returns the outcomes in
    /// processing order.
    pub fn process<F, Q>(&mut self, mut fetch_line: F, query_of: Q) -> Vec<TaskOutcome>
    where
        F: FnMut(u32, usize) -> [u8; 64],
        Q: Fn(usize) -> Vec<f32>,
    {
        let cfg = match self.config {
            Some(c) => c,
            None => return Vec::new(),
        };
        let schedule = self.schedule().expect("configured");
        let bounder = DistanceBounder::new(cfg.metric);
        let plan = schedule.line_plan(cfg.dim);
        let prefix_len = schedule.prefix_len();

        let mut outcomes = Vec::new();
        for id in 0..crate::qshr::QSHRS_PER_UNIT {
            {
                let q = self.qshrs.get_mut(id);
                if q.ready() {
                    q.start().expect("ready QSHR starts");
                }
            }
            if self.qshrs.get(id).state() != QshrState::Busy {
                continue;
            }
            let query = query_of(id);
            assert_eq!(query.len(), cfg.dim, "query/config dimension mismatch");
            while let Some(task) = self.qshrs.get(id).current_task().copied() {
                let slot = self.qshrs.get(id).task_index;
                // Per-dimension recovered prefixes: (value, bits), seeded
                // with the on-chip common prefix.
                let mut prefixes: Vec<(u32, u32)> = (0..cfg.dim)
                    .map(|d| {
                        if prefix_len > 0 {
                            (self.dim_prefixes.get(d).copied().unwrap_or(0), prefix_len)
                        } else {
                            (0, 0)
                        }
                    })
                    .collect();
                let bound_of = |prefixes: &[(u32, u32)]| -> f64 {
                    prefixes
                        .iter()
                        .zip(&query)
                        .map(|(&(v, len), &qv)| {
                            bounder.contribution(ValueInterval::from_prefix(cfg.dtype, v, len), qv)
                        })
                        .sum()
                };
                let mut terminated = false;
                let mut fetches = 0u32;
                let mut bound = bound_of(&prefixes);
                if bound >= task.threshold as f64 {
                    terminated = true;
                }
                if !terminated {
                    for (li, lp) in plan.iter().enumerate() {
                        let line = fetch_line(task.addr, li);
                        self.qshrs.get_mut(id).record_fetch();
                        fetches += 1;
                        // Restore the fetched chunk into the per-dimension
                        // prefixes (the command parser's layout recovery).
                        let mut off = 0usize;
                        #[allow(clippy::needless_range_loop)]
                        // indexed dimension-range loops read clearer here
                        for d in lp.dim_start..lp.dim_end {
                            let chunk = read_bits(&line, off, lp.bits);
                            let (v, len) = prefixes[d];
                            prefixes[d] = ((v << lp.bits) | chunk, len + lp.bits);
                            off += lp.bits as usize;
                        }
                        bound = bound_of(&prefixes);
                        if bound >= task.threshold as f64 && li + 1 < plan.len() {
                            terminated = true;
                            break;
                        }
                    }
                }
                let distance = if terminated { None } else { Some(bound as f32) };
                outcomes.push(TaskOutcome {
                    qshr: id,
                    slot,
                    fetches,
                    distance,
                });
                if self.qshrs.get_mut(id).finish_task(distance) {
                    break;
                }
            }
        }
        outcomes
    }

    /// Host-side free of a QSHR after polling its results.
    pub fn free_qshr(&mut self, id: usize) {
        self.qshrs.get_mut(id).free();
    }

    /// Direct access to the QSHR file (diagnostics).
    pub fn qshrs(&self) -> &QshrFile {
        &self.qshrs
    }
}

/// Extract `n` bits starting at bit offset `off` within a 64 B line
/// (MSB-first, matching `ansmet_core::layout`).
fn read_bits(line: &[u8; 64], off: usize, n: u32) -> u32 {
    let mut v = 0u32;
    for i in 0..n as usize {
        let bit = off + i;
        let b = (line[bit / 8] >> (7 - (bit % 8))) & 1;
        v = (v << 1) | b as u32;
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instruction::SearchTask;
    use crate::qshr::RESULT_INVALID;
    use ansmet_core::{layout, to_sortable};
    use ansmet_vecdata::SynthSpec;

    /// Drive the unit end-to-end against a real transformed dataset and
    /// check it reproduces exact distances and sound terminations.
    #[test]
    fn unit_reproduces_exact_distances() {
        let (data, queries) = SynthSpec::sift().scaled(40, 2).generate();
        let sched = FetchSchedule::uniform(data.dtype(), 4);
        let transformed = ansmet_core::TransformedDataset::build(&data, sched.clone());

        let mut unit = NdpUnit::new();
        unit.execute(&NdpInstruction::Configure(ConfigPayload {
            dtype: data.dtype(),
            dim: data.dim() as u16,
            metric: data.metric(),
            prefix_len: 0,
            n_c: 0,
            t_c: 0,
            n_f: 4,
        }))
        .expect("configure accepted");

        // One QSHR, query 0, four tasks with an infinite threshold.
        let q = 0u8;
        let slices = (data.dim() * data.dtype().bytes()).div_ceil(64).min(16);
        let tasks: Vec<SearchTask> = (0..4)
            .map(|i| SearchTask {
                addr: i as u32,
                threshold: f32::INFINITY,
            })
            .collect();
        unit.execute(&NdpInstruction::SetSearch { qshr: q, tasks })
            .expect("set-search accepted");
        for seq in 0..slices {
            unit.execute(&NdpInstruction::SetQuery {
                qshr: q,
                seq: seq as u8,
                data: [0u8; 64],
            })
            .expect("set-query accepted");
        }

        let outcomes = unit.process(
            |addr, line| transformed.vector(addr as usize).lines[line],
            |_| queries[0].clone(),
        );
        assert_eq!(outcomes.len(), 4);
        for o in &outcomes {
            let expect = data.distance_to(o.slot, &queries[0]);
            let got = o.distance.expect("in-bound under infinite threshold");
            assert!(
                (got - expect).abs() <= expect.abs() * 1e-5 + 1e-3,
                "slot {}: {got} vs {expect}",
                o.slot
            );
            assert_eq!(o.fetches as usize, sched.total_lines(data.dim()));
        }
        // Poll returns the distances.
        let results = unit
            .execute(&NdpInstruction::Poll { qshr: q })
            .expect("poll accepted")
            .expect("poll returns results");
        assert!(results[..4].iter().all(|&d| d != RESULT_INVALID));
    }

    #[test]
    fn unit_terminates_early_and_soundly() {
        let (data, queries) = SynthSpec::gist().scaled(30, 2).generate();
        let sched = FetchSchedule::uniform(data.dtype(), 8);
        let transformed = ansmet_core::TransformedDataset::build(&data, sched.clone());
        let mut unit = NdpUnit::new();
        unit.execute(&NdpInstruction::Configure(ConfigPayload {
            dtype: data.dtype(),
            dim: data.dim() as u16,
            metric: data.metric(),
            prefix_len: 0,
            n_c: 0,
            t_c: 0,
            n_f: 8,
        }))
        .expect("configure accepted");
        let query = &queries[0];
        // Tight threshold: half the true distance of vector 3.
        let d3 = data.distance_to(3, query);
        unit.execute(&NdpInstruction::SetSearch {
            qshr: 1,
            tasks: vec![SearchTask {
                addr: 3,
                threshold: d3 * 0.5,
            }],
        })
        .expect("set-search accepted");
        for seq in 0..16 {
            unit.execute(&NdpInstruction::SetQuery {
                qshr: 1,
                seq,
                data: [0u8; 64],
            })
            .expect("set-query accepted");
        }
        let outcomes = unit.process(
            |addr, line| transformed.vector(addr as usize).lines[line],
            |_| query.clone(),
        );
        assert_eq!(outcomes.len(), 1);
        let o = &outcomes[0];
        assert!(o.distance.is_none(), "must early terminate");
        assert!(
            (o.fetches as usize) < sched.total_lines(data.dim()),
            "termination must save fetches"
        );
        // Sentinel preserved in the result array.
        let res = unit
            .execute(&NdpInstruction::Poll { qshr: 1 })
            .expect("poll accepted")
            .expect("poll");
        assert_eq!(res[0], RESULT_INVALID);
    }

    #[test]
    fn unit_uses_on_chip_prefix() {
        // Constant high bits: 3-bit prefix eliminated; the unit must seed
        // intervals from the on-chip prefix and still match distances.
        let values: Vec<f32> = (0..64).map(|i| 64.0 + (i % 16) as f32).collect();
        let data = ansmet_vecdata::Dataset::from_values("p", ElemType::U8, Metric::L2, 4, values);
        let ids: Vec<usize> = (0..data.len()).collect();
        let spec = ansmet_core::PrefixSpec::choose(&data, &ids, 0.0);
        assert!(spec.len() >= 3);
        let sched = FetchSchedule::uniform_after_prefix(data.dtype(), spec.len(), 2);
        // Transform manually on the payload bits.
        let sortables: Vec<Vec<u32>> = (0..data.len())
            .map(|i| {
                data.raw_vector(i)
                    .iter()
                    .map(|&r| to_sortable(data.dtype(), r))
                    .collect()
            })
            .collect();
        let tvs: Vec<_> = sortables
            .iter()
            .map(|s| layout::transform(s, &sched))
            .collect();

        let mut unit = NdpUnit::new();
        unit.execute(&NdpInstruction::Configure(ConfigPayload {
            dtype: data.dtype(),
            dim: 4,
            metric: Metric::L2,
            prefix_len: spec.len() as u8,
            n_c: 0,
            t_c: 0,
            n_f: 2,
        }))
        .expect("configure accepted");
        unit.load_dim_prefixes(spec.dim_prefixes().to_vec());
        unit.execute(&NdpInstruction::SetSearch {
            qshr: 0,
            tasks: vec![SearchTask {
                addr: 7,
                threshold: f32::INFINITY,
            }],
        })
        .expect("set-search accepted");
        unit.execute(&NdpInstruction::SetQuery {
            qshr: 0,
            seq: 0,
            data: [0u8; 64],
        })
        .expect("set-query accepted");
        let query = vec![66.0, 70.0, 64.0, 79.0];
        let outcomes = unit.process(
            |addr, line| tvs[addr as usize].lines[line],
            |_| query.clone(),
        );
        let got = outcomes[0].distance.expect("in-bound");
        let expect = data.distance_to(7, &query);
        assert!((got - expect).abs() < 1e-3, "{got} vs {expect}");
    }
}
