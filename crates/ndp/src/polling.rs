//! Result polling (§5.4).
//!
//! The host retrieves NDP results by polling QSHRs with DDR READs.
//! Conventional polling uses a fixed period; ANSMET's adaptive polling
//! estimates each batch's completion time from the sampled
//! early-termination latency distribution (the same preprocessing as
//! §4.2) and issues the first poll at the expected completion time,
//! falling back to a short retry period afterwards.

/// When to poll an offloaded batch.
#[derive(Debug, Clone, PartialEq)]
pub enum PollingPolicy {
    /// Fixed-period polling (the paper's conventional baseline:
    /// 100 ns ≈ 240 memory cycles).
    Conventional {
        /// Poll period in memory cycles.
        period: u64,
    },
    /// First poll at the estimated completion time, then short retries.
    Adaptive {
        /// Expected per-task latency distribution: `(lines, probability)`
        /// pairs from the sampling profile.
        latency_histogram: Vec<(u64, f64)>,
        /// Memory cycles per fetched line (service time estimate).
        cycles_per_line: u64,
        /// Fixed task overhead in cycles.
        task_overhead: u64,
        /// Retry period after the first poll misses.
        retry_period: u64,
    },
}

impl PollingPolicy {
    /// The paper's conventional 100 ns policy at 2400 MHz.
    pub fn conventional_100ns() -> Self {
        PollingPolicy::Conventional { period: 240 }
    }

    /// Expected number of lines per comparison under the histogram.
    pub fn expected_lines(&self) -> f64 {
        match self {
            PollingPolicy::Conventional { .. } => 0.0,
            PollingPolicy::Adaptive {
                latency_histogram, ..
            } => {
                let mass: f64 = latency_histogram.iter().map(|(_, p)| p).sum();
                if mass <= 0.0 {
                    return 0.0;
                }
                latency_histogram
                    .iter()
                    .map(|&(l, p)| l as f64 * p)
                    .sum::<f64>()
                    / mass
            }
        }
    }

    /// Expected completion time (cycles after issue) of a batch of
    /// `tasks` comparisons processed sequentially in one QSHR.
    ///
    /// For multiple tasks the expectations add (the paper: "for multiple
    /// tasks, we use the addition of their distributions").
    pub fn expected_batch_latency(&self, tasks: usize) -> u64 {
        match self {
            PollingPolicy::Conventional { period } => *period,
            PollingPolicy::Adaptive {
                cycles_per_line,
                task_overhead,
                ..
            } => {
                let per_task =
                    self.expected_lines() * *cycles_per_line as f64 + *task_overhead as f64;
                (per_task * tasks as f64).ceil() as u64
            }
        }
    }

    /// Cycle (relative to batch issue) of the `attempt`-th poll
    /// (0-based).
    pub fn poll_time(&self, tasks: usize, attempt: u32) -> u64 {
        match self {
            PollingPolicy::Conventional { period } => period * (attempt as u64 + 1),
            PollingPolicy::Adaptive { retry_period, .. } => {
                self.expected_batch_latency(tasks) + retry_period * attempt as u64
            }
        }
    }

    /// Number of polls needed and the completion-observation delay, given
    /// the batch actually finished `actual` cycles after issue.
    pub fn observe(&self, tasks: usize, actual: u64) -> PollingStats {
        let mut attempt = 0u32;
        loop {
            let t = self.poll_time(tasks, attempt);
            if t >= actual {
                return PollingStats {
                    polls: attempt + 1,
                    observed_at: t,
                    wasted_delay: t - actual,
                };
            }
            attempt += 1;
            if attempt > 1_000_000 {
                // Defensive bound; retry periods are ≥ 1 cycle in practice.
                return PollingStats {
                    polls: attempt,
                    observed_at: actual,
                    wasted_delay: 0,
                };
            }
        }
    }
}

/// Outcome of polling one batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PollingStats {
    /// DDR READ polls issued (each costs a host command + data burst).
    pub polls: u32,
    /// Cycle (after issue) at which the host observed completion.
    pub observed_at: u64,
    /// Cycles between actual completion and observation.
    pub wasted_delay: u64,
}

impl PollingStats {
    /// Stats for an explicit schedule: first poll at `first`, retries
    /// every `retry` cycles, for a batch that actually finished at
    /// `actual` (all relative to issue). This is the closed form of
    /// [`PollingPolicy::observe`] used when the caller maintains its own
    /// first-poll estimate (e.g. the replay core's per-query EWMA).
    pub fn observe_at(first: u64, retry: u64, actual: u64) -> PollingStats {
        let retry = retry.max(1);
        if first >= actual {
            return PollingStats {
                polls: 1,
                observed_at: first,
                wasted_delay: first - actual,
            };
        }
        let extra = (actual - first).div_ceil(retry);
        let observed = first + extra * retry;
        PollingStats {
            polls: 1 + extra as u32,
            observed_at: observed,
            wasted_delay: observed - actual,
        }
    }
}

/// Completion deadline for one offloaded batch: the host declares the
/// batch lost when either bound is hit, instead of polling forever into
/// a stalled or hung NDP unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PollDeadline {
    /// Cycles after batch issue at which the batch is declared lost.
    pub cycles: u64,
    /// Maximum poll attempts before declaring the batch lost.
    pub max_polls: u32,
}

/// Outcome of polling one batch under a deadline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PollOutcome {
    /// The batch was observed complete in time.
    Completed(PollingStats),
    /// The deadline (cycle budget or poll budget) passed first.
    TimedOut {
        /// Polls issued before giving up.
        polls: u32,
        /// Cycle (after issue) at which the host gave up.
        gave_up_at: u64,
    },
}

impl PollOutcome {
    /// The completion stats, if the batch finished in time.
    pub fn completed(&self) -> Option<PollingStats> {
        match self {
            PollOutcome::Completed(s) => Some(*s),
            PollOutcome::TimedOut { .. } => None,
        }
    }
}

impl PollingPolicy {
    /// The default deadline for a batch of `tasks` comparisons: several
    /// times the expected completion time plus fixed slack, so healthy
    /// stragglers are never declared lost, and a bounded poll count so a
    /// hung unit cannot absorb unlimited DDR commands.
    pub fn deadline(&self, tasks: usize) -> PollDeadline {
        let expected = self.expected_batch_latency(tasks).max(1);
        PollDeadline {
            cycles: expected.saturating_mul(8).saturating_add(2_000),
            max_polls: 64,
        }
    }

    /// Poll under a deadline. `actual` is the cycle (after issue) at
    /// which the batch really finished, or `None` for a batch that never
    /// completes (hung unit, dropped instruction).
    pub fn observe_with_deadline(
        &self,
        tasks: usize,
        actual: Option<u64>,
        deadline: PollDeadline,
    ) -> PollOutcome {
        let mut attempt = 0u32;
        loop {
            let t = self.poll_time(tasks, attempt);
            if t > deadline.cycles || attempt >= deadline.max_polls {
                return PollOutcome::TimedOut {
                    polls: attempt,
                    gave_up_at: t.min(deadline.cycles),
                };
            }
            if let Some(a) = actual {
                if t >= a {
                    return PollOutcome::Completed(PollingStats {
                        polls: attempt + 1,
                        observed_at: t,
                        wasted_delay: t - a,
                    });
                }
            }
            attempt += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn adaptive() -> PollingPolicy {
        PollingPolicy::Adaptive {
            latency_histogram: vec![(2, 0.5), (4, 0.3), (16, 0.2)],
            cycles_per_line: 50,
            task_overhead: 60,
            retry_period: 60,
        }
    }

    #[test]
    fn expected_lines_weighted() {
        let p = adaptive();
        let e = p.expected_lines();
        assert!((e - (2.0 * 0.5 + 4.0 * 0.3 + 16.0 * 0.2)).abs() < 1e-9);
    }

    #[test]
    fn batch_latency_adds_over_tasks() {
        let p = adaptive();
        assert_eq!(p.expected_batch_latency(4), 4 * p.expected_batch_latency(1));
    }

    #[test]
    fn conventional_polls_many_times_for_long_batches() {
        let p = PollingPolicy::conventional_100ns();
        let s = p.observe(8, 2000);
        assert_eq!(s.polls, 9); // ceil(2000/240) = 9 polls
        assert!(s.wasted_delay < 240);
    }

    #[test]
    fn adaptive_first_poll_near_actual() {
        let p = adaptive();
        let expect = p.expected_batch_latency(8);
        // If the batch finishes exactly on expectation, one poll suffices
        // with zero waste.
        let s = p.observe(8, expect);
        assert_eq!(s.polls, 1);
        assert_eq!(s.wasted_delay, 0);
    }

    #[test]
    fn adaptive_beats_conventional_on_polls() {
        let p = adaptive();
        let c = PollingPolicy::conventional_100ns();
        let actual = p.expected_batch_latency(8) + 30;
        let sa = p.observe(8, actual);
        let sc = c.observe(8, actual);
        assert!(sa.polls < sc.polls, "{} vs {}", sa.polls, sc.polls);
    }

    #[test]
    fn early_finish_costs_waiting() {
        let p = adaptive();
        let expect = p.expected_batch_latency(4);
        let s = p.observe(4, expect / 2);
        assert_eq!(s.polls, 1);
        assert_eq!(s.wasted_delay, expect - expect / 2);
    }

    #[test]
    fn deadline_clears_healthy_batches() {
        for p in [adaptive(), PollingPolicy::conventional_100ns()] {
            let dl = p.deadline(8);
            // A batch finishing on expectation (or a bit late) completes
            // well inside the deadline.
            for slack in [0, 17, 100] {
                let actual = p.expected_batch_latency(8) + slack;
                let got = p.observe_with_deadline(8, Some(actual), dl);
                let direct = p.observe(8, actual);
                assert_eq!(got, PollOutcome::Completed(direct));
            }
        }
    }

    #[test]
    fn hung_batch_times_out() {
        let p = adaptive();
        let dl = p.deadline(4);
        let got = p.observe_with_deadline(4, None, dl);
        match got {
            PollOutcome::TimedOut { polls, gave_up_at } => {
                assert!(polls > 0, "at least one poll before giving up");
                assert!(polls <= dl.max_polls);
                assert!(gave_up_at <= dl.cycles);
            }
            PollOutcome::Completed(_) => panic!("hung batch cannot complete"),
        }
        assert!(got.completed().is_none());
    }

    #[test]
    fn stalled_batch_past_deadline_times_out() {
        let p = adaptive();
        let dl = p.deadline(2);
        // Finishes eventually, but far beyond the deadline (stalled unit).
        let got = p.observe_with_deadline(2, Some(dl.cycles * 10), dl);
        assert!(matches!(got, PollOutcome::TimedOut { .. }));
    }

    #[test]
    fn poll_budget_bounds_ddr_traffic() {
        let p = PollingPolicy::Conventional { period: 1 };
        let dl = PollDeadline {
            cycles: u64::MAX,
            max_polls: 5,
        };
        let got = p.observe_with_deadline(1, None, dl);
        assert_eq!(
            got,
            PollOutcome::TimedOut {
                polls: 5,
                gave_up_at: 6
            }
        );
    }

    #[test]
    fn observe_at_matches_policy_schedule() {
        // An explicit (first, retry) schedule agrees with the policy's
        // own observe() when fed the same parameters.
        let p = PollingPolicy::Conventional { period: 240 };
        for actual in [1u64, 239, 240, 241, 2000] {
            let direct = p.observe(1, actual);
            let explicit = PollingStats::observe_at(240, 240, actual);
            assert_eq!(direct, explicit, "actual={actual}");
        }
        // On-time batch: one poll, waste is the overshoot.
        let s = PollingStats::observe_at(100, 40, 70);
        assert_eq!(s.polls, 1);
        assert_eq!(s.observed_at, 100);
        assert_eq!(s.wasted_delay, 30);
        // Late batch: retries until observed.
        let s = PollingStats::observe_at(100, 40, 190);
        assert_eq!(s.polls, 4); // 100, 140, 180, 220
        assert_eq!(s.observed_at, 220);
    }

    #[test]
    fn empty_histogram_degenerates() {
        let p = PollingPolicy::Adaptive {
            latency_histogram: vec![],
            cycles_per_line: 50,
            task_overhead: 60,
            retry_period: 60,
        };
        assert_eq!(p.expected_lines(), 0.0);
        assert_eq!(p.expected_batch_latency(2), 120);
    }
}
