//! The ANSMET NDP hardware model (§5 of the paper): per-rank NDP units in
//! the DIMM buffer chip, query status handling registers (QSHRs),
//! DDR-encoded NDP instructions, the distance computing unit, hybrid
//! vertical/horizontal data partitioning with hot-vector replication, and
//! adaptive result polling.
//!
//! Timing is composed in `ansmet-sim`; this crate provides the structural
//! and behavioral models plus their parameters.
//!
//! # Example
//!
//! ```
//! use ansmet_ndp::{Partitioner, PartitionScheme};
//!
//! // GIST vectors (960 × FP32 = 3840 B) across 32 ranks with the paper's
//! // best hybrid granularity of 1 kB → groups of 4 ranks.
//! let p = Partitioner::new(PartitionScheme::Hybrid { subvec_bytes: 1024 }, 32, 960, 4);
//! assert_eq!(p.subvectors_per_vector(), 4);
//! assert_eq!(p.rank_groups(), 8);
//! let placement = p.placement(7);
//! assert_eq!(placement.len(), 4);
//! ```

pub mod compute;
pub mod error;
pub mod instruction;
pub mod lrdimm;
pub mod partition;
pub mod polling;
pub mod qshr;
pub mod unit;

pub use compute::ComputeUnit;
pub use error::NdpError;
pub use instruction::{crc8, ConfigPayload, NdpInstruction, ResultPayload, SearchTask};
pub use lrdimm::{LrdimmConfig, LrdimmUnit};
pub use partition::{LoadTracker, PartitionScheme, Partitioner, Placement, ReplicaSet};
pub use polling::{PollDeadline, PollOutcome, PollingPolicy, PollingStats};
pub use qshr::{Qshr, QshrFile, QshrState};
pub use unit::{NdpUnit, TaskOutcome};
