//! Hybrid vertical/horizontal vector-data partitioning across ranks
//! (§5.3), plus hot-vector replication and load tracking.
//!
//! Hybrid partitioning first splits each vector by dimensions into
//! sub-vectors of at most `S` bytes assigned to the ranks of one *rank
//! group* (vertical), then distributes different vectors across rank
//! groups (horizontal). `Vertical` spreads one vector over all ranks;
//! `Horizontal` keeps each vector whole in a single rank. The paper finds
//! `S = 1 kB` optimal for ANSMET because early termination prefers longer
//! local sub-vectors (Fig. 12).

use std::collections::HashSet;

/// How vector data is spread across ranks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionScheme {
    /// Split every vector's dimensions over all ranks.
    Vertical,
    /// Each vector whole in one rank; vectors striped across ranks.
    Horizontal,
    /// Sub-vectors of at most `subvec_bytes` within a rank group;
    /// vectors striped across groups.
    Hybrid {
        /// Maximum sub-vector size in bytes (paper default 1024).
        subvec_bytes: usize,
    },
}

/// Where one sub-vector of a vector lives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Placement {
    /// Global rank index.
    pub rank: usize,
    /// Dimension range held by that rank.
    pub dims: std::ops::Range<usize>,
}

/// Deterministic partitioner for one dataset geometry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partitioner {
    scheme: PartitionScheme,
    n_ranks: usize,
    dim: usize,
    dims_per_sub: usize,
    subvecs: usize,
    group_size: usize,
    groups: usize,
}

impl Partitioner {
    /// Build a partitioner for `n_ranks` ranks and vectors of `dim`
    /// elements of `elem_bytes` bytes each.
    ///
    /// # Panics
    ///
    /// Panics if any argument is zero.
    pub fn new(scheme: PartitionScheme, n_ranks: usize, dim: usize, elem_bytes: usize) -> Self {
        assert!(
            n_ranks > 0 && dim > 0 && elem_bytes > 0,
            "degenerate geometry"
        );
        let (dims_per_sub, subvecs) = match scheme {
            PartitionScheme::Vertical => {
                let dps = dim.div_ceil(n_ranks).max(1);
                (dps, dim.div_ceil(dps))
            }
            PartitionScheme::Horizontal => (dim, 1),
            PartitionScheme::Hybrid { subvec_bytes } => {
                assert!(
                    subvec_bytes >= elem_bytes,
                    "sub-vector smaller than one element"
                );
                let dps = (subvec_bytes / elem_bytes).max(1).min(dim);
                (dps, dim.div_ceil(dps))
            }
        };
        let group_size = subvecs.min(n_ranks);
        let groups = (n_ranks / group_size).max(1);
        Partitioner {
            scheme,
            n_ranks,
            dim,
            dims_per_sub,
            subvecs,
            group_size,
            groups,
        }
    }

    /// The configured scheme.
    pub fn scheme(&self) -> PartitionScheme {
        self.scheme
    }

    /// Sub-vectors per vector.
    pub fn subvectors_per_vector(&self) -> usize {
        self.subvecs
    }

    /// Dimensions in each sub-vector (the last sub-vector may be smaller).
    pub fn dims_per_subvector(&self) -> usize {
        self.dims_per_sub
    }

    /// Number of rank groups (horizontal width).
    pub fn rank_groups(&self) -> usize {
        self.groups
    }

    /// Ranks per group (vertical width).
    pub fn group_size(&self) -> usize {
        self.group_size
    }

    /// The rank group vector `id` belongs to.
    pub fn group_of(&self, id: usize) -> usize {
        id % self.groups
    }

    /// Placement of vector `id` in its home group.
    pub fn placement(&self, id: usize) -> Vec<Placement> {
        self.placement_in_group(id, self.group_of(id))
    }

    /// Placement of vector `id` served from a specific `group` (used for
    /// replicated hot vectors).
    ///
    /// # Panics
    ///
    /// Panics if `group` is out of range.
    pub fn placement_in_group(&self, id: usize, group: usize) -> Vec<Placement> {
        assert!(group < self.groups, "group out of range");
        let base = group * self.group_size;
        (0..self.subvecs)
            .map(|j| {
                let start = j * self.dims_per_sub;
                let end = ((j + 1) * self.dims_per_sub).min(self.dim);
                // Sub-vectors beyond the group size wrap within the group
                // (only possible when subvecs > n_ranks).
                let rank = base + (j + id) % self.group_size;
                Placement {
                    rank,
                    dims: start..end,
                }
            })
            .collect()
    }
}

/// Hot-vector replication (§5.3): a small set of index-identified hot
/// vectors (top HNSW layers / IVF centroids) replicated to every rank
/// group; at search time a replica in the least-loaded group serves the
/// comparison.
#[derive(Debug, Clone, Default)]
pub struct ReplicaSet {
    hot: HashSet<usize>,
}

impl ReplicaSet {
    /// Build from the hot vector ids.
    pub fn new(hot: impl IntoIterator<Item = usize>) -> Self {
        ReplicaSet {
            hot: hot.into_iter().collect(),
        }
    }

    /// Whether `id` is replicated.
    pub fn contains(&self, id: usize) -> bool {
        self.hot.contains(&id)
    }

    /// Number of replicated vectors.
    pub fn len(&self) -> usize {
        self.hot.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.hot.is_empty()
    }

    /// Extra storage for the replicas as a fraction of the dataset:
    /// `len × (groups − 1) / n_vectors`.
    pub fn extra_space_frac(&self, n_vectors: usize, groups: usize) -> f64 {
        if n_vectors == 0 {
            0.0
        } else {
            self.hot.len() as f64 * (groups.saturating_sub(1)) as f64 / n_vectors as f64
        }
    }

    /// The replicated ids in ascending order (snapshot / diff surface).
    pub fn sorted_ids(&self) -> Vec<usize> {
        let mut ids: Vec<usize> = self.hot.iter().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// Difference against a refreshed hot set: ids to newly replicate
    /// (`added`) and replicas to drop (`removed`), both sorted so replica
    /// refresh traffic is deterministic. The epoch manager uses this to
    /// ship only the delta to the rank groups instead of re-broadcasting
    /// the whole hot set.
    pub fn diff(&self, refreshed: &ReplicaSet) -> (Vec<usize>, Vec<usize>) {
        let mut added: Vec<usize> = refreshed.hot.difference(&self.hot).copied().collect();
        let mut removed: Vec<usize> = self.hot.difference(&refreshed.hot).copied().collect();
        added.sort_unstable();
        removed.sort_unstable();
        (added, removed)
    }

    /// Deterministic replica target for a vector homed in group `home`:
    /// the `attempt`-th alternative on the fixed probe ring
    /// `home+1, home+2, …` (mod `groups`, never `home` itself). Hedged
    /// offloads and breaker reroutes walk this ring so replica selection
    /// is a pure function of `(home, attempt)` — no RNG, no shared
    /// state, byte-stable across reruns and thread counts. Returns
    /// `None` when the fleet has a single group (nowhere to go).
    pub fn replica_group(home: usize, groups: usize, attempt: usize) -> Option<usize> {
        if groups <= 1 {
            return None;
        }
        let offset = 1 + attempt % (groups - 1);
        Some((home + offset) % groups)
    }

    /// The full deterministic failover ring for `home`: every alternative
    /// group in probe order (`home+1, home+2, …` mod `groups`, `home`
    /// excluded). Callers that must survive multi-group outages walk this
    /// chain until they find a healthy target; an empty chain means the
    /// fleet has nowhere to fail over to.
    pub fn failover_chain(home: usize, groups: usize) -> Vec<usize> {
        (0..groups.saturating_sub(1))
            .map(|attempt| {
                Self::replica_group(home, groups, attempt).expect("groups > 1 on a non-empty chain")
            })
            .collect()
    }
}

/// Per-rank load accounting (comparison tasks assigned), used both for
/// replica placement decisions and for the §5.3 imbalance-ratio metric.
#[derive(Debug, Clone)]
pub struct LoadTracker {
    loads: Vec<u64>,
    group_size: usize,
}

impl LoadTracker {
    /// Track `n_ranks` ranks grouped by `group_size`.
    pub fn new(n_ranks: usize, group_size: usize) -> Self {
        LoadTracker {
            loads: vec![0; n_ranks],
            group_size: group_size.max(1),
        }
    }

    /// Record `amount` units of work (64 B fetches) on `rank`.
    pub fn add(&mut self, rank: usize, amount: u64) {
        self.loads[rank] += amount;
    }

    /// The group with the least total load.
    pub fn least_loaded_group(&self) -> usize {
        let groups = self.loads.len() / self.group_size;
        (0..groups)
            .min_by_key(|&g| {
                self.loads[g * self.group_size..(g + 1) * self.group_size]
                    .iter()
                    .sum::<u64>()
            })
            .unwrap_or(0)
    }

    /// Per-rank loads.
    pub fn loads(&self) -> &[u64] {
        &self.loads
    }

    /// Max-to-average load ratio (the paper's imbalance metric: 1.49× on
    /// GIST without replication, 1.05× with).
    pub fn imbalance_ratio(&self) -> f64 {
        let max = *self.loads.iter().max().unwrap_or(&0) as f64;
        let avg = self.loads.iter().sum::<u64>() as f64 / self.loads.len().max(1) as f64;
        if avg == 0.0 {
            1.0
        } else {
            max / avg
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn horizontal_keeps_vector_whole() {
        let p = Partitioner::new(PartitionScheme::Horizontal, 32, 128, 1);
        assert_eq!(p.subvectors_per_vector(), 1);
        assert_eq!(p.rank_groups(), 32);
        let pl = p.placement(5);
        assert_eq!(pl.len(), 1);
        assert_eq!(pl[0].dims, 0..128);
        assert_eq!(pl[0].rank, 5);
    }

    #[test]
    fn vertical_spreads_over_all_ranks() {
        let p = Partitioner::new(PartitionScheme::Vertical, 8, 128, 4);
        assert_eq!(p.rank_groups(), 1);
        assert_eq!(p.group_size(), 8);
        let pl = p.placement(3);
        assert_eq!(pl.len(), 8);
        // Dims cover 0..128 without overlap.
        let mut covered = [false; 128];
        for q in &pl {
            for d in q.dims.clone() {
                assert!(!covered[d]);
                covered[d] = true;
            }
        }
        assert!(covered.iter().all(|&c| c));
    }

    #[test]
    fn hybrid_gist_paper_example() {
        // GIST: 960 × FP32 = 3840 B; S = 1 kB → 4 sub-vectors (256 dims
        // each), 8 groups of 4 ranks.
        let p = Partitioner::new(PartitionScheme::Hybrid { subvec_bytes: 1024 }, 32, 960, 4);
        assert_eq!(p.subvectors_per_vector(), 4);
        assert_eq!(p.group_size(), 4);
        assert_eq!(p.rank_groups(), 8);
        let pl = p.placement(10);
        // Group of id 10 = 10 % 8 = 2 → ranks 8..12.
        assert!(pl.iter().all(|q| (8..12).contains(&q.rank)));
        assert_eq!(pl[0].dims, 0..256);
        assert_eq!(pl[3].dims, 768..960);
    }

    #[test]
    fn hybrid_small_vector_degenerates_to_horizontal() {
        // SIFT: 128 B vector ≤ 1 kB sub-vector → one sub-vector per rank.
        let p = Partitioner::new(PartitionScheme::Hybrid { subvec_bytes: 1024 }, 32, 128, 1);
        assert_eq!(p.subvectors_per_vector(), 1);
        assert_eq!(p.rank_groups(), 32);
    }

    #[test]
    fn placements_stay_in_assigned_group() {
        let p = Partitioner::new(PartitionScheme::Hybrid { subvec_bytes: 512 }, 16, 256, 4);
        for id in 0..100 {
            let g = p.group_of(id);
            for q in p.placement(id) {
                assert_eq!(q.rank / p.group_size(), g);
            }
        }
    }

    #[test]
    fn replica_set_space_accounting() {
        let r = ReplicaSet::new([1, 2, 3]);
        assert!(r.contains(2));
        assert!(!r.contains(9));
        assert_eq!(r.len(), 3);
        // 3 vectors × 7 extra copies / 1000 vectors.
        assert!((r.extra_space_frac(1000, 8) - 0.021).abs() < 1e-12);
    }

    #[test]
    fn replica_diff_is_sorted_and_minimal() {
        let old = ReplicaSet::new([1, 2, 3, 9]);
        let new = ReplicaSet::new([2, 3, 4, 0]);
        let (added, removed) = old.diff(&new);
        assert_eq!(added, vec![0, 4]);
        assert_eq!(removed, vec![1, 9]);
        // Identical sets produce an empty delta.
        let (a2, r2) = new.diff(&new.clone());
        assert!(a2.is_empty() && r2.is_empty());
    }

    #[test]
    fn replica_ring_skips_home_and_covers_all_alternatives() {
        let groups = 8;
        for home in 0..groups {
            let mut seen = HashSet::new();
            for attempt in 0..groups - 1 {
                let g = ReplicaSet::replica_group(home, groups, attempt).unwrap();
                assert_ne!(g, home, "ring never lands on the home group");
                seen.insert(g);
            }
            assert_eq!(seen.len(), groups - 1, "ring covers every alternative");
            // Past the ring length the walk wraps deterministically.
            assert_eq!(
                ReplicaSet::replica_group(home, groups, 0),
                ReplicaSet::replica_group(home, groups, groups - 1),
            );
        }
    }

    #[test]
    fn failover_chain_is_the_whole_ring_in_probe_order() {
        assert_eq!(ReplicaSet::failover_chain(1, 4), vec![2, 3, 0]);
        assert_eq!(ReplicaSet::failover_chain(3, 4), vec![0, 1, 2]);
        assert_eq!(ReplicaSet::failover_chain(0, 2), vec![1]);
        assert!(ReplicaSet::failover_chain(0, 1).is_empty());
        assert!(ReplicaSet::failover_chain(0, 0).is_empty());
    }

    #[test]
    fn replica_ring_single_group_has_nowhere_to_go() {
        assert_eq!(ReplicaSet::replica_group(0, 1, 0), None);
        assert_eq!(ReplicaSet::replica_group(0, 1, 5), None);
        assert_eq!(ReplicaSet::replica_group(0, 2, 0), Some(1));
        assert_eq!(ReplicaSet::replica_group(1, 2, 3), Some(0));
    }

    #[test]
    fn load_tracker_balancing() {
        let mut lt = LoadTracker::new(8, 2); // 4 groups of 2
        lt.add(0, 100);
        lt.add(1, 100);
        lt.add(2, 10);
        assert_eq!(lt.least_loaded_group(), 2);
        let r = lt.imbalance_ratio();
        assert!(r > 3.0, "imbalance {r}");
    }

    #[test]
    fn balanced_loads_ratio_one() {
        let mut lt = LoadTracker::new(4, 1);
        for r in 0..4 {
            lt.add(r, 50);
        }
        assert!((lt.imbalance_ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn zero_ranks_panics() {
        Partitioner::new(PartitionScheme::Horizontal, 0, 10, 1);
    }
}
