//! The distance computing unit (Fig. 5d): 16 lanes of up-to-32-bit
//! multipliers and adders at 1.2 GHz in the DIMM buffer chip.

use ansmet_vecdata::ElemType;

/// Timing/area model of one distance computing unit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ComputeUnit {
    /// Parallel multiply/add lanes (paper: 16).
    pub lanes: u32,
    /// Clock in MHz (paper: 1200).
    pub clock_mhz: u64,
    /// Pipeline depth for the reduce/compare stage.
    pub reduce_cycles: u64,
    /// Power when active, mW (paper: 300 mW).
    pub active_mw: f64,
    /// Area in mm² (paper: 0.06 mm² per NDP unit at 22 nm).
    pub area_mm2: f64,
}

impl Default for ComputeUnit {
    fn default() -> Self {
        ComputeUnit {
            lanes: 16,
            clock_mhz: 1200,
            reduce_cycles: 4,
            active_mw: 300.0,
            area_mm2: 0.06,
        }
    }
}

impl ComputeUnit {
    /// NDP-clock cycles to process the elements carried by one 64 B fetch
    /// (bound refinement: one subtract/multiply per element plus the
    /// tree reduce).
    pub fn cycles_per_line(&self, elements_in_line: usize) -> u64 {
        (elements_in_line as u64).div_ceil(self.lanes as u64) + self.reduce_cycles
    }

    /// Cycles to restore a fetched chunk into the current-vector field —
    /// the layout recovery is simple shifting done in parallel with the
    /// arithmetic, so only unpacking beyond lane parallelism costs.
    pub fn restore_cycles(&self, elements_in_line: usize) -> u64 {
        (elements_in_line as u64).div_ceil(self.lanes as u64 * 2)
    }

    /// Convert NDP cycles to DRAM command-clock cycles (the simulator's
    /// time base) for a memory clock of `mem_clock_mhz`.
    pub fn to_mem_cycles(&self, ndp_cycles: u64, mem_clock_mhz: u64) -> u64 {
        (ndp_cycles * mem_clock_mhz).div_ceil(self.clock_mhz)
    }

    /// Elements of `dtype` carried by one 64 B line of the *natural*
    /// layout.
    pub fn natural_elements_per_line(dtype: ElemType) -> usize {
        64 / dtype.bytes()
    }

    /// Energy of processing `lines` fetches, in nanojoules.
    pub fn energy_nj(&self, lines: u64, elements_per_line: usize) -> f64 {
        let cycles: u64 = lines * self.cycles_per_line(elements_per_line);
        let seconds = cycles as f64 / (self.clock_mhz as f64 * 1e6);
        self.active_mw * seconds * 1e6 // mW × s = µJ = 1e6 nJ... (mW·s = µJ)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_latency_scales_with_elements() {
        let c = ComputeUnit::default();
        // 16 FP32 elements per 64 B line: one pass + reduce.
        assert_eq!(c.cycles_per_line(16), 1 + c.reduce_cycles);
        // 64 UINT8 elements: four passes.
        assert_eq!(c.cycles_per_line(64), 4 + c.reduce_cycles);
    }

    #[test]
    fn clock_domain_conversion() {
        let c = ComputeUnit::default();
        // 1.2 GHz NDP vs 2.4 GHz memory clock: 2 mem cycles per NDP cycle.
        assert_eq!(c.to_mem_cycles(5, 2400), 10);
    }

    #[test]
    fn natural_density() {
        assert_eq!(ComputeUnit::natural_elements_per_line(ElemType::U8), 64);
        assert_eq!(ComputeUnit::natural_elements_per_line(ElemType::F32), 16);
        assert_eq!(ComputeUnit::natural_elements_per_line(ElemType::F16), 32);
    }

    #[test]
    fn energy_positive_and_linear() {
        let c = ComputeUnit::default();
        let e1 = c.energy_nj(100, 16);
        let e2 = c.energy_nj(200, 16);
        assert!(e1 > 0.0);
        assert!((e2 - 2.0 * e1).abs() < 1e-9);
    }
}
