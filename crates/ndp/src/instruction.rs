//! NDP instruction formats (Fig. 5e).
//!
//! NDP units are commanded through specially-encoded DDR commands: every
//! instruction is a DDR WRITE (or READ, for polls) to a reserved address
//! range. The operation, target QSHR, and sequence number are encoded in
//! the **address bits** (as in the paper), and the operands travel in the
//! 64 B data payload — which lets a set-search instruction carry a full
//! eight 8-byte comparison tasks. This module provides the concrete,
//! loss-free binary encoding with round-trip tests: the contract between
//! the host driver and the buffer-chip command parser.

use ansmet_vecdata::{ElemType, Metric};

/// One distance-comparison task (4 B search-vector address + 4 B distance
/// threshold); a set-search instruction carries up to eight.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SearchTask {
    /// Search-vector address (line-aligned, rank-local).
    pub addr: u32,
    /// Early-termination threshold for this comparison.
    pub threshold: f32,
}

/// Configure-instruction payload: element type, dimension, metric, and
/// early-termination parameters (common prefix length and the
/// dual-granularity n_C / T_C / n_F values).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConfigPayload {
    /// Element datatype.
    pub dtype: ElemType,
    /// Vector dimensionality (sub-vector dimensionality under vertical
    /// partitioning).
    pub dim: u16,
    /// Distance metric.
    pub metric: Metric,
    /// Eliminated common-prefix length in bits.
    pub prefix_len: u8,
    /// Coarse fetch step width.
    pub n_c: u8,
    /// Number of coarse steps.
    pub t_c: u8,
    /// Fine fetch step width.
    pub n_f: u8,
}

/// A decoded NDP instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum NdpInstruction {
    /// Broadcast configuration (DDR WRITE to the reserved config address).
    Configure(ConfigPayload),
    /// One 64 B slice of query-vector data into a QSHR (up to 16 of these
    /// transfer a 1 kB query).
    SetQuery {
        /// Target QSHR (0..32).
        qshr: u8,
        /// 64 B sequence number within the query buffer (0..16).
        seq: u8,
        /// The 64 B of query data.
        data: [u8; 64],
    },
    /// Up to eight comparison tasks for one QSHR.
    SetSearch {
        /// Target QSHR.
        qshr: u8,
        /// The tasks (1..=8).
        tasks: Vec<SearchTask>,
    },
    /// Result poll (DDR READ of a QSHR's result array).
    Poll {
        /// Target QSHR.
        qshr: u8,
    },
}

/// Reserved address prefix marking NDP instructions (upper address bits).
pub const NDP_ADDR_PREFIX: u64 = 0xA5 << 24;

const OP_CONFIGURE: u64 = 0x1;
const OP_SET_QUERY: u64 = 0x2;
const OP_SET_SEARCH: u64 = 0x3;
const OP_POLL: u64 = 0x4;

fn dtype_code(d: ElemType) -> u8 {
    match d {
        ElemType::U8 => 0,
        ElemType::I8 => 1,
        ElemType::F32 => 2,
        ElemType::F16 => 3,
        ElemType::Bf16 => 4,
    }
}

fn dtype_from(code: u8) -> Option<ElemType> {
    Some(match code {
        0 => ElemType::U8,
        1 => ElemType::I8,
        2 => ElemType::F32,
        3 => ElemType::F16,
        4 => ElemType::Bf16,
        _ => return None,
    })
}

fn metric_code(m: Metric) -> u8 {
    match m {
        Metric::L2 => 0,
        Metric::Ip => 1,
        Metric::Cosine => 2,
    }
}

fn metric_from(code: u8) -> Option<Metric> {
    Some(match code {
        0 => Metric::L2,
        1 => Metric::Ip,
        2 => Metric::Cosine,
        _ => return None,
    })
}

impl NdpInstruction {
    /// Encode into the DDR command's `(address, 64 B payload)` pair.
    ///
    /// Address layout: `NDP_ADDR_PREFIX | opcode << 16 | qshr << 8 | seq`,
    /// shifted left by 6 so the encoded address stays line-aligned.
    pub fn encode(&self) -> (u64, [u8; 64]) {
        let mut p = [0u8; 64];
        let addr_bits = match self {
            NdpInstruction::Configure(c) => {
                p[0] = dtype_code(c.dtype);
                p[1..3].copy_from_slice(&c.dim.to_le_bytes());
                p[3] = metric_code(c.metric);
                p[4] = c.prefix_len;
                p[5] = c.n_c;
                p[6] = c.t_c;
                p[7] = c.n_f;
                OP_CONFIGURE << 16
            }
            NdpInstruction::SetQuery { qshr, seq, data } => {
                assert!(*qshr < 32 && *seq < 16, "qshr/seq out of range");
                p.copy_from_slice(data);
                OP_SET_QUERY << 16 | (*qshr as u64) << 8 | *seq as u64
            }
            NdpInstruction::SetSearch { qshr, tasks } => {
                assert!(*qshr < 32, "qshr out of range");
                assert!(
                    (1..=8).contains(&tasks.len()),
                    "set-search carries 1..=8 tasks"
                );
                for (i, t) in tasks.iter().enumerate() {
                    let off = i * 8;
                    p[off..off + 4].copy_from_slice(&t.addr.to_le_bytes());
                    p[off + 4..off + 8].copy_from_slice(&t.threshold.to_le_bytes());
                }
                OP_SET_SEARCH << 16 | (*qshr as u64) << 8 | tasks.len() as u64
            }
            NdpInstruction::Poll { qshr } => {
                assert!(*qshr < 32, "qshr out of range");
                OP_POLL << 16 | (*qshr as u64) << 8
            }
        };
        ((NDP_ADDR_PREFIX | addr_bits) << 6, p)
    }

    /// Decode a DDR command's `(address, payload)` pair.
    ///
    /// Returns `None` if the address lacks the NDP prefix or any field is
    /// malformed (unknown opcode, out-of-range QSHR id, bad task count,
    /// invalid type/metric codes).
    pub fn decode(addr: u64, p: &[u8; 64]) -> Option<NdpInstruction> {
        let bits = addr >> 6;
        if bits >> 24 != NDP_ADDR_PREFIX >> 24 {
            return None;
        }
        let opcode = (bits >> 16) & 0xff;
        let qshr = ((bits >> 8) & 0xff) as u8;
        let seq = (bits & 0xff) as u8;
        match opcode {
            OP_CONFIGURE => {
                let dtype = dtype_from(p[0])?;
                let dim = u16::from_le_bytes([p[1], p[2]]);
                let metric = metric_from(p[3])?;
                Some(NdpInstruction::Configure(ConfigPayload {
                    dtype,
                    dim,
                    metric,
                    prefix_len: p[4],
                    n_c: p[5],
                    t_c: p[6],
                    n_f: p[7],
                }))
            }
            OP_SET_QUERY => {
                if qshr >= 32 || seq >= 16 {
                    return None;
                }
                Some(NdpInstruction::SetQuery {
                    qshr,
                    seq,
                    data: *p,
                })
            }
            OP_SET_SEARCH => {
                let n = seq as usize;
                if qshr >= 32 || !(1..=8).contains(&n) {
                    return None;
                }
                let tasks = (0..n)
                    .map(|i| {
                        let off = i * 8;
                        SearchTask {
                            addr: u32::from_le_bytes([p[off], p[off + 1], p[off + 2], p[off + 3]]),
                            threshold: f32::from_le_bytes([
                                p[off + 4],
                                p[off + 5],
                                p[off + 6],
                                p[off + 7],
                            ]),
                        }
                    })
                    .collect();
                Some(NdpInstruction::SetSearch { qshr, tasks })
            }
            OP_POLL => {
                if qshr >= 32 {
                    return None;
                }
                Some(NdpInstruction::Poll { qshr })
            }
            _ => None,
        }
    }

    /// Number of DDR commands this instruction occupies on the channel
    /// (set-query for a `query_bytes`-long query needs
    /// `⌈query_bytes/64⌉` WRITEs; everything else is a single command).
    pub fn ddr_commands_for_query(query_bytes: usize) -> usize {
        query_bytes.div_ceil(64)
    }
}

/// CRC-8 (polynomial 0x07, init 0x00, MSB-first) over `data`.
///
/// The same polynomial DDR5 uses for write CRC; cheap enough for the
/// buffer chip to compute per result slot.
pub fn crc8(data: &[u8]) -> u8 {
    let mut crc = 0u8;
    for &b in data {
        crc ^= b;
        for _ in 0..8 {
            crc = if crc & 0x80 != 0 {
                (crc << 1) ^ 0x07
            } else {
                crc << 1
            };
        }
    }
    crc
}

/// The DDR-encoded 64 B payload a poll READ returns (the QSHR result
/// array), with per-slot integrity protection.
///
/// Layout: byte 0 holds the slot count `n` (0..=8) and byte 1 its CRC-8;
/// each slot `i` then occupies 5 bytes at offset `2 + 5i` — the f32
/// result little-endian followed by a CRC-8 over `[i, b0, b1, b2, b3]`
/// (the slot index participates so a swapped or aliased slot is caught,
/// not just flipped bits). Unused bytes are zero.
///
/// The fault injector flips bits in this payload on the simulated return
/// path; [`ResultPayload::decode`] is how the host driver notices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResultPayload;

impl ResultPayload {
    /// Bytes occupied by one protected slot.
    pub const SLOT_BYTES: usize = 5;
    /// Offset of slot 0 within the payload.
    pub const SLOTS_OFF: usize = 2;

    /// Encode up to eight result distances into the protected payload.
    ///
    /// # Panics
    ///
    /// Panics on more than eight results (a QSHR holds eight task slots).
    pub fn encode(results: &[f32]) -> [u8; 64] {
        assert!(
            results.len() <= crate::qshr::TASKS_PER_QSHR,
            "at most 8 result slots"
        );
        let mut p = [0u8; 64];
        p[0] = results.len() as u8;
        p[1] = crc8(&p[..1]);
        for (i, r) in results.iter().enumerate() {
            let off = Self::SLOTS_OFF + i * Self::SLOT_BYTES;
            let b = r.to_le_bytes();
            p[off..off + 4].copy_from_slice(&b);
            p[off + 4] = crc8(&[i as u8, b[0], b[1], b[2], b[3]]);
        }
        p
    }

    /// Decode and verify a polled payload from `qshr`.
    ///
    /// # Errors
    ///
    /// [`NdpError::CorruptHeader`](crate::NdpError::CorruptHeader) when
    /// the slot count fails its CRC (nothing can be trusted), and
    /// [`NdpError::CorruptResult`](crate::NdpError::CorruptResult) naming
    /// the first slot whose CRC fails.
    pub fn decode(qshr: u8, p: &[u8; 64]) -> Result<Vec<f32>, crate::NdpError> {
        if crc8(&p[..1]) != p[1] || p[0] as usize > crate::qshr::TASKS_PER_QSHR {
            return Err(crate::NdpError::CorruptHeader { qshr });
        }
        let n = p[0] as usize;
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let off = Self::SLOTS_OFF + i * Self::SLOT_BYTES;
            let b = [p[off], p[off + 1], p[off + 2], p[off + 3]];
            if crc8(&[i as u8, b[0], b[1], b[2], b[3]]) != p[off + 4] {
                return Err(crate::NdpError::CorruptResult { qshr, slot: i });
            }
            out.push(f32::from_le_bytes(b));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(i: NdpInstruction) {
        let (addr, payload) = i.encode();
        assert_eq!(NdpInstruction::decode(addr, &payload), Some(i));
    }

    #[test]
    fn configure_roundtrip() {
        roundtrip(NdpInstruction::Configure(ConfigPayload {
            dtype: ElemType::F32,
            dim: 960,
            metric: Metric::L2,
            prefix_len: 6,
            n_c: 8,
            t_c: 1,
            n_f: 2,
        }));
    }

    #[test]
    fn set_search_roundtrip_full() {
        let tasks: Vec<SearchTask> = (0..8)
            .map(|i| SearchTask {
                addr: 0x1000 + i * 64,
                threshold: 1.5 * i as f32,
            })
            .collect();
        roundtrip(NdpInstruction::SetSearch { qshr: 31, tasks });
    }

    #[test]
    fn set_query_roundtrip() {
        let mut data = [0u8; 64];
        for (j, b) in data.iter_mut().enumerate() {
            *b = j as u8;
        }
        roundtrip(NdpInstruction::SetQuery {
            qshr: 5,
            seq: 12,
            data,
        });
    }

    #[test]
    fn poll_roundtrip() {
        roundtrip(NdpInstruction::Poll { qshr: 0 });
    }

    #[test]
    fn addresses_are_line_aligned_and_prefixed() {
        let (addr, _) = NdpInstruction::Poll { qshr: 3 }.encode();
        assert_eq!(addr % 64, 0);
        assert_eq!((addr >> 6) >> 24, NDP_ADDR_PREFIX >> 24);
    }

    #[test]
    fn non_ndp_address_rejected() {
        let p = [0u8; 64];
        assert_eq!(NdpInstruction::decode(0x1000, &p), None);
    }

    #[test]
    fn rejects_malformed_fields() {
        // Unknown opcode under the NDP prefix.
        let addr = (NDP_ADDR_PREFIX | (0x9 << 16)) << 6;
        assert_eq!(NdpInstruction::decode(addr, &[0u8; 64]), None);
        // Set-search with 0 tasks.
        let addr = (NDP_ADDR_PREFIX | (OP_SET_SEARCH << 16)) << 6;
        assert_eq!(NdpInstruction::decode(addr, &[0u8; 64]), None);
        // Configure with a bad dtype code.
        let addr = (NDP_ADDR_PREFIX | (OP_CONFIGURE << 16)) << 6;
        let mut p = [0u8; 64];
        p[0] = 99;
        assert_eq!(NdpInstruction::decode(addr, &p), None);
    }

    #[test]
    #[should_panic(expected = "1..=8 tasks")]
    fn encode_rejects_too_many_tasks() {
        let tasks = vec![
            SearchTask {
                addr: 0,
                threshold: 0.0
            };
            9
        ];
        NdpInstruction::SetSearch { qshr: 0, tasks }.encode();
    }

    #[test]
    fn query_upload_command_count() {
        // A 1 kB query (256-dim FP16 / 512-dim UINT8) takes 16 WRITEs.
        assert_eq!(NdpInstruction::ddr_commands_for_query(1024), 16);
        assert_eq!(NdpInstruction::ddr_commands_for_query(100), 2);
    }

    #[test]
    fn result_payload_roundtrip() {
        let results = [1.5f32, -2.25, f32::MAX, 0.0, 42.0];
        let p = ResultPayload::encode(&results);
        assert_eq!(ResultPayload::decode(3, &p), Ok(results.to_vec()));
        // Empty result array is legal (no tasks finished yet).
        let p = ResultPayload::encode(&[]);
        assert_eq!(ResultPayload::decode(0, &p), Ok(vec![]));
    }

    #[test]
    fn result_payload_detects_flipped_bits() {
        let results = [1.0f32, 2.0, 3.0];
        let mut p = ResultPayload::encode(&results);
        // Flip one bit in slot 1's value bytes.
        p[ResultPayload::SLOTS_OFF + ResultPayload::SLOT_BYTES] ^= 0x10;
        assert_eq!(
            ResultPayload::decode(7, &p),
            Err(crate::NdpError::CorruptResult { qshr: 7, slot: 1 })
        );
    }

    #[test]
    fn result_payload_detects_corrupt_count() {
        let mut p = ResultPayload::encode(&[1.0f32]);
        p[0] ^= 0x04;
        assert_eq!(
            ResultPayload::decode(2, &p),
            Err(crate::NdpError::CorruptHeader { qshr: 2 })
        );
        // A count CRC that "matches" an out-of-range count is also caught.
        let mut p = ResultPayload::encode(&[1.0f32]);
        p[0] = 9;
        p[1] = crc8(&[9]);
        assert!(ResultPayload::decode(2, &p).is_err());
    }

    #[test]
    fn result_payload_detects_slot_swap() {
        // Slot CRCs bind the slot index, so swapping two intact slots is
        // detected even though each slot's bits are self-consistent.
        let results = [10.0f32, 20.0];
        let mut p = ResultPayload::encode(&results);
        let (a, b) = (
            ResultPayload::SLOTS_OFF,
            ResultPayload::SLOTS_OFF + ResultPayload::SLOT_BYTES,
        );
        for i in 0..ResultPayload::SLOT_BYTES {
            p.swap(a + i, b + i);
        }
        assert!(matches!(
            ResultPayload::decode(0, &p),
            Err(crate::NdpError::CorruptResult { slot: 0, .. })
        ));
    }

    #[test]
    fn crc8_known_properties() {
        assert_eq!(crc8(&[]), 0);
        // Any single-bit flip changes the CRC.
        let base = crc8(&[0xA5, 0x5A]);
        for byte in 0..2 {
            for bit in 0..8 {
                let mut d = [0xA5u8, 0x5A];
                d[byte] ^= 1 << bit;
                assert_ne!(crc8(&d), base, "flip {byte}.{bit} undetected");
            }
        }
    }
}
