//! Typed errors for recoverable NDP protocol violations.
//!
//! The buffer-chip command parser rejects malformed or mistimed host
//! instructions instead of wedging the unit. These conditions are
//! recoverable on the host side — the fault-tolerant driver retries,
//! re-offloads, or falls back to host compute — so they surface as
//! [`NdpError`] values rather than panics.

use std::error::Error;
use std::fmt;

use crate::qshr::QshrState;

/// A recoverable NDP-unit protocol or data-integrity error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NdpError {
    /// A set-search would overfill a QSHR's eight task slots.
    TooManyTasks {
        /// Total tasks the QSHR would hold after the delivery.
        total: usize,
    },
    /// Task or query delivery to a QSHR that is not in the expected state.
    BadState {
        /// State the instruction requires.
        expected: QshrState,
        /// State the QSHR was actually in.
        actual: QshrState,
    },
    /// `start` on a QSHR still missing its query or its tasks.
    NotReady {
        /// The QSHR's state at the failed start.
        state: QshrState,
    },
    /// A data-path instruction arrived before any configure instruction.
    NotConfigured,
    /// A polled result slot failed its CRC check (corrupted on the DDR
    /// return path or in QSHR storage).
    CorruptResult {
        /// The polled QSHR.
        qshr: u8,
        /// The corrupt task slot within the result array.
        slot: usize,
    },
    /// A polled result payload's header (slot count) failed its CRC
    /// check, so no slot can be trusted.
    CorruptHeader {
        /// The polled QSHR.
        qshr: u8,
    },
}

impl fmt::Display for NdpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NdpError::TooManyTasks { total } => {
                write!(
                    f,
                    "at most {} tasks per QSHR (delivery would make {total})",
                    crate::qshr::TASKS_PER_QSHR
                )
            }
            NdpError::BadState { expected, actual } => {
                write!(
                    f,
                    "QSHR in state {actual:?}, instruction requires {expected:?}"
                )
            }
            NdpError::NotReady { state } => {
                write!(f, "QSHR not ready to start (state {state:?})")
            }
            NdpError::NotConfigured => write!(f, "NDP unit not configured"),
            NdpError::CorruptResult { qshr, slot } => {
                write!(f, "CRC mismatch in QSHR {qshr} result slot {slot}")
            }
            NdpError::CorruptHeader { qshr } => {
                write!(f, "CRC mismatch in QSHR {qshr} result header")
            }
        }
    }
}

impl Error for NdpError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = NdpError::TooManyTasks { total: 9 };
        assert!(e.to_string().contains('9'));
        let e = NdpError::BadState {
            expected: QshrState::Loading,
            actual: QshrState::Done,
        };
        assert!(e.to_string().contains("Loading"));
        assert!(e.to_string().contains("Done"));
        let e = NdpError::CorruptResult { qshr: 3, slot: 5 };
        assert!(e.to_string().contains("CRC"));
    }
}
