//! Query status handling registers (QSHRs, Fig. 5c).
//!
//! Each NDP unit holds 32 QSHRs. A QSHR stores the query-vector data
//! (1 kB), an array of eight comparison tasks (search-vector address,
//! distance threshold, result distance), the current vector buffer, and a
//! fetch counter split into (task index, fetches done). Tasks within a
//! QSHR process sequentially; different QSHRs issue memory accesses in
//! parallel.

use crate::instruction::SearchTask;

/// Result sentinel: "invalid MAX value" before a task finishes (§5.2).
pub const RESULT_INVALID: f32 = f32::MAX;

/// Query buffer capacity in bytes (256-dim FP16 / 512-dim UINT8).
pub const QUERY_BYTES: usize = 1024;

/// Tasks per QSHR.
pub const TASKS_PER_QSHR: usize = 8;

/// QSHRs per NDP unit.
pub const QSHRS_PER_UNIT: usize = 32;

/// Lifecycle of one QSHR.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QshrState {
    /// Unallocated.
    Free,
    /// Allocated; waiting for query data and/or tasks.
    Loading,
    /// Processing comparison tasks.
    Busy,
    /// All tasks finished; results await a poll.
    Done,
}

/// One query status handling register.
#[derive(Debug, Clone)]
pub struct Qshr {
    state: QshrState,
    query_slices: u16,
    query_slices_expected: u16,
    tasks: Vec<SearchTask>,
    results: Vec<f32>,
    /// Fetch counter: current task index.
    pub task_index: usize,
    /// Fetch counter: 64 B fetches completed within the current task.
    pub fetches_in_task: u32,
}

impl Default for Qshr {
    fn default() -> Self {
        Qshr {
            state: QshrState::Free,
            query_slices: 0,
            query_slices_expected: 0,
            tasks: Vec::new(),
            results: Vec::new(),
            task_index: 0,
            fetches_in_task: 0,
        }
    }
}

impl Qshr {
    /// Current state.
    pub fn state(&self) -> QshrState {
        self.state
    }

    /// Allocate for a query whose upload takes `slices` 64 B writes.
    ///
    /// # Panics
    ///
    /// Panics if the QSHR is not free or `slices` exceeds the buffer.
    pub fn allocate(&mut self, slices: u16) {
        assert_eq!(self.state, QshrState::Free, "QSHR already in use");
        assert!(
            (slices as usize) <= QUERY_BYTES / 64,
            "query exceeds the 1 kB QSHR buffer"
        );
        self.state = QshrState::Loading;
        self.query_slices = 0;
        self.query_slices_expected = slices.max(1);
        self.tasks.clear();
        self.results.clear();
        self.task_index = 0;
        self.fetches_in_task = 0;
    }

    /// Deliver one set-query slice.
    pub fn receive_query_slice(&mut self) {
        assert_eq!(self.state, QshrState::Loading, "not loading");
        self.query_slices += 1;
    }

    /// Deliver the set-search tasks. The paper's optimization issues
    /// set-search before the query finishes uploading, so this is legal in
    /// the loading state.
    ///
    /// # Errors
    ///
    /// Rejects delivery to a non-loading QSHR and deliveries that would
    /// overfill the eight task slots; the QSHR is unchanged on error.
    pub fn receive_tasks(&mut self, tasks: &[SearchTask]) -> Result<(), crate::NdpError> {
        if self.state != QshrState::Loading {
            return Err(crate::NdpError::BadState {
                expected: QshrState::Loading,
                actual: self.state,
            });
        }
        let total = self.tasks.len() + tasks.len();
        if total > TASKS_PER_QSHR {
            return Err(crate::NdpError::TooManyTasks { total });
        }
        self.tasks.extend_from_slice(tasks);
        self.results
            .extend(std::iter::repeat_n(RESULT_INVALID, tasks.len()));
        Ok(())
    }

    /// Whether both the query and at least one task have arrived.
    pub fn ready(&self) -> bool {
        self.state == QshrState::Loading
            && self.query_slices >= self.query_slices_expected
            && !self.tasks.is_empty()
    }

    /// Begin processing (query + tasks present).
    ///
    /// # Errors
    ///
    /// Rejects a start while the query or the tasks are still missing.
    pub fn start(&mut self) -> Result<(), crate::NdpError> {
        if !self.ready() {
            return Err(crate::NdpError::NotReady { state: self.state });
        }
        self.state = QshrState::Busy;
        Ok(())
    }

    /// The task currently being processed.
    pub fn current_task(&self) -> Option<&SearchTask> {
        if self.state == QshrState::Busy {
            self.tasks.get(self.task_index)
        } else {
            None
        }
    }

    /// Record one completed 64 B fetch for the current task.
    pub fn record_fetch(&mut self) {
        self.fetches_in_task += 1;
    }

    /// Finish the current task with `result` (`None` = early-terminated,
    /// leaving the invalid MAX sentinel). Advances to the next task and
    /// returns `true` when all tasks are done.
    pub fn finish_task(&mut self, result: Option<f32>) -> bool {
        assert_eq!(self.state, QshrState::Busy, "no task in flight");
        if let Some(d) = result {
            self.results[self.task_index] = d;
        }
        self.task_index += 1;
        self.fetches_in_task = 0;
        if self.task_index >= self.tasks.len() {
            self.state = QshrState::Done;
            true
        } else {
            false
        }
    }

    /// Poll the result array (valid in any state; unfinished tasks read as
    /// the MAX sentinel).
    pub fn poll(&self) -> &[f32] {
        &self.results
    }

    /// Release the QSHR (host-side free after a successful poll).
    pub fn free(&mut self) {
        *self = Qshr::default();
    }

    /// The loaded tasks.
    pub fn tasks(&self) -> &[SearchTask] {
        &self.tasks
    }
}

/// The register file of one NDP unit.
#[derive(Debug, Clone)]
pub struct QshrFile {
    regs: Vec<Qshr>,
}

impl Default for QshrFile {
    fn default() -> Self {
        QshrFile {
            regs: vec![Qshr::default(); QSHRS_PER_UNIT],
        }
    }
}

impl QshrFile {
    /// A full register file (32 QSHRs).
    pub fn new() -> Self {
        Self::default()
    }

    /// Find a free QSHR id, if any (host software tracks allocation; this
    /// mirrors that bookkeeping).
    pub fn find_free(&self) -> Option<usize> {
        self.regs.iter().position(|q| q.state() == QshrState::Free)
    }

    /// Access a QSHR.
    pub fn get(&self, id: usize) -> &Qshr {
        &self.regs[id]
    }

    /// Mutable access to a QSHR.
    pub fn get_mut(&mut self, id: usize) -> &mut Qshr {
        &mut self.regs[id]
    }

    /// Ids of QSHRs currently busy (issuing memory accesses in parallel).
    pub fn busy_ids(&self) -> Vec<usize> {
        (0..self.regs.len())
            .filter(|&i| self.regs[i].state() == QshrState::Busy)
            .collect()
    }

    /// Total storage modeled, in bytes (the paper: 2148 B × 32 ≈ 67 kB).
    pub fn storage_bytes() -> usize {
        // query (1 kB) + current vector (1 kB) + 8 × (addr 4 + thr 4 +
        // result 4) B + counters.
        (QUERY_BYTES + QUERY_BYTES + TASKS_PER_QSHR * 12 + 4) * QSHRS_PER_UNIT
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task(addr: u32) -> SearchTask {
        SearchTask {
            addr,
            threshold: 10.0,
        }
    }

    #[test]
    fn lifecycle() {
        let mut q = Qshr::default();
        assert_eq!(q.state(), QshrState::Free);
        q.allocate(2);
        assert_eq!(q.state(), QshrState::Loading);
        q.receive_tasks(&[task(0), task(64)]).expect("loading");
        assert!(!q.ready(), "query not yet uploaded");
        q.receive_query_slice();
        q.receive_query_slice();
        assert!(q.ready());
        q.start().expect("ready");
        assert_eq!(q.current_task().map(|t| t.addr), Some(0));
        q.record_fetch();
        assert_eq!(q.fetches_in_task, 1);
        assert!(!q.finish_task(Some(3.0)));
        assert_eq!(q.current_task().map(|t| t.addr), Some(64));
        assert!(q.finish_task(None));
        assert_eq!(q.state(), QshrState::Done);
        assert_eq!(q.poll(), &[3.0, RESULT_INVALID]);
        q.free();
        assert_eq!(q.state(), QshrState::Free);
    }

    #[test]
    fn set_search_before_query_completes() {
        // §5.2 optimization: tasks can arrive before the query finishes.
        let mut q = Qshr::default();
        q.allocate(16);
        q.receive_tasks(&[task(0)]).expect("loading");
        for _ in 0..16 {
            q.receive_query_slice();
        }
        assert!(q.ready());
    }

    #[test]
    #[should_panic(expected = "already in use")]
    fn double_allocate_panics() {
        let mut q = Qshr::default();
        q.allocate(1);
        q.allocate(1);
    }

    #[test]
    fn too_many_tasks_rejected() {
        let mut q = Qshr::default();
        q.allocate(1);
        let tasks: Vec<SearchTask> = (0..9).map(|i| task(i * 64)).collect();
        assert_eq!(
            q.receive_tasks(&tasks),
            Err(crate::NdpError::TooManyTasks { total: 9 })
        );
        assert!(q.tasks().is_empty(), "QSHR unchanged on rejection");
        // Overfill across two deliveries is also rejected.
        q.receive_tasks(&tasks[..5]).expect("first five fit");
        assert_eq!(
            q.receive_tasks(&tasks[..4]),
            Err(crate::NdpError::TooManyTasks { total: 9 })
        );
        assert_eq!(q.tasks().len(), 5);
    }

    #[test]
    fn tasks_to_wrong_state_rejected() {
        let mut q = Qshr::default();
        assert_eq!(
            q.receive_tasks(&[task(0)]),
            Err(crate::NdpError::BadState {
                expected: QshrState::Loading,
                actual: QshrState::Free,
            })
        );
        assert_eq!(
            q.start(),
            Err(crate::NdpError::NotReady {
                state: QshrState::Free
            })
        );
    }

    #[test]
    fn file_tracks_busy_sets() {
        let mut f = QshrFile::new();
        assert_eq!(f.find_free(), Some(0));
        f.get_mut(0).allocate(1);
        f.get_mut(0).receive_query_slice();
        f.get_mut(0).receive_tasks(&[task(0)]).expect("loading");
        f.get_mut(0).start().expect("ready");
        assert_eq!(f.find_free(), Some(1));
        assert_eq!(f.busy_ids(), vec![0]);
    }

    #[test]
    fn storage_matches_paper_scale() {
        // Paper: 2148 B × 32 = 67.125 kB. Our model counts the same
        // fields and lands within a few hundred bytes.
        let b = QshrFile::storage_bytes();
        assert!((60_000..75_000).contains(&b), "{b}");
    }
}
