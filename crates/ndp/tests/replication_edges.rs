//! Edge cases of hot-vector replication (§5.3): empty hot sets, more
//! replicas than ranks can distinguish, and everything-hot inputs must
//! all degrade gracefully — replication is an optimization, never a
//! correctness dependency.

use ansmet_ndp::{LoadTracker, PartitionScheme, Partitioner, ReplicaSet};

#[test]
fn empty_hot_set_replicates_nothing() {
    let r = ReplicaSet::new([]);
    assert!(r.is_empty());
    assert_eq!(r.len(), 0);
    assert!(!r.contains(0));
    // No replicas, no extra storage — at any group count.
    for groups in [1, 8, 64] {
        assert_eq!(r.extra_space_frac(1000, groups), 0.0);
    }
    // The default set is the empty set.
    assert!(ReplicaSet::default().is_empty());
}

#[test]
fn replication_factor_exceeding_rank_count_saturates() {
    // 4 ranks, horizontal → 4 groups; a hot vector gets groups − 1 = 3
    // extra copies. Asking the space model about *more* groups than ranks
    // exist still answers (the fraction simply keeps growing linearly) —
    // callers clamp the group count, the set itself has no rank limit.
    let p = Partitioner::new(PartitionScheme::Horizontal, 4, 16, 1);
    assert_eq!(p.rank_groups(), 4);
    let r = ReplicaSet::new([7]);
    let at_ranks = r.extra_space_frac(100, p.rank_groups());
    assert!((at_ranks - 0.03).abs() < 1e-12, "frac {at_ranks}");
    let beyond = r.extra_space_frac(100, 64);
    assert!(beyond > at_ranks);
    // One group means zero extra copies, never a negative count.
    assert_eq!(r.extra_space_frac(100, 1), 0.0);
    assert_eq!(r.extra_space_frac(100, 0), 0.0);
}

#[test]
fn replica_serving_stays_valid_in_every_group() {
    // A replicated vector must be servable from any group the balancer
    // picks, with placements confined to that group's ranks.
    let p = Partitioner::new(PartitionScheme::Hybrid { subvec_bytes: 64 }, 8, 64, 4);
    let hot = ReplicaSet::new([3]);
    assert!(hot.contains(3));
    for g in 0..p.rank_groups() {
        for q in p.placement_in_group(3, g) {
            assert_eq!(q.rank / p.group_size(), g, "replica left group {g}");
        }
    }
}

#[test]
fn all_hot_input_is_total_replication() {
    // Degenerate but legal: every vector flagged hot. The set holds all
    // of them and the space overhead is (groups − 1) × the dataset.
    let n = 256usize;
    let r = ReplicaSet::new(0..n);
    assert_eq!(r.len(), n);
    assert!((0..n).all(|id| r.contains(id)));
    let frac = r.extra_space_frac(n, 8);
    assert!((frac - 7.0).abs() < 1e-12, "frac {frac}");
    // Duplicated ids collapse (it is a set, not a bag).
    let dup = ReplicaSet::new([5, 5, 5, 9]);
    assert_eq!(dup.len(), 2);
}

#[test]
fn all_hot_balancing_spreads_load_across_groups() {
    // With everything replicated, serving each comparison from the
    // least-loaded group must keep the imbalance ratio near 1 even when
    // the home-group mapping alone would be maximally skewed.
    let p = Partitioner::new(PartitionScheme::Horizontal, 8, 16, 1);
    let mut lt = LoadTracker::new(8, p.group_size());
    // Adversarial stream: every id maps to home group 0.
    for i in 0..800 {
        let id = i * p.rank_groups();
        let g = lt.least_loaded_group();
        for q in p.placement_in_group(id % 8, g) {
            lt.add(q.rank, 1);
        }
    }
    let ratio = lt.imbalance_ratio();
    assert!(ratio < 1.05, "imbalance {ratio} with total replication");
}

#[test]
fn zero_vector_dataset_has_no_replica_overhead() {
    let r = ReplicaSet::new([1, 2]);
    assert_eq!(r.extra_space_frac(0, 8), 0.0);
}
