//! Deterministic fault injection for the ANSMET NDP stack.
//!
//! Real near-data processing hardware fails in ways a conventional memory
//! system never exposes to software: a buffer-chip compute unit can stall
//! behind a refresh storm or hang outright, a DDR-encoded NDP instruction
//! can be dropped by the command parser, a QSHR result slot can be
//! corrupted on the return path, and a poll can race the completion it is
//! looking for. This crate models those faults as *data*: a declarative
//! [`FaultPlan`] names which rank-local operation each fault hits, and a
//! [`FaultInjector`] replays the plan deterministically while the
//! simulated host driver runs, counting every injection in
//! [`FaultStats`].
//!
//! The injector is pull-based: the driver asks it at each protocol step
//! (offload, compute, poll) whether a fault fires there. Nothing here
//! depends on the rest of the workspace, so the same plans can drive the
//! functional NDP model, the timing simulator, or a property test.
//!
//! # Example
//!
//! ```
//! use ansmet_faults::{FaultEvent, FaultInjector, FaultKind, FaultPlan};
//!
//! let plan = FaultPlan::new(vec![
//!     FaultEvent { rank: 0, at: 0, kind: FaultKind::DropInstruction },
//!     FaultEvent { rank: 1, at: 2, kind: FaultKind::CorruptResult { bit: 37 } },
//! ]);
//! let mut inj = FaultInjector::new(plan);
//! assert!(inj.drop_instruction(0)); // first offload to rank 0 vanishes
//! assert!(!inj.drop_instruction(0)); // the fault was one-shot
//! assert_eq!(inj.stats().dropped_instructions, 1);
//! ```

pub mod injector;
pub mod json;
pub mod plan;
pub mod snapshot;
pub mod storm;

pub use injector::{ComputeFault, FaultInjector, FaultStats};
pub use json::Json;
pub use plan::{FaultEvent, FaultKind, FaultPlan, FaultRates};
pub use storm::{StormKind, StormPlan, StormWindow};
