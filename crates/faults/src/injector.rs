//! The stateful, replayable fault injector.
//!
//! [`FaultInjector`] consumes a [`FaultPlan`] and answers the host
//! driver's questions at each protocol step. Per-rank operation counters
//! advance on every query, so the `at` index in each event addresses the
//! `at`-th offload / compute / poll on that rank regardless of what the
//! other ranks do. Every fired fault is tallied in [`FaultStats`].

use crate::plan::{FaultEvent, FaultKind, FaultPlan};

/// What the compute step of one batch suffers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ComputeFault {
    /// Healthy compute.
    None,
    /// Completion delayed by the given cycles.
    Stall(u64),
    /// The batch never completes.
    Hang,
}

/// Counters of every fault actually injected.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// NDP instructions silently dropped.
    pub dropped_instructions: u64,
    /// Compute stalls injected.
    pub stalls: u64,
    /// Compute hangs injected.
    pub hangs: u64,
    /// Poll payloads with a flipped bit.
    pub corrupted_results: u64,
    /// Result slots lost (sentinel in place of a distance).
    pub lost_results: u64,
    /// Transient poll misses.
    pub poll_misses: u64,
    /// Total added stall cycles.
    pub stall_cycles: u64,
}

impl FaultStats {
    /// Total faults injected.
    pub fn total(&self) -> u64 {
        self.dropped_instructions
            + self.stalls
            + self.hangs
            + self.corrupted_results
            + self.lost_results
            + self.poll_misses
    }
}

#[derive(Debug, Clone, Default)]
struct RankCounters {
    offloads: u64,
    computes: u64,
    polls: u64,
}

/// Replays a [`FaultPlan`] against the driver's protocol steps.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    events: Vec<(FaultEvent, bool)>, // (event, fired)
    counters: Vec<RankCounters>,
    stats: FaultStats,
}

impl FaultInjector {
    /// An injector replaying `plan`.
    pub fn new(plan: FaultPlan) -> Self {
        FaultInjector {
            events: plan.events().iter().map(|&e| (e, false)).collect(),
            counters: Vec::new(),
            stats: FaultStats::default(),
        }
    }

    /// An injector that injects nothing.
    pub fn disabled() -> Self {
        Self::new(FaultPlan::none())
    }

    /// Counters of faults injected so far.
    pub fn stats(&self) -> &FaultStats {
        &self.stats
    }

    fn counters(&mut self, rank: usize) -> &mut RankCounters {
        if rank >= self.counters.len() {
            self.counters.resize_with(rank + 1, RankCounters::default);
        }
        &mut self.counters[rank]
    }

    /// Find the not-yet-fired event matching `(rank, op_index, step)` and
    /// mark it fired.
    fn take(
        &mut self,
        rank: usize,
        op_index: u64,
        step: fn(&FaultKind) -> bool,
    ) -> Option<FaultKind> {
        let slot = self
            .events
            .iter_mut()
            .find(|(e, fired)| !fired && e.rank == rank && e.at == op_index && step(&e.kind))?;
        slot.1 = true;
        Some(slot.0.kind)
    }

    /// The driver is about to send one NDP instruction batch (offload) to
    /// `rank`. Returns `true` when the instruction is dropped: the unit
    /// never sees it and the batch will never complete.
    pub fn drop_instruction(&mut self, rank: usize) -> bool {
        let n = self.counters(rank).offloads;
        self.counters(rank).offloads += 1;
        match self.take(rank, n, FaultKind::is_offload_fault) {
            Some(FaultKind::DropInstruction) => {
                self.stats.dropped_instructions += 1;
                true
            }
            _ => false,
        }
    }

    /// The unit on `rank` is computing one batch. Returns the compute
    /// fault (healthy, stalled by N cycles, or hung).
    pub fn compute_fault(&mut self, rank: usize) -> ComputeFault {
        let n = self.counters(rank).computes;
        self.counters(rank).computes += 1;
        match self.take(rank, n, FaultKind::is_compute_fault) {
            Some(FaultKind::Stall { cycles }) => {
                self.stats.stalls += 1;
                self.stats.stall_cycles += cycles;
                ComputeFault::Stall(cycles)
            }
            Some(FaultKind::Hang) => {
                self.stats.hangs += 1;
                ComputeFault::Hang
            }
            _ => ComputeFault::None,
        }
    }

    /// The host polls `rank`; `payload` is the DDR line the poll READ
    /// returns. At most one poll fault fires per poll: a flipped bit
    /// (payload mutated in place), a lost result slot, or a transient
    /// miss. Returns what happened so the caller can model a lost slot
    /// (re-encode with the sentinel) or a stale read.
    pub fn poll_fault(&mut self, rank: usize, payload: &mut [u8; 64]) -> Option<FaultKind> {
        let n = self.counters(rank).polls;
        self.counters(rank).polls += 1;
        let kind = self.take(rank, n, FaultKind::is_poll_fault)?;
        match kind {
            FaultKind::CorruptResult { bit } => {
                let bit = bit as usize % 512;
                payload[bit / 8] ^= 1 << (bit % 8);
                self.stats.corrupted_results += 1;
            }
            FaultKind::LostResult => self.stats.lost_results += 1,
            FaultKind::PollMiss => self.stats.poll_misses += 1,
            _ => unreachable!("is_poll_fault filtered"),
        }
        Some(kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::FaultRates;

    #[test]
    fn events_fire_once_at_their_index() {
        let plan = FaultPlan::new(vec![
            FaultEvent {
                rank: 0,
                at: 1,
                kind: FaultKind::DropInstruction,
            },
            FaultEvent {
                rank: 2,
                at: 0,
                kind: FaultKind::Hang,
            },
        ]);
        let mut inj = FaultInjector::new(plan);
        assert!(!inj.drop_instruction(0)); // offload 0: clean
        assert!(inj.drop_instruction(0)); // offload 1: dropped
        assert!(!inj.drop_instruction(0)); // offload 2: clean again
        assert_eq!(inj.compute_fault(2), ComputeFault::Hang);
        assert_eq!(inj.compute_fault(2), ComputeFault::None);
        assert_eq!(inj.stats().dropped_instructions, 1);
        assert_eq!(inj.stats().hangs, 1);
        assert_eq!(inj.stats().total(), 2);
    }

    #[test]
    fn rank_counters_are_independent() {
        let plan = FaultPlan::new(vec![FaultEvent {
            rank: 1,
            at: 0,
            kind: FaultKind::DropInstruction,
        }]);
        let mut inj = FaultInjector::new(plan);
        // Rank 0 traffic does not consume rank 1's event.
        for _ in 0..5 {
            assert!(!inj.drop_instruction(0));
        }
        assert!(inj.drop_instruction(1));
    }

    #[test]
    fn corrupt_flips_exactly_one_bit() {
        let plan = FaultPlan::new(vec![FaultEvent {
            rank: 0,
            at: 0,
            kind: FaultKind::CorruptResult { bit: 77 },
        }]);
        let mut inj = FaultInjector::new(plan);
        let mut payload = [0u8; 64];
        let got = inj.poll_fault(0, &mut payload);
        assert_eq!(got, Some(FaultKind::CorruptResult { bit: 77 }));
        let ones: u32 = payload.iter().map(|b| b.count_ones()).sum();
        assert_eq!(ones, 1);
        assert_eq!(payload[77 / 8], 1 << (77 % 8));
    }

    #[test]
    fn stall_accumulates_cycles() {
        let plan = FaultPlan::new(vec![
            FaultEvent {
                rank: 0,
                at: 0,
                kind: FaultKind::Stall { cycles: 500 },
            },
            FaultEvent {
                rank: 0,
                at: 1,
                kind: FaultKind::Stall { cycles: 700 },
            },
        ]);
        let mut inj = FaultInjector::new(plan);
        assert_eq!(inj.compute_fault(0), ComputeFault::Stall(500));
        assert_eq!(inj.compute_fault(0), ComputeFault::Stall(700));
        assert_eq!(inj.stats().stall_cycles, 1200);
    }

    #[test]
    fn disabled_injector_never_fires() {
        let mut inj = FaultInjector::disabled();
        let mut payload = [7u8; 64];
        for rank in 0..4 {
            assert!(!inj.drop_instruction(rank));
            assert_eq!(inj.compute_fault(rank), ComputeFault::None);
            assert_eq!(inj.poll_fault(rank, &mut payload), None);
        }
        assert_eq!(payload, [7u8; 64]);
        assert_eq!(inj.stats().total(), 0);
    }

    #[test]
    fn random_plan_replays_deterministically() {
        let plan = FaultPlan::random(99, 4, 64, FaultRates::mixed());
        let run = |plan: FaultPlan| {
            let mut inj = FaultInjector::new(plan);
            let mut log = Vec::new();
            for op in 0..64u64 {
                for rank in 0..4 {
                    log.push((inj.drop_instruction(rank), inj.compute_fault(rank)));
                    let mut p = [0u8; 64];
                    log.push((inj.poll_fault(rank, &mut p).is_some(), ComputeFault::None));
                    let _ = op;
                }
            }
            (log, *inj.stats())
        };
        let (log_a, stats_a) = run(plan.clone());
        let (log_b, stats_b) = run(plan);
        assert_eq!(log_a, log_b);
        assert_eq!(stats_a, stats_b);
        assert!(stats_a.total() > 0, "mixed rates must inject something");
    }
}
