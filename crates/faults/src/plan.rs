//! Declarative fault plans.
//!
//! A [`FaultPlan`] is a list of [`FaultEvent`]s, each naming a rank, a
//! fault kind, and the 0-based index of the rank-local operation the
//! fault hits. Plans are plain data — they can be written by hand for a
//! targeted test or generated pseudo-randomly (and reproducibly) from a
//! seed with [`FaultPlan::random`].

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::json::Json;

/// What goes wrong.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The rank's compute unit stalls: the batch completes `cycles`
    /// later than it should (refresh storms, thermal throttling).
    Stall {
        /// Added completion delay in memory cycles.
        cycles: u64,
    },
    /// The rank's compute unit hangs: the batch never completes.
    Hang,
    /// The DDR-encoded NDP instruction is silently dropped by the
    /// buffer-chip command parser; the unit never sees the batch.
    DropInstruction,
    /// One bit of the polled result payload flips on the return path.
    CorruptResult {
        /// Bit position within the 64 B payload (0..512).
        bit: u16,
    },
    /// A QSHR result slot is never written: the poll payload carries the
    /// invalid-MAX sentinel where a finished distance should be.
    LostResult,
    /// The poll read transiently returns stale not-done data even though
    /// the batch has completed.
    PollMiss,
}

impl FaultKind {
    /// Whether this fault hits the offload step (vs. compute or poll).
    pub fn is_offload_fault(&self) -> bool {
        matches!(self, FaultKind::DropInstruction)
    }

    /// Whether this fault hits the compute step.
    pub fn is_compute_fault(&self) -> bool {
        matches!(self, FaultKind::Stall { .. } | FaultKind::Hang)
    }

    /// Whether this fault hits the poll/result step.
    pub fn is_poll_fault(&self) -> bool {
        matches!(
            self,
            FaultKind::CorruptResult { .. } | FaultKind::LostResult | FaultKind::PollMiss
        )
    }
}

/// One scheduled fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// The rank whose NDP unit the fault hits.
    pub rank: usize,
    /// 0-based index of the rank-local operation the fault hits: the
    /// `at`-th offload for offload faults, the `at`-th compute for
    /// compute faults, the `at`-th poll for poll faults. Each event
    /// fires at most once.
    pub at: u64,
    /// The fault.
    pub kind: FaultKind,
}

/// A deterministic schedule of faults.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

/// Per-operation fault probabilities for [`FaultPlan::random`], each in
/// `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultRates {
    /// Probability an offload's instruction is dropped.
    pub drop_instruction: f64,
    /// Probability a compute stalls (by a random 100..10_000 cycles).
    pub stall: f64,
    /// Probability a compute hangs.
    pub hang: f64,
    /// Probability a poll payload gets a flipped bit.
    pub corrupt_result: f64,
    /// Probability a result slot is lost.
    pub lost_result: f64,
    /// Probability a poll transiently misses.
    pub poll_miss: f64,
}

impl FaultRates {
    /// A mild mixed-fault profile (every kind represented, nothing
    /// overwhelming): useful as a property-test default.
    pub fn mixed() -> Self {
        FaultRates {
            drop_instruction: 0.02,
            stall: 0.05,
            hang: 0.01,
            corrupt_result: 0.03,
            lost_result: 0.02,
            poll_miss: 0.03,
        }
    }

    /// No faults at all (the oracle baseline).
    pub fn none() -> Self {
        FaultRates {
            drop_instruction: 0.0,
            stall: 0.0,
            hang: 0.0,
            corrupt_result: 0.0,
            lost_result: 0.0,
            poll_miss: 0.0,
        }
    }
}

impl FaultPlan {
    /// A plan from explicit events.
    pub fn new(events: Vec<FaultEvent>) -> Self {
        FaultPlan { events }
    }

    /// The empty (fault-free) plan.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// The scheduled events.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Whether the plan schedules no faults.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Generate a reproducible pseudo-random plan: for each of `n_ranks`
    /// ranks and each of the first `ops` rank-local operations, each
    /// fault kind fires with its [`FaultRates`] probability. The same
    /// `(seed, n_ranks, ops, rates)` always yields the same plan.
    pub fn random(seed: u64, n_ranks: usize, ops: u64, rates: FaultRates) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut events = Vec::new();
        for rank in 0..n_ranks {
            for at in 0..ops {
                if rng.gen_bool(rates.drop_instruction) {
                    events.push(FaultEvent {
                        rank,
                        at,
                        kind: FaultKind::DropInstruction,
                    });
                }
                if rng.gen_bool(rates.hang) {
                    events.push(FaultEvent {
                        rank,
                        at,
                        kind: FaultKind::Hang,
                    });
                } else if rng.gen_bool(rates.stall) {
                    events.push(FaultEvent {
                        rank,
                        at,
                        kind: FaultKind::Stall {
                            cycles: rng.gen_range(100u64..10_000),
                        },
                    });
                }
                if rng.gen_bool(rates.corrupt_result) {
                    events.push(FaultEvent {
                        rank,
                        at,
                        kind: FaultKind::CorruptResult {
                            bit: rng.gen_range(0u16..512),
                        },
                    });
                } else if rng.gen_bool(rates.lost_result) {
                    events.push(FaultEvent {
                        rank,
                        at,
                        kind: FaultKind::LostResult,
                    });
                } else if rng.gen_bool(rates.poll_miss) {
                    events.push(FaultEvent {
                        rank,
                        at,
                        kind: FaultKind::PollMiss,
                    });
                }
            }
        }
        FaultPlan { events }
    }

    /// Serialize to JSON (stable field order, byte-deterministic), so
    /// plans can live in `tests/` as fixtures.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\"events\":[");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("{\"rank\":");
            s.push_str(&e.rank.to_string());
            s.push_str(",\"at\":");
            s.push_str(&e.at.to_string());
            match e.kind {
                FaultKind::Stall { cycles } => {
                    s.push_str(",\"kind\":\"stall\",\"cycles\":");
                    s.push_str(&cycles.to_string());
                }
                FaultKind::Hang => s.push_str(",\"kind\":\"hang\""),
                FaultKind::DropInstruction => s.push_str(",\"kind\":\"drop_instruction\""),
                FaultKind::CorruptResult { bit } => {
                    s.push_str(",\"kind\":\"corrupt_result\",\"bit\":");
                    s.push_str(&bit.to_string());
                }
                FaultKind::LostResult => s.push_str(",\"kind\":\"lost_result\""),
                FaultKind::PollMiss => s.push_str(",\"kind\":\"poll_miss\""),
            }
            s.push('}');
        }
        s.push_str("]}");
        s
    }

    /// Parse a plan serialized by [`FaultPlan::to_json`].
    pub fn from_json(src: &str) -> Result<Self, String> {
        let root = Json::parse(src)?;
        let events = root
            .get("events")
            .and_then(Json::as_array)
            .ok_or("missing \"events\" array")?;
        let mut out = Vec::with_capacity(events.len());
        for e in events {
            let rank = e
                .get("rank")
                .and_then(Json::as_u64)
                .ok_or("event missing \"rank\"")? as usize;
            let at = e
                .get("at")
                .and_then(Json::as_u64)
                .ok_or("event missing \"at\"")?;
            let kind = match e.get("kind").and_then(Json::as_str) {
                Some("stall") => FaultKind::Stall {
                    cycles: e
                        .get("cycles")
                        .and_then(Json::as_u64)
                        .ok_or("stall event missing \"cycles\"")?,
                },
                Some("hang") => FaultKind::Hang,
                Some("drop_instruction") => FaultKind::DropInstruction,
                Some("corrupt_result") => {
                    let bit = e
                        .get("bit")
                        .and_then(Json::as_u64)
                        .ok_or("corrupt_result event missing \"bit\"")?;
                    if bit >= 512 {
                        return Err(format!("corrupt_result bit {bit} out of range"));
                    }
                    FaultKind::CorruptResult { bit: bit as u16 }
                }
                Some("lost_result") => FaultKind::LostResult,
                Some("poll_miss") => FaultKind::PollMiss,
                Some(other) => return Err(format!("unknown fault kind {other:?}")),
                None => return Err("event missing \"kind\"".into()),
            };
            out.push(FaultEvent { rank, at, kind });
        }
        Ok(FaultPlan::new(out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_plans_are_reproducible() {
        let a = FaultPlan::random(7, 4, 50, FaultRates::mixed());
        let b = FaultPlan::random(7, 4, 50, FaultRates::mixed());
        assert_eq!(a, b);
        let c = FaultPlan::random(8, 4, 50, FaultRates::mixed());
        assert_ne!(a, c, "different seeds give different plans");
    }

    #[test]
    fn zero_rates_give_empty_plan() {
        let p = FaultPlan::random(1, 8, 100, FaultRates::none());
        assert!(p.is_empty());
    }

    #[test]
    fn mixed_rates_cover_every_kind_eventually() {
        let p = FaultPlan::random(42, 8, 400, FaultRates::mixed());
        let has = |f: fn(&FaultKind) -> bool| p.events().iter().any(|e| f(&e.kind));
        assert!(has(|k| matches!(k, FaultKind::DropInstruction)));
        assert!(has(|k| matches!(k, FaultKind::Stall { .. })));
        assert!(has(|k| matches!(k, FaultKind::Hang)));
        assert!(has(|k| matches!(k, FaultKind::CorruptResult { .. })));
        assert!(has(|k| matches!(k, FaultKind::LostResult)));
        assert!(has(|k| matches!(k, FaultKind::PollMiss)));
    }

    #[test]
    fn json_round_trip_preserves_every_kind() {
        let plan = FaultPlan::new(vec![
            FaultEvent {
                rank: 0,
                at: 3,
                kind: FaultKind::Stall { cycles: 4_096 },
            },
            FaultEvent {
                rank: 1,
                at: 0,
                kind: FaultKind::Hang,
            },
            FaultEvent {
                rank: 2,
                at: 7,
                kind: FaultKind::DropInstruction,
            },
            FaultEvent {
                rank: 3,
                at: 11,
                kind: FaultKind::CorruptResult { bit: 511 },
            },
            FaultEvent {
                rank: 4,
                at: 2,
                kind: FaultKind::LostResult,
            },
            FaultEvent {
                rank: 5,
                at: 9,
                kind: FaultKind::PollMiss,
            },
        ]);
        let json = plan.to_json();
        let back = FaultPlan::from_json(&json).unwrap();
        assert_eq!(plan, back);
        assert_eq!(back.to_json(), json, "serialization is byte-stable");
    }

    #[test]
    fn json_round_trip_of_random_plan() {
        let plan = FaultPlan::random(42, 8, 100, FaultRates::mixed());
        assert!(!plan.is_empty());
        assert_eq!(FaultPlan::from_json(&plan.to_json()).unwrap(), plan);
        let empty = FaultPlan::none();
        assert_eq!(empty.to_json(), "{\"events\":[]}");
        assert_eq!(FaultPlan::from_json(&empty.to_json()).unwrap(), empty);
    }

    #[test]
    fn from_json_rejects_malformed_plans() {
        assert!(FaultPlan::from_json("{}").is_err());
        assert!(FaultPlan::from_json(r#"{"events":[{"rank":0}]}"#).is_err());
        assert!(
            FaultPlan::from_json(r#"{"events":[{"rank":0,"at":0,"kind":"gremlin"}]}"#).is_err()
        );
        assert!(FaultPlan::from_json(
            r#"{"events":[{"rank":0,"at":0,"kind":"corrupt_result","bit":512}]}"#
        )
        .is_err());
    }

    #[test]
    fn kind_classification_is_total() {
        for k in [
            FaultKind::Stall { cycles: 1 },
            FaultKind::Hang,
            FaultKind::DropInstruction,
            FaultKind::CorruptResult { bit: 0 },
            FaultKind::LostResult,
            FaultKind::PollMiss,
        ] {
            let n =
                k.is_offload_fault() as u8 + k.is_compute_fault() as u8 + k.is_poll_fault() as u8;
            assert_eq!(n, 1, "{k:?} must belong to exactly one step");
        }
    }
}
