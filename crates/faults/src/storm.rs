//! Scripted sustained fault storms.
//!
//! A [`FaultPlan`] schedules *point* faults — the N-th operation on a
//! rank misbehaves once. Sustained degradation looks different: a rank
//! group goes dark for a window of the serving clock (a stuck refresh
//! engine, a thermally throttled buffer chip, a firmware wedge) and every
//! offload routed there during the window fails, until the device
//! recovers at t′. A [`StormPlan`] models that as a set of
//! [`StormWindow`]s over *rank groups* and *cycles*, which is what the
//! serving tier's health tracker and circuit breakers react to.
//!
//! Storms are plain data with a JSON round-trip so chaos scripts can be
//! checked into `tests/` as fixtures.
//!
//! [`FaultPlan`]: crate::FaultPlan

use crate::json::Json;

/// How an afflicted rank group misbehaves during a storm window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StormKind {
    /// Every offload to the group hangs: the batch never completes and
    /// the host's timeout/recovery path must deal with it.
    Hang,
    /// Every offload completes, but `cycles` late (sustained throttling
    /// rather than an outage).
    Stall {
        /// Added completion delay per offload, in memory cycles.
        cycles: u64,
    },
}

/// One contiguous degradation window over a set of rank groups.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StormWindow {
    /// The afflicted rank groups.
    pub groups: Vec<usize>,
    /// First serving-clock cycle of the window (inclusive).
    pub start_cycle: u64,
    /// First cycle *after* the window (exclusive) — recovery instant t′.
    pub end_cycle: u64,
    /// The failure mode inside the window.
    pub kind: StormKind,
}

impl StormWindow {
    /// Whether `group` is afflicted at `cycle`.
    pub fn covers(&self, group: usize, cycle: u64) -> bool {
        cycle >= self.start_cycle && cycle < self.end_cycle && self.groups.contains(&group)
    }
}

/// A deterministic script of sustained fault storms.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StormPlan {
    windows: Vec<StormWindow>,
}

impl StormPlan {
    /// A plan from explicit windows.
    pub fn new(windows: Vec<StormWindow>) -> Self {
        StormPlan { windows }
    }

    /// The empty (storm-free) plan.
    pub fn none() -> Self {
        StormPlan::default()
    }

    /// One rank group hung over `[start, end)` — the canonical
    /// single-device outage.
    pub fn single_group_outage(group: usize, start_cycle: u64, end_cycle: u64) -> Self {
        StormPlan::new(vec![StormWindow {
            groups: vec![group],
            start_cycle,
            end_cycle,
            kind: StormKind::Hang,
        }])
    }

    /// Several rank groups hung over the same `[start, end)` window — a
    /// correlated burst (shared power rail, shared refresh controller).
    pub fn correlated_burst(groups: Vec<usize>, start_cycle: u64, end_cycle: u64) -> Self {
        StormPlan::new(vec![StormWindow {
            groups,
            start_cycle,
            end_cycle,
            kind: StormKind::Hang,
        }])
    }

    /// A rolling outage: groups `0..groups` go dark one after another,
    /// each for `window_cycles`, starting `stride_cycles` apart (a
    /// rolling firmware update gone wrong, or a cascading brownout).
    /// Windows may overlap when `stride_cycles < window_cycles`.
    pub fn rolling_outage(
        groups: usize,
        start_cycle: u64,
        window_cycles: u64,
        stride_cycles: u64,
    ) -> Self {
        StormPlan::new(
            (0..groups)
                .map(|g| {
                    let start = start_cycle + g as u64 * stride_cycles;
                    StormWindow {
                        groups: vec![g],
                        start_cycle: start,
                        end_cycle: start + window_cycles,
                        kind: StormKind::Hang,
                    }
                })
                .collect(),
        )
    }

    /// The scripted windows.
    pub fn windows(&self) -> &[StormWindow] {
        &self.windows
    }

    /// Whether the plan scripts no storms.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// The failure mode afflicting `group` at `cycle`, if any. Windows
    /// are consulted in script order; the first covering window wins.
    pub fn fault_at(&self, group: usize, cycle: u64) -> Option<StormKind> {
        self.windows
            .iter()
            .find(|w| w.covers(group, cycle))
            .map(|w| w.kind)
    }

    /// The `[earliest start, latest end)` envelope of all windows, or
    /// `None` for an empty plan.
    pub fn span(&self) -> Option<(u64, u64)> {
        let start = self.windows.iter().map(|w| w.start_cycle).min()?;
        let end = self.windows.iter().map(|w| w.end_cycle).max()?;
        Some((start, end))
    }

    /// Serialize to JSON (stable field order, byte-deterministic).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\"windows\":[");
        for (i, w) in self.windows.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("{\"groups\":[");
            for (j, g) in w.groups.iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                s.push_str(&g.to_string());
            }
            s.push_str("],\"start_cycle\":");
            s.push_str(&w.start_cycle.to_string());
            s.push_str(",\"end_cycle\":");
            s.push_str(&w.end_cycle.to_string());
            match w.kind {
                StormKind::Hang => s.push_str(",\"kind\":\"hang\"}"),
                StormKind::Stall { cycles } => {
                    s.push_str(",\"kind\":\"stall\",\"cycles\":");
                    s.push_str(&cycles.to_string());
                    s.push('}');
                }
            }
        }
        s.push_str("]}");
        s
    }

    /// Parse a plan serialized by [`StormPlan::to_json`].
    pub fn from_json(src: &str) -> Result<Self, String> {
        let root = Json::parse(src)?;
        let windows = root
            .get("windows")
            .and_then(Json::as_array)
            .ok_or("missing \"windows\" array")?;
        let mut out = Vec::with_capacity(windows.len());
        for w in windows {
            let groups = w
                .get("groups")
                .and_then(Json::as_array)
                .ok_or("window missing \"groups\"")?
                .iter()
                .map(|g| g.as_u64().map(|n| n as usize).ok_or("bad group id"))
                .collect::<Result<Vec<_>, _>>()?;
            let start_cycle = w
                .get("start_cycle")
                .and_then(Json::as_u64)
                .ok_or("window missing \"start_cycle\"")?;
            let end_cycle = w
                .get("end_cycle")
                .and_then(Json::as_u64)
                .ok_or("window missing \"end_cycle\"")?;
            let kind = match w.get("kind").and_then(Json::as_str) {
                Some("hang") => StormKind::Hang,
                Some("stall") => StormKind::Stall {
                    cycles: w
                        .get("cycles")
                        .and_then(Json::as_u64)
                        .ok_or("stall window missing \"cycles\"")?,
                },
                Some(other) => return Err(format!("unknown storm kind {other:?}")),
                None => return Err("window missing \"kind\"".into()),
            };
            out.push(StormWindow {
                groups,
                start_cycle,
                end_cycle,
                kind,
            });
        }
        Ok(StormPlan::new(out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_cover_half_open_ranges() {
        let p = StormPlan::single_group_outage(3, 1_000, 5_000);
        assert_eq!(p.fault_at(3, 999), None);
        assert_eq!(p.fault_at(3, 1_000), Some(StormKind::Hang));
        assert_eq!(p.fault_at(3, 4_999), Some(StormKind::Hang));
        assert_eq!(p.fault_at(3, 5_000), None, "recovery instant is exclusive");
        assert_eq!(p.fault_at(2, 2_000), None, "other groups unaffected");
    }

    #[test]
    fn correlated_bursts_hit_all_groups() {
        let p = StormPlan::correlated_burst(vec![0, 5, 9], 100, 200);
        for g in [0, 5, 9] {
            assert_eq!(p.fault_at(g, 150), Some(StormKind::Hang));
        }
        assert_eq!(p.fault_at(1, 150), None);
        assert_eq!(p.span(), Some((100, 200)));
    }

    #[test]
    fn first_covering_window_wins() {
        let p = StormPlan::new(vec![
            StormWindow {
                groups: vec![0],
                start_cycle: 0,
                end_cycle: 100,
                kind: StormKind::Stall { cycles: 7 },
            },
            StormWindow {
                groups: vec![0],
                start_cycle: 50,
                end_cycle: 150,
                kind: StormKind::Hang,
            },
        ]);
        assert_eq!(p.fault_at(0, 60), Some(StormKind::Stall { cycles: 7 }));
        assert_eq!(p.fault_at(0, 120), Some(StormKind::Hang));
        assert_eq!(p.span(), Some((0, 150)));
    }

    #[test]
    fn rolling_outage_staggers_the_windows() {
        let p = StormPlan::rolling_outage(3, 1_000, 500, 2_000);
        assert_eq!(p.windows().len(), 3);
        // Group g dark exactly over [1000 + 2000 g, 1500 + 2000 g).
        for g in 0..3 {
            let start = 1_000 + g as u64 * 2_000;
            assert_eq!(p.fault_at(g, start), Some(StormKind::Hang));
            assert_eq!(p.fault_at(g, start + 499), Some(StormKind::Hang));
            assert_eq!(p.fault_at(g, start + 500), None);
            assert_eq!(p.fault_at(g, start.wrapping_sub(1)), None);
        }
        // At any instant at most one group is dark (stride > window).
        for cycle in (0..8_000).step_by(100) {
            let dark = (0..3).filter(|&g| p.fault_at(g, cycle).is_some()).count();
            assert!(dark <= 1, "cycle {cycle} has {dark} dark groups");
        }
        assert_eq!(p.span(), Some((1_000, 5_500)));
    }

    #[test]
    fn empty_plan() {
        let p = StormPlan::none();
        assert!(p.is_empty());
        assert_eq!(p.span(), None);
        assert_eq!(p.fault_at(0, 0), None);
    }

    #[test]
    fn json_round_trip() {
        let p = StormPlan::new(vec![
            StormWindow {
                groups: vec![0, 3],
                start_cycle: 1_000,
                end_cycle: 9_000,
                kind: StormKind::Hang,
            },
            StormWindow {
                groups: vec![7],
                start_cycle: 2_500,
                end_cycle: 4_000,
                kind: StormKind::Stall { cycles: 1_200 },
            },
        ]);
        let json = p.to_json();
        let back = StormPlan::from_json(&json).unwrap();
        assert_eq!(p, back);
        assert_eq!(back.to_json(), json, "serialization is byte-stable");
    }

    #[test]
    fn from_json_rejects_garbage() {
        assert!(StormPlan::from_json("{}").is_err());
        assert!(StormPlan::from_json(r#"{"windows":[{"groups":[0]}]}"#).is_err());
        assert!(StormPlan::from_json(
            r#"{"windows":[{"groups":[0],"start_cycle":0,"end_cycle":1,"kind":"melt"}]}"#
        )
        .is_err());
    }
}
