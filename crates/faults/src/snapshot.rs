//! Durable-state fault models: snapshot corruption and torn writes.
//!
//! The freshness subsystem persists epoch snapshots (index, layout plan,
//! and epoch metadata) to byte buffers guarded by a trailing checksum.
//! This module supplies the *attack side* for its recovery tests: flip a
//! single bit or byte (media corruption, a bad DMA), or truncate the
//! tail (a torn write — power loss mid-`write(2)` leaves a prefix).
//! Both are pure functions over the buffer so tests stay deterministic.

/// XOR one byte of `buf` with `mask` (a single-event upset when `mask`
/// has one bit set, a wild write otherwise). Returns the original byte.
///
/// # Panics
///
/// Panics if `offset` is out of range or `mask` is zero (a zero mask is
/// a no-op "corruption" that would silently pass round-trip tests).
pub fn flip_byte(buf: &mut [u8], offset: usize, mask: u8) -> u8 {
    assert!(
        offset < buf.len(),
        "corruption offset {offset} outside buffer of {} bytes",
        buf.len()
    );
    assert_ne!(mask, 0, "a zero mask does not corrupt anything");
    let original = buf[offset];
    buf[offset] ^= mask;
    original
}

/// Simulate a torn write: keep only the first `kept` bytes of the
/// snapshot (the prefix that reached the medium before the tear).
///
/// # Panics
///
/// Panics if `kept >= buf.len()` — an untorn "tear" would defeat the
/// test's purpose.
pub fn torn_tail(buf: &[u8], kept: usize) -> Vec<u8> {
    assert!(
        kept < buf.len(),
        "torn write must lose at least one byte ({kept} >= {})",
        buf.len()
    );
    buf[..kept].to_vec()
}

/// Deterministic corruption offset for seed `s` over a buffer of `len`
/// bytes: a splitmix-style hash so sweeps over seeds touch varied
/// regions (header, payload, checksum trailer) without an RNG dependency.
pub fn corruption_offset(seed: u64, len: usize) -> usize {
    assert!(len > 0, "cannot corrupt an empty buffer");
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z % len as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flip_byte_round_trips() {
        let mut buf = vec![0u8, 1, 2, 3];
        let orig = flip_byte(&mut buf, 2, 0b0100);
        assert_eq!(orig, 2);
        assert_eq!(buf[2], 6);
        flip_byte(&mut buf, 2, 0b0100);
        assert_eq!(buf, vec![0, 1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "zero mask")]
    fn zero_mask_rejected() {
        flip_byte(&mut [1, 2, 3], 0, 0);
    }

    #[test]
    #[should_panic(expected = "outside buffer")]
    fn out_of_range_offset_rejected() {
        flip_byte(&mut [1, 2], 5, 1);
    }

    #[test]
    fn torn_tail_keeps_prefix() {
        let buf = vec![9u8; 10];
        let torn = torn_tail(&buf, 4);
        assert_eq!(torn, vec![9u8; 4]);
    }

    #[test]
    #[should_panic(expected = "lose at least one byte")]
    fn untorn_tear_rejected() {
        let buf = vec![0u8; 3];
        let _ = torn_tail(&buf, 3);
    }

    #[test]
    fn corruption_offsets_are_deterministic_and_spread() {
        let a = corruption_offset(1, 1000);
        let b = corruption_offset(1, 1000);
        assert_eq!(a, b);
        // Different seeds hit different regions more often than not.
        let distinct: std::collections::HashSet<usize> =
            (0..32).map(|s| corruption_offset(s, 1000)).collect();
        assert!(distinct.len() > 16, "offsets too clustered: {distinct:?}");
    }
}
