//! A minimal JSON reader for fault-plan fixtures.
//!
//! The workspace deliberately carries no serde; plans and storm scripts
//! are serialized with hand-rolled writers and read back through this
//! parser. It covers exactly what the fixtures need — objects, arrays,
//! strings with basic escapes, and unsigned integers — and rejects
//! everything else with a positioned error message.

/// A parsed JSON value (the fixture subset).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Json {
    /// An object, in source order.
    Object(Vec<(String, Json)>),
    /// An array.
    Array(Vec<Json>),
    /// A string.
    Str(String),
    /// An unsigned integer (the only number form plans use).
    UInt(u64),
    /// `true` / `false`.
    Bool(bool),
    /// `null`.
    Null,
}

impl Json {
    /// Parse a complete JSON document (trailing whitespace allowed).
    pub fn parse(src: &str) -> Result<Json, String> {
        let bytes = src.as_bytes();
        let mut pos = 0usize;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing content at byte {pos}"));
        }
        Ok(v)
    }

    /// Look up a field of an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an unsigned integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(v) => Some(v),
            _ => None,
        }
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    skip_ws(b, pos);
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", c as char, *pos))
    }
}

fn peek(b: &[u8], pos: &mut usize) -> Option<u8> {
    skip_ws(b, pos);
    b.get(*pos).copied()
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    match peek(b, pos) {
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(c) if c.is_ascii_digit() => parse_uint(b, pos),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(c) => Err(format!("unexpected '{}' at byte {}", c as char, *pos)),
        None => Err("unexpected end of input".into()),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("bad literal at byte {}", *pos))
    }
}

fn parse_uint(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    let mut n: u64 = 0;
    while *pos < b.len() && b[*pos].is_ascii_digit() {
        n = n
            .checked_mul(10)
            .and_then(|n| n.checked_add((b[*pos] - b'0') as u64))
            .ok_or_else(|| format!("integer overflow at byte {start}"))?;
        *pos += 1;
    }
    if *pos < b.len() && matches!(b[*pos], b'.' | b'e' | b'E' | b'-' | b'+') {
        return Err(format!(
            "only unsigned integers are supported (byte {start})"
        ));
    }
    Ok(Json::UInt(n))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    while *pos < b.len() {
        match b[*pos] {
            b'"' => {
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                *pos += 1;
                let esc = b.get(*pos).ok_or("unterminated escape")?;
                out.push(match esc {
                    b'"' => '"',
                    b'\\' => '\\',
                    b'/' => '/',
                    b'n' => '\n',
                    b't' => '\t',
                    b'r' => '\r',
                    _ => return Err(format!("unsupported escape at byte {}", *pos)),
                });
                *pos += 1;
            }
            c => {
                // Multi-byte UTF-8 passes through unmodified.
                let s = &b[*pos..];
                let ch_len = match c {
                    0x00..=0x7F => 1,
                    0xC0..=0xDF => 2,
                    0xE0..=0xEF => 3,
                    _ => 4,
                };
                let chunk = std::str::from_utf8(&s[..ch_len.min(s.len())])
                    .map_err(|_| format!("invalid utf-8 at byte {}", *pos))?;
                out.push_str(chunk);
                *pos += chunk.len();
            }
        }
    }
    Err("unterminated string".into())
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'{')?;
    let mut fields = Vec::new();
    if peek(b, pos) == Some(b'}') {
        *pos += 1;
        return Ok(Json::Object(fields));
    }
    loop {
        let key = parse_string(b, pos)?;
        expect(b, pos, b':')?;
        let val = parse_value(b, pos)?;
        fields.push((key, val));
        match peek(b, pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Object(fields));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    if peek(b, pos) == Some(b']') {
        *pos += 1;
        return Ok(Json::Array(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        match peek(b, pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Array(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_structures() {
        let v = Json::parse(
            r#"{ "a": [1, 2, {"b": "x\n"}], "c": 18446744073709551615, "t": true, "z": null }"#,
        )
        .unwrap();
        assert_eq!(v.get("c").and_then(Json::as_u64), Some(u64::MAX));
        let arr = v.get("a").and_then(Json::as_array).unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[2].get("b").and_then(Json::as_str), Some("x\n"));
        assert_eq!(v.get("t"), Some(&Json::Bool(true)));
        assert_eq!(v.get("z"), Some(&Json::Null));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("1.5").is_err(), "floats unsupported");
        assert!(Json::parse("-3").is_err(), "negatives unsupported");
        assert!(Json::parse("{}{}").is_err(), "trailing content");
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn empty_containers() {
        assert_eq!(Json::parse("{}").unwrap(), Json::Object(vec![]));
        assert_eq!(Json::parse("[ ]").unwrap(), Json::Array(vec![]));
    }
}
