//! Epoch-based visited set (avoids clearing a bitmap per query).

/// Tracks which vector ids have been visited during one search.
///
/// Reusing the set via [`VisitedSet::clear`] is O(1): it bumps an epoch
/// counter instead of touching every slot.
#[derive(Debug, Clone)]
pub struct VisitedSet {
    marks: Vec<u32>,
    epoch: u32,
}

impl VisitedSet {
    /// Create a set covering ids `0..n`.
    pub fn new(n: usize) -> Self {
        VisitedSet {
            marks: vec![0; n],
            epoch: 1,
        }
    }

    /// Start a fresh query.
    pub fn clear(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Extremely rare wraparound: reset storage.
            self.marks.iter_mut().for_each(|m| *m = 0);
            self.epoch = 1;
        }
    }

    /// Mark `id` visited; returns `true` if it was not visited before.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn insert(&mut self, id: usize) -> bool {
        if self.marks[id] == self.epoch {
            false
        } else {
            self.marks[id] = self.epoch;
            true
        }
    }

    /// Whether `id` has been visited in the current epoch.
    pub fn contains(&self, id: usize) -> bool {
        self.marks[id] == self.epoch
    }

    /// Capacity (number of tracked ids).
    pub fn capacity(&self) -> usize {
        self.marks.len()
    }

    /// Grow the set to cover ids `0..n` *without* resetting it.
    ///
    /// New slots start at mark 0, which no live epoch ever equals (the
    /// epoch counter starts at 1 and skips 0 on wraparound), so existing
    /// visited state stays valid — the operation an index mutation needs
    /// when ids are appended mid-stream. Returns whether the backing
    /// buffer had to move (i.e. the growth exceeded reserved headroom);
    /// scratch reuse counts these as reallocations.
    pub fn grow(&mut self, n: usize) -> bool {
        if n <= self.marks.len() {
            return false;
        }
        let before = self.marks.as_ptr();
        self.marks.resize(n, 0);
        before != self.marks.as_ptr()
    }

    /// Reserve headroom so that growth up to `n` ids stays in place.
    pub fn reserve_ids(&mut self, n: usize) {
        let len = self.marks.len();
        if n > len {
            self.marks.reserve_exact(n - len);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_contains() {
        let mut v = VisitedSet::new(10);
        assert!(v.insert(3));
        assert!(!v.insert(3));
        assert!(v.contains(3));
        assert!(!v.contains(4));
    }

    #[test]
    fn clear_resets_in_constant_time() {
        let mut v = VisitedSet::new(4);
        v.insert(0);
        v.insert(1);
        v.clear();
        assert!(!v.contains(0));
        assert!(v.insert(0));
    }

    #[test]
    fn grow_preserves_visited_state() {
        let mut v = VisitedSet::new(3);
        v.insert(0);
        v.insert(2);
        v.grow(8);
        assert_eq!(v.capacity(), 8);
        assert!(v.contains(0) && v.contains(2));
        assert!(!v.contains(5));
        assert!(v.insert(7));
        // Shrinking is a no-op.
        assert!(!v.grow(2));
        assert_eq!(v.capacity(), 8);
    }

    #[test]
    fn reserved_growth_stays_in_place() {
        let mut v = VisitedSet::new(4);
        v.reserve_ids(64);
        v.insert(1);
        assert!(!v.grow(64), "growth within reserved headroom moved");
        assert!(v.contains(1));
    }

    #[test]
    fn epoch_wraparound_is_safe() {
        let mut v = VisitedSet::new(2);
        v.epoch = u32::MAX - 1;
        v.insert(0);
        v.clear(); // epoch becomes MAX
        v.insert(1);
        v.clear(); // wraps to 0 → storage reset, epoch 1
        assert!(!v.contains(0));
        assert!(!v.contains(1));
        assert!(v.insert(0));
    }
}
