//! Reusable per-search working memory.
//!
//! One beam search needs a visited set sized to the database, two heaps,
//! and (for IVF) a centroid ordering buffer. Allocating — and for the
//! visited set, zeroing — all of them per query dominates host-side
//! search time on small-k workloads; a [`SearchScratch`] threaded through
//! consecutive searches amortizes that setup to an O(1) epoch bump.

use crate::heap::{MaxDistHeap, MinDistHeap, Neighbor};
use crate::visited::VisitedSet;

/// Reusable buffers for [`Hnsw::search_with`](crate::Hnsw::search_with)
/// and [`Ivf::search_with`](crate::Ivf::search_with).
///
/// A scratch is tied to no particular index: capacities grow on demand,
/// so one scratch may serve searches over different datasets. Results are
/// bit-identical to the allocating entry points.
#[derive(Debug)]
pub struct SearchScratch {
    /// Visited markers for ids `0..n` (epoch-cleared).
    pub(crate) visited: VisitedSet,
    /// The unbounded candidate (search) set.
    pub(crate) candidates: MinDistHeap,
    /// The bounded result set (rebounded to ef / k per search).
    pub(crate) results: MaxDistHeap,
    /// Sorted drain buffer for the result set.
    pub(crate) sorted: Vec<Neighbor>,
    /// IVF centroid ordering: `(distance, list)` pairs.
    pub(crate) order: Vec<(f32, usize)>,
}

impl SearchScratch {
    /// Create a scratch for searches over up to `n` vectors (grown
    /// automatically if a larger index is searched later).
    pub fn new(n: usize) -> Self {
        SearchScratch {
            visited: VisitedSet::new(n),
            candidates: MinDistHeap::new(),
            results: MaxDistHeap::new(1),
            sorted: Vec::new(),
            order: Vec::new(),
        }
    }

    /// Make sure the visited set covers ids `0..n`.
    pub(crate) fn ensure_ids(&mut self, n: usize) {
        if self.visited.capacity() < n {
            self.visited = VisitedSet::new(n);
        }
    }
}

impl Default for SearchScratch {
    fn default() -> Self {
        Self::new(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grows_on_demand() {
        let mut s = SearchScratch::new(4);
        s.ensure_ids(2);
        assert_eq!(s.visited.capacity(), 4);
        s.ensure_ids(100);
        assert_eq!(s.visited.capacity(), 100);
    }
}
