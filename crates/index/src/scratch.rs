//! Reusable per-search working memory.
//!
//! One beam search needs a visited set sized to the database, two heaps,
//! and (for IVF) a centroid ordering buffer. Allocating — and for the
//! visited set, zeroing — all of them per query dominates host-side
//! search time on small-k workloads; a [`SearchScratch`] threaded through
//! consecutive searches amortizes that setup to an O(1) epoch bump.

use crate::heap::{MaxDistHeap, MinDistHeap, Neighbor};
use crate::visited::VisitedSet;

/// Reusable buffers for [`Hnsw::search_with`](crate::Hnsw::search_with)
/// and [`Ivf::search_with`](crate::Ivf::search_with).
///
/// A scratch is tied to no particular index: capacities grow on demand,
/// so one scratch may serve searches over different datasets. Results are
/// bit-identical to the allocating entry points.
///
/// Under online mutation the scratch is *generation-aware*: a mutable
/// index bumps its generation on every insert/delete, and
/// [`SearchScratch::sync_generation`] grows the visited set in place
/// (preserving its epoch state) instead of reallocating — searching
/// across an insert costs zero reallocations.
#[derive(Debug)]
pub struct SearchScratch {
    /// Visited markers for ids `0..n` (epoch-cleared).
    pub(crate) visited: VisitedSet,
    /// The unbounded candidate (search) set.
    pub(crate) candidates: MinDistHeap,
    /// The bounded result set (rebounded to ef / k per search).
    pub(crate) results: MaxDistHeap,
    /// Sorted drain buffer for the result set.
    pub(crate) sorted: Vec<Neighbor>,
    /// IVF centroid ordering: `(distance, list)` pairs.
    pub(crate) order: Vec<(f32, usize)>,
    /// Index generation this scratch last synced against (0 = never).
    generation: u64,
    /// Full visited-set reallocations performed (regression telemetry:
    /// mutation-driven growth must not show up here).
    reallocations: u64,
}

impl SearchScratch {
    /// Create a scratch for searches over up to `n` vectors (grown
    /// automatically if a larger index is searched later).
    pub fn new(n: usize) -> Self {
        SearchScratch {
            visited: VisitedSet::new(n),
            candidates: MinDistHeap::new(),
            results: MaxDistHeap::new(1),
            sorted: Vec::new(),
            order: Vec::new(),
            generation: 0,
            reallocations: 0,
        }
    }

    /// A scratch with visited-set headroom for `reserve` ids beyond the
    /// current `n`, so mutation-driven growth up to the reserve line
    /// stays in place (zero reallocations across inserts).
    pub fn with_headroom(n: usize, reserve: usize) -> Self {
        let mut s = Self::new(n);
        s.visited.reserve_ids(n + reserve);
        s
    }

    /// Make sure the visited set covers ids `0..n`, growing in place
    /// (the epoch-based visited state stays valid across growth).
    pub(crate) fn ensure_ids(&mut self, n: usize) {
        if self.visited.grow(n) {
            self.reallocations += 1;
        }
    }

    /// Sync the scratch against a mutable index's generation counter:
    /// when the index mutated since the last search, the visited set is
    /// grown to cover `n` ids — in place while reserved headroom lasts,
    /// with existing epoch state preserved either way. No-op when the
    /// generation is unchanged.
    pub fn sync_generation(&mut self, generation: u64, n: usize) {
        if self.generation != generation {
            self.generation = generation;
            self.ensure_ids(n);
        }
    }

    /// The index generation this scratch last synced against.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Full visited-set reallocations since creation (generation-driven
    /// growth is in-place and does not count).
    pub fn reallocations(&self) -> u64 {
        self.reallocations
    }

    /// Visited-set capacity in ids (diagnostic).
    pub fn visited_capacity(&self) -> usize {
        self.visited.capacity()
    }
}

impl Default for SearchScratch {
    fn default() -> Self {
        Self::new(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grows_on_demand() {
        let mut s = SearchScratch::new(4);
        s.ensure_ids(2);
        assert_eq!(s.visited.capacity(), 4);
        s.ensure_ids(100);
        assert_eq!(s.visited.capacity(), 100);
    }

    #[test]
    fn generation_sync_grows_in_place() {
        let mut s = SearchScratch::with_headroom(10, 32);
        s.sync_generation(1, 10);
        assert_eq!(s.generation(), 1);
        // Mutation appended two ids: in-place growth, no reallocation.
        s.sync_generation(2, 12);
        assert_eq!(s.visited.capacity(), 12);
        assert_eq!(s.reallocations(), 0);
        // Same generation: no-op.
        s.sync_generation(2, 50);
        assert_eq!(s.visited.capacity(), 12);
        // Past the reserve line the growth is a (counted) reallocation.
        s.sync_generation(3, 4096);
        assert_eq!(s.reallocations(), 1);
    }
}
