//! IVF (inverted-file) cluster index with Lloyd's k-means, the paper's
//! representative cluster-based index (§2.1, Fig. 1).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use ansmet_vecdata::{Dataset, Metric};

use crate::heap::Neighbor;
use crate::oracle::{DistanceOracle, DistanceOutcome};
use crate::trace::{Eval, Hop, HopKind, SearchTrace};

/// IVF construction parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct IvfParams {
    /// Number of clusters (inverted lists). Defaults to `√n` when zero.
    pub n_lists: usize,
    /// Lloyd iterations.
    pub iterations: usize,
    /// RNG seed for centroid initialization.
    pub seed: u64,
}

impl Default for IvfParams {
    fn default() -> Self {
        IvfParams {
            n_lists: 0,
            iterations: 12,
            seed: 7,
        }
    }
}

/// The built IVF index.
#[derive(Debug, Clone)]
pub struct Ivf {
    centroids: Vec<Vec<f32>>,
    lists: Vec<Vec<usize>>,
    metric: Metric,
}

impl Ivf {
    /// Build the index over `data` with k-means clustering.
    ///
    /// Clustering always uses L2 geometry (as FAISS does); list scanning
    /// uses the dataset's search metric.
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty.
    pub fn build(data: &Dataset, params: IvfParams) -> Self {
        assert!(!data.is_empty(), "cannot build IVF over an empty dataset");
        let n = data.len();
        let k = if params.n_lists == 0 {
            ((n as f64).sqrt().ceil() as usize).clamp(1, n)
        } else {
            params.n_lists.min(n)
        };
        let dim = data.dim();
        let mut rng = SmallRng::seed_from_u64(params.seed);

        // Initialize centroids from distinct random vectors.
        let mut centroids: Vec<Vec<f32>> = Vec::with_capacity(k);
        let mut chosen = std::collections::HashSet::new();
        while centroids.len() < k {
            let i = rng.gen_range(0..n);
            if chosen.insert(i) {
                centroids.push(data.vector(i).to_vec());
            }
        }

        let mut assignment = vec![0usize; n];
        for _ in 0..params.iterations {
            // Assign.
            #[allow(clippy::needless_range_loop)]
            // indexed loops over shared state read clearer here
            for i in 0..n {
                let v = data.vector(i);
                let mut best = 0;
                let mut best_d = f32::INFINITY;
                for (c, centroid) in centroids.iter().enumerate() {
                    let d = ansmet_vecdata::metric::l2_squared(v, centroid);
                    if d < best_d {
                        best_d = d;
                        best = c;
                    }
                }
                assignment[i] = best;
            }
            // Update.
            let mut sums = vec![vec![0.0f64; dim]; k];
            let mut counts = vec![0usize; k];
            #[allow(clippy::needless_range_loop)]
            // indexed loops over shared state read clearer here
            for i in 0..n {
                let c = assignment[i];
                counts[c] += 1;
                for (s, v) in sums[c].iter_mut().zip(data.vector(i)) {
                    *s += *v as f64;
                }
            }
            for c in 0..k {
                if counts[c] == 0 {
                    // Re-seed empty cluster from a random vector.
                    let i = rng.gen_range(0..n);
                    centroids[c] = data.vector(i).to_vec();
                } else {
                    for (cd, s) in centroids[c].iter_mut().zip(&sums[c]) {
                        *cd = (*s / counts[c] as f64) as f32;
                    }
                }
            }
        }

        // Final assignment into lists.
        let mut lists = vec![Vec::new(); k];
        for i in 0..n {
            let v = data.vector(i);
            let mut best = 0;
            let mut best_d = f32::INFINITY;
            for (c, centroid) in centroids.iter().enumerate() {
                let d = ansmet_vecdata::metric::l2_squared(v, centroid);
                if d < best_d {
                    best_d = d;
                    best = c;
                }
            }
            lists[best].push(i);
        }

        Ivf {
            centroids,
            lists,
            metric: data.metric(),
        }
    }

    /// Number of inverted lists.
    pub fn n_lists(&self) -> usize {
        self.lists.len()
    }

    /// The metric used when scanning lists.
    pub fn metric(&self) -> Metric {
        self.metric
    }

    /// Centroid vectors — the paper's IVF "hot vectors" for replication.
    pub fn centroids(&self) -> &[Vec<f32>] {
        &self.centroids
    }

    /// Members of list `c`.
    pub fn list(&self, c: usize) -> &[usize] {
        &self.lists[c]
    }

    /// Append the vector `id` (already present in `data`) to its nearest
    /// list. Centroids are *not* moved — streaming appends accumulate
    /// drift that [`Ivf::rebalance`] later repairs. Returns the chosen
    /// list and the L2² distance to its centroid (the caller's
    /// centroid-drift signal).
    pub fn append(&mut self, data: &Dataset, id: usize) -> (usize, f32) {
        let v = data.vector(id);
        let mut best = 0;
        let mut best_d = f32::INFINITY;
        for (c, centroid) in self.centroids.iter().enumerate() {
            let d = ansmet_vecdata::metric::l2_squared(v, centroid);
            if d < best_d {
                best_d = d;
                best = c;
            }
        }
        self.lists[best].push(id);
        (best, best_d)
    }

    /// Drop every id with `dead[id] == true` from all lists (tombstone
    /// purge). Relative order of survivors is preserved, so scan order —
    /// and therefore results and traces — stays deterministic.
    pub fn purge(&mut self, dead: &[bool]) {
        for list in &mut self.lists {
            list.retain(|&id| !dead[id]);
        }
    }

    /// One Lloyd step over the current membership: recompute each
    /// non-empty list's centroid as its member mean, then reassign every
    /// member to its now-nearest centroid. Returns how many ids moved
    /// lists (0 ⇒ the clustering is stable again).
    pub fn rebalance(&mut self, data: &Dataset) -> usize {
        let k = self.lists.len();
        let dim = data.dim();
        for (centroid, list) in self.centroids.iter_mut().zip(&self.lists) {
            if list.is_empty() {
                continue; // keep the stale centroid; it may re-attract later
            }
            let mut sums = vec![0.0f64; dim];
            for &id in list {
                for (s, v) in sums.iter_mut().zip(data.vector(id)) {
                    *s += *v as f64;
                }
            }
            for (cd, s) in centroid.iter_mut().zip(&sums) {
                *cd = (*s / list.len() as f64) as f32;
            }
        }
        let mut moved = 0;
        let mut new_lists = vec![Vec::new(); k];
        for (old_c, list) in self.lists.iter().enumerate() {
            for &id in list {
                let v = data.vector(id);
                let mut best = 0;
                let mut best_d = f32::INFINITY;
                for (c, centroid) in self.centroids.iter().enumerate() {
                    let d = ansmet_vecdata::metric::l2_squared(v, centroid);
                    if d < best_d {
                        best_d = d;
                        best = c;
                    }
                }
                if best != old_c {
                    moved += 1;
                }
                new_lists[best].push(id);
            }
        }
        // Reassignment iterates lists in order, so each new list collects
        // ids in (old list, position) order — deterministic but not
        // necessarily ascending; sort to make scan order canonical.
        for list in &mut new_lists {
            list.sort_unstable();
        }
        self.lists = new_lists;
        moved
    }

    /// Reassemble an index from snapshot parts.
    ///
    /// # Panics
    ///
    /// Panics if the parts are structurally inconsistent.
    pub fn from_parts(centroids: Vec<Vec<f32>>, lists: Vec<Vec<usize>>, metric: Metric) -> Self {
        assert!(
            !centroids.is_empty(),
            "snapshot holds an IVF with no centroids"
        );
        assert_eq!(
            centroids.len(),
            lists.len(),
            "snapshot centroid/list counts disagree"
        );
        let dim = centroids[0].len();
        assert!(
            centroids.iter().all(|c| c.len() == dim),
            "snapshot centroids have mixed dimensionality"
        );
        Ivf {
            centroids,
            lists,
            metric,
        }
    }

    /// Search the `nprobe` closest lists for the `k` nearest neighbors.
    pub fn search<O: DistanceOracle>(
        &self,
        query: &[f32],
        k: usize,
        nprobe: usize,
        oracle: &mut O,
    ) -> crate::hnsw::SearchResult {
        let mut scratch = crate::scratch::SearchScratch::new(0);
        self.search_inner(query, k, nprobe, oracle, None, &mut scratch)
    }

    /// [`Ivf::search`] reusing caller-provided scratch buffers
    /// (bit-identical results, no per-query allocation).
    pub fn search_with<O: DistanceOracle>(
        &self,
        query: &[f32],
        k: usize,
        nprobe: usize,
        oracle: &mut O,
        scratch: &mut crate::scratch::SearchScratch,
    ) -> crate::hnsw::SearchResult {
        self.search_inner(query, k, nprobe, oracle, None, scratch)
    }

    /// Search while recording the comparison trace.
    pub fn search_traced<O: DistanceOracle>(
        &self,
        query: &[f32],
        k: usize,
        nprobe: usize,
        oracle: &mut O,
    ) -> (crate::hnsw::SearchResult, SearchTrace) {
        let mut scratch = crate::scratch::SearchScratch::new(0);
        self.search_traced_with(query, k, nprobe, oracle, &mut scratch)
    }

    /// [`Ivf::search_traced`] reusing caller-provided scratch buffers.
    pub fn search_traced_with<O: DistanceOracle>(
        &self,
        query: &[f32],
        k: usize,
        nprobe: usize,
        oracle: &mut O,
        scratch: &mut crate::scratch::SearchScratch,
    ) -> (crate::hnsw::SearchResult, SearchTrace) {
        let mut t = SearchTrace::new();
        let r = self.search_inner(query, k, nprobe, oracle, Some(&mut t), scratch);
        (r, t)
    }

    fn search_inner<O: DistanceOracle>(
        &self,
        query: &[f32],
        k: usize,
        nprobe: usize,
        oracle: &mut O,
        mut trace: Option<&mut SearchTrace>,
        scratch: &mut crate::scratch::SearchScratch,
    ) -> crate::hnsw::SearchResult {
        assert!(k > 0, "k must be positive");
        let nprobe = nprobe.clamp(1, self.lists.len());

        // Rank centroids (host-side work; centroids are replicated/cached).
        let order = &mut scratch.order;
        order.clear();
        order.extend(
            self.centroids
                .iter()
                .enumerate()
                .map(|(c, centroid)| (ansmet_vecdata::metric::l2_squared(query, centroid), c)),
        );
        order.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        if let Some(t) = trace.as_deref_mut() {
            let mut hop = Hop::new(HopKind::Centroid);
            for &(d, c) in order.iter() {
                hop.evals.push(Eval {
                    id: c,
                    threshold: f32::INFINITY,
                    distance: d,
                    accepted: true,
                });
            }
            t.hops.push(hop);
        }

        let results = &mut scratch.results;
        results.reset(k);
        for &(_, c) in order.iter().take(nprobe) {
            let mut hop = Hop::new(HopKind::ListScan);
            for &id in &self.lists[c] {
                let threshold = results.threshold();
                let out = oracle.evaluate(id, query, threshold);
                let d = out.distance().unwrap_or(f32::INFINITY);
                let accepted = match out {
                    DistanceOutcome::Exact(d) => results.push(Neighbor::new(d, id)),
                    DistanceOutcome::Pruned => false,
                };
                hop.evals.push(Eval {
                    id,
                    threshold,
                    distance: d,
                    accepted,
                });
            }
            if let Some(t) = trace.as_deref_mut() {
                if !hop.evals.is_empty() {
                    t.hops.push(hop);
                }
            }
        }
        results.drain_sorted_into(&mut scratch.sorted);
        crate::hnsw::SearchResult::from_neighbors(scratch.sorted.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::ExactOracle;
    use ansmet_vecdata::{brute_force_knn, recall_at_k, SynthSpec};

    #[test]
    fn all_vectors_assigned_exactly_once() {
        let (data, _) = SynthSpec::sift().scaled(300, 1).generate();
        let ivf = Ivf::build(&data, IvfParams::default());
        let total: usize = (0..ivf.n_lists()).map(|c| ivf.list(c).len()).sum();
        assert_eq!(total, data.len());
        let mut seen = vec![false; data.len()];
        for c in 0..ivf.n_lists() {
            for &id in ivf.list(c) {
                assert!(!seen[id], "vector {id} in two lists");
                seen[id] = true;
            }
        }
    }

    #[test]
    fn full_probe_equals_brute_force() {
        let (data, queries) = SynthSpec::deep().scaled(250, 4).generate();
        let ivf = Ivf::build(&data, IvfParams::default());
        let mut o = ExactOracle::new(&data);
        for q in &queries {
            let (truth, _) = brute_force_knn(&data, q, 5);
            let r = ivf.search(q, 5, ivf.n_lists(), &mut o);
            assert_eq!(r.ids(), truth);
        }
    }

    #[test]
    fn recall_reasonable_with_partial_probe() {
        let (data, queries) = SynthSpec::sift().scaled(1000, 8).generate();
        let ivf = Ivf::build(&data, IvfParams::default());
        let mut o = ExactOracle::new(&data);
        let mut total = 0.0;
        let nprobe = (ivf.n_lists() / 4).max(1);
        for q in &queries {
            let (truth, _) = brute_force_knn(&data, q, 10);
            let r = ivf.search(q, 10, nprobe, &mut o);
            total += recall_at_k(&r.ids(), &truth, 10);
        }
        assert!(total / queries.len() as f64 > 0.6);
    }

    #[test]
    fn trace_records_centroids_and_scans() {
        let (data, queries) = SynthSpec::sift().scaled(300, 1).generate();
        let ivf = Ivf::build(&data, IvfParams::default());
        let mut o = ExactOracle::new(&data);
        let (_, t) = ivf.search_traced(&queries[0], 5, 3, &mut o);
        assert_eq!(t.hops[0].kind, HopKind::Centroid);
        let scans = t
            .hops
            .iter()
            .filter(|h| h.kind == HopKind::ListScan)
            .count();
        assert!((1..=3).contains(&scans));
        // Scanned comparisons match the oracle count.
        let scanned: usize = t
            .hops
            .iter()
            .filter(|h| h.kind == HopKind::ListScan)
            .map(|h| h.evals.len())
            .sum();
        assert_eq!(scanned as u64, o.comparisons());
    }

    fn prefix_of(full: &ansmet_vecdata::Dataset, n: usize) -> ansmet_vecdata::Dataset {
        let values: Vec<f32> = (0..n).flat_map(|i| full.vector(i).to_vec()).collect();
        ansmet_vecdata::Dataset::from_values(
            full.name().to_string(),
            full.dtype(),
            full.metric(),
            full.dim(),
            values,
        )
    }

    #[test]
    fn append_assigns_nearest_list_and_stays_searchable() {
        let (full, _) = SynthSpec::sift().scaled(300, 1).generate();
        let mut data = prefix_of(&full, 250);
        let mut ivf = Ivf::build(&data, IvfParams::default());
        for i in 250..300 {
            let id = data.push_vector(full.vector(i));
            let (list, drift) = ivf.append(&data, id);
            assert!(ivf.list(list).contains(&id));
            assert!(drift.is_finite());
        }
        let total: usize = (0..ivf.n_lists()).map(|c| ivf.list(c).len()).sum();
        assert_eq!(total, 300);
        // Full probe still finds each appended vector exactly.
        let mut o = ExactOracle::new(&data);
        for i in [250, 299] {
            let r = ivf.search(data.vector(i), 1, ivf.n_lists(), &mut o);
            assert_eq!(r.ids()[0], i);
        }
    }

    #[test]
    fn purge_drops_dead_ids_only() {
        let (data, _) = SynthSpec::sift().scaled(200, 1).generate();
        let mut ivf = Ivf::build(&data, IvfParams::default());
        let mut dead = vec![false; 200];
        dead[17] = true;
        dead[90] = true;
        ivf.purge(&dead);
        let total: usize = (0..ivf.n_lists()).map(|c| ivf.list(c).len()).sum();
        assert_eq!(total, 198);
        for c in 0..ivf.n_lists() {
            assert!(!ivf.list(c).contains(&17));
            assert!(!ivf.list(c).contains(&90));
        }
    }

    #[test]
    fn rebalance_reaches_a_fixed_point() {
        let (full, _) = SynthSpec::deep().scaled(300, 1).generate();
        let mut data = prefix_of(&full, 200);
        let mut ivf = Ivf::build(&data, IvfParams::default());
        for i in 200..300 {
            let id = data.push_vector(full.vector(i));
            ivf.append(&data, id);
        }
        // Iterated Lloyd steps must make progress and then stabilize.
        let mut last = usize::MAX;
        for _ in 0..50 {
            last = ivf.rebalance(&data);
            if last == 0 {
                break;
            }
        }
        assert_eq!(last, 0, "rebalance failed to converge");
        let total: usize = (0..ivf.n_lists()).map(|c| ivf.list(c).len()).sum();
        assert_eq!(total, 300);
        // Membership is still a partition.
        let mut seen = vec![false; 300];
        for c in 0..ivf.n_lists() {
            for &id in ivf.list(c) {
                assert!(!seen[id]);
                seen[id] = true;
            }
        }
    }

    #[test]
    fn ivf_from_parts_round_trips_search() {
        let (data, queries) = SynthSpec::sift().scaled(250, 2).generate();
        let a = Ivf::build(&data, IvfParams::default());
        let b = Ivf::from_parts(
            a.centroids().to_vec(),
            (0..a.n_lists()).map(|c| a.list(c).to_vec()).collect(),
            a.metric(),
        );
        let mut oa = ExactOracle::new(&data);
        let mut ob = ExactOracle::new(&data);
        assert_eq!(
            a.search(&queries[1], 5, 4, &mut oa).neighbors(),
            b.search(&queries[1], 5, 4, &mut ob).neighbors()
        );
    }

    #[test]
    fn explicit_list_count_respected() {
        let (data, _) = SynthSpec::sift().scaled(200, 1).generate();
        let ivf = Ivf::build(
            &data,
            IvfParams {
                n_lists: 10,
                ..IvfParams::default()
            },
        );
        assert_eq!(ivf.n_lists(), 10);
    }
}
