//! Product quantization (PQ) and its early-termination compatibility
//! (§4.3 of the paper).
//!
//! PQ splits the D-dimensional space into `m` subspaces, trains a
//! codebook per subspace with k-means, and stores each vector as `m`
//! codeword ids. At query time an ADC (asymmetric distance computation)
//! table memoizes the distance contribution of every codeword of every
//! subspace to the query; a vector's distance is the sum of `m` table
//! lookups.
//!
//! The paper notes that with PQ "partial bits of the codewords are not
//! useful, but partial elements are beneficial": knowing only a prefix of
//! a vector's codes still yields a **lower bound** — fetched subspaces
//! contribute their exact memoized distance and unfetched subspaces their
//! per-subspace minimum over the codebook (which for L2 is ≥ 0 and for
//! inner product may be negative but is still the tight per-subspace
//! floor). [`AdcTable::lower_bound`] implements exactly that rule.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use ansmet_vecdata::{Dataset, Metric};

/// PQ training parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct PqParams {
    /// Number of subspaces (must divide the dimension evenly after
    /// padding; the last subspace absorbs the remainder).
    pub m: usize,
    /// Codebook size per subspace (typically 256 = 8-bit codes).
    pub k: usize,
    /// Lloyd iterations per subspace.
    pub iterations: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PqParams {
    fn default() -> Self {
        PqParams {
            m: 8,
            k: 256,
            iterations: 10,
            seed: 0x90,
        }
    }
}

/// A trained product quantizer.
#[derive(Debug, Clone)]
pub struct ProductQuantizer {
    /// Codebooks: `m` × `k` centroids of `dsub(s)` values each.
    codebooks: Vec<Vec<Vec<f32>>>,
    /// Subspace dimension boundaries (m + 1 entries).
    bounds: Vec<usize>,
    metric: Metric,
}

impl ProductQuantizer {
    /// Train on `data` (k-means per subspace, L2 geometry as usual).
    ///
    /// # Panics
    ///
    /// Panics if `m` exceeds the dimension or the dataset is empty.
    pub fn train(data: &Dataset, params: &PqParams) -> Self {
        assert!(!data.is_empty(), "cannot train PQ on an empty dataset");
        let dim = data.dim();
        assert!(params.m >= 1 && params.m <= dim, "1 <= m <= dim required");
        let mut rng = SmallRng::seed_from_u64(params.seed);
        let base = dim / params.m;
        let rem = dim % params.m;
        let mut bounds = vec![0usize];
        for s in 0..params.m {
            let w = base + usize::from(s < rem);
            bounds.push(bounds[s] + w);
        }
        let k = params.k.min(data.len());

        let mut codebooks = Vec::with_capacity(params.m);
        for s in 0..params.m {
            let lo = bounds[s];
            let hi = bounds[s + 1];
            let dsub = hi - lo;
            // Init from random sub-vectors.
            let mut centroids: Vec<Vec<f32>> = (0..k)
                .map(|_| {
                    let i = rng.gen_range(0..data.len());
                    data.vector(i)[lo..hi].to_vec()
                })
                .collect();
            let mut assign = vec![0usize; data.len()];
            for _ in 0..params.iterations {
                #[allow(clippy::needless_range_loop)]
                // indexed loops over shared state read clearer here
                for i in 0..data.len() {
                    let sv = &data.vector(i)[lo..hi];
                    assign[i] = nearest(&centroids, sv);
                }
                let mut sums = vec![vec![0.0f64; dsub]; k];
                let mut counts = vec![0usize; k];
                #[allow(clippy::needless_range_loop)]
                // indexed loops over shared state read clearer here
                for i in 0..data.len() {
                    let c = assign[i];
                    counts[c] += 1;
                    for (acc, v) in sums[c].iter_mut().zip(&data.vector(i)[lo..hi]) {
                        *acc += *v as f64;
                    }
                }
                for c in 0..k {
                    if counts[c] == 0 {
                        let i = rng.gen_range(0..data.len());
                        centroids[c] = data.vector(i)[lo..hi].to_vec();
                    } else {
                        for (cd, acc) in centroids[c].iter_mut().zip(&sums[c]) {
                            *cd = (*acc / counts[c] as f64) as f32;
                        }
                    }
                }
            }
            codebooks.push(centroids);
        }
        ProductQuantizer {
            codebooks,
            bounds,
            metric: data.metric(),
        }
    }

    /// Number of subspaces.
    pub fn m(&self) -> usize {
        self.codebooks.len()
    }

    /// Codebook size.
    pub fn k(&self) -> usize {
        self.codebooks[0].len()
    }

    /// The metric this quantizer serves.
    pub fn metric(&self) -> Metric {
        self.metric
    }

    /// Encode one vector into `m` codeword ids.
    pub fn encode(&self, v: &[f32]) -> Vec<u16> {
        (0..self.m())
            .map(|s| {
                let sv = &v[self.bounds[s]..self.bounds[s + 1]];
                nearest(&self.codebooks[s], sv) as u16
            })
            .collect()
    }

    /// Decode codes back to the reconstructed vector.
    pub fn decode(&self, codes: &[u16]) -> Vec<f32> {
        let mut out = Vec::with_capacity(*self.bounds.last().expect("bounds"));
        for (s, &c) in codes.iter().enumerate() {
            out.extend_from_slice(&self.codebooks[s][c as usize]);
        }
        out
    }

    /// Mean squared reconstruction error over `data` (training quality
    /// diagnostic).
    pub fn reconstruction_mse(&self, data: &Dataset) -> f64 {
        let mut total = 0.0f64;
        for i in 0..data.len() {
            let v = data.vector(i);
            let r = self.decode(&self.encode(v));
            total += v
                .iter()
                .zip(&r)
                .map(|(a, b)| ((a - b) as f64).powi(2))
                .sum::<f64>();
        }
        total / (data.len() * data.dim()).max(1) as f64
    }

    /// Build the per-query ADC lookup table.
    pub fn adc_table(&self, query: &[f32]) -> AdcTable {
        let m = self.m();
        let mut table = Vec::with_capacity(m);
        let mut mins = Vec::with_capacity(m);
        for s in 0..m {
            let qs = &query[self.bounds[s]..self.bounds[s + 1]];
            let row: Vec<f32> = self.codebooks[s]
                .iter()
                .map(|c| self.metric.distance(c, qs))
                .collect();
            let min = row.iter().copied().fold(f32::INFINITY, f32::min);
            table.push(row);
            mins.push(min);
        }
        AdcTable { table, mins }
    }
}

fn nearest(centroids: &[Vec<f32>], sv: &[f32]) -> usize {
    let mut best = 0;
    let mut best_d = f32::INFINITY;
    for (c, centroid) in centroids.iter().enumerate() {
        let d = ansmet_vecdata::metric::l2_squared(centroid, sv);
        if d < best_d {
            best_d = d;
            best = c;
        }
    }
    best
}

/// Per-query memoized subspace distances (the paper's "memoization").
#[derive(Debug, Clone)]
pub struct AdcTable {
    /// `m` × `k` distance contributions.
    table: Vec<Vec<f32>>,
    /// Per-subspace minimum contribution (for unfetched subspaces).
    mins: Vec<f32>,
}

impl AdcTable {
    /// Full ADC distance of a coded vector.
    pub fn distance(&self, codes: &[u16]) -> f32 {
        codes
            .iter()
            .enumerate()
            .map(|(s, &c)| self.table[s][c as usize])
            .sum()
    }

    /// Conservative lower bound knowing only the first `prefix` codes
    /// (partial-element early termination under PQ, §4.3): fetched
    /// subspaces contribute exactly, unfetched ones their codebook
    /// minimum.
    pub fn lower_bound(&self, codes: &[u16], prefix: usize) -> f32 {
        let fetched: f32 = codes
            .iter()
            .take(prefix)
            .enumerate()
            .map(|(s, &c)| self.table[s][c as usize])
            .sum();
        let rest: f32 = self.mins[prefix.min(self.mins.len())..].iter().sum();
        fetched + rest
    }

    /// Early-terminating ADC evaluation: scans codes subspace by
    /// subspace, aborting once the lower bound reaches `threshold`.
    /// Returns `(subspaces_read, Some(distance))` or `(subspaces_read,
    /// None)` when terminated.
    pub fn evaluate(&self, codes: &[u16], threshold: f32) -> (usize, Option<f32>) {
        let m = codes.len();
        let mut fetched_sum = 0.0f32;
        let mut rest: f32 = self.mins.iter().sum();
        for (s, &c) in codes.iter().enumerate() {
            rest -= self.mins[s];
            fetched_sum += self.table[s][c as usize];
            let bound = fetched_sum + rest;
            if bound >= threshold && s + 1 < m {
                return (s + 1, None);
            }
        }
        (m, Some(fetched_sum))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ansmet_vecdata::SynthSpec;

    fn trained() -> (Dataset, Vec<Vec<f32>>, ProductQuantizer) {
        let (data, queries) = SynthSpec::deep().scaled(400, 4).generate();
        let pq = ProductQuantizer::train(
            &data,
            &PqParams {
                m: 8,
                k: 32,
                iterations: 6,
                seed: 1,
            },
        );
        (data, queries, pq)
    }

    #[test]
    fn encode_decode_reduces_error_with_larger_codebooks() {
        let (data, _, _) = trained();
        let small = ProductQuantizer::train(
            &data,
            &PqParams {
                m: 8,
                k: 4,
                iterations: 6,
                seed: 1,
            },
        );
        let big = ProductQuantizer::train(
            &data,
            &PqParams {
                m: 8,
                k: 64,
                iterations: 6,
                seed: 1,
            },
        );
        assert!(big.reconstruction_mse(&data) < small.reconstruction_mse(&data));
    }

    #[test]
    fn adc_distance_equals_reconstruction_distance() {
        // For L2, ADC is exactly the distance between the query and the
        // decoded reconstruction (subspace distances are additive).
        let (data, queries, pq) = trained();
        let q = &queries[0];
        let t = pq.adc_table(q);
        for i in 0..50 {
            let codes = pq.encode(data.vector(i));
            let adc = t.distance(&codes);
            let recon = pq.decode(&codes);
            let expect = data.metric().distance(&recon, q);
            assert!(
                (adc - expect).abs() <= expect.abs() * 1e-4 + 1e-3,
                "vector {i}: adc {adc} vs reconstruction {expect}"
            );
        }
    }

    #[test]
    fn adc_ranking_correlates_with_true_ranking() {
        let (data, queries, pq) = trained();
        let q = &queries[0];
        let t = pq.adc_table(q);
        // The nearest true vector should rank near the top under ADC.
        let mut true_order: Vec<(f32, usize)> = (0..data.len())
            .map(|i| (data.distance_to(i, q), i))
            .collect();
        true_order.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let mut adc_order: Vec<(f32, usize)> = (0..data.len())
            .map(|i| (t.distance(&pq.encode(data.vector(i))), i))
            .collect();
        adc_order.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let adc_top: std::collections::HashSet<usize> =
            adc_order.iter().take(40).map(|&(_, i)| i).collect();
        let hits = true_order
            .iter()
            .take(10)
            .filter(|&&(_, i)| adc_top.contains(&i))
            .count();
        assert!(hits >= 6, "only {hits}/10 true neighbors in ADC top-40");
    }

    #[test]
    fn lower_bound_is_conservative_and_monotone() {
        let (data, queries, pq) = trained();
        let q = &queries[1];
        let t = pq.adc_table(q);
        for i in 0..50 {
            let codes = pq.encode(data.vector(i));
            let full = t.distance(&codes);
            let mut last = f32::NEG_INFINITY;
            for p in 0..=codes.len() {
                let lb = t.lower_bound(&codes, p);
                assert!(lb <= full + 1e-4, "prefix {p}: {lb} > {full}");
                assert!(lb >= last - 1e-4, "bound must be monotone");
                last = lb;
            }
            assert!((t.lower_bound(&codes, codes.len()) - full).abs() < 1e-4);
        }
    }

    #[test]
    fn evaluate_terminates_early_and_soundly() {
        let (data, queries, pq) = trained();
        let q = &queries[2];
        let t = pq.adc_table(q);
        let mut terminated = 0;
        for i in 0..200 {
            let codes = pq.encode(data.vector(i));
            let full = t.distance(&codes);
            let thr = full * 0.5;
            let (read, out) = t.evaluate(&codes, thr);
            match out {
                None => {
                    terminated += 1;
                    assert!(read < codes.len() || full >= thr);
                    assert!(full >= thr, "unsound termination");
                }
                Some(d) => assert!((d - full).abs() < 1e-4),
            }
        }
        assert!(terminated > 50, "ADC early termination should fire often");
    }

    #[test]
    fn works_for_inner_product_metric() {
        // IP subspace minima may be negative; the bound must still hold.
        let (data, queries) = SynthSpec::glove().scaled(300, 2).generate();
        let pq = ProductQuantizer::train(
            &data,
            &PqParams {
                m: 4,
                k: 16,
                iterations: 5,
                seed: 3,
            },
        );
        let t = pq.adc_table(&queries[0]);
        for i in 0..40 {
            let codes = pq.encode(data.vector(i));
            let full = t.distance(&codes);
            for p in 0..=codes.len() {
                assert!(t.lower_bound(&codes, p) <= full + 1e-4);
            }
        }
    }

    #[test]
    fn uneven_dimension_split() {
        // 96 dims into 7 subspaces: remainder distributed.
        let (data, _, _) = trained();
        let pq = ProductQuantizer::train(
            &data,
            &PqParams {
                m: 7,
                k: 8,
                iterations: 3,
                seed: 5,
            },
        );
        let codes = pq.encode(data.vector(0));
        assert_eq!(codes.len(), 7);
        assert_eq!(pq.decode(&codes).len(), data.dim());
    }
}
