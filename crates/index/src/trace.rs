//! Search traces: the exact sequence of distance-comparison batches a
//! query performed, with the threshold in force at each comparison.
//!
//! The system simulator (`ansmet-sim`) replays these traces against the
//! timing substrate: each [`Hop`] is a dependency barrier (HNSW's greedy
//! loop pops one candidate, evaluates all its unvisited neighbors, then
//! updates the heaps before the next pop), and each [`Eval`] becomes a
//! distance-comparison task offloaded to an NDP unit (or executed by the
//! host CPU in the CPU designs).

/// What kind of traversal step produced a hop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HopKind {
    /// Greedy descent through an upper HNSW layer (ef = 1).
    UpperLayer,
    /// Beam-search expansion at the HNSW base layer.
    BaseLayer,
    /// Distance computation to IVF cluster centroids.
    Centroid,
    /// Scan of one IVF inverted list.
    ListScan,
}

/// One recorded distance comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Eval {
    /// Stored vector id compared against the query.
    pub id: usize,
    /// Threshold (result-set max distance) in force at this comparison.
    pub threshold: f32,
    /// The true distance (always recorded for analysis, even when an
    /// early-terminating oracle would not have computed it).
    pub distance: f32,
    /// Whether the comparison was accepted (distance < threshold).
    pub accepted: bool,
}

/// One traversal step: a batch of comparisons that may execute in
/// parallel, followed by host-side heap/traversal work.
#[derive(Debug, Clone, PartialEq)]
pub struct Hop {
    /// Step kind.
    pub kind: HopKind,
    /// The comparisons issued in this step.
    pub evals: Vec<Eval>,
}

impl Hop {
    /// Create an empty hop of the given kind.
    pub fn new(kind: HopKind) -> Self {
        Hop {
            kind,
            evals: Vec::new(),
        }
    }
}

/// Complete trace of one query.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SearchTrace {
    /// Traversal steps in execution order.
    pub hops: Vec<Hop>,
}

impl SearchTrace {
    /// Create an empty trace.
    pub fn new() -> Self {
        SearchTrace::default()
    }

    /// Total number of distance comparisons.
    pub fn total_evals(&self) -> usize {
        self.hops.iter().map(|h| h.evals.len()).sum()
    }

    /// Number of accepted comparisons.
    pub fn accepted_evals(&self) -> usize {
        self.hops
            .iter()
            .flat_map(|h| &h.evals)
            .filter(|e| e.accepted)
            .count()
    }

    /// Number of rejected comparisons (the paper observes 50–90 % of all
    /// comparisons are rejected — the early-termination opportunity).
    pub fn rejected_evals(&self) -> usize {
        self.total_evals() - self.accepted_evals()
    }

    /// Fraction of comparisons rejected.
    pub fn rejection_rate(&self) -> f64 {
        let t = self.total_evals();
        if t == 0 {
            0.0
        } else {
            self.rejected_evals() as f64 / t as f64
        }
    }

    /// Iterate over all evals in order.
    pub fn iter_evals(&self) -> impl Iterator<Item = &Eval> {
        self.hops.iter().flat_map(|h| h.evals.iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eval(d: f32, thr: f32) -> Eval {
        Eval {
            id: 0,
            threshold: thr,
            distance: d,
            accepted: d < thr,
        }
    }

    #[test]
    fn counts() {
        let mut t = SearchTrace::new();
        let mut h = Hop::new(HopKind::BaseLayer);
        h.evals.push(eval(1.0, 2.0));
        h.evals.push(eval(3.0, 2.0));
        h.evals.push(eval(5.0, 2.0));
        t.hops.push(h);
        assert_eq!(t.total_evals(), 3);
        assert_eq!(t.accepted_evals(), 1);
        assert_eq!(t.rejected_evals(), 2);
        assert!((t.rejection_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_trace() {
        let t = SearchTrace::new();
        assert_eq!(t.total_evals(), 0);
        assert_eq!(t.rejection_rate(), 0.0);
    }
}
