//! Hierarchical Navigable Small Worlds (HNSW) graph index [Malkov &
//! Yashunin 2020], the paper's representative ANNS index.
//!
//! Construction follows the original algorithm: exponentially-distributed
//! level assignment, greedy descent through upper layers, beam search with
//! `efConstruction` at insertion layers, and the distance-based neighbor
//! selection heuristic. Search uses greedy beam search with a bounded
//! result set whose maximum distance is the early-termination threshold.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use ansmet_vecdata::Dataset;

use crate::heap::{MaxDistHeap, MinDistHeap, Neighbor};
use crate::oracle::{DistanceOracle, DistanceOutcome};
use crate::trace::{Eval, Hop, HopKind, SearchTrace};
use crate::visited::VisitedSet;

/// HNSW construction parameters (§6 of the paper: `efConstruction = 500`,
/// maximum degree 16).
#[derive(Debug, Clone, PartialEq)]
pub struct HnswParams {
    /// Connections made per node per layer (M).
    pub m: usize,
    /// Maximum degree kept at the base layer.
    pub m_max0: usize,
    /// Beam width during construction.
    pub ef_construction: usize,
    /// RNG seed for level assignment.
    pub seed: u64,
    /// Level multiplier; defaults to `1 / ln(M)`.
    pub level_mult: Option<f64>,
}

impl Default for HnswParams {
    fn default() -> Self {
        HnswParams {
            m: 16,
            m_max0: 16,
            ef_construction: 500,
            seed: 42,
            level_mult: None,
        }
    }
}

impl HnswParams {
    /// Faster construction for tests.
    pub fn quick() -> Self {
        HnswParams {
            ef_construction: 60,
            ..HnswParams::default()
        }
    }

    /// The effective level multiplier (`1 / ln(M)` unless overridden).
    pub fn effective_level_mult(&self) -> f64 {
        self.level_mult.unwrap_or(1.0 / (self.m as f64).ln())
    }

    /// Draw one exponentially-distributed layer assignment. Build and
    /// online insertion share this so a streamed index has the same level
    /// distribution as a rebuilt one.
    pub fn sample_level<R: Rng>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        (-u.ln() * self.effective_level_mult()).floor() as usize
    }
}

/// Result of one search: the k nearest found, closest first.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchResult {
    neighbors: Vec<Neighbor>,
}

impl SearchResult {
    /// Build a result from pre-sorted (closest-first) neighbors.
    pub fn from_neighbors(neighbors: Vec<Neighbor>) -> Self {
        debug_assert!(neighbors.windows(2).all(|w| w[0] <= w[1]));
        SearchResult { neighbors }
    }

    /// Neighbor ids, closest first.
    pub fn ids(&self) -> Vec<usize> {
        self.neighbors.iter().map(|n| n.id).collect()
    }

    /// `(distance, id)` pairs, closest first.
    pub fn neighbors(&self) -> &[Neighbor] {
        &self.neighbors
    }
}

/// The built HNSW index.
#[derive(Debug, Clone)]
pub struct Hnsw {
    /// Adjacency lists: `links[layer][node]` (empty when the node is not
    /// present on that layer).
    links: Vec<Vec<Vec<usize>>>,
    /// Highest layer of each node.
    levels: Vec<usize>,
    /// Entry point (node on the top layer).
    entry: usize,
    params: HnswParams,
}

impl Hnsw {
    /// Build the index over `data`.
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty.
    pub fn build(data: &Dataset, params: HnswParams) -> Self {
        assert!(!data.is_empty(), "cannot build HNSW over an empty dataset");
        let n = data.len();
        let mut rng = SmallRng::seed_from_u64(params.seed);

        // Pre-draw levels so the layer count is known.
        let levels: Vec<usize> = (0..n).map(|_| params.sample_level(&mut rng)).collect();
        let max_level = levels.iter().copied().max().unwrap_or(0);
        let mut index = Hnsw {
            links: vec![vec![Vec::new(); n]; max_level + 1],
            levels: levels.clone(),
            entry: 0,
            params,
        };

        let mut top_so_far = levels[0];
        index.entry = 0;
        let mut visited = VisitedSet::new(n);
        #[allow(clippy::needless_range_loop)] // indexed dimension-range loops read clearer here
        for node in 1..n {
            index.insert(data, node, &mut visited);
            if levels[node] > top_so_far {
                top_so_far = levels[node];
                index.entry = node;
            }
        }
        index
    }

    fn insert(&mut self, data: &Dataset, node: usize, visited: &mut VisitedSet) {
        let query = data.vector(node);
        let node_level = self.levels[node];
        let entry_level = self.levels[self.entry];
        let mut curr = self.entry;
        let mut curr_dist = data.distance_to(curr, query);

        // Greedy descent above the insertion level.
        for layer in (node_level + 1..=entry_level).rev() {
            loop {
                let mut improved = false;
                // Clone to avoid borrow issues; degree ≤ m_max0.
                let neigh = self.links[layer][curr].clone();
                for nb in neigh {
                    let d = data.distance_to(nb, query);
                    if d < curr_dist {
                        curr = nb;
                        curr_dist = d;
                        improved = true;
                    }
                }
                if !improved {
                    break;
                }
            }
        }

        // Beam search and connect at each layer from min(node_level, entry_level) down.
        let mut entry_points = vec![Neighbor::new(curr_dist, curr)];
        for layer in (0..=node_level.min(entry_level)).rev() {
            let found = self.search_layer_build(data, query, &entry_points, layer, visited);
            let m_max = if layer == 0 {
                self.params.m_max0
            } else {
                self.params.m
            };
            let selected = self.select_neighbors(data, node, &found, self.params.m);
            for &nb in &selected {
                self.links[layer][node].push(nb);
                self.links[layer][nb].push(node);
                if self.links[layer][nb].len() > m_max {
                    // Shrink with the same heuristic.
                    let cands: Vec<Neighbor> = self.links[layer][nb]
                        .iter()
                        .map(|&x| Neighbor::new(data.distance_to(x, data.vector(nb)), x))
                        .collect();
                    let kept = self.select_neighbors(data, nb, &cands, m_max);
                    self.links[layer][nb] = kept;
                }
            }
            entry_points = found;
        }
    }

    /// Construction-time beam search on one layer with exact distances.
    fn search_layer_build(
        &self,
        data: &Dataset,
        query: &[f32],
        entries: &[Neighbor],
        layer: usize,
        visited: &mut VisitedSet,
    ) -> Vec<Neighbor> {
        visited.clear();
        let ef = self.params.ef_construction;
        let mut candidates = MinDistHeap::new();
        let mut results = MaxDistHeap::new(ef);
        for &e in entries {
            if visited.insert(e.id) {
                candidates.push(e);
                results.push(e);
            }
        }
        while let Some(c) = candidates.pop() {
            if c.dist > results.threshold() {
                break;
            }
            for &nb in &self.links[layer][c.id] {
                if !visited.insert(nb) {
                    continue;
                }
                let d = data.distance_to(nb, query);
                if d < results.threshold() {
                    let n = Neighbor::new(d, nb);
                    candidates.push(n);
                    results.push(n);
                }
            }
        }
        results.into_sorted()
    }

    /// Malkov's distance-based neighbor selection heuristic: take
    /// candidates in ascending distance, keeping one only if it is closer
    /// to the new node than to every already-kept neighbor (encourages
    /// diverse directions).
    fn select_neighbors(
        &self,
        data: &Dataset,
        node: usize,
        candidates: &[Neighbor],
        m: usize,
    ) -> Vec<usize> {
        let mut sorted: Vec<Neighbor> = candidates.to_vec();
        sorted.sort();
        let mut kept: Vec<usize> = Vec::with_capacity(m);
        for c in &sorted {
            if c.id == node {
                continue;
            }
            if kept.len() >= m {
                break;
            }
            let node_vec = data.vector(node);
            let ok = kept.iter().all(|&r| {
                let d_cr = data.metric().distance(data.vector(c.id), data.vector(r));
                let d_cq = data.metric().distance(data.vector(c.id), node_vec);
                d_cq < d_cr
            });
            if ok {
                kept.push(c.id);
            }
        }
        // Fill remaining slots with nearest unkept candidates (hnswlib's
        // keepPruned behavior) so low-degree nodes stay connected.
        if kept.len() < m {
            for c in &sorted {
                if kept.len() >= m {
                    break;
                }
                if c.id != node && !kept.contains(&c.id) {
                    kept.push(c.id);
                }
            }
        }
        kept
    }

    /// Search for the `k` nearest neighbors with beam width `ef` (the
    /// paper's k′ / efSearch).
    pub fn search<O: DistanceOracle>(
        &self,
        query: &[f32],
        k: usize,
        ef: usize,
        oracle: &mut O,
    ) -> SearchResult {
        let mut scratch = crate::scratch::SearchScratch::new(self.len());
        self.search_inner(query, k, ef, oracle, None, &mut scratch)
    }

    /// [`Hnsw::search`] reusing caller-provided scratch buffers
    /// (bit-identical results, no per-query allocation).
    pub fn search_with<O: DistanceOracle>(
        &self,
        query: &[f32],
        k: usize,
        ef: usize,
        oracle: &mut O,
        scratch: &mut crate::scratch::SearchScratch,
    ) -> SearchResult {
        self.search_inner(query, k, ef, oracle, None, scratch)
    }

    /// Search while recording the full comparison trace.
    pub fn search_traced<O: DistanceOracle>(
        &self,
        query: &[f32],
        k: usize,
        ef: usize,
        oracle: &mut O,
    ) -> (SearchResult, SearchTrace) {
        let mut scratch = crate::scratch::SearchScratch::new(self.len());
        self.search_traced_with(query, k, ef, oracle, &mut scratch)
    }

    /// [`Hnsw::search_traced`] reusing caller-provided scratch buffers.
    pub fn search_traced_with<O: DistanceOracle>(
        &self,
        query: &[f32],
        k: usize,
        ef: usize,
        oracle: &mut O,
        scratch: &mut crate::scratch::SearchScratch,
    ) -> (SearchResult, SearchTrace) {
        let mut trace = SearchTrace::new();
        let r = self.search_inner(query, k, ef, oracle, Some(&mut trace), scratch);
        (r, trace)
    }

    fn search_inner<O: DistanceOracle>(
        &self,
        query: &[f32],
        k: usize,
        ef: usize,
        oracle: &mut O,
        mut trace: Option<&mut SearchTrace>,
        scratch: &mut crate::scratch::SearchScratch,
    ) -> SearchResult {
        assert!(k > 0, "k must be positive");
        let ef = ef.max(k);
        let entry_level = self.levels[self.entry];
        let mut curr = self.entry;

        // Evaluate the entry point.
        let mut curr_dist = match oracle.evaluate(curr, query, f32::INFINITY) {
            DistanceOutcome::Exact(d) => d,
            DistanceOutcome::Pruned => f32::INFINITY,
        };
        if let Some(t) = trace.as_deref_mut() {
            let mut hop = Hop::new(HopKind::UpperLayer);
            hop.evals.push(Eval {
                id: curr,
                threshold: f32::INFINITY,
                distance: curr_dist,
                accepted: true,
            });
            t.hops.push(hop);
        }

        // Greedy descent through upper layers.
        for layer in (1..=entry_level).rev() {
            loop {
                let mut improved = false;
                let mut hop = Hop::new(HopKind::UpperLayer);
                for &nb in &self.links[layer][curr] {
                    let out = oracle.evaluate(nb, query, curr_dist);
                    let d = out.distance().unwrap_or(f32::INFINITY);
                    let accepted = d < curr_dist;
                    hop.evals.push(Eval {
                        id: nb,
                        threshold: curr_dist,
                        distance: d,
                        accepted,
                    });
                    if accepted {
                        curr = nb;
                        curr_dist = d;
                        improved = true;
                    }
                }
                if let Some(t) = trace.as_deref_mut() {
                    if !hop.evals.is_empty() {
                        t.hops.push(hop);
                    }
                }
                if !improved {
                    break;
                }
            }
        }

        // Beam search at the base layer, on reused scratch buffers.
        scratch.ensure_ids(self.levels.len());
        let visited = &mut scratch.visited;
        visited.clear();
        visited.insert(curr);
        let candidates = &mut scratch.candidates;
        candidates.clear();
        let results = &mut scratch.results;
        results.reset(ef);
        let start = Neighbor::new(curr_dist, curr);
        candidates.push(start);
        results.push(start);

        while let Some(c) = candidates.pop() {
            if c.dist > results.threshold() {
                break;
            }
            let mut hop = Hop::new(HopKind::BaseLayer);
            for &nb in &self.links[0][c.id] {
                if !visited.insert(nb) {
                    continue;
                }
                let threshold = results.threshold();
                let out = oracle.evaluate(nb, query, threshold);
                let d = out.distance().unwrap_or(f32::INFINITY);
                let accepted = out.accepted(threshold);
                hop.evals.push(Eval {
                    id: nb,
                    threshold,
                    distance: d,
                    accepted,
                });
                if accepted {
                    let n = Neighbor::new(d, nb);
                    candidates.push(n);
                    results.push(n);
                }
            }
            if let Some(t) = trace.as_deref_mut() {
                if !hop.evals.is_empty() {
                    t.hops.push(hop);
                }
            }
        }

        results.drain_sorted_into(&mut scratch.sorted);
        scratch.sorted.truncate(k);
        SearchResult {
            neighbors: scratch.sorted.clone(),
        }
    }

    /// Number of indexed vectors.
    pub fn len(&self) -> usize {
        self.levels.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.levels.is_empty()
    }

    /// Number of layers.
    pub fn layer_count(&self) -> usize {
        self.links.len()
    }

    /// Entry point node id.
    pub fn entry_point(&self) -> usize {
        self.entry
    }

    /// Nodes present on `layer` and above — the paper's "hot vectors"
    /// replicated across rank groups (§5.3 replicates the top HNSW layers).
    pub fn nodes_at_or_above_layer(&self, layer: usize) -> Vec<usize> {
        (0..self.levels.len())
            .filter(|&i| self.levels[i] >= layer)
            .collect()
    }

    /// Neighbors of `node` on `layer`.
    pub fn neighbors(&self, layer: usize, node: usize) -> &[usize] {
        &self.links[layer][node]
    }

    /// Construction parameters.
    pub fn params(&self) -> &HnswParams {
        &self.params
    }

    /// Mean base-layer degree (diagnostic).
    pub fn mean_base_degree(&self) -> f64 {
        let total: usize = self.links[0].iter().map(Vec::len).sum();
        total as f64 / self.levels.len() as f64
    }

    /// Highest layer of `node`.
    pub fn level(&self, node: usize) -> usize {
        self.levels[node]
    }

    /// Per-node highest layers (snapshot surface).
    pub fn levels(&self) -> &[usize] {
        &self.levels
    }

    /// Incrementally insert the vector with id `self.len()` — which must
    /// already be appended to `data` — at the pre-sampled `level` (see
    /// [`HnswParams::sample_level`]). Runs the same descent / beam /
    /// neighbor-selection pipeline as [`Hnsw::build`], so a streamed
    /// index obeys the same degree bounds as a rebuilt one. Returns the
    /// new node's id.
    ///
    /// # Panics
    ///
    /// Panics if `data` does not hold exactly one vector beyond the
    /// indexed prefix.
    pub fn insert_point(
        &mut self,
        data: &Dataset,
        level: usize,
        visited: &mut VisitedSet,
    ) -> usize {
        assert_eq!(
            data.len(),
            self.levels.len() + 1,
            "insert_point expects data to hold exactly the indexed vectors plus the new one"
        );
        let node = self.levels.len();
        self.levels.push(level);
        while self.links.len() <= level {
            self.links.push(vec![Vec::new(); node]);
        }
        for layer in self.links.iter_mut() {
            layer.resize(node + 1, Vec::new());
        }
        visited.grow(node + 1);
        self.insert(data, node, visited);
        if level > self.levels[self.entry] {
            self.entry = node;
        }
        node
    }

    /// Detach `node` from the graph (tombstone purge): every link to it
    /// is removed and the holes are bridged by re-running the neighbor
    /// selection heuristic over each affected node's surviving links plus
    /// the removed node's other neighbors. `alive[i]` marks ids that are
    /// still servable (bridges never route through other tombstones).
    ///
    /// The node's id stays allocated — its vector remains in `data` so
    /// ids are stable — but it becomes unreachable from any search.
    ///
    /// # Panics
    ///
    /// Panics if `node` is the entry point and no alive node remains to
    /// take over as entry.
    pub fn unlink(&mut self, data: &Dataset, node: usize, alive: &[bool]) {
        let node_level = self.levels[node];
        for layer in 0..=node_level {
            let own = std::mem::take(&mut self.links[layer][node]);
            let m_max = if layer == 0 {
                self.params.m_max0
            } else {
                self.params.m
            };
            // The graph is directed after overflow shrinking, so the
            // nodes linking *to* `node` are a superset of its own list:
            // sweep the whole layer (compaction-time cost, not serve-time).
            let mut affected: Vec<usize> = Vec::new();
            for (i, lnk) in self.links[layer].iter_mut().enumerate() {
                if let Some(pos) = lnk.iter().position(|&x| x == node) {
                    lnk.remove(pos);
                    affected.push(i);
                }
            }
            for &nb in &affected {
                if !alive[nb] {
                    continue;
                }
                // Bridge candidates: surviving links plus the removed
                // node's other (alive) neighbors.
                let mut pool: Vec<usize> = self.links[layer][nb].clone();
                for &x in &own {
                    if x != nb && alive[x] && !pool.contains(&x) {
                        pool.push(x);
                    }
                }
                let nb_vec = data.vector(nb);
                let cands: Vec<Neighbor> = pool
                    .iter()
                    .map(|&x| Neighbor::new(data.distance_to(x, nb_vec), x))
                    .collect();
                self.links[layer][nb] = self.select_neighbors(data, nb, &cands, m_max);
            }
        }
        if node == self.entry {
            let mut best: Option<usize> = None;
            for (i, &ok) in alive.iter().enumerate() {
                if !ok || i == node {
                    continue;
                }
                let better = match best {
                    None => true,
                    Some(b) => self.levels[i] > self.levels[b],
                };
                if better {
                    best = Some(i);
                }
            }
            self.entry =
                best.expect("unlinked the entry point with no alive node left to take over");
        }
    }

    /// Reassemble an index from snapshot parts.
    ///
    /// # Panics
    ///
    /// Panics if the parts are structurally inconsistent (layer widths,
    /// entry out of range, entry below the top occupied layer).
    pub fn from_parts(
        links: Vec<Vec<Vec<usize>>>,
        levels: Vec<usize>,
        entry: usize,
        params: HnswParams,
    ) -> Self {
        assert!(!levels.is_empty(), "snapshot holds an empty HNSW");
        assert!(
            links.iter().all(|layer| layer.len() == levels.len()),
            "snapshot layer width does not match node count"
        );
        assert!(entry < levels.len(), "snapshot entry point out of range");
        assert!(
            levels[entry] < links.len(),
            "snapshot entry level exceeds layer count"
        );
        Hnsw {
            links,
            levels,
            entry,
            params,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::ExactOracle;
    use ansmet_vecdata::{brute_force_knn, recall_at_k, SynthSpec};

    #[test]
    fn search_finds_exact_neighbor_of_db_vector() {
        let (data, _) = SynthSpec::sift().scaled(400, 1).generate();
        let hnsw = Hnsw::build(&data, HnswParams::quick());
        let mut o = ExactOracle::new(&data);
        // Query = a database vector: its own id must be the top result.
        let r = hnsw.search(data.vector(123), 1, 40, &mut o);
        assert_eq!(r.ids()[0], 123);
        assert_eq!(r.neighbors()[0].dist, 0.0);
    }

    #[test]
    fn recall_is_high_with_reasonable_ef() {
        let (data, queries) = SynthSpec::deep().scaled(800, 8).generate();
        let hnsw = Hnsw::build(&data, HnswParams::quick());
        let mut o = ExactOracle::new(&data);
        let mut total = 0.0;
        for q in &queries {
            let (truth, _) = brute_force_knn(&data, q, 10);
            let r = hnsw.search(q, 10, 100, &mut o);
            total += recall_at_k(&r.ids(), &truth, 10);
        }
        let recall = total / queries.len() as f64;
        assert!(recall >= 0.8, "recall {recall} too low");
    }

    #[test]
    fn degrees_bounded() {
        let (data, _) = SynthSpec::sift().scaled(600, 1).generate();
        let p = HnswParams::quick();
        let hnsw = Hnsw::build(&data, p.clone());
        for layer in 0..hnsw.layer_count() {
            for node in 0..data.len() {
                let max = if layer == 0 { p.m_max0 } else { p.m };
                assert!(
                    hnsw.neighbors(layer, node).len() <= max,
                    "layer {layer} node {node} degree {}",
                    hnsw.neighbors(layer, node).len()
                );
            }
        }
    }

    #[test]
    fn trace_counts_match_oracle() {
        let (data, queries) = SynthSpec::sift().scaled(400, 1).generate();
        let hnsw = Hnsw::build(&data, HnswParams::quick());
        let mut o = ExactOracle::new(&data);
        let (_, trace) = hnsw.search_traced(&queries[0], 10, 50, &mut o);
        assert_eq!(trace.total_evals() as u64, o.comparisons());
        assert!(trace.total_evals() > 10);
        // The paper's Fig. 1 observation: many comparisons are rejected.
        assert!(trace.rejection_rate() > 0.2, "{}", trace.rejection_rate());
    }

    #[test]
    fn trace_thresholds_monotone_nonincreasing_at_base() {
        let (data, queries) = SynthSpec::deep().scaled(500, 1).generate();
        let hnsw = Hnsw::build(&data, HnswParams::quick());
        let mut o = ExactOracle::new(&data);
        let (_, trace) = hnsw.search_traced(&queries[0], 10, 30, &mut o);
        let mut last = f32::INFINITY;
        for hop in trace.hops.iter().filter(|h| h.kind == HopKind::BaseLayer) {
            for e in &hop.evals {
                assert!(e.threshold <= last || last == f32::INFINITY);
                last = e.threshold;
            }
        }
    }

    #[test]
    fn entry_point_on_top_layer() {
        let (data, _) = SynthSpec::sift().scaled(1000, 1).generate();
        let hnsw = Hnsw::build(&data, HnswParams::quick());
        let top = hnsw.layer_count() - 1;
        let tops = hnsw.nodes_at_or_above_layer(top);
        assert!(tops.contains(&hnsw.entry_point()));
    }

    #[test]
    fn deterministic_build_and_search() {
        let (data, queries) = SynthSpec::sift().scaled(300, 2).generate();
        let a = Hnsw::build(&data, HnswParams::quick());
        let b = Hnsw::build(&data, HnswParams::quick());
        let mut oa = ExactOracle::new(&data);
        let mut ob = ExactOracle::new(&data);
        assert_eq!(
            a.search(&queries[0], 5, 50, &mut oa).ids(),
            b.search(&queries[0], 5, 50, &mut ob).ids()
        );
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_dataset_panics() {
        let data = ansmet_vecdata::Dataset::from_values(
            "e",
            ansmet_vecdata::ElemType::F32,
            ansmet_vecdata::Metric::L2,
            4,
            vec![],
        );
        Hnsw::build(&data, HnswParams::default());
    }

    /// A dataset holding the first `n` vectors of `full` (same dtype,
    /// metric, dim), for streaming the rest in.
    fn prefix_of(full: &ansmet_vecdata::Dataset, n: usize) -> ansmet_vecdata::Dataset {
        let values: Vec<f32> = (0..n).flat_map(|i| full.vector(i).to_vec()).collect();
        ansmet_vecdata::Dataset::from_values(
            full.name().to_string(),
            full.dtype(),
            full.metric(),
            full.dim(),
            values,
        )
    }

    #[test]
    fn streamed_inserts_keep_build_invariants() {
        let (full, _) = SynthSpec::sift().scaled(500, 1).generate();
        let p = HnswParams::quick();
        let mut data = prefix_of(&full, 400);
        let mut hnsw = Hnsw::build(&data, p.clone());
        let mut rng = SmallRng::seed_from_u64(99);
        let mut visited = VisitedSet::new(data.len());
        for i in 400..500 {
            let id = data.push_vector(full.vector(i));
            assert_eq!(id, i);
            let level = p.sample_level(&mut rng);
            assert_eq!(hnsw.insert_point(&data, level, &mut visited), i);
        }
        assert_eq!(hnsw.len(), 500);
        // Same degree bounds as a fresh build.
        for layer in 0..hnsw.layer_count() {
            let max = if layer == 0 { p.m_max0 } else { p.m };
            for node in 0..hnsw.len() {
                assert!(hnsw.neighbors(layer, node).len() <= max);
            }
        }
        // The entry point sits on the top occupied layer.
        let top = (0..hnsw.len())
            .map(|n| hnsw.level(n))
            .max()
            .expect("non-empty");
        assert_eq!(hnsw.level(hnsw.entry_point()), top);
        // Every streamed vector is findable as its own nearest neighbor.
        let mut o = ExactOracle::new(&data);
        for i in [400, 450, 499] {
            let r = hnsw.search(data.vector(i), 1, 60, &mut o);
            assert_eq!(r.ids()[0], i, "streamed vector {i} not reachable");
        }
    }

    #[test]
    fn unlink_makes_node_unreachable() {
        let (data, _) = SynthSpec::sift().scaled(300, 1).generate();
        let mut hnsw = Hnsw::build(&data, HnswParams::quick());
        let victim = 123;
        let mut alive = vec![true; data.len()];
        alive[victim] = false;
        hnsw.unlink(&data, victim, &alive);
        for layer in 0..hnsw.layer_count() {
            assert!(hnsw.neighbors(layer, victim).is_empty());
            for node in 0..data.len() {
                assert!(
                    !hnsw.neighbors(layer, node).contains(&victim),
                    "layer {layer} node {node} still links the unlinked node"
                );
            }
        }
        let mut o = ExactOracle::new(&data);
        let r = hnsw.search(data.vector(victim), 5, 60, &mut o);
        assert!(!r.ids().contains(&victim));
    }

    #[test]
    fn unlink_entry_point_repairs_entry() {
        let (data, _) = SynthSpec::sift().scaled(400, 1).generate();
        let mut hnsw = Hnsw::build(&data, HnswParams::quick());
        let e = hnsw.entry_point();
        let mut alive = vec![true; data.len()];
        alive[e] = false;
        hnsw.unlink(&data, e, &alive);
        assert_ne!(hnsw.entry_point(), e);
        let probe = (e + 1) % data.len();
        let mut o = ExactOracle::new(&data);
        let r = hnsw.search(data.vector(probe), 1, 60, &mut o);
        assert_eq!(r.ids()[0], probe);
    }

    #[test]
    fn from_parts_round_trips_search() {
        let (data, queries) = SynthSpec::sift().scaled(300, 2).generate();
        let a = Hnsw::build(&data, HnswParams::quick());
        let links: Vec<Vec<Vec<usize>>> = (0..a.layer_count())
            .map(|l| (0..a.len()).map(|n| a.neighbors(l, n).to_vec()).collect())
            .collect();
        let b = Hnsw::from_parts(
            links,
            a.levels().to_vec(),
            a.entry_point(),
            a.params().clone(),
        );
        let mut oa = ExactOracle::new(&data);
        let mut ob = ExactOracle::new(&data);
        assert_eq!(
            a.search(&queries[0], 5, 50, &mut oa).neighbors(),
            b.search(&queries[0], 5, 50, &mut ob).neighbors()
        );
    }

    #[test]
    fn upper_layer_shrinks() {
        let (data, _) = SynthSpec::sift().scaled(2000, 1).generate();
        let hnsw = Hnsw::build(&data, HnswParams::quick());
        if hnsw.layer_count() > 1 {
            let l0 = hnsw.nodes_at_or_above_layer(0).len();
            let l1 = hnsw.nodes_at_or_above_layer(1).len();
            assert!(l1 < l0);
            assert!(l1 > 0);
        }
    }
}
