//! Distance-ordered heaps used by beam search (the paper's "search set"
//! and "result set", §2.1).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A `(distance, id)` pair with total ordering (ties broken by id, so all
/// searches are deterministic).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    /// Distance to the query (smaller is closer).
    pub dist: f32,
    /// Vector identifier.
    pub id: usize,
}

impl Neighbor {
    /// Create a neighbor record.
    pub fn new(dist: f32, id: usize) -> Self {
        Neighbor { dist, id }
    }
}

impl Eq for Neighbor {}

impl Ord for Neighbor {
    fn cmp(&self, other: &Self) -> Ordering {
        self.dist
            .partial_cmp(&other.dist)
            .unwrap_or(Ordering::Equal)
            .then(self.id.cmp(&other.id))
    }
}

impl PartialOrd for Neighbor {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Min-heap by distance: the paper's unbounded *search set* of candidates
/// to expand.
#[derive(Debug, Clone, Default)]
pub struct MinDistHeap {
    heap: BinaryHeap<std::cmp::Reverse<Neighbor>>,
}

impl MinDistHeap {
    /// Create an empty heap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert a candidate.
    pub fn push(&mut self, n: Neighbor) {
        self.heap.push(std::cmp::Reverse(n));
    }

    /// Remove and return the closest candidate.
    pub fn pop(&mut self) -> Option<Neighbor> {
        self.heap.pop().map(|r| r.0)
    }

    /// The closest candidate without removing it.
    pub fn peek(&self) -> Option<Neighbor> {
        self.heap.peek().map(|r| r.0)
    }

    /// Number of queued candidates.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the heap is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Remove all candidates, keeping the allocation for reuse.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

/// Bounded max-heap by distance: the paper's *result set* of the k′ (ef)
/// nearest vectors visited so far.
#[derive(Debug, Clone)]
pub struct MaxDistHeap {
    heap: BinaryHeap<Neighbor>,
    capacity: usize,
}

impl MaxDistHeap {
    /// Create a heap keeping at most `capacity` nearest entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        MaxDistHeap {
            heap: BinaryHeap::with_capacity(capacity + 1),
            capacity,
        }
    }

    /// Insert if closer than the current worst (or the heap is not full).
    /// Returns `true` if inserted.
    pub fn push(&mut self, n: Neighbor) -> bool {
        if self.heap.len() < self.capacity {
            self.heap.push(n);
            true
        } else if let Some(&worst) = self.heap.peek() {
            if n < worst {
                self.heap.pop();
                self.heap.push(n);
                true
            } else {
                false
            }
        } else {
            false
        }
    }

    /// Current worst (largest) kept distance — the early-termination
    /// threshold. `f32::INFINITY` while not yet full.
    pub fn threshold(&self) -> f32 {
        if self.heap.len() < self.capacity {
            f32::INFINITY
        } else {
            self.heap.peek().map_or(f32::INFINITY, |n| n.dist)
        }
    }

    /// The worst kept entry, if any.
    pub fn peek_worst(&self) -> Option<Neighbor> {
        self.heap.peek().copied()
    }

    /// Number of kept entries.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no entries are kept.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drain into a closest-first sorted vector.
    pub fn into_sorted(self) -> Vec<Neighbor> {
        let mut v = self.heap.into_vec();
        v.sort();
        v
    }

    /// Empty the heap and rebound it to `capacity`, keeping the backing
    /// allocation (scratch reuse across searches).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn reset(&mut self, capacity: usize) {
        assert!(capacity > 0, "capacity must be positive");
        self.heap.clear();
        self.capacity = capacity;
    }

    /// Drain all kept entries into `out` (cleared first), closest first,
    /// leaving the heap empty but its allocation intact.
    pub fn drain_sorted_into(&mut self, out: &mut Vec<Neighbor>) {
        out.clear();
        out.extend(self.heap.drain());
        out.sort();
    }

    /// Iterate over kept entries in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = &Neighbor> {
        self.heap.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_heap_pops_closest_first() {
        let mut h = MinDistHeap::new();
        h.push(Neighbor::new(3.0, 1));
        h.push(Neighbor::new(1.0, 2));
        h.push(Neighbor::new(2.0, 3));
        assert_eq!(h.pop().map(|n| n.id), Some(2));
        assert_eq!(h.pop().map(|n| n.id), Some(3));
        assert_eq!(h.pop().map(|n| n.id), Some(1));
        assert!(h.pop().is_none());
    }

    #[test]
    fn max_heap_keeps_k_nearest() {
        let mut h = MaxDistHeap::new(2);
        assert!(h.push(Neighbor::new(5.0, 1)));
        assert!(h.push(Neighbor::new(3.0, 2)));
        assert!(h.push(Neighbor::new(1.0, 3))); // evicts 5.0
        assert!(!h.push(Neighbor::new(9.0, 4))); // too far
        let sorted = h.into_sorted();
        assert_eq!(sorted.iter().map(|n| n.id).collect::<Vec<_>>(), vec![3, 2]);
    }

    #[test]
    fn threshold_is_infinite_until_full() {
        let mut h = MaxDistHeap::new(2);
        assert_eq!(h.threshold(), f32::INFINITY);
        h.push(Neighbor::new(1.0, 0));
        assert_eq!(h.threshold(), f32::INFINITY);
        h.push(Neighbor::new(2.0, 1));
        assert_eq!(h.threshold(), 2.0);
    }

    #[test]
    fn deterministic_tie_breaking() {
        let mut h = MinDistHeap::new();
        h.push(Neighbor::new(1.0, 9));
        h.push(Neighbor::new(1.0, 3));
        assert_eq!(h.pop().map(|n| n.id), Some(3));
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        MaxDistHeap::new(0);
    }
}
