//! Distance-evaluation abstraction.
//!
//! Index traversal (HNSW/IVF) asks an oracle for the distance between a
//! stored vector and the query, passing the current threshold (the maximum
//! distance in the result set). An exact oracle always answers with the
//! true distance; an early-terminating oracle may answer
//! [`DistanceOutcome::Pruned`] when a conservative lower bound already
//! exceeds the threshold — which is safe because such a vector would have
//! been rejected anyway.

use ansmet_vecdata::Dataset;

/// Result of one distance comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DistanceOutcome {
    /// The exact distance (the vector may still be beyond the threshold).
    Exact(f32),
    /// A conservative lower bound exceeded the threshold: the vector is
    /// certainly farther than `threshold`; no exact distance was computed.
    Pruned,
}

impl DistanceOutcome {
    /// The exact distance, if computed.
    pub fn distance(self) -> Option<f32> {
        match self {
            DistanceOutcome::Exact(d) => Some(d),
            DistanceOutcome::Pruned => None,
        }
    }

    /// Whether the comparison was accepted under `threshold`.
    pub fn accepted(self, threshold: f32) -> bool {
        match self {
            DistanceOutcome::Exact(d) => d < threshold,
            DistanceOutcome::Pruned => false,
        }
    }
}

/// Evaluates distances between stored vectors and a query.
pub trait DistanceOracle {
    /// Compare stored vector `id` against `query` under `threshold`.
    ///
    /// Implementations must guarantee: if the result is
    /// [`DistanceOutcome::Pruned`], the true distance is ≥ `threshold`;
    /// if [`DistanceOutcome::Exact`], the value is the true distance.
    fn evaluate(&mut self, id: usize, query: &[f32], threshold: f32) -> DistanceOutcome;

    /// Number of comparisons performed so far (for statistics).
    fn comparisons(&self) -> u64;
}

/// Baseline oracle: always computes the exact distance (full fetch).
#[derive(Debug)]
pub struct ExactOracle<'a> {
    data: &'a Dataset,
    comparisons: u64,
}

impl<'a> ExactOracle<'a> {
    /// Create an exact oracle over `data`.
    pub fn new(data: &'a Dataset) -> Self {
        ExactOracle {
            data,
            comparisons: 0,
        }
    }

    /// The underlying dataset.
    pub fn dataset(&self) -> &Dataset {
        self.data
    }
}

impl DistanceOracle for ExactOracle<'_> {
    fn evaluate(&mut self, id: usize, query: &[f32], _threshold: f32) -> DistanceOutcome {
        self.comparisons += 1;
        DistanceOutcome::Exact(self.data.distance_to(id, query))
    }

    fn comparisons(&self) -> u64 {
        self.comparisons
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ansmet_vecdata::{ElemType, Metric};

    fn data() -> Dataset {
        Dataset::from_values("t", ElemType::F32, Metric::L2, 2, vec![0.0, 0.0, 3.0, 4.0])
    }

    #[test]
    fn exact_oracle_returns_true_distance() {
        let d = data();
        let mut o = ExactOracle::new(&d);
        let out = o.evaluate(1, &[0.0, 0.0], f32::INFINITY);
        assert_eq!(out, DistanceOutcome::Exact(25.0));
        assert_eq!(o.comparisons(), 1);
    }

    #[test]
    fn outcome_accept_logic() {
        assert!(DistanceOutcome::Exact(1.0).accepted(2.0));
        assert!(!DistanceOutcome::Exact(3.0).accepted(2.0));
        assert!(!DistanceOutcome::Pruned.accepted(2.0));
        assert_eq!(DistanceOutcome::Pruned.distance(), None);
        assert_eq!(DistanceOutcome::Exact(1.5).distance(), Some(1.5));
    }
}
