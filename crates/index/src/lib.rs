//! ANNS index substrates for the ANSMET reproduction: HNSW (graph-based)
//! and IVF (cluster-based), per §2.1 of the paper.
//!
//! Both indexes evaluate candidate distances through a [`DistanceOracle`],
//! which lets the same search code run with exact distances, with
//! early-terminating distance comparison, or with instrumented fetch
//! counting. Searches can also record a [`SearchTrace`] — the exact
//! sequence of distance-comparison batches with their thresholds — which
//! the system simulator replays on the timing substrate.
//!
//! # Example
//!
//! ```
//! use ansmet_vecdata::SynthSpec;
//! use ansmet_index::{Hnsw, HnswParams, ExactOracle};
//!
//! let (data, queries) = SynthSpec::sift().scaled(500, 2).generate();
//! let hnsw = Hnsw::build(&data, HnswParams::default());
//! let mut oracle = ExactOracle::new(&data);
//! let result = hnsw.search(&queries[0], 10, 50, &mut oracle);
//! assert_eq!(result.ids().len(), 10);
//! ```

pub mod heap;
pub mod hnsw;
pub mod ivf;
pub mod oracle;
pub mod pq;
pub mod scratch;
pub mod trace;
pub mod visited;

pub use heap::{MaxDistHeap, MinDistHeap, Neighbor};
pub use hnsw::{Hnsw, HnswParams, SearchResult};
pub use ivf::{Ivf, IvfParams};
pub use oracle::{DistanceOracle, DistanceOutcome, ExactOracle};
pub use pq::{AdcTable, PqParams, ProductQuantizer};
pub use scratch::SearchScratch;
pub use trace::{Eval, Hop, HopKind, SearchTrace};
pub use visited::VisitedSet;
