//! Property test: scatter-gather merge over arbitrary shard splits must
//! be element-identical to a single sorted merge of all candidates.
//!
//! Distances are drawn from a coarse grid so duplicate distances are
//! common — the (distance, id) tie-break is exactly what makes the merge
//! deterministic, and this test exercises it hard. Ids are distinct
//! (shards own disjoint vector ranges), matching the invariant the
//! router relies on.

use ansmet_cluster::merge_partials;
use ansmet_index::Neighbor;
use proptest::prelude::*;

proptest! {
    /// Any split of a candidate multiset into shards merges to the same
    /// top-k as sorting the whole multiset at once, for every k.
    fn shard_merge_matches_single_sorted_merge(
        // Coarse grid: only 8 distinct distances over up to 64 candidates
        // guarantees plenty of duplicate-distance ties.
        grid in proptest::collection::vec(0u8..8, 1..64),
        // Shard assignment per candidate (up to 9 shards, some empty).
        homes in proptest::collection::vec(0usize..9, 1..64),
        k in 1usize..12,
        shards in 1usize..9,
    ) {
        let all: Vec<Neighbor> = grid
            .iter()
            .enumerate()
            .map(|(id, &g)| Neighbor::new(g as f32 * 0.25, id))
            .collect();

        let mut partials: Vec<Vec<Neighbor>> = vec![Vec::new(); shards];
        for (i, &n) in all.iter().enumerate() {
            partials[homes[i % homes.len()] % shards].push(n);
        }

        let merged = merge_partials(k, &partials);

        let mut reference = all.clone();
        reference.sort();
        reference.truncate(k);

        prop_assert_eq!(&merged, &reference);

        // Element-identical, not just same distances: ids must agree at
        // every rank, including runs of duplicate distances.
        for (a, b) in merged.iter().zip(&reference) {
            prop_assert_eq!(a.id, b.id);
            prop_assert_eq!(a.dist.to_bits(), b.dist.to_bits());
        }
    }

    /// Reordering the shards (reversing the partial list) never changes
    /// the merged result.
    fn merge_is_shard_order_independent(
        grid in proptest::collection::vec(0u8..6, 1..48),
        homes in proptest::collection::vec(0usize..5, 1..48),
        k in 1usize..10,
    ) {
        let shards = 5;
        let mut partials: Vec<Vec<Neighbor>> = vec![Vec::new(); shards];
        for (id, &g) in grid.iter().enumerate() {
            partials[homes[id % homes.len()] % shards]
                .push(Neighbor::new(g as f32 * 0.5, id));
        }
        let forward = merge_partials(k, &partials);
        partials.reverse();
        let backward = merge_partials(k, &partials);
        prop_assert_eq!(forward, backward);
    }
}
