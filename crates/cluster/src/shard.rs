//! Per-shard serving state: each shard owns a slice of the dataset, its
//! own HNSW index, functional search traces, sampling profile, and the
//! ANSMET dual-granularity fetch plan — the same artifacts the
//! monolithic plane builds once, built S times over the partitions.
//!
//! Shard-local vector id `i` maps to global id `global_ids[i]`
//! (ascending), so merged results and fingerprints are always in the
//! global id space.

use ansmet_core::EtConfig;
use ansmet_sim::{Design, DesignPlan, Workload};
use ansmet_vecdata::Dataset;

use crate::partition::{RoutingPolicy, ShardAssignment};

/// One shard: its global-id mapping, fully prepared workload (index +
/// traces + profile), and the ANSMET fetch plan for its data.
#[derive(Debug)]
pub struct Shard {
    /// Shard index in `0..S`.
    pub id: usize,
    /// Shard-local id → global dataset id (ascending).
    pub global_ids: Vec<usize>,
    /// The shard's prepared workload (its own index and traces).
    pub workload: Workload,
    /// The shard's ANSMET ET configuration (full NDP-ETOpt plan).
    pub et: EtConfig,
}

impl Shard {
    /// Map a shard-local vector id to its global dataset id.
    pub fn global_id(&self, local: usize) -> usize {
        self.global_ids[local]
    }

    /// Number of vectors this shard owns.
    pub fn len(&self) -> usize {
        self.global_ids.len()
    }

    /// Whether the shard owns no vectors (never true for assignments
    /// produced by [`ShardAssignment::assign`]).
    pub fn is_empty(&self) -> bool {
        self.global_ids.is_empty()
    }
}

/// A complete sharded deployment of one dataset: the assignment plus
/// every shard's serving state, sharing one query list.
#[derive(Debug)]
pub struct ShardSet {
    /// The dataset → shard mapping and routing metadata.
    pub assignment: ShardAssignment,
    /// The shards, indexed by shard id.
    pub shards: Vec<Shard>,
    /// The shared query list (every shard searched the same queries).
    pub queries: Vec<Vec<f32>>,
    /// Global result-set size k.
    pub k: usize,
    /// Beam width used by every shard's functional searches.
    pub ef: usize,
}

impl ShardSet {
    /// Partition `data` into `shards` shards under `policy` and prepare
    /// every shard: slice datasets, build per-shard HNSW indexes, run
    /// the traced functional searches, and derive each shard's ANSMET
    /// fetch plan.
    ///
    /// Each shard searches for `k` neighbors (clamped to the shard
    /// size) at beam width `ef`, so the merged top-k over shards always
    /// has enough candidates.
    pub fn build(
        data: &Dataset,
        queries: &[Vec<f32>],
        k: usize,
        ef: usize,
        shards: usize,
        policy: RoutingPolicy,
        seed: u64,
    ) -> ShardSet {
        let assignment = ShardAssignment::assign(data, shards, policy, seed);
        let built: Vec<Shard> = (0..shards)
            .map(|s| {
                let global_ids = assignment.members(s);
                let values: Vec<f32> = global_ids
                    .iter()
                    .flat_map(|&id| data.vector(id).to_vec())
                    .collect();
                let shard_data = Dataset::from_values(
                    format!("{}/s{s}", data.name()),
                    data.dtype(),
                    data.metric(),
                    data.dim(),
                    values,
                );
                let k_local = k.min(shard_data.len()).max(1);
                let workload = Workload::from_parts(shard_data, queries.to_vec(), k_local, ef);
                let et = DesignPlan::build(Design::NdpEtOpt, &workload)
                    .et
                    .expect("NDP-ETOpt always carries an ET plan");
                Shard {
                    id: s,
                    global_ids,
                    workload,
                    et,
                }
            })
            .collect();
        ShardSet {
            assignment,
            shards: built,
            queries: queries.to_vec(),
            k,
            ef,
        }
    }

    /// Number of shards S.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// Whether the set has no shards (never true for built sets).
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// Shard `s`'s functional top-k for query `qi`, in **global** ids
    /// with true distances — the partial result the router merges.
    pub fn shard_partial(&self, s: usize, qi: usize) -> Vec<ansmet_index::Neighbor> {
        let shard = &self.shards[s];
        shard.workload.results[qi]
            .iter()
            .map(|&local| {
                let gid = shard.global_id(local);
                let dist = shard.workload.data.distance_to(local, &self.queries[qi]);
                ansmet_index::Neighbor::new(dist, gid)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ansmet_vecdata::SynthSpec;

    #[test]
    fn shards_partition_the_dataset_and_trace() {
        let (data, queries) = SynthSpec::sift().scaled(400, 2).generate();
        let set = ShardSet::build(&data, &queries, 10, 40, 3, RoutingPolicy::Hash, 7);
        assert_eq!(set.len(), 3);
        let total: usize = set.shards.iter().map(Shard::len).sum();
        assert_eq!(total, data.len());
        for shard in &set.shards {
            assert!(!shard.is_empty());
            assert_eq!(shard.workload.traces.len(), queries.len());
            assert_eq!(shard.workload.data.len(), shard.len());
            // Shard rows are the same vectors as their global ids.
            assert_eq!(
                shard.workload.data.vector(0),
                data.vector(shard.global_id(0))
            );
        }
    }

    #[test]
    fn single_shard_is_the_monolith() {
        let (data, queries) = SynthSpec::sift().scaled(300, 2).generate();
        let set = ShardSet::build(&data, &queries, 10, 40, 1, RoutingPolicy::Hash, 7);
        let mono = Workload::from_parts(data.clone(), queries.clone(), 10, 40);
        assert_eq!(set.shards[0].workload.results, mono.results);
        assert_eq!(set.shards[0].workload.recall, mono.recall);
        // Identity mapping: local ids are global ids.
        assert!(set.shards[0]
            .global_ids
            .iter()
            .enumerate()
            .all(|(i, &g)| i == g));
    }

    #[test]
    fn partials_carry_global_ids_and_true_distances() {
        let (data, queries) = SynthSpec::sift().scaled(300, 2).generate();
        let set = ShardSet::build(&data, &queries, 5, 40, 2, RoutingPolicy::KMeans, 7);
        for s in 0..2 {
            let p = set.shard_partial(s, 0);
            assert!(!p.is_empty());
            for n in &p {
                assert_eq!(set.assignment.shard_of[n.id], s, "global id owned by shard");
                let true_d = data.distance_to(n.id, &queries[0]);
                assert!(
                    (n.dist - true_d).abs() <= 1e-4 * true_d.abs().max(1.0),
                    "distance {} vs {true_d}",
                    n.dist
                );
            }
        }
    }
}
