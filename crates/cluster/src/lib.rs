//! Sharded cluster plane for the ANSMET simulator: partitioned indexes,
//! scatter-gather routing, and cross-shard early termination.
//!
//! Every other layer of this repository serves one monolithic index on
//! one NDP stack. The ROADMAP north star — heavy traffic from millions
//! of users — needs *sharding*: the dataset split across S independent
//! serving planes, a query fanned out to the relevant shards, and the
//! partial top-k results merged deterministically. This crate builds
//! that plane on top of the existing engines:
//!
//! * [`partition`] — split a dataset into S shards by seeded hash or
//!   balanced k-means assignment ([`ShardAssignment`]).
//! * [`shard`] — each shard owns its own HNSW index, functional search
//!   traces, sampling profile, and ANSMET dual-granularity fetch plan
//!   ([`ShardSet`], built through `ansmet_sim::Workload::from_parts`).
//! * [`merge`] — the deterministic partial top-k merge: distance, then
//!   id tie-break, insertion-order independent ([`merge_partials`]).
//! * [`router`] — scatter-gather on the unified event wheel: per-shard
//!   hop replay through the shard's `EtEngine`, with the global kth
//!   distance propagated as a tightened ET bound to still-running
//!   shards ([`Router`]).
//! * [`serving`] — cluster-aware serving: per-shard circuit breakers,
//!   scripted storm windows, and replica / host-path failover that
//!   costs cycles but never changes answers ([`ClusterFleet`]).
//! * [`report`] / [`experiment`] — the `cluster` experiment sweeping
//!   shard counts and routing policies into `BENCH_cluster.json`.
//!
//! # Why cross-shard early termination is lossless
//!
//! The ANSMET engine prunes a comparison only when the accumulated
//! *lower bound* on the true distance reaches the threshold, and lower
//! bounds never exceed the true distance. The router tightens each
//! replayed comparison's threshold to `min(local trace threshold,
//! foreign bound)`, where the foreign bound is strictly above the
//! current global kth distance among candidates merged from *other*
//! shards. Any vector that belongs in the final global top-k has true
//! distance at or below the final kth distance, which the foreign bound
//! never goes below — so such a vector can never be pruned, and the
//! merged result set is bit-identical to independent full searches.
//! The router re-verifies this per evaluation ([`RouterStats`]'s
//! `et_mismatches` stays 0) instead of taking the proof on faith.
//!
//! Determinism contract: seeded partitioning, integer cycle arithmetic,
//! `(cycle, token)`-ordered event-wheel pops, and the id tie-broken
//! merge make every report a pure function of `(dataset, config)` —
//! bit-identical across reruns and host thread counts.
//!
//! [`ShardAssignment`]: partition::ShardAssignment
//! [`ShardSet`]: shard::ShardSet
//! [`merge_partials`]: merge::merge_partials
//! [`Router`]: router::Router
//! [`RouterStats`]: router::RouterStats
//! [`ClusterFleet`]: serving::ClusterFleet

pub mod experiment;
pub mod merge;
pub mod partition;
pub mod report;
pub mod router;
pub mod serving;
pub mod shard;

pub use experiment::{cluster_experiment, cluster_report};
pub use merge::{merge_partials, GlobalTopK};
pub use partition::{RoutingPolicy, ShardAssignment};
pub use report::{results_fingerprint, ClusterReport, ConfigReport, StormReport};
pub use router::{QueryOutcome, Router, RouterConfig, RouterStats};
pub use serving::{ClusterFleet, DispatchPath, FleetConfig};
pub use shard::{Shard, ShardSet};
