//! The `cluster` experiment: a shard-count × routing-policy sweep plus
//! a storm drill, rendered as text and the `BENCH_cluster.json`
//! artifact.
//!
//! For every `(S, policy)` cell the dataset is partitioned into S
//! shards, each with its own HNSW index and ANSMET fetch plan, and the
//! whole query list is scatter-gathered through the router on a healthy
//! fleet. The sweep verifies, per cell:
//!
//! * **Recall parity** — the merged top-k is checked against the
//!   reference merge and the ET soundness counters (`et_mismatches`
//!   must be 0 everywhere: cross-shard bound propagation and ball-bound
//!   shard skips are lossless by construction *and* by measurement).
//! * **Bound propagation engages** — every S ≥ 2 cell must save NDP
//!   lines over the propagation-free baseline (S = 1 has no foreign
//!   candidates and must save exactly nothing).
//!
//! The storm drill re-routes the S = 4 hash cell while a scripted
//! outage takes shard 0 dark for roughly the first half of the serving
//! timeline: the breaker trips, visits fail over to replicas (or the
//! host path), and the merged results must stay fingerprint-identical
//! to the healthy run.
//!
//! Everything is seeded and integer-cycle, so the artifact is
//! bit-identical across reruns and host thread counts.

use std::fmt::Write as _;

use ansmet_faults::StormPlan;
use ansmet_obs::{json_f64, json_string, NoopSink};
use ansmet_sim::experiment::Scale;
use ansmet_sim::Workload;
use ansmet_vecdata::SynthSpec;

use crate::partition::RoutingPolicy;
use crate::report::{results_fingerprint, ClusterReport, ConfigReport, StormReport};
use crate::router::{Router, RouterConfig, RouterStats};
use crate::serving::{ClusterFleet, FleetConfig};
use crate::shard::ShardSet;

/// Neighbors per query.
const K: usize = 10;
/// Beam width per shard search.
const EF: usize = 40;
/// Partitioning seed.
const SEED: u64 = 0xC105;
/// Shard counts swept, in order.
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];
/// The storm drill's configuration (must be one of the sweep cells).
const STORM_SHARDS: usize = 4;
const STORM_POLICY: RoutingPolicy = RoutingPolicy::Hash;

/// Mean recall@k of merged rows against brute-force ground-truth rows.
fn mean_recall(merged: &[Vec<ansmet_index::Neighbor>], truth: &[Vec<usize>]) -> f64 {
    assert_eq!(merged.len(), truth.len());
    let mut acc = 0.0;
    for (got, want) in merged.iter().zip(truth) {
        let hit = got.iter().filter(|n| want.contains(&n.id)).count();
        acc += hit as f64 / want.len().max(1) as f64;
    }
    acc / merged.len().max(1) as f64
}

/// Route every query of `set` over `fleet`, advancing the serving clock
/// between queries. Returns the totals and the per-query merged rows.
fn route_all(
    set: &ShardSet,
    fleet: &mut ClusterFleet,
) -> (RouterStats, Vec<Vec<ansmet_index::Neighbor>>) {
    let mut router = Router::new(set, RouterConfig::default());
    let mut stats = RouterStats::default();
    let mut merged = Vec::with_capacity(set.queries.len());
    for qi in 0..set.queries.len() {
        let outcome = router.route(qi, fleet, &mut NoopSink);
        fleet.advance(outcome.latency_cycles);
        stats.absorb(&outcome);
        merged.push(outcome.merged);
    }
    (stats, merged)
}

/// Run the cluster experiment at `scale`; returns `(text, json)` where
/// `json` is the `BENCH_cluster.json` artifact body.
pub fn cluster_experiment(scale: Scale) -> (String, String) {
    let report = cluster_report(scale);
    let text = render_text(&report);
    let json = render_json(&report, scale);
    (text, json)
}

/// Build the sweep + storm-drill report at `scale` (the structured form
/// behind [`cluster_experiment`]).
pub fn cluster_report(scale: Scale) -> ClusterReport {
    let spec = scale.spec(SynthSpec::sift());
    let (data, queries) = spec.generate();

    // Monolithic baseline: one index over the whole dataset at the same
    // k/ef, sharing its brute-force ground truth with the sweep.
    let mono = Workload::from_parts(data.clone(), queries.clone(), K, EF);
    let truth = &mono.ground_truth.ids;

    let mut configs: Vec<ConfigReport> = Vec::new();
    let mut healthy_storm_cell: Option<(u64, u64)> = None; // (fingerprint, total latency)
    for shards in SHARD_COUNTS {
        for policy in RoutingPolicy::all() {
            let set = ShardSet::build(&data, &queries, K, EF, shards, policy, SEED);
            let mut fleet = ClusterFleet::healthy(shards);
            let (stats, merged) = route_all(&set, &mut fleet);
            let fingerprint = results_fingerprint(&merged);
            if shards == STORM_SHARDS && policy == STORM_POLICY {
                healthy_storm_cell = Some((fingerprint, stats.latency_total));
            }
            configs.push(ConfigReport {
                policy,
                shards,
                imbalance: set.assignment.imbalance(),
                recall: mean_recall(&merged, truth),
                stats,
                results_fingerprint: fingerprint,
            });
        }
    }

    // Storm drill: shard 0 dark for the first half of the healthy
    // timeline, so the breaker trips, failover serves the early
    // queries, and recovery probes close the breaker later on.
    let (healthy_fp, healthy_total) = healthy_storm_cell.expect("storm cell is part of the sweep");
    let storm_set = ShardSet::build(&data, &queries, K, EF, STORM_SHARDS, STORM_POLICY, SEED);
    let storm = StormPlan::single_group_outage(0, 0, (healthy_total / 2).max(1));
    let mut storm_fleet = ClusterFleet::new(STORM_SHARDS, FleetConfig::default(), storm);
    let (storm_stats, storm_merged) = route_all(&storm_set, &mut storm_fleet);
    let storm_fp = results_fingerprint(&storm_merged);
    let storm_report = StormReport {
        shards: STORM_SHARDS,
        policy: STORM_POLICY,
        stats: storm_stats,
        results_fingerprint: storm_fp,
        fingerprint_matches_healthy: storm_fp == healthy_fp,
        timeouts: storm_fleet.timeouts,
        breaker_rejections: storm_fleet.breaker_rejections,
        breaker_opens: storm_fleet.health().opens(),
        breaker_closes: storm_fleet.health().closes(),
    };

    ClusterReport {
        dataset: data.name().to_string(),
        k: K,
        ef: EF,
        queries: queries.len(),
        mono_recall: mono.recall,
        configs,
        storm: storm_report,
    }
}

fn render_text(report: &ClusterReport) -> String {
    let mut text = String::new();
    let _ = writeln!(text, "{report}");
    let _ = writeln!(
        text,
        "   soundness: {} mismatches across sweep + storm; propagation engaged: {}",
        report.total_mismatches(),
        if report.propagation_engaged() {
            "yes"
        } else {
            "NO"
        },
    );
    text
}

fn render_json(report: &ClusterReport, scale: Scale) -> String {
    let rc = RouterConfig::default();
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"experiment\": \"cluster\",");
    let _ = writeln!(
        json,
        "  \"scale\": \"{}\",",
        match scale {
            Scale::Quick => "quick",
            Scale::Full => "full",
        }
    );
    let _ = writeln!(json, "  \"dataset\": {},", json_string(&report.dataset));
    let _ = writeln!(
        json,
        "  \"config\": {{\"k\": {}, \"ef\": {}, \"seed\": {SEED}, \"queries\": {}, \
         \"max_concurrent_shards\": {}, \"hop_overhead_cycles\": {}, \"cycles_per_line\": {}, \
         \"merge_cycles_per_candidate\": {}}},",
        report.k,
        report.ef,
        report.queries,
        rc.max_concurrent_shards,
        rc.hop_overhead_cycles,
        rc.cycles_per_line,
        rc.merge_cycles_per_candidate,
    );
    let _ = writeln!(json, "  \"mono_recall\": {},", json_f64(report.mono_recall));
    let _ = writeln!(json, "  \"sweep\": [");
    for (i, c) in report.configs.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"policy\": \"{}\", \"shards\": {}, \"recall\": {}, \"imbalance\": {}, \
             \"mean_latency_cycles\": {}, \"max_latency_cycles\": {}, \"shards_visited\": {}, \
             \"shards_skipped\": {}, \"evals\": {}, \"pruned_evals\": {}, \"pruned_frac\": {}, \
             \"ndp_lines_with_bound\": {}, \"ndp_lines_independent\": {}, \
             \"bound_saved_frac\": {}, \"et_mismatches\": {}, \"results_fingerprint\": {}}}{}",
            c.policy.as_str(),
            c.shards,
            json_f64(c.recall),
            json_f64(c.imbalance),
            json_f64(c.stats.mean_latency_cycles()),
            c.stats.max_latency,
            c.stats.shards_visited,
            c.stats.shards_skipped,
            c.stats.evals,
            c.stats.pruned_evals,
            json_f64(c.stats.pruned_frac()),
            c.stats.ndp_lines_with_bound,
            c.stats.ndp_lines_independent,
            json_f64(c.stats.bound_saved_frac()),
            c.stats.et_mismatches,
            json_string(&format!("{:016x}", c.results_fingerprint)),
            if i + 1 < report.configs.len() {
                ","
            } else {
                ""
            },
        );
    }
    let _ = writeln!(json, "  ],");
    let s = &report.storm;
    let _ = writeln!(
        json,
        "  \"storm\": {{\"policy\": \"{}\", \"shards\": {}, \"timeouts\": {}, \
         \"breaker_rejections\": {}, \"breaker_opens\": {}, \"breaker_closes\": {}, \
         \"replica_dispatches\": {}, \"host_dispatches\": {}, \"penalty_cycles\": {}, \
         \"mean_latency_cycles\": {}, \"et_mismatches\": {}, \"results_fingerprint\": {}, \
         \"fingerprint_matches_healthy\": {}}},",
        s.policy.as_str(),
        s.shards,
        s.timeouts,
        s.breaker_rejections,
        s.breaker_opens,
        s.breaker_closes,
        s.stats.replica_dispatches,
        s.stats.host_dispatches,
        s.stats.penalty_cycles,
        json_f64(s.stats.mean_latency_cycles()),
        s.stats.et_mismatches,
        json_string(&format!("{:016x}", s.results_fingerprint)),
        s.fingerprint_matches_healthy,
    );
    let overall = {
        let mut fnv = ansmet_obs::Fnv64::new();
        for c in &report.configs {
            fnv.write_u64(c.results_fingerprint);
        }
        fnv.write_u64(s.results_fingerprint);
        fnv.finish()
    };
    let _ = writeln!(
        json,
        "  \"results_fingerprint\": {}",
        json_string(&format!("{overall:016x}")),
    );
    json.push_str("}\n");
    json
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_experiment_holds_its_invariants() {
        let report = cluster_report(Scale::Quick);
        assert_eq!(report.total_mismatches(), 0, "ET must stay lossless");
        assert!(report.propagation_engaged(), "S >= 2 must save lines");
        assert!(report.storm.fingerprint_matches_healthy);
        assert!(
            report.storm.timeouts + report.storm.breaker_rejections > 0,
            "the storm must actually disrupt dispatches"
        );
        for c in &report.configs {
            assert_eq!(
                c.stats.shards_visited + c.stats.shards_skipped,
                (c.shards * report.queries) as u64,
                "every shard is visited or provably skipped"
            );
            if c.shards == 1 {
                assert_eq!(
                    c.stats.ndp_lines_with_bound, c.stats.ndp_lines_independent,
                    "S=1 has no foreign candidates to tighten with"
                );
            }
            assert!(
                c.recall >= report.mono_recall - 0.05,
                "S={} {} recall {} fell below mono {}",
                c.shards,
                c.policy,
                c.recall,
                report.mono_recall
            );
        }

        let (text, json) = cluster_experiment(Scale::Quick);
        assert!(text.contains("propagation engaged: yes"), "{text}");
        assert!(text.contains("results identical"), "{text}");
        assert!(json.contains("\"experiment\": \"cluster\""));
        assert!(
            json.contains("\"fingerprint_matches_healthy\": true"),
            "{json}"
        );
    }

    #[test]
    fn quick_experiment_is_bit_identical_across_reruns() {
        let (t1, j1) = cluster_experiment(Scale::Quick);
        let (t2, j2) = cluster_experiment(Scale::Quick);
        assert_eq!(t1, t2, "text report must be bit-identical");
        assert_eq!(j1, j2, "json artifact must be bit-identical");
    }
}
