//! Scatter-gather routing with cross-shard early-termination bound
//! propagation, scheduled on the unified event wheel.
//!
//! One query fans out to its relevant shards (all of them under hash
//! routing; centroid-distance order under k-means, with provably
//! irrelevant shards skipped outright). Each visited shard replays its
//! functional trace hop by hop through its own ANSMET [`EtEngine`]; as
//! hops complete, their candidates stream into the global top-k and
//! tighten the ET thresholds of *still-running* shards. The timing is
//! a single [`EventWheel`] per query — shard wakeups pop in `(cycle,
//! shard id)` order, so the interleaving (and therefore every byte of
//! the report) is a pure function of the inputs.
//!
//! # Soundness of the tightened thresholds
//!
//! Shard `s`'s replay uses `threshold = min(trace threshold,
//! foreign_bound(s))`, where `foreign_bound(s)` is strictly above the
//! kth distance among candidates streamed from *other* shards (see
//! [`GlobalTopK::safe_bound`]). That kth never goes below the final
//! global kth distance, and the ANSMET engine only prunes when the true
//! distance provably reaches the threshold — so no member of the final
//! global top-k can ever be pruned. The router re-verifies the claim at
//! runtime instead of trusting it: `et_mismatches` counts (a) pruned
//! evaluations whose recorded true distance was below the threshold in
//! force, (b) pruned evaluations whose id nevertheless appears in the
//! final merged top-k, and (c) any divergence between the merged result
//! over visited shards and the reference merge over *all* shards.

use ansmet_core::{EtEngine, EtScratch};
use ansmet_index::Neighbor;
use ansmet_obs::{EventKind, TraceSink};
use ansmet_serve::FALLBACK_CYCLES_PER_LINE;
use ansmet_sim::EventWheel;
use ansmet_vecdata::Metric;

use crate::merge::{merge_partials, GlobalTopK};
use crate::partition::RoutingPolicy;
use crate::serving::{ClusterFleet, DispatchPath};
use crate::shard::ShardSet;

/// Router cost-model and fan-out knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouterConfig {
    /// Shard fan-out lanes: at most this many shards in flight per
    /// query (models the host's scatter-gather issue width).
    pub max_concurrent_shards: usize,
    /// Fixed cycles per hop (task dispatch plus host-side heap and
    /// traversal work between dependency barriers).
    pub hop_overhead_cycles: u64,
    /// Cycles per 64 B transformed-layout line on the NDP path.
    pub cycles_per_line: u64,
    /// Cycles per candidate folded into the final global top-k merge.
    pub merge_cycles_per_candidate: u64,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            max_concurrent_shards: 4,
            hop_overhead_cycles: 300,
            cycles_per_line: 12,
            merge_cycles_per_candidate: 32,
        }
    }
}

/// Everything one routed query produced.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QueryOutcome {
    /// The merged global top-k (closest first, id tie-break).
    pub merged: Vec<Neighbor>,
    /// Scatter → merge completion, in memory cycles.
    pub latency_cycles: u64,
    /// Shards that actually replayed their trace.
    pub shards_visited: usize,
    /// Shards proven irrelevant by the ball bound and never dispatched.
    pub shards_skipped: usize,
    /// Distance comparisons replayed across all visited shards.
    pub evals: u64,
    /// Comparisons the (tightened) ET engine pruned.
    pub pruned_evals: u64,
    /// NDP-path 64 B lines fetched with cross-shard bound propagation.
    pub ndp_lines_with_bound: u64,
    /// NDP-path lines the same evals cost at their local trace
    /// thresholds (the no-propagation baseline).
    pub ndp_lines_independent: u64,
    /// Natural-layout lines fetched by host-fallback shard visits.
    pub host_lines: u64,
    /// Shard visits served by a replica group.
    pub replica_dispatches: u64,
    /// Shard visits served by the host's exact path.
    pub host_dispatches: u64,
    /// Timeout / redirect penalty cycles paid before first hops.
    pub penalty_cycles: u64,
    /// Soundness violations detected (must stay 0; see module docs).
    pub et_mismatches: u64,
}

impl QueryOutcome {
    /// Lines saved by cross-shard bound propagation on the NDP path.
    pub fn saved_lines(&self) -> u64 {
        self.ndp_lines_independent
            .saturating_sub(self.ndp_lines_with_bound)
    }
}

/// Running totals over a stream of routed queries.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RouterStats {
    /// Queries routed.
    pub queries: u64,
    /// Sum of per-query latencies.
    pub latency_total: u64,
    /// Worst per-query latency.
    pub max_latency: u64,
    /// Total shard visits.
    pub shards_visited: u64,
    /// Total ball-bound shard skips.
    pub shards_skipped: u64,
    /// Total comparisons replayed.
    pub evals: u64,
    /// Total pruned comparisons.
    pub pruned_evals: u64,
    /// Total NDP lines with bound propagation.
    pub ndp_lines_with_bound: u64,
    /// Total NDP lines at local thresholds (baseline).
    pub ndp_lines_independent: u64,
    /// Total host-fallback natural-layout lines.
    pub host_lines: u64,
    /// Total replica-served shard visits.
    pub replica_dispatches: u64,
    /// Total host-served shard visits.
    pub host_dispatches: u64,
    /// Total penalty cycles.
    pub penalty_cycles: u64,
    /// Total soundness violations (must stay 0).
    pub et_mismatches: u64,
}

impl RouterStats {
    /// Fold one query's outcome into the totals.
    pub fn absorb(&mut self, o: &QueryOutcome) {
        self.queries += 1;
        self.latency_total += o.latency_cycles;
        self.max_latency = self.max_latency.max(o.latency_cycles);
        self.shards_visited += o.shards_visited as u64;
        self.shards_skipped += o.shards_skipped as u64;
        self.evals += o.evals;
        self.pruned_evals += o.pruned_evals;
        self.ndp_lines_with_bound += o.ndp_lines_with_bound;
        self.ndp_lines_independent += o.ndp_lines_independent;
        self.host_lines += o.host_lines;
        self.replica_dispatches += o.replica_dispatches;
        self.host_dispatches += o.host_dispatches;
        self.penalty_cycles += o.penalty_cycles;
        self.et_mismatches += o.et_mismatches;
    }

    /// Fraction of baseline NDP lines eliminated by cross-shard bound
    /// propagation (0 when nothing ran on the NDP path).
    pub fn bound_saved_frac(&self) -> f64 {
        if self.ndp_lines_independent == 0 {
            0.0
        } else {
            1.0 - self.ndp_lines_with_bound as f64 / self.ndp_lines_independent as f64
        }
    }

    /// Mean per-query latency in cycles.
    pub fn mean_latency_cycles(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.latency_total as f64 / self.queries as f64
        }
    }

    /// Fraction of comparisons pruned by the (tightened) ET engine.
    pub fn pruned_frac(&self) -> f64 {
        if self.evals == 0 {
            0.0
        } else {
            self.pruned_evals as f64 / self.evals as f64
        }
    }
}

impl std::fmt::Display for RouterStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "queries={} mean_latency={:.0}cy visited={} skipped={} \
             saved_frac={:.4} pruned_frac={:.4} mismatches={}",
            self.queries,
            self.mean_latency_cycles(),
            self.shards_visited,
            self.shards_skipped,
            self.bound_saved_frac(),
            self.pruned_frac(),
            self.et_mismatches
        )
    }
}

/// Relative slack on the ball-bound skip test, absorbing the f32
/// rounding between the centroid distance (computed in f32 by the
/// metric kernel) and the f64 radii.
const SKIP_MARGIN: f64 = 1e-5;

/// In-flight state of one shard's visit.
#[derive(Debug)]
struct Run {
    path: DispatchPath,
    next_hop: usize,
    /// Candidates from the hop that finishes at the next wakeup,
    /// published to the global/foreign accumulators at that instant.
    pending: Vec<Neighbor>,
}

/// The scatter-gather router: per-shard ANSMET engines plus the
/// cost-model configuration, reused across queries.
pub struct Router<'a> {
    set: &'a ShardSet,
    cfg: RouterConfig,
    engines: Vec<EtEngine<'a>>,
    scratch: EtScratch,
}

impl<'a> Router<'a> {
    /// Build one ET engine per shard over the shard set.
    pub fn new(set: &'a ShardSet, cfg: RouterConfig) -> Self {
        let engines = set
            .shards
            .iter()
            .map(|s| EtEngine::new(&s.workload.data, s.et.clone()))
            .collect();
        Router {
            set,
            cfg,
            engines,
            scratch: EtScratch::new(),
        }
    }

    /// The router configuration.
    pub fn config(&self) -> &RouterConfig {
        &self.cfg
    }

    /// Route query `qi` through the fleet: scatter to shards, replay
    /// hops with tightened thresholds, merge, and verify soundness.
    pub fn route<S: TraceSink>(
        &mut self,
        qi: usize,
        fleet: &mut ClusterFleet,
        sink: &mut S,
    ) -> QueryOutcome {
        let set = self.set;
        let cfg = &self.cfg;
        let n_shards = set.len();
        let k = set.k;
        let query = &set.queries[qi];
        let metric = set.shards[0].workload.data.metric();

        let order: Vec<usize> = match set.assignment.policy {
            RoutingPolicy::Hash => (0..n_shards).collect(),
            RoutingPolicy::KMeans => set.assignment.ranked_by_centroid(metric, query),
        };

        let mut out = QueryOutcome::default();
        let mut runs: Vec<Option<Run>> = (0..n_shards).map(|_| None).collect();
        let mut global = GlobalTopK::new(k);
        let mut foreign: Vec<GlobalTopK> = (0..n_shards).map(|_| GlobalTopK::new(k)).collect();
        let mut wheel = EventWheel::new(0);
        let mut next_idx = 0usize;
        let mut inflight = 0usize;
        let mut visited: Vec<usize> = Vec::new();
        let mut pruned_ids: Vec<usize> = Vec::new();
        let mut max_finish = 0u64;

        fill_lanes(
            set,
            cfg,
            metric,
            query,
            &order,
            0,
            &mut next_idx,
            &mut inflight,
            &mut runs,
            &global,
            &mut wheel,
            fleet,
            &mut out,
            sink,
        );

        while let Some(w) = wheel.pop_next() {
            let s = w.token as usize;
            let c = w.cycle;
            // Publish the hop that just finished: its candidates enter
            // the global top-k and every *other* shard's foreign bound.
            let pending =
                std::mem::take(&mut runs[s].as_mut().expect("scheduled shard has a run").pending);
            for n in pending {
                global.offer(n);
                for (t, f) in foreign.iter_mut().enumerate() {
                    if t != s {
                        f.offer(n);
                    }
                }
            }
            let shard = &set.shards[s];
            let trace = &shard.workload.traces[qi];
            let run = runs[s].as_mut().expect("scheduled shard has a run");
            if run.next_hop >= trace.hops.len() {
                // Shard visit complete: free the lane and dispatch the
                // next ranked shard, which now sees the tightened heap.
                inflight -= 1;
                visited.push(s);
                max_finish = max_finish.max(c);
                sink.sample(c, "cluster.inflight_shards", inflight as u64);
                fill_lanes(
                    set,
                    cfg,
                    metric,
                    query,
                    &order,
                    c,
                    &mut next_idx,
                    &mut inflight,
                    &mut runs,
                    &global,
                    &mut wheel,
                    fleet,
                    &mut out,
                    sink,
                );
                continue;
            }
            let hop = &trace.hops[run.next_hop];
            run.next_hop += 1;
            out.evals += hop.evals.len() as u64;
            let duration = match run.path {
                DispatchPath::HostFallback => {
                    // Host exact path: natural layout, no early
                    // termination, no bound savings.
                    let lines = shard.workload.data.vector_lines() as u64 * hop.evals.len() as u64;
                    out.host_lines += lines;
                    for eval in &hop.evals {
                        run.pending
                            .push(Neighbor::new(eval.distance, shard.global_id(eval.id)));
                    }
                    cfg.hop_overhead_cycles + lines * FALLBACK_CYCLES_PER_LINE
                }
                DispatchPath::Primary | DispatchPath::Replica(_) => {
                    let mut hop_lines = 0u64;
                    let mut hop_saved = 0u64;
                    for eval in &hop.evals {
                        let fb = foreign[s].safe_bound();
                        let tightened = fb < eval.threshold;
                        let threshold_used = if tightened { fb } else { eval.threshold };
                        let cost = self.engines[s].evaluate_with(
                            eval.id,
                            query,
                            threshold_used,
                            &mut self.scratch,
                        );
                        let with_bound = cost.total_lines() as u64;
                        let independent = if tightened {
                            self.engines[s]
                                .evaluate_with(eval.id, query, eval.threshold, &mut self.scratch)
                                .total_lines() as u64
                        } else {
                            with_bound
                        };
                        hop_lines += with_bound;
                        hop_saved += independent.saturating_sub(with_bound);
                        out.ndp_lines_with_bound += with_bound;
                        out.ndp_lines_independent += independent;
                        if cost.pruned {
                            out.pruned_evals += 1;
                            pruned_ids.push(shard.global_id(eval.id));
                            // Soundness (a): a pruned comparison's true
                            // distance must be at or above the
                            // threshold that was in force.
                            if eval.distance < threshold_used {
                                out.et_mismatches += 1;
                            }
                        }
                        run.pending
                            .push(Neighbor::new(eval.distance, shard.global_id(eval.id)));
                    }
                    if hop_saved > 0 {
                        sink.event(
                            c,
                            EventKind::BoundPropagated {
                                shard: s as u32,
                                saved_lines: hop_saved.min(u32::MAX as u64) as u32,
                            },
                        );
                        sink.counter("cluster.saved_lines", hop_saved);
                    }
                    cfg.hop_overhead_cycles + hop_lines * cfg.cycles_per_line
                }
            };
            wheel.schedule(c + duration, s as u32);
        }

        // Merge the visited shards' functional partials; verify against
        // the reference merge over *all* shards (soundness (c): ball
        // skips must never change the answer).
        let visited_partials: Vec<Vec<Neighbor>> =
            visited.iter().map(|&s| set.shard_partial(s, qi)).collect();
        let merged = merge_partials(k, &visited_partials);
        let all_partials: Vec<Vec<Neighbor>> =
            (0..n_shards).map(|s| set.shard_partial(s, qi)).collect();
        if merged != merge_partials(k, &all_partials) {
            out.et_mismatches += 1;
        }
        // Soundness (b): a pruned comparison must never be a member of
        // the final global top-k.
        for n in &merged {
            if pruned_ids.contains(&n.id) {
                out.et_mismatches += 1;
            }
        }
        let candidates: u64 = visited_partials.iter().map(|p| p.len() as u64).sum();
        out.latency_cycles = max_finish + cfg.merge_cycles_per_candidate * candidates;
        out.shards_visited = visited.len();
        out.merged = merged;
        out
    }
}

impl std::fmt::Debug for Router<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Router")
            .field("shards", &self.set.len())
            .field("cfg", &self.cfg)
            .finish()
    }
}

/// Fill free fan-out lanes starting at `cycle`: walk the remaining
/// ranked shards, ball-skip the provably irrelevant ones, route the
/// rest through the fleet, and schedule their first wakeups.
#[allow(clippy::too_many_arguments)]
fn fill_lanes<S: TraceSink>(
    set: &ShardSet,
    cfg: &RouterConfig,
    metric: Metric,
    query: &[f32],
    order: &[usize],
    cycle: u64,
    next_idx: &mut usize,
    inflight: &mut usize,
    runs: &mut [Option<Run>],
    global: &GlobalTopK,
    wheel: &mut EventWheel,
    fleet: &mut ClusterFleet,
    out: &mut QueryOutcome,
    sink: &mut S,
) {
    while *inflight < cfg.max_concurrent_shards.max(1) && *next_idx < order.len() {
        let s = order[*next_idx];
        *next_idx += 1;
        // Ball-bound skip: sound only once the global heap is full (the
        // kth distance is then an upper bound on the final kth, which
        // only tightens as more candidates merge).
        if global.len() >= set.k {
            if let Some(lb) = set.assignment.ball_lower_bound(metric, s, query) {
                let kth = global.kth() as f64;
                if lb > kth * (1.0 + SKIP_MARGIN) + SKIP_MARGIN {
                    out.shards_skipped += 1;
                    sink.event(cycle, EventKind::ShardSkipped { shard: s as u32 });
                    sink.counter("cluster.shards_skipped", 1);
                    continue;
                }
            }
        }
        let (path, penalty) = fleet.dispatch(s, cycle, sink);
        out.penalty_cycles += penalty;
        match path {
            DispatchPath::Replica(_) => out.replica_dispatches += 1,
            DispatchPath::HostFallback => out.host_dispatches += 1,
            DispatchPath::Primary => {}
        }
        runs[s] = Some(Run {
            path,
            next_hop: 0,
            pending: Vec::new(),
        });
        *inflight += 1;
        sink.sample(cycle, "cluster.inflight_shards", *inflight as u64);
        wheel.schedule(cycle + penalty, s as u32);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ansmet_faults::StormPlan;
    use ansmet_obs::NoopSink;
    use ansmet_vecdata::SynthSpec;

    fn build(shards: usize, policy: RoutingPolicy) -> ShardSet {
        let (data, queries) = SynthSpec::sift().scaled(400, 4).generate();
        ShardSet::build(&data, &queries, 10, 40, shards, policy, 7)
    }

    fn route_all(set: &ShardSet, fleet: &mut ClusterFleet) -> (RouterStats, Vec<Vec<Neighbor>>) {
        let mut router = Router::new(set, RouterConfig::default());
        let mut stats = RouterStats::default();
        let mut merged = Vec::new();
        for qi in 0..set.queries.len() {
            let o = router.route(qi, fleet, &mut NoopSink);
            stats.absorb(&o);
            merged.push(o.merged);
        }
        (stats, merged)
    }

    #[test]
    fn hash_routing_is_sound_and_saves_lines() {
        let set = build(3, RoutingPolicy::Hash);
        let (stats, merged) = route_all(&set, &mut ClusterFleet::healthy(3));
        assert_eq!(stats.et_mismatches, 0);
        assert_eq!(stats.shards_visited, 3 * set.queries.len() as u64);
        assert!(
            stats.ndp_lines_with_bound < stats.ndp_lines_independent,
            "cross-shard bounds must save lines: {} vs {}",
            stats.ndp_lines_with_bound,
            stats.ndp_lines_independent
        );
        // The merged set matches a flat merge of all shard partials.
        for (qi, m) in merged.iter().enumerate() {
            let all: Vec<Vec<Neighbor>> =
                (0..set.len()).map(|s| set.shard_partial(s, qi)).collect();
            assert_eq!(*m, merge_partials(set.k, &all));
            assert_eq!(m.len(), set.k);
        }
    }

    #[test]
    fn single_shard_has_no_foreign_bound_savings() {
        let set = build(1, RoutingPolicy::Hash);
        let (stats, _) = route_all(&set, &mut ClusterFleet::healthy(1));
        assert_eq!(stats.et_mismatches, 0);
        assert_eq!(
            stats.ndp_lines_with_bound, stats.ndp_lines_independent,
            "S=1 has no foreign candidates, so no tightening"
        );
        assert_eq!(stats.shards_skipped, 0);
    }

    #[test]
    fn kmeans_skips_never_change_the_answer() {
        let set = build(4, RoutingPolicy::KMeans);
        let (stats, merged) = route_all(&set, &mut ClusterFleet::healthy(4));
        assert_eq!(stats.et_mismatches, 0, "skips and bounds stay lossless");
        for (qi, m) in merged.iter().enumerate() {
            let all: Vec<Vec<Neighbor>> =
                (0..set.len()).map(|s| set.shard_partial(s, qi)).collect();
            assert_eq!(*m, merge_partials(set.k, &all));
        }
    }

    #[test]
    fn routing_is_deterministic_across_router_instances() {
        let set = build(4, RoutingPolicy::Hash);
        let (a, merged_a) = route_all(&set, &mut ClusterFleet::healthy(4));
        let (b, merged_b) = route_all(&set, &mut ClusterFleet::healthy(4));
        assert_eq!(a, b);
        assert_eq!(merged_a, merged_b);
    }

    #[test]
    fn lane_limit_serializes_the_fan_out() {
        let set = build(4, RoutingPolicy::Hash);
        let mut wide = Router::new(&set, RouterConfig::default());
        let mut narrow = Router::new(
            &set,
            RouterConfig {
                max_concurrent_shards: 1,
                ..RouterConfig::default()
            },
        );
        let w = wide.route(0, &mut ClusterFleet::healthy(4), &mut NoopSink);
        let n = narrow.route(0, &mut ClusterFleet::healthy(4), &mut NoopSink);
        assert_eq!(w.merged, n.merged, "lanes change timing, not answers");
        assert!(
            n.latency_cycles > w.latency_cycles,
            "serialized visits must be slower: {} vs {}",
            n.latency_cycles,
            w.latency_cycles
        );
    }

    #[test]
    fn router_surfaces_events_and_counters_through_the_sink() {
        #[derive(Default)]
        struct Capture {
            bound_events: u64,
            saved_lines: u64,
            inflight_samples: u64,
        }
        impl TraceSink for Capture {
            fn enabled(&self) -> bool {
                true
            }
            fn event(&mut self, _cycle: u64, kind: EventKind) {
                if matches!(kind, EventKind::BoundPropagated { .. }) {
                    self.bound_events += 1;
                }
            }
            fn counter(&mut self, name: &'static str, delta: u64) {
                if name == "cluster.saved_lines" {
                    self.saved_lines += delta;
                }
            }
            fn sample(&mut self, _cycle: u64, name: &'static str, _value: u64) {
                if name == "cluster.inflight_shards" {
                    self.inflight_samples += 1;
                }
            }
        }

        let set = build(3, RoutingPolicy::Hash);
        let mut router = Router::new(&set, RouterConfig::default());
        let mut fleet = ClusterFleet::healthy(3);
        let mut sink = Capture::default();
        let mut saved = 0u64;
        for qi in 0..set.queries.len() {
            saved += router.route(qi, &mut fleet, &mut sink).saved_lines();
        }
        assert!(
            sink.bound_events > 0,
            "bound propagation must be observable"
        );
        assert_eq!(sink.saved_lines, saved, "counter mirrors the outcome");
        assert!(sink.inflight_samples > 0, "queue depth is sampled");
    }

    #[test]
    fn storm_failover_keeps_results_identical() {
        let set = build(4, RoutingPolicy::Hash);
        let (healthy, merged_h) = route_all(&set, &mut ClusterFleet::healthy(4));
        let storm = StormPlan::single_group_outage(0, 0, u64::MAX);
        let mut fleet = ClusterFleet::new(4, crate::serving::FleetConfig::default(), storm);
        let (stormy, merged_s) = route_all(&set, &mut fleet);
        assert_eq!(merged_h, merged_s, "failover must not change answers");
        assert_eq!(stormy.et_mismatches, 0);
        assert!(
            stormy.replica_dispatches > 0,
            "shard 0 reroutes to a replica"
        );
        assert!(stormy.penalty_cycles > healthy.penalty_cycles);
    }
}
