//! Cluster experiment reports: per-configuration sweep rows, the storm
//! drill, and the assembled `cluster` report.

use std::fmt;

use ansmet_index::Neighbor;
use ansmet_obs::Fnv64;

use crate::partition::RoutingPolicy;
use crate::router::RouterStats;

/// FNV-1a fingerprint over per-query merged top-k lists: folds each
/// neighbor's global id and distance bits in query order, so any change
/// to any returned neighbor changes the fingerprint.
pub fn results_fingerprint(merged: &[Vec<Neighbor>]) -> u64 {
    let mut fnv = Fnv64::new();
    for (qi, row) in merged.iter().enumerate() {
        fnv.write_u64(qi as u64);
        for n in row {
            fnv.write_u64(n.id as u64);
            fnv.write_u64(n.dist.to_bits() as u64);
        }
    }
    fnv.finish()
}

/// One sweep cell: a `(shard count, routing policy)` configuration
/// routed over the whole query list on a healthy fleet.
#[derive(Debug, Clone, PartialEq)]
pub struct ConfigReport {
    /// Routing / assignment policy.
    pub policy: RoutingPolicy,
    /// Shard count S.
    pub shards: usize,
    /// Largest shard over the perfectly balanced size (1.0 = perfect).
    pub imbalance: f64,
    /// Mean recall@k of the merged results against brute-force ground
    /// truth over the full dataset.
    pub recall: f64,
    /// Router totals over all queries (lines, latency, skips, soundness
    /// counters).
    pub stats: RouterStats,
    /// Fingerprint of every query's merged top-k.
    pub results_fingerprint: u64,
}

impl fmt::Display for ConfigReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "S={} {:<6} recall={:.4} imbalance={:.3} mean_latency={:.0}cy \
             saved_frac={:.4} skipped={} mismatches={}",
            self.shards,
            self.policy.as_str(),
            self.recall,
            self.imbalance,
            self.stats.mean_latency_cycles(),
            self.stats.bound_saved_frac(),
            self.stats.shards_skipped,
            self.stats.et_mismatches,
        )
    }
}

/// The storm drill: the same configuration re-routed while a scripted
/// outage takes a shard down, with the fleet failing over.
#[derive(Debug, Clone, PartialEq)]
pub struct StormReport {
    /// Shard count S of the drilled configuration.
    pub shards: usize,
    /// Routing policy of the drilled configuration.
    pub policy: RoutingPolicy,
    /// Router totals under the storm.
    pub stats: RouterStats,
    /// Fingerprint of the merged results under the storm.
    pub results_fingerprint: u64,
    /// Whether the storm-run fingerprint matches the healthy run —
    /// failover must change cycles, never answers.
    pub fingerprint_matches_healthy: bool,
    /// Dispatches that hung and paid the timeout penalty.
    pub timeouts: u64,
    /// Dispatches an open breaker rerouted without a timeout.
    pub breaker_rejections: u64,
    /// Breaker open transitions observed.
    pub breaker_opens: u64,
    /// Breaker close transitions observed.
    pub breaker_closes: u64,
}

impl fmt::Display for StormReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "storm S={} {}: results {} (replica={} host={} timeouts={} \
             rejections={} opens={} closes={} mean_latency={:.0}cy)",
            self.shards,
            self.policy.as_str(),
            if self.fingerprint_matches_healthy {
                "identical"
            } else {
                "DIVERGED"
            },
            self.stats.replica_dispatches,
            self.stats.host_dispatches,
            self.timeouts,
            self.breaker_rejections,
            self.breaker_opens,
            self.breaker_closes,
            self.stats.mean_latency_cycles(),
        )
    }
}

/// The full `cluster` experiment report.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterReport {
    /// Dataset name.
    pub dataset: String,
    /// Result-set size k.
    pub k: usize,
    /// Beam width ef.
    pub ef: usize,
    /// Queries routed per configuration.
    pub queries: usize,
    /// Recall@k of the monolithic (unsharded) index at the same k/ef —
    /// the parity baseline.
    pub mono_recall: f64,
    /// One row per `(shard count, policy)` cell, in sweep order.
    pub configs: Vec<ConfigReport>,
    /// The storm drill.
    pub storm: StormReport,
}

impl ClusterReport {
    /// Total soundness violations across the sweep and the storm drill
    /// (must be 0).
    pub fn total_mismatches(&self) -> u64 {
        self.configs
            .iter()
            .map(|c| c.stats.et_mismatches)
            .sum::<u64>()
            + self.storm.stats.et_mismatches
    }

    /// Whether every multi-shard cell saw nonzero cross-shard bound
    /// savings (the propagation mechanism actually engaged).
    pub fn propagation_engaged(&self) -> bool {
        self.configs
            .iter()
            .filter(|c| c.shards >= 2)
            .all(|c| c.stats.bound_saved_frac() > 0.0)
    }
}

impl fmt::Display for ClusterReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "cluster — {} (k={}, ef={}, {} queries, mono recall {:.4})",
            self.dataset, self.k, self.ef, self.queries, self.mono_recall
        )?;
        for c in &self.configs {
            writeln!(f, "   {c}")?;
        }
        write!(f, "   {}", self.storm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats() -> RouterStats {
        RouterStats {
            queries: 3,
            latency_total: 3_000,
            max_latency: 1_200,
            shards_visited: 12,
            ndp_lines_with_bound: 80,
            ndp_lines_independent: 100,
            evals: 50,
            pruned_evals: 10,
            ..RouterStats::default()
        }
    }

    #[test]
    fn fingerprint_tracks_every_neighbor() {
        let a = vec![vec![Neighbor::new(1.0, 3), Neighbor::new(2.0, 7)]];
        let mut b = a.clone();
        assert_eq!(results_fingerprint(&a), results_fingerprint(&b));
        b[0][1] = Neighbor::new(2.0, 8);
        assert_ne!(results_fingerprint(&a), results_fingerprint(&b));
    }

    #[test]
    fn displays_are_stable() {
        let cfg = ConfigReport {
            policy: RoutingPolicy::Hash,
            shards: 4,
            imbalance: 1.05,
            recall: 0.9876,
            stats: stats(),
            results_fingerprint: 0xABCD,
        };
        let line = cfg.to_string();
        assert!(line.contains("S=4 hash"), "{line}");
        assert!(line.contains("recall=0.9876"), "{line}");
        assert!(line.contains("saved_frac=0.2000"), "{line}");

        let storm = StormReport {
            shards: 4,
            policy: RoutingPolicy::Hash,
            stats: stats(),
            results_fingerprint: 0xABCD,
            fingerprint_matches_healthy: true,
            timeouts: 2,
            breaker_rejections: 5,
            breaker_opens: 1,
            breaker_closes: 1,
        };
        assert!(storm.to_string().contains("results identical"));

        let report = ClusterReport {
            dataset: "sift".into(),
            k: 10,
            ef: 40,
            queries: 3,
            mono_recall: 0.98,
            configs: vec![cfg],
            storm,
        };
        assert_eq!(report.total_mismatches(), 0);
        assert!(report.propagation_engaged());
        let text = report.to_string();
        assert!(text.contains("cluster — sift"), "{text}");
        assert!(text.contains("storm S=4"), "{text}");
    }
}
