//! Dataset → shard assignment: seeded hash striping or balanced
//! k-means, with per-shard centroids and ball radii for routing.
//!
//! Hash assignment is the operational default (stateless, perfectly
//! rebalanceable); k-means assignment trades partitioning cost for
//! *routable* shards — a query is near few centroids, so the router can
//! rank shards by centroid distance and, for L2 workloads, prove some
//! shards irrelevant outright via the triangle inequality (see
//! [`ShardAssignment::ball_lower_bound`]).
//!
//! Everything is deterministic: the hash is seeded FNV-1a, k-means
//! initializes from evenly spaced member ids and iterates Lloyd with a
//! fixed capacity cap in id order, and all reductions are sequential.

use std::fmt;

use ansmet_obs::Fnv64;
use ansmet_vecdata::{Dataset, Metric};

/// How queries are routed to shards (and how vectors were assigned).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RoutingPolicy {
    /// Seeded hash striping; every query fans out to all shards.
    Hash,
    /// Balanced k-means assignment; queries visit shards in centroid
    ///-distance order and may skip provably irrelevant shards.
    KMeans,
}

impl RoutingPolicy {
    /// Both policies, in sweep order.
    pub fn all() -> [RoutingPolicy; 2] {
        [RoutingPolicy::Hash, RoutingPolicy::KMeans]
    }

    /// Stable lowercase name used in reports and JSON artifacts.
    pub fn as_str(&self) -> &'static str {
        match self {
            RoutingPolicy::Hash => "hash",
            RoutingPolicy::KMeans => "kmeans",
        }
    }
}

impl fmt::Display for RoutingPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Lloyd iterations for the balanced k-means assignment.
const KMEANS_ITERS: usize = 6;

/// Capacity slack over the perfectly balanced shard size (1/8): caps
/// the worst shard at ~112.5 % of `n / shards` so no shard starves its
/// siblings while assignment still follows the data.
const CAP_SLACK_NUM: usize = 9;
const CAP_SLACK_DEN: usize = 8;

/// A full dataset → shard mapping with routing metadata.
#[derive(Debug, Clone)]
pub struct ShardAssignment {
    /// The policy that produced this assignment.
    pub policy: RoutingPolicy,
    /// Number of shards S.
    pub shards: usize,
    /// `shard_of[id]` = owning shard for every dataset vector.
    pub shard_of: Vec<usize>,
    /// Per-shard mean vector (dequantized value space).
    pub centroids: Vec<Vec<f32>>,
    /// Per-shard ball radius: the max *Euclidean* (not squared) member
    /// distance to the centroid. Meaningful for L2 datasets only.
    pub radii: Vec<f64>,
}

impl ShardAssignment {
    /// Assign every vector of `data` to one of `shards` shards.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero or exceeds the dataset size.
    pub fn assign(data: &Dataset, shards: usize, policy: RoutingPolicy, seed: u64) -> Self {
        assert!(shards > 0, "at least one shard");
        assert!(
            shards <= data.len(),
            "more shards ({shards}) than vectors ({})",
            data.len()
        );
        let shard_of = match policy {
            RoutingPolicy::Hash => hash_assign(data.len(), shards, seed),
            RoutingPolicy::KMeans => kmeans_assign(data, shards),
        };
        let (centroids, radii) = centroids_and_radii(data, &shard_of, shards);
        ShardAssignment {
            policy,
            shards,
            shard_of,
            centroids,
            radii,
        }
    }

    /// Member ids of shard `s`, ascending (shard-local id `i` is the
    /// `i`-th entry, so local → global mapping is a sorted lookup).
    pub fn members(&self, s: usize) -> Vec<usize> {
        self.shard_of
            .iter()
            .enumerate()
            .filter(|&(_, &owner)| owner == s)
            .map(|(id, _)| id)
            .collect()
    }

    /// Vector count per shard.
    pub fn shard_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.shards];
        for &s in &self.shard_of {
            sizes[s] += 1;
        }
        sizes
    }

    /// Largest shard over the perfectly balanced size (1.0 = perfect).
    pub fn imbalance(&self) -> f64 {
        let sizes = self.shard_sizes();
        let max = sizes.iter().copied().max().unwrap_or(0) as f64;
        let mean = self.shard_of.len() as f64 / self.shards.max(1) as f64;
        if mean > 0.0 {
            max / mean
        } else {
            0.0
        }
    }

    /// A provable lower bound on the (metric-space) distance from
    /// `query` to *any* member of shard `s`, or `None` when the metric
    /// admits no such bound.
    ///
    /// For squared-L2 datasets the triangle inequality holds in the
    /// Euclidean (square-root) space: every member `v` satisfies
    /// `‖q−v‖ ≥ ‖q−c‖ − r`, so when `‖q−c‖ > r` the squared distance is
    /// at least `(‖q−c‖ − r)²`. Non-L2 metrics return `None` and are
    /// never ball-pruned.
    pub fn ball_lower_bound(&self, metric: Metric, s: usize, query: &[f32]) -> Option<f64> {
        if metric != Metric::L2 {
            return None;
        }
        let d2 = metric.distance(&self.centroids[s], query) as f64;
        let e = d2.max(0.0).sqrt() - self.radii[s];
        if e > 0.0 {
            Some(e * e)
        } else {
            Some(0.0)
        }
    }

    /// Shards ranked by centroid distance to `query` (ascending, shard
    /// id tie-break) — the k-means probe order.
    pub fn ranked_by_centroid(&self, metric: Metric, query: &[f32]) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.shards).collect();
        order.sort_by(|&a, &b| {
            let da = metric.distance(&self.centroids[a], query);
            let db = metric.distance(&self.centroids[b], query);
            da.partial_cmp(&db)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        order
    }
}

/// Seeded FNV-1a striping: shard = fnv(seed, id) mod S.
fn hash_assign(n: usize, shards: usize, seed: u64) -> Vec<usize> {
    (0..n)
        .map(|id| {
            let mut h = Fnv64::new();
            h.write_u64(seed);
            h.write_u64(id as u64);
            (h.finish() % shards as u64) as usize
        })
        .collect()
}

/// Balanced Lloyd assignment: nearest centroid with remaining capacity,
/// vectors visited in id order, centroids re-estimated each iteration.
fn kmeans_assign(data: &Dataset, shards: usize) -> Vec<usize> {
    let n = data.len();
    let dim = data.dim();
    let cap = (n.div_ceil(shards) * CAP_SLACK_NUM)
        .div_ceil(CAP_SLACK_DEN)
        .max(1);

    // Evenly spaced member ids seed the centroids: deterministic and
    // spread across whatever order the generator emitted.
    let mut centroids: Vec<Vec<f32>> = (0..shards)
        .map(|s| data.vector(s * n / shards).to_vec())
        .collect();
    let mut assignment = vec![0usize; n];

    for _ in 0..KMEANS_ITERS {
        let mut counts = vec![0usize; shards];
        for (id, slot) in assignment.iter_mut().enumerate() {
            let v = data.vector(id);
            // Rank centroids by squared L2 in value space (routing
            // geometry; independent of the dataset's search metric).
            let mut order: Vec<(f64, usize)> = centroids
                .iter()
                .enumerate()
                .map(|(s, c)| (l2sq(v, c), s))
                .collect();
            order.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
            let pick = order
                .iter()
                .find(|&&(_, s)| counts[s] < cap)
                .map(|&(_, s)| s)
                .unwrap_or(order[0].1);
            *slot = pick;
            counts[pick] += 1;
        }
        // Re-estimate centroids as member means (f64 accumulation,
        // sequential id order — deterministic).
        let mut sums = vec![vec![0.0f64; dim]; shards];
        let mut sizes = vec![0usize; shards];
        for (id, &s) in assignment.iter().enumerate() {
            sizes[s] += 1;
            for (acc, &x) in sums[s].iter_mut().zip(data.vector(id)) {
                *acc += x as f64;
            }
        }
        for s in 0..shards {
            if sizes[s] > 0 {
                centroids[s] = sums[s]
                    .iter()
                    .map(|&x| (x / sizes[s] as f64) as f32)
                    .collect();
            }
        }
    }
    assignment
}

fn centroids_and_radii(
    data: &Dataset,
    shard_of: &[usize],
    shards: usize,
) -> (Vec<Vec<f32>>, Vec<f64>) {
    let dim = data.dim();
    let mut sums = vec![vec![0.0f64; dim]; shards];
    let mut sizes = vec![0usize; shards];
    for (id, &s) in shard_of.iter().enumerate() {
        sizes[s] += 1;
        for (acc, &x) in sums[s].iter_mut().zip(data.vector(id)) {
            *acc += x as f64;
        }
    }
    let centroids: Vec<Vec<f32>> = (0..shards)
        .map(|s| {
            let n = sizes[s].max(1) as f64;
            sums[s].iter().map(|&x| (x / n) as f32).collect()
        })
        .collect();
    let mut radii = vec![0.0f64; shards];
    for (id, &s) in shard_of.iter().enumerate() {
        let r = l2sq(data.vector(id), &centroids[s]).max(0.0).sqrt();
        if r > radii[s] {
            radii[s] = r;
        }
    }
    (centroids, radii)
}

fn l2sq(a: &[f32], b: &[f32]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(&x, &y)| {
            let d = x as f64 - y as f64;
            d * d
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ansmet_vecdata::SynthSpec;

    fn data() -> Dataset {
        SynthSpec::sift().scaled(400, 2).generate().0
    }

    #[test]
    fn hash_assignment_covers_and_is_seed_stable() {
        let d = data();
        let a = ShardAssignment::assign(&d, 4, RoutingPolicy::Hash, 7);
        let b = ShardAssignment::assign(&d, 4, RoutingPolicy::Hash, 7);
        assert_eq!(a.shard_of, b.shard_of);
        assert_eq!(a.shard_of.len(), d.len());
        let sizes = a.shard_sizes();
        assert_eq!(sizes.iter().sum::<usize>(), d.len());
        assert!(sizes.iter().all(|&s| s > 0), "{sizes:?}");
        let c = ShardAssignment::assign(&d, 4, RoutingPolicy::Hash, 8);
        assert_ne!(a.shard_of, c.shard_of, "seed must matter");
    }

    #[test]
    fn kmeans_is_balanced_within_cap() {
        let d = data();
        let a = ShardAssignment::assign(&d, 4, RoutingPolicy::KMeans, 7);
        let cap = (d.len().div_ceil(4) * CAP_SLACK_NUM).div_ceil(CAP_SLACK_DEN);
        for (s, &size) in a.shard_sizes().iter().enumerate() {
            assert!(size <= cap, "shard {s} has {size} > cap {cap}");
            assert!(size > 0, "shard {s} is empty");
        }
        assert!(a.imbalance() < 1.2, "imbalance {}", a.imbalance());
    }

    #[test]
    fn members_are_ascending_and_partition() {
        let d = data();
        let a = ShardAssignment::assign(&d, 3, RoutingPolicy::KMeans, 1);
        let mut seen = vec![false; d.len()];
        for s in 0..3 {
            let m = a.members(s);
            assert!(m.windows(2).all(|w| w[0] < w[1]));
            for id in m {
                assert!(!seen[id]);
                seen[id] = true;
            }
        }
        assert!(seen.iter().all(|&x| x));
    }

    #[test]
    fn ball_bound_never_exceeds_true_distance() {
        let d = data();
        let (_, queries) = SynthSpec::sift().scaled(400, 2).generate();
        let a = ShardAssignment::assign(&d, 4, RoutingPolicy::KMeans, 7);
        for q in &queries {
            for s in 0..4 {
                let lb = a.ball_lower_bound(d.metric(), s, q).expect("sift is L2");
                for id in a.members(s) {
                    let true_d = d.distance_to(id, q) as f64;
                    assert!(
                        lb <= true_d + 1e-3,
                        "shard {s} ball bound {lb} > true {true_d}"
                    );
                }
            }
        }
    }

    #[test]
    fn ranked_by_centroid_is_ascending() {
        let d = data();
        let (_, queries) = SynthSpec::sift().scaled(400, 2).generate();
        let a = ShardAssignment::assign(&d, 4, RoutingPolicy::KMeans, 7);
        let order = a.ranked_by_centroid(d.metric(), &queries[0]);
        let dists: Vec<f32> = order
            .iter()
            .map(|&s| d.metric().distance(&a.centroids[s], &queries[0]))
            .collect();
        assert!(dists.windows(2).all(|w| w[0] <= w[1]), "{dists:?}");
    }

    #[test]
    fn policy_display_is_stable() {
        assert_eq!(RoutingPolicy::Hash.to_string(), "hash");
        assert_eq!(RoutingPolicy::KMeans.to_string(), "kmeans");
        assert_eq!(RoutingPolicy::all().len(), 2);
    }
}
