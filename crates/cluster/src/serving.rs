//! Cluster-aware serving: per-shard circuit breakers, scripted fault
//! storms, and replica / host-path failover.
//!
//! Each shard is a rank group in the fleet's [`HealthTracker`]. A
//! dispatch consults the breaker first (a tripped shard is rerouted
//! without burning a timeout), then the [`StormPlan`]: a hung shard
//! costs the timeout penalty, records a breaker failure, and fails over
//! to the first healthy replica on the deterministic probe ring — or to
//! the host's exact path when no replica is available. Failover changes
//! *cycles only*: the merged neighbors come from the functional traces,
//! so a storm-tripped shard still returns fingerprint-identical results.

use std::fmt;

use ansmet_faults::{StormKind, StormPlan};
use ansmet_host::{BreakerConfig, HealthTracker};
use ansmet_ndp::ReplicaSet;
use ansmet_obs::{EventKind, TraceSink};
use ansmet_serve::TIMEOUT_PENALTY_CYCLES;

/// Where a shard visit actually executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DispatchPath {
    /// The shard's own NDP stack served the visit.
    Primary,
    /// A replica rank group served the visit (same ANSMET layout, same
    /// line costs, plus a fixed redirect penalty).
    Replica(usize),
    /// No healthy replica: the host recomputes exact distances from the
    /// natural layout (no early termination, much higher per-line cost).
    HostFallback,
}

impl DispatchPath {
    /// Stable lowercase name for reports and JSON.
    pub fn as_str(&self) -> &'static str {
        match self {
            DispatchPath::Primary => "primary",
            DispatchPath::Replica(_) => "replica",
            DispatchPath::HostFallback => "host_fallback",
        }
    }
}

impl fmt::Display for DispatchPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DispatchPath::Replica(g) => write!(f, "replica({g})"),
            other => f.write_str(other.as_str()),
        }
    }
}

/// Fleet policy knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetConfig {
    /// Whether shard replicas exist (failover targets on the probe
    /// ring). Without replicas every failed dispatch falls back to the
    /// host path.
    pub replicas: bool,
    /// Per-shard circuit-breaker policy.
    pub breaker: BreakerConfig,
    /// Fixed cycles added when a visit is redirected to a replica.
    pub replica_redirect_cycles: u64,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            replicas: true,
            // One observation per shard visit, so trip fast.
            breaker: BreakerConfig::fast_trip(),
            replica_redirect_cycles: 512,
        }
    }
}

/// Cross-query fleet state: breakers, the storm script, and dispatch
/// tallies.
#[derive(Debug, Clone)]
pub struct ClusterFleet {
    cfg: FleetConfig,
    health: HealthTracker,
    storm: StormPlan,
    /// Serving-clock offset added to per-query cycles: each query
    /// replays on its own wheel starting at 0, and the fleet clock
    /// strings consecutive queries into one timeline so storm windows
    /// and breaker cooldowns span queries.
    clock: u64,
    /// Visits served by the shard's own stack.
    pub primary_dispatches: u64,
    /// Visits redirected to a replica group.
    pub replica_dispatches: u64,
    /// Visits that fell back to the host's exact path.
    pub host_fallbacks: u64,
    /// Dispatches refused outright by an open breaker (no timeout paid).
    pub breaker_rejections: u64,
    /// Dispatches that hung and paid the full timeout penalty.
    pub timeouts: u64,
}

impl ClusterFleet {
    /// A fleet with the given policy and storm script over `shards`
    /// shard groups.
    pub fn new(shards: usize, cfg: FleetConfig, storm: StormPlan) -> Self {
        ClusterFleet {
            cfg,
            health: HealthTracker::new(shards, cfg.breaker),
            storm,
            clock: 0,
            primary_dispatches: 0,
            replica_dispatches: 0,
            host_fallbacks: 0,
            breaker_rejections: 0,
            timeouts: 0,
        }
    }

    /// A storm-free fleet with the default policy.
    pub fn healthy(shards: usize) -> Self {
        ClusterFleet::new(shards, FleetConfig::default(), StormPlan::none())
    }

    /// The per-shard health tracker (breaker states, transition log).
    pub fn health(&self) -> &HealthTracker {
        &self.health
    }

    /// The scripted storm plan.
    pub fn storm(&self) -> &StormPlan {
        &self.storm
    }

    /// The fleet policy.
    pub fn config(&self) -> &FleetConfig {
        &self.cfg
    }

    /// The current serving-clock offset.
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// Advance the serving clock (typically by the latency of the query
    /// that just completed).
    pub fn advance(&mut self, cycles: u64) {
        self.clock += cycles;
    }

    /// Decide where shard `shard`'s visit executes at `cycle`. Returns
    /// the path and the penalty cycles the visit pays before its first
    /// hop (timeout + redirect overhead; zero on the happy path).
    pub fn dispatch<S: TraceSink>(
        &mut self,
        shard: usize,
        cycle: u64,
        sink: &mut S,
    ) -> (DispatchPath, u64) {
        let cycle = self.clock.saturating_add(cycle);
        if !self.health.admits(shard, cycle) {
            // The breaker already knows the shard is sick: reroute
            // immediately without burning a timeout window.
            self.breaker_rejections += 1;
            return self.reroute(shard, cycle, 0, sink);
        }
        match self.storm.fault_at(shard, cycle) {
            None => {
                self.health.record_success(shard, cycle);
                self.primary_dispatches += 1;
                (DispatchPath::Primary, 0)
            }
            Some(StormKind::Stall { cycles }) => {
                // Throttled but alive: the visit completes, just late.
                self.health.record_success(shard, cycle);
                self.primary_dispatches += 1;
                (DispatchPath::Primary, cycles)
            }
            Some(StormKind::Hang) => {
                self.timeouts += 1;
                self.health.record_failure(shard, cycle);
                self.reroute(shard, cycle, TIMEOUT_PENALTY_CYCLES, sink)
            }
        }
    }

    /// Pick the failover target for a shard that cannot serve: the first
    /// replica on the probe ring that is neither storming nor tripped,
    /// else the host path.
    fn reroute<S: TraceSink>(
        &mut self,
        shard: usize,
        cycle: u64,
        penalty: u64,
        sink: &mut S,
    ) -> (DispatchPath, u64) {
        if self.cfg.replicas {
            for g in ReplicaSet::failover_chain(shard, self.health.n_groups()) {
                if self.storm.fault_at(g, cycle).is_none() && self.health.would_accept(g) {
                    self.replica_dispatches += 1;
                    sink.event(
                        cycle,
                        EventKind::ShardFailover {
                            shard: shard as u32,
                            to: g as u32,
                        },
                    );
                    return (
                        DispatchPath::Replica(g),
                        penalty + self.cfg.replica_redirect_cycles,
                    );
                }
            }
        }
        self.host_fallbacks += 1;
        (DispatchPath::HostFallback, penalty)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ansmet_obs::NoopSink;

    #[test]
    fn healthy_fleet_dispatches_primary_for_free() {
        let mut fleet = ClusterFleet::healthy(4);
        let (path, penalty) = fleet.dispatch(2, 1_000, &mut NoopSink);
        assert_eq!(path, DispatchPath::Primary);
        assert_eq!(penalty, 0);
        assert_eq!(fleet.primary_dispatches, 1);
        assert_eq!(fleet.timeouts, 0);
    }

    #[test]
    fn hung_shard_pays_timeout_then_breaker_short_circuits() {
        let storm = StormPlan::single_group_outage(0, 0, 1_000_000);
        let mut fleet = ClusterFleet::new(4, FleetConfig::default(), storm);
        // First visit eats the timeout and fails over to the probe-ring
        // replica (group 1 is healthy).
        let (path, penalty) = fleet.dispatch(0, 10, &mut NoopSink);
        assert_eq!(path, DispatchPath::Replica(1));
        assert_eq!(penalty, TIMEOUT_PENALTY_CYCLES + 512);
        assert_eq!(fleet.timeouts, 1);
        // fast_trip opens on one failure: the next visit skips the
        // timeout entirely.
        let (path, penalty) = fleet.dispatch(0, 20, &mut NoopSink);
        assert_eq!(path, DispatchPath::Replica(1));
        assert_eq!(penalty, 512);
        assert_eq!(fleet.timeouts, 1);
        assert_eq!(fleet.breaker_rejections, 1);
    }

    #[test]
    fn no_replicas_means_host_fallback() {
        let storm = StormPlan::single_group_outage(1, 0, u64::MAX);
        let cfg = FleetConfig {
            replicas: false,
            ..FleetConfig::default()
        };
        let mut fleet = ClusterFleet::new(2, cfg, storm);
        let (path, penalty) = fleet.dispatch(1, 0, &mut NoopSink);
        assert_eq!(path, DispatchPath::HostFallback);
        assert_eq!(penalty, TIMEOUT_PENALTY_CYCLES);
        assert_eq!(fleet.host_fallbacks, 1);
    }

    #[test]
    fn correlated_storm_walks_the_failover_chain() {
        // Shards 0 and 1 both dark: shard 0 must skip replica 1 and land
        // on replica 2.
        let storm = StormPlan::correlated_burst(vec![0, 1], 0, 1_000_000);
        let mut fleet = ClusterFleet::new(4, FleetConfig::default(), storm);
        let (path, _) = fleet.dispatch(0, 0, &mut NoopSink);
        assert_eq!(path, DispatchPath::Replica(2));
    }

    #[test]
    fn stall_storm_adds_cycles_but_stays_primary() {
        let plan = StormPlan::new(vec![ansmet_faults::StormWindow {
            groups: vec![3],
            start_cycle: 0,
            end_cycle: 1_000,
            kind: StormKind::Stall { cycles: 777 },
        }]);
        let mut fleet = ClusterFleet::new(4, FleetConfig::default(), plan);
        let (path, penalty) = fleet.dispatch(3, 500, &mut NoopSink);
        assert_eq!(path, DispatchPath::Primary);
        assert_eq!(penalty, 777);
    }

    #[test]
    fn recovery_probes_and_closes_after_the_storm() {
        let storm = StormPlan::single_group_outage(0, 0, 10_000);
        let mut fleet = ClusterFleet::new(2, FleetConfig::default(), storm);
        fleet.dispatch(0, 100, &mut NoopSink); // trips the breaker
        assert_eq!(fleet.health().open_groups(), 1);
        // Past the storm *and* the cooldown, the probe dispatch succeeds
        // and fast_trip closes on one success.
        let (path, penalty) = fleet.dispatch(0, 50_000, &mut NoopSink);
        assert_eq!(path, DispatchPath::Primary);
        assert_eq!(penalty, 0);
        assert_eq!(fleet.health().open_groups(), 0);
    }

    #[test]
    fn display_names_are_stable() {
        assert_eq!(DispatchPath::Primary.to_string(), "primary");
        assert_eq!(DispatchPath::Replica(3).to_string(), "replica(3)");
        assert_eq!(DispatchPath::HostFallback.to_string(), "host_fallback");
    }
}
