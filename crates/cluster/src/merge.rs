//! Deterministic partial top-k merge for scatter-gather results.
//!
//! [`Neighbor`]'s total order (distance, then id) makes the k smallest
//! elements of any candidate multiset with distinct ids a *unique* set,
//! so the merge is independent of shard arrival order and host thread
//! count — the property the cluster proptest pins down against a single
//! sorted merge of all candidates.

use ansmet_index::{MaxDistHeap, Neighbor};

/// Merge per-shard partial top-k lists into the global top-k, closest
/// first, ties broken by id. Insertion-order independent: shards hold
/// disjoint id sets, so the (distance, id) order is strict.
pub fn merge_partials(k: usize, partials: &[Vec<Neighbor>]) -> Vec<Neighbor> {
    let mut heap = MaxDistHeap::new(k.max(1));
    for partial in partials {
        for &n in partial {
            heap.push(n);
        }
    }
    heap.into_sorted()
}

/// Incremental global top-k accumulator: the router streams candidate
/// distances in as shard hops complete, and reads back the current kth
/// distance to tighten still-running shards' ET thresholds.
#[derive(Debug, Clone)]
pub struct GlobalTopK {
    heap: MaxDistHeap,
}

impl GlobalTopK {
    /// An empty accumulator keeping the `k` closest candidates.
    pub fn new(k: usize) -> Self {
        GlobalTopK {
            heap: MaxDistHeap::new(k.max(1)),
        }
    }

    /// Offer one candidate (true distance, global id).
    pub fn offer(&mut self, n: Neighbor) {
        self.heap.push(n);
    }

    /// The current kth distance, or `f32::INFINITY` until k candidates
    /// have been offered.
    pub fn kth(&self) -> f32 {
        self.heap.threshold()
    }

    /// A *strictly safe* ET bound: the next representable `f32` above
    /// the current kth distance. A candidate whose true distance ties
    /// the final kth (and could win the id tie-break) stays strictly
    /// below this bound, so the ANSMET engine can never prune it.
    pub fn safe_bound(&self) -> f32 {
        next_up(self.kth())
    }

    /// Candidates currently held (≤ k).
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no candidate has been offered yet.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// Next representable `f32` above `x` for non-negative finite `x`;
/// infinity maps to itself. (Distances in every supported metric are
/// finite, and L2 distances are non-negative.)
fn next_up(x: f32) -> f32 {
    if x.is_infinite() {
        return x;
    }
    debug_assert!(x >= 0.0, "distances are non-negative");
    if x < 0.0 {
        return x; // defensive: keep negative inputs unchanged
    }
    f32::from_bits(x.to_bits() + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(d: f32, id: usize) -> Neighbor {
        Neighbor::new(d, id)
    }

    #[test]
    fn merge_equals_single_sorted_merge() {
        let partials = vec![
            vec![n(3.0, 5), n(1.0, 2)],
            vec![n(2.0, 9), n(1.0, 1), n(4.0, 0)],
            vec![],
        ];
        let merged = merge_partials(3, &partials);
        let mut all: Vec<Neighbor> = partials.concat();
        all.sort();
        assert_eq!(merged, all[..3].to_vec());
        // Duplicate-distance tie-break: id 1 beats id 2 at dist 1.0.
        assert_eq!(merged[0], n(1.0, 1));
        assert_eq!(merged[1], n(1.0, 2));
    }

    #[test]
    fn merge_is_order_independent() {
        let a = vec![vec![n(1.0, 1), n(5.0, 5)], vec![n(1.0, 2), n(3.0, 3)]];
        let b = vec![a[1].clone(), a[0].clone()];
        assert_eq!(merge_partials(3, &a), merge_partials(3, &b));
    }

    #[test]
    fn global_topk_bound_tightens() {
        let mut g = GlobalTopK::new(2);
        assert_eq!(g.kth(), f32::INFINITY);
        assert_eq!(g.safe_bound(), f32::INFINITY);
        g.offer(n(4.0, 1));
        assert!(g.kth().is_infinite(), "not full yet");
        g.offer(n(2.0, 2));
        assert_eq!(g.kth(), 4.0);
        assert!(g.safe_bound() > 4.0);
        g.offer(n(1.0, 3));
        assert_eq!(g.kth(), 2.0);
        assert_eq!(g.len(), 2);
    }

    #[test]
    fn safe_bound_is_strictly_above_kth() {
        for x in [0.0f32, 1.0, 137.25, 1e30] {
            assert!(next_up(x) > x);
        }
        assert_eq!(next_up(f32::INFINITY), f32::INFINITY);
    }
}
