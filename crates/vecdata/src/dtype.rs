//! Element datatypes and bit-level encode/decode.
//!
//! ANSMET's early termination works on the *stored bit pattern* of each
//! element, so every type here exposes both a canonical `f32` value and a
//! raw storage pattern (LSB-aligned in a `u32`).

/// Element datatype of a dataset (Table 2 uses UINT8, INT8, and FP32; the
/// NDP unit also supports FP16/BF16 per §5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ElemType {
    /// 8-bit unsigned integer (SIFT, BigANN).
    U8,
    /// 8-bit signed integer (SPACEV).
    I8,
    /// 32-bit IEEE-754 float (DEEP, GloVe, Txt2Img, GIST).
    F32,
    /// 16-bit IEEE-754 half float.
    F16,
    /// bfloat16.
    Bf16,
}

impl ElemType {
    /// Storage width in bits.
    pub fn bits(self) -> u32 {
        match self {
            ElemType::U8 | ElemType::I8 => 8,
            ElemType::F16 | ElemType::Bf16 => 16,
            ElemType::F32 => 32,
        }
    }

    /// Storage width in bytes.
    pub fn bytes(self) -> usize {
        (self.bits() / 8) as usize
    }

    /// Whether the type is a floating-point format.
    pub fn is_float(self) -> bool {
        matches!(self, ElemType::F32 | ElemType::F16 | ElemType::Bf16)
    }

    /// Quantize a canonical value to this type's raw storage bit pattern
    /// (LSB-aligned). Values outside the representable range saturate.
    pub fn encode(self, value: f32) -> u32 {
        match self {
            ElemType::U8 => value.round().clamp(0.0, 255.0) as u32,
            ElemType::I8 => (value.round().clamp(-128.0, 127.0) as i32 as u32) & 0xff,
            ElemType::F32 => value.to_bits(),
            ElemType::F16 => f32_to_f16_bits(value) as u32,
            ElemType::Bf16 => f32_to_bf16_bits(value) as u32,
        }
    }

    /// Decode a raw storage pattern back to the canonical `f32` value.
    pub fn decode(self, raw: u32) -> f32 {
        match self {
            ElemType::U8 => (raw & 0xff) as f32,
            ElemType::I8 => ((raw & 0xff) as u8 as i8) as f32,
            ElemType::F32 => f32::from_bits(raw),
            ElemType::F16 => f16_bits_to_f32(raw as u16),
            ElemType::Bf16 => bf16_bits_to_f32(raw as u16),
        }
    }
}

impl std::fmt::Display for ElemType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ElemType::U8 => "UINT8",
            ElemType::I8 => "INT8",
            ElemType::F32 => "FP32",
            ElemType::F16 => "FP16",
            ElemType::Bf16 => "BF16",
        };
        f.write_str(s)
    }
}

/// Convert `f32` to IEEE-754 binary16 bits with round-to-nearest-even.
pub fn f32_to_f16_bits(value: f32) -> u16 {
    let bits = value.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xff) as i32;
    let mant = bits & 0x7f_ffff;

    if exp == 0xff {
        // Inf / NaN.
        let m = if mant != 0 { 0x200 } else { 0 };
        return sign | 0x7c00 | m;
    }
    // Re-bias: f32 bias 127 → f16 bias 15.
    let unbiased = exp - 127;
    if unbiased > 15 {
        return sign | 0x7c00; // overflow → inf
    }
    if unbiased >= -14 {
        // Normal range.
        let half_exp = (unbiased + 15) as u32;
        let half_mant = mant >> 13;
        let rem = mant & 0x1fff;
        let mut h = (half_exp << 10) | half_mant;
        // Round to nearest even.
        if rem > 0x1000 || (rem == 0x1000 && (half_mant & 1) == 1) {
            h += 1;
        }
        return sign | h as u16;
    }
    if unbiased >= -24 {
        // Subnormal half.
        let shift = (-14 - unbiased) as u32;
        let full_mant = mant | 0x80_0000;
        let half_mant = full_mant >> (13 + shift);
        let rem_mask = (1u32 << (13 + shift)) - 1;
        let rem = full_mant & rem_mask;
        let half = 1u32 << (12 + shift);
        let mut h = half_mant;
        if rem > half || (rem == half && (half_mant & 1) == 1) {
            h += 1;
        }
        return sign | h as u16;
    }
    sign // underflow → signed zero
}

/// Convert IEEE-754 binary16 bits to `f32`.
pub fn f16_bits_to_f32(bits: u16) -> f32 {
    let sign = ((bits as u32) & 0x8000) << 16;
    let exp = ((bits >> 10) & 0x1f) as u32;
    let mant = (bits & 0x3ff) as u32;
    let out = if exp == 0 {
        if mant == 0 {
            sign
        } else {
            // Subnormal: value = mant × 2⁻²⁴.
            let f = mant as f32 * (1.0 / 16_777_216.0);
            return if sign != 0 { -f } else { f };
        }
    } else if exp == 0x1f {
        sign | 0x7f80_0000 | (mant << 13)
    } else {
        sign | ((exp + 112) << 23) | (mant << 13)
    };
    f32::from_bits(out)
}

/// Convert `f32` to bfloat16 bits with round-to-nearest-even.
pub fn f32_to_bf16_bits(value: f32) -> u16 {
    let bits = value.to_bits();
    if value.is_nan() {
        return ((bits >> 16) as u16) | 0x40;
    }
    let round_bit = 0x8000u32;
    let lower = bits & 0xffff;
    let mut upper = bits >> 16;
    if lower > round_bit || (lower == round_bit && (upper & 1) == 1) {
        upper += 1;
    }
    upper as u16
}

/// Convert bfloat16 bits to `f32`.
pub fn bf16_bits_to_f32(bits: u16) -> f32 {
    f32::from_bits((bits as u32) << 16)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn widths() {
        assert_eq!(ElemType::U8.bits(), 8);
        assert_eq!(ElemType::I8.bits(), 8);
        assert_eq!(ElemType::F16.bits(), 16);
        assert_eq!(ElemType::Bf16.bits(), 16);
        assert_eq!(ElemType::F32.bits(), 32);
        assert_eq!(ElemType::F32.bytes(), 4);
    }

    #[test]
    fn u8_roundtrip_and_saturation() {
        assert_eq!(ElemType::U8.decode(ElemType::U8.encode(37.0)), 37.0);
        assert_eq!(ElemType::U8.encode(300.0), 255);
        assert_eq!(ElemType::U8.encode(-5.0), 0);
    }

    #[test]
    fn i8_roundtrip_and_sign() {
        assert_eq!(ElemType::I8.decode(ElemType::I8.encode(-100.0)), -100.0);
        assert_eq!(ElemType::I8.decode(ElemType::I8.encode(127.0)), 127.0);
        assert_eq!(ElemType::I8.encode(-200.0), 0x80); // saturate to -128
        assert_eq!(ElemType::I8.decode(0x80), -128.0);
    }

    #[test]
    fn f32_roundtrip_exact() {
        for v in [0.0f32, -1.5, std::f32::consts::PI, 1e-20, -1e20] {
            assert_eq!(ElemType::F32.decode(ElemType::F32.encode(v)), v);
        }
    }

    #[test]
    fn f16_known_values() {
        assert_eq!(f32_to_f16_bits(1.0), 0x3c00);
        assert_eq!(f32_to_f16_bits(-2.0), 0xc000);
        assert_eq!(f32_to_f16_bits(0.5), 0x3800);
        assert_eq!(f16_bits_to_f32(0x3c00), 1.0);
        assert_eq!(f16_bits_to_f32(0x7c00), f32::INFINITY);
        assert_eq!(f16_bits_to_f32(0xfc00), f32::NEG_INFINITY);
        // Subnormal: smallest positive half = 2^-24.
        assert_eq!(f16_bits_to_f32(0x0001), 2.0f32.powi(-24));
    }

    #[test]
    fn f16_overflow_to_inf() {
        assert_eq!(f32_to_f16_bits(1e9), 0x7c00);
        assert_eq!(f32_to_f16_bits(-1e9), 0xfc00);
    }

    #[test]
    fn bf16_known_values() {
        assert_eq!(bf16_bits_to_f32(0x3f80), 1.0);
        assert_eq!(f32_to_bf16_bits(1.0), 0x3f80);
        assert_eq!(bf16_bits_to_f32(f32_to_bf16_bits(-0.15625)), -0.15625);
    }

    proptest! {
        #[test]
        fn f16_roundtrip_monotone_error(v in -60000.0f32..60000.0) {
            let back = f16_bits_to_f32(f32_to_f16_bits(v));
            // binary16 has ~3 decimal digits: relative error < 2^-10.
            let err = (back - v).abs();
            prop_assert!(err <= v.abs() * 1.0 / 1024.0 + 1e-7, "v={v} back={back}");
        }

        #[test]
        fn bf16_roundtrip_error(v in -1e30f32..1e30) {
            let back = bf16_bits_to_f32(f32_to_bf16_bits(v));
            let err = (back - v).abs();
            prop_assert!(err <= v.abs() / 128.0 + 1e-38);
        }

        #[test]
        fn u8_encode_in_range(v in -1000.0f32..1000.0) {
            let raw = ElemType::U8.encode(v);
            prop_assert!(raw <= 255);
        }

        #[test]
        fn f16_order_preserved(a in -1000.0f32..1000.0, b in -1000.0f32..1000.0) {
            // Half conversion preserves non-strict order.
            let (fa, fb) = (f16_bits_to_f32(f32_to_f16_bits(a)), f16_bits_to_f32(f32_to_f16_bits(b)));
            if a <= b {
                prop_assert!(fa <= fb);
            }
        }
    }
}
