//! Recall computation (the paper's accuracy measure, recall@k).

/// recall@k for one query: fraction of the exact `truth` ids present in
/// the approximate `result` ids (both truncated to `k`).
///
/// # Panics
///
/// Panics if `k` is zero.
pub fn recall_at_k(result: &[usize], truth: &[usize], k: usize) -> f64 {
    assert!(k > 0, "k must be positive");
    let k_eff = k.min(truth.len());
    if k_eff == 0 {
        return 1.0;
    }
    let truth_set: std::collections::HashSet<usize> = truth.iter().take(k_eff).copied().collect();
    let hits = result
        .iter()
        .take(k)
        .filter(|id| truth_set.contains(id))
        .count();
    hits as f64 / k_eff as f64
}

/// Mean recall@k over a batch of queries.
pub fn mean_recall_at_k(results: &[Vec<usize>], truths: &[Vec<usize>], k: usize) -> f64 {
    assert_eq!(results.len(), truths.len(), "batch size mismatch");
    if results.is_empty() {
        return 1.0;
    }
    let sum: f64 = results
        .iter()
        .zip(truths)
        .map(|(r, t)| recall_at_k(r, t, k))
        .sum();
    sum / results.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_recall() {
        assert_eq!(recall_at_k(&[1, 2, 3], &[3, 2, 1], 3), 1.0);
    }

    #[test]
    fn partial_recall() {
        assert_eq!(recall_at_k(&[1, 2, 9], &[1, 2, 3], 3), 2.0 / 3.0);
    }

    #[test]
    fn zero_recall() {
        assert_eq!(recall_at_k(&[7, 8, 9], &[1, 2, 3], 3), 0.0);
    }

    #[test]
    fn truncates_result_to_k() {
        // Extra results beyond k must not inflate recall.
        assert_eq!(recall_at_k(&[9, 8, 1], &[1, 2], 2), 0.0);
    }

    #[test]
    fn short_truth_clamps() {
        assert_eq!(recall_at_k(&[1], &[1], 10), 1.0);
    }

    #[test]
    fn mean_over_batch() {
        let r = vec![vec![1, 2], vec![3, 9]];
        let t = vec![vec![1, 2], vec![3, 4]];
        assert_eq!(mean_recall_at_k(&r, &t, 2), 0.75);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics() {
        recall_at_k(&[1], &[1], 0);
    }
}
