//! Seeded synthetic dataset generators matching the Table 2 workloads.
//!
//! Each generator reproduces the properties early termination depends on:
//! the distance metric, element datatype, dimensionality, and the
//! bit-prefix entropy profile (clustered values whose high bits share
//! common prefixes, as observed for DEEP/GIST in Fig. 3 of the paper).
//!
//! Vectors are drawn from a Gaussian mixture: `n_clusters` centers, each
//! vector a center plus i.i.d. noise. Queries are perturbations of database
//! vectors, so every query has genuinely near neighbors (as in real ANNS
//! workloads).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::dataset::Dataset;
use crate::dtype::ElemType;
use crate::metric::Metric;

/// Specification for one synthetic dataset.
#[derive(Debug, Clone)]
pub struct SynthSpec {
    /// Dataset name (matches the paper's Table 2 names).
    pub name: String,
    /// Element datatype.
    pub dtype: ElemType,
    /// Distance metric.
    pub metric: Metric,
    /// Dimensionality.
    pub dim: usize,
    /// Number of database vectors.
    pub n_vectors: usize,
    /// Number of query vectors.
    pub n_queries: usize,
    /// Number of Gaussian mixture clusters.
    pub n_clusters: usize,
    /// Cluster center spread (range of center coordinates).
    pub center_low: f32,
    /// Upper bound of center coordinates.
    pub center_high: f32,
    /// Standard deviation of per-vector noise, as a fraction of the center
    /// range.
    pub noise_frac: f32,
    /// RNG seed (generation is fully deterministic).
    pub seed: u64,
}

impl SynthSpec {
    /// SIFT-like: L2, UINT8, 128-dim (paper: 1 M vectors / 10 K queries).
    pub fn sift() -> Self {
        SynthSpec {
            name: "SIFT".into(),
            dtype: ElemType::U8,
            metric: Metric::L2,
            dim: 128,
            n_vectors: 20_000,
            n_queries: 100,
            n_clusters: 64,
            center_low: 0.0,
            center_high: 160.0,
            noise_frac: 0.15,
            seed: 0x51F7,
        }
    }

    /// BigANN-like: L2, UINT8, 128-dim (paper: 1 B vectors).
    pub fn bigann() -> Self {
        SynthSpec {
            name: "BigANN".into(),
            n_vectors: 24_000,
            seed: 0xB16A,
            n_clusters: 96,
            ..SynthSpec::sift()
        }
    }

    /// SPACEV-like: L2, INT8, 100-dim (paper: 1 B vectors / 1 K queries).
    pub fn spacev() -> Self {
        SynthSpec {
            name: "SPACEV".into(),
            dtype: ElemType::I8,
            metric: Metric::L2,
            dim: 100,
            n_vectors: 24_000,
            n_queries: 100,
            n_clusters: 80,
            // Positively skewed with bounded magnitude, as in the
            // original SPACEV embeddings: the shared sign/magnitude bits
            // give the 2-3 bit common prefix the paper's Table 5 exploits
            // (sortable encodings stay within 0b10xx_xxxx).
            center_low: 12.0,
            center_high: 26.0,
            noise_frac: 0.18,
            seed: 0x59AC,
        }
    }

    /// DEEP-like: L2, FP32, 96-dim, unit-normalized CNN descriptors
    /// (paper: 1 B vectors / 10 K queries).
    pub fn deep() -> Self {
        SynthSpec {
            name: "DEEP".into(),
            dtype: ElemType::F32,
            metric: Metric::L2,
            dim: 96,
            n_vectors: 20_000,
            n_queries: 100,
            n_clusters: 64,
            center_low: -0.25,
            center_high: 0.25,
            noise_frac: 0.1,
            seed: 0xDEE9,
        }
    }

    /// GloVe-like: IP, FP32, 100-dim word embeddings
    /// (paper: 1.2 M vectors / 1 K queries).
    pub fn glove() -> Self {
        SynthSpec {
            name: "GloVe".into(),
            dtype: ElemType::F32,
            metric: Metric::Ip,
            dim: 100,
            n_vectors: 20_000,
            n_queries: 100,
            n_clusters: 72,
            center_low: -2.0,
            center_high: 2.0,
            noise_frac: 0.15,
            seed: 0x6107E,
        }
    }

    /// Txt2Img-like: IP, FP32, 200-dim cross-modal embeddings
    /// (paper: 1 B vectors / 10 K queries).
    pub fn txt2img() -> Self {
        SynthSpec {
            name: "Txt2Img".into(),
            dtype: ElemType::F32,
            metric: Metric::Ip,
            dim: 200,
            n_vectors: 12_000,
            n_queries: 64,
            n_clusters: 48,
            center_low: -0.5,
            center_high: 0.5,
            noise_frac: 0.12,
            seed: 0x7272,
        }
    }

    /// GIST-like: L2, FP32, 960-dim global image descriptors in [0, 1]
    /// (paper: 1 M vectors / 1 K queries).
    pub fn gist() -> Self {
        SynthSpec {
            name: "GIST".into(),
            dtype: ElemType::F32,
            metric: Metric::L2,
            dim: 960,
            n_vectors: 6_000,
            n_queries: 40,
            n_clusters: 32,
            center_low: 0.02,
            center_high: 0.8,
            noise_frac: 0.08,
            seed: 0x6157,
        }
    }

    /// All seven Table 2 workloads, in the paper's order.
    pub fn all_paper_datasets() -> Vec<SynthSpec> {
        vec![
            SynthSpec::sift(),
            SynthSpec::bigann(),
            SynthSpec::spacev(),
            SynthSpec::deep(),
            SynthSpec::glove(),
            SynthSpec::txt2img(),
            SynthSpec::gist(),
        ]
    }

    /// Override the database/query sizes (for tests and quick runs).
    pub fn scaled(mut self, n_vectors: usize, n_queries: usize) -> Self {
        self.n_vectors = n_vectors;
        self.n_queries = n_queries;
        self.n_clusters = self.n_clusters.min(n_vectors.max(1));
        self
    }

    /// Override the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Override the element datatype (e.g. FP16/BF16 variants of the
    /// FP32 workloads — the NDP unit supports them natively, §5.1).
    pub fn with_dtype(mut self, dtype: ElemType) -> Self {
        self.dtype = dtype;
        self
    }

    /// Generate the database and query set.
    pub fn generate(&self) -> (Dataset, Vec<Vec<f32>>) {
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let range = self.center_high - self.center_low;
        let sigma = range * self.noise_frac;

        // Cluster centers.
        let centers: Vec<Vec<f32>> = (0..self.n_clusters)
            .map(|_| {
                (0..self.dim)
                    .map(|_| rng.gen_range(self.center_low..self.center_high))
                    .collect()
            })
            .collect();

        // Database vectors.
        let mut values = Vec::with_capacity(self.n_vectors * self.dim);
        for i in 0..self.n_vectors {
            let c = &centers[i % self.n_clusters];
            #[allow(clippy::needless_range_loop)] // indexed dimension-range loops read clearer here
            for d in 0..self.dim {
                values.push(c[d] + gaussian(&mut rng) * sigma);
            }
        }
        let data =
            Dataset::from_values(self.name.clone(), self.dtype, self.metric, self.dim, values);

        // Queries: perturbed database vectors.
        let mut queries = Vec::with_capacity(self.n_queries);
        for _ in 0..self.n_queries {
            let base = rng.gen_range(0..self.n_vectors.max(1));
            let mut q: Vec<f32> = data
                .vector(base)
                .iter()
                .map(|&v| v + gaussian(&mut rng) * sigma * 0.5)
                .collect();
            self.metric.normalize_for_search(&mut q);
            queries.push(q);
        }
        (data, queries)
    }

    /// Generate only the database (convenience for benchmarks).
    pub fn generate_dataset(&self) -> Dataset {
        self.generate().0
    }
}

/// Standard normal sample via Box–Muller.
fn gaussian<R: Rng>(rng: &mut R) -> f32 {
    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
    let u2: f32 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_generation() {
        let (a, qa) = SynthSpec::sift().scaled(100, 5).generate();
        let (b, qb) = SynthSpec::sift().scaled(100, 5).generate();
        assert_eq!(a.vector(7), b.vector(7));
        assert_eq!(qa[3], qb[3]);
    }

    #[test]
    fn different_seeds_differ() {
        let (a, _) = SynthSpec::sift().scaled(100, 5).generate();
        let (b, _) = SynthSpec::sift().scaled(100, 5).with_seed(99).generate();
        assert_ne!(a.vector(0), b.vector(0));
    }

    #[test]
    fn shapes_match_spec() {
        for spec in SynthSpec::all_paper_datasets() {
            let s = spec.scaled(50, 4);
            let (d, q) = s.generate();
            assert_eq!(d.len(), 50, "{}", s.name);
            assert_eq!(q.len(), 4);
            assert_eq!(d.dim(), s.dim);
            assert_eq!(d.dtype(), s.dtype);
        }
    }

    #[test]
    fn u8_values_in_range() {
        let (d, _) = SynthSpec::sift().scaled(200, 1).generate();
        for v in d.iter().flatten() {
            assert!((0.0..=255.0).contains(v));
        }
    }

    #[test]
    fn i8_values_in_range() {
        let (d, _) = SynthSpec::spacev().scaled(200, 1).generate();
        for v in d.iter().flatten() {
            assert!((-128.0..=127.0).contains(v));
        }
    }

    #[test]
    fn queries_have_near_neighbors() {
        let (d, q) = SynthSpec::deep().scaled(500, 10).generate();
        // The query's nearest DB vector should be far closer than a random
        // pair, since queries perturb DB vectors.
        let m = d.metric();
        for query in &q {
            let min = (0..d.len())
                .map(|i| m.distance(d.vector(i), query))
                .fold(f32::INFINITY, f32::min);
            let random = m.distance(d.vector(0), d.vector(250));
            assert!(min <= random.abs() + 1e-3);
        }
    }

    #[test]
    fn clustered_structure_exists() {
        // Vectors in the same cluster (i, i + n_clusters) should be closer
        // on average than vectors in different clusters.
        let spec = SynthSpec::deep().scaled(512, 1);
        let (d, _) = spec.generate();
        let k = spec.n_clusters;
        let same = Metric::L2.distance(d.vector(0), d.vector(k));
        let diff = Metric::L2.distance(d.vector(0), d.vector(1));
        assert!(same < diff);
    }
}
