//! Distance metrics (§2.1 of the paper).
//!
//! All metrics are expressed so that **smaller is closer**:
//!
//! * [`Metric::L2`] — squared Euclidean distance (the square root is
//!   monotone and omitted, as in FAISS).
//! * [`Metric::Ip`] — negated inner product, `−Σ aᵢbᵢ`.
//! * [`Metric::Cosine`] — negated cosine similarity. The paper normalizes
//!   vectors during preprocessing, after which cosine equals [`Metric::Ip`];
//!   [`Metric::normalize_for_search`] performs that preprocessing.

/// Similarity metric, ordered so that smaller distances are closer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Metric {
    /// Squared Euclidean (L2²) distance.
    L2,
    /// Negated inner product.
    Ip,
    /// Negated cosine similarity.
    Cosine,
}

impl Metric {
    /// Distance between two vectors.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths (debug builds).
    pub fn distance(self, a: &[f32], b: &[f32]) -> f32 {
        debug_assert_eq!(a.len(), b.len(), "dimension mismatch");
        match self {
            Metric::L2 => l2_squared(a, b),
            Metric::Ip => -dot(a, b),
            Metric::Cosine => {
                // Single fused pass: dot, |a|² and |b|² together. Datasets
                // normalize during preprocessing (`searched_as` folds cosine
                // to IP), so this path only runs on raw, un-normalized input.
                let (ab, aa, bb) = dot_and_norms(a, b);
                let na = aa.sqrt();
                let nb = bb.sqrt();
                if na == 0.0 || nb == 0.0 {
                    0.0
                } else {
                    -ab / (na * nb)
                }
            }
        }
    }

    /// The metric actually used at search time after preprocessing:
    /// cosine becomes inner product on normalized vectors.
    pub fn searched_as(self) -> Metric {
        match self {
            Metric::Cosine => Metric::Ip,
            m => m,
        }
    }

    /// Preprocess a vector for search under this metric (normalizes for
    /// cosine; identity otherwise).
    pub fn normalize_for_search(self, v: &mut [f32]) {
        if self == Metric::Cosine {
            let n = dot(v, v).sqrt();
            if n > 0.0 {
                for x in v.iter_mut() {
                    *x /= n;
                }
            }
        }
    }

    /// An upper bound usable as the "no threshold yet" sentinel.
    pub fn infinity(self) -> f32 {
        f32::INFINITY
    }
}

impl std::fmt::Display for Metric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Metric::L2 => "L2",
            Metric::Ip => "IP",
            Metric::Cosine => "COS",
        };
        f.write_str(s)
    }
}

/// Squared Euclidean distance.
///
/// Blocked 8-wide loop with four independent accumulators so the compiler
/// can keep several FMA chains in flight (auto-vectorizes without a serial
/// reduction dependency).
pub fn l2_squared(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len(), "dimension mismatch");
    let mut acc = [0.0f32; 4];
    let mut ca = a.chunks_exact(8);
    let mut cb = b.chunks_exact(8);
    for (xa, xb) in (&mut ca).zip(&mut cb) {
        for j in 0..4 {
            let d0 = xa[2 * j] - xb[2 * j];
            let d1 = xa[2 * j + 1] - xb[2 * j + 1];
            acc[j] += d0 * d0 + d1 * d1;
        }
    }
    let mut tail = 0.0f32;
    for (x, y) in ca.remainder().iter().zip(cb.remainder()) {
        let d = x - y;
        tail += d * d;
    }
    (acc[0] + acc[1]) + (acc[2] + acc[3]) + tail
}

/// Dot product (same blocked accumulation scheme as [`l2_squared`]).
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len(), "dimension mismatch");
    let mut acc = [0.0f32; 4];
    let mut ca = a.chunks_exact(8);
    let mut cb = b.chunks_exact(8);
    for (xa, xb) in (&mut ca).zip(&mut cb) {
        for j in 0..4 {
            acc[j] += xa[2 * j] * xb[2 * j] + xa[2 * j + 1] * xb[2 * j + 1];
        }
    }
    let mut tail = 0.0f32;
    for (x, y) in ca.remainder().iter().zip(cb.remainder()) {
        tail += x * y;
    }
    (acc[0] + acc[1]) + (acc[2] + acc[3]) + tail
}

/// Fused `(a·b, a·a, b·b)` in one pass over the inputs — the cosine path
/// needs all three, and separate `dot` calls would stream both vectors
/// through the cache three times.
fn dot_and_norms(a: &[f32], b: &[f32]) -> (f32, f32, f32) {
    debug_assert_eq!(a.len(), b.len(), "dimension mismatch");
    let mut ab = [0.0f32; 4];
    let mut aa = [0.0f32; 4];
    let mut bb = [0.0f32; 4];
    let mut ca = a.chunks_exact(8);
    let mut cb = b.chunks_exact(8);
    for (xa, xb) in (&mut ca).zip(&mut cb) {
        for j in 0..4 {
            let (a0, a1) = (xa[2 * j], xa[2 * j + 1]);
            let (b0, b1) = (xb[2 * j], xb[2 * j + 1]);
            ab[j] += a0 * b0 + a1 * b1;
            aa[j] += a0 * a0 + a1 * a1;
            bb[j] += b0 * b0 + b1 * b1;
        }
    }
    let (mut tab, mut taa, mut tbb) = (0.0f32, 0.0f32, 0.0f32);
    for (x, y) in ca.remainder().iter().zip(cb.remainder()) {
        tab += x * y;
        taa += x * x;
        tbb += y * y;
    }
    (
        (ab[0] + ab[1]) + (ab[2] + ab[3]) + tab,
        (aa[0] + aa[1]) + (aa[2] + aa[3]) + taa,
        (bb[0] + bb[1]) + (bb[2] + bb[3]) + tbb,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn l2_of_identical_is_zero() {
        let v = [1.0, -2.0, 3.5];
        assert_eq!(Metric::L2.distance(&v, &v), 0.0);
    }

    #[test]
    fn l2_known_value() {
        // Paper §4: distance between (1,2,6,-1)... simplest check:
        // d²((1,2),(4,-2)) = 9 + 16 = 25.
        assert_eq!(Metric::L2.distance(&[1.0, 2.0], &[4.0, -2.0]), 25.0);
    }

    #[test]
    fn ip_smaller_is_closer() {
        let q = [1.0, 1.0];
        let near = [5.0, 5.0];
        let far = [0.1, 0.1];
        assert!(Metric::Ip.distance(&q, &near) < Metric::Ip.distance(&q, &far));
    }

    #[test]
    fn cosine_equals_ip_after_normalization() {
        let mut a = vec![3.0, 4.0];
        let mut b = vec![5.0, 12.0];
        let cos = Metric::Cosine.distance(&a, &b);
        Metric::Cosine.normalize_for_search(&mut a);
        Metric::Cosine.normalize_for_search(&mut b);
        let ip = Metric::Ip.distance(&a, &b);
        assert!((cos - ip).abs() < 1e-6);
    }

    #[test]
    fn cosine_self_is_minus_one() {
        let v = [0.6, 0.8];
        assert!((Metric::Cosine.distance(&v, &v) + 1.0).abs() < 1e-6);
    }

    #[test]
    fn searched_as_folds_cosine() {
        assert_eq!(Metric::Cosine.searched_as(), Metric::Ip);
        assert_eq!(Metric::L2.searched_as(), Metric::L2);
        assert_eq!(Metric::Ip.searched_as(), Metric::Ip);
    }

    proptest! {
        #[test]
        fn l2_symmetry(a in proptest::collection::vec(-100.0f32..100.0, 8),
                       b in proptest::collection::vec(-100.0f32..100.0, 8)) {
            prop_assert_eq!(Metric::L2.distance(&a, &b), Metric::L2.distance(&b, &a));
        }

        #[test]
        fn l2_nonnegative(a in proptest::collection::vec(-100.0f32..100.0, 8),
                          b in proptest::collection::vec(-100.0f32..100.0, 8)) {
            prop_assert!(Metric::L2.distance(&a, &b) >= 0.0);
        }

        #[test]
        fn cosine_bounded(a in proptest::collection::vec(-100.0f32..100.0, 8),
                          b in proptest::collection::vec(-100.0f32..100.0, 8)) {
            let d = Metric::Cosine.distance(&a, &b);
            prop_assert!((-1.0001..=1.0001).contains(&d));
        }
    }
}
