//! Dataset container: canonical values plus raw storage bit patterns.

use crate::dtype::ElemType;
use crate::metric::Metric;

/// An in-memory vector dataset.
///
/// Stores each element twice: the canonical `f32` value (for distance
/// computation) and the raw storage bit pattern of the declared
/// [`ElemType`] (for bit-level early termination). The two are kept
/// consistent by construction: values are always `dtype.decode(raw)`.
#[derive(Debug, Clone)]
pub struct Dataset {
    name: String,
    dtype: ElemType,
    metric: Metric,
    dim: usize,
    values: Vec<f32>,
    raw: Vec<u32>,
}

impl Dataset {
    /// Build a dataset from canonical values, quantizing each element to
    /// `dtype`. For [`Metric::Cosine`] the vectors are normalized first
    /// (the paper's preprocessing) and the search metric becomes IP.
    ///
    /// # Panics
    ///
    /// Panics if `values.len()` is not a multiple of `dim`.
    pub fn from_values(
        name: impl Into<String>,
        dtype: ElemType,
        metric: Metric,
        dim: usize,
        mut values: Vec<f32>,
    ) -> Self {
        assert!(dim > 0, "dimension must be positive");
        assert!(
            values.len().is_multiple_of(dim),
            "value count {} is not a multiple of dim {}",
            values.len(),
            dim
        );
        if metric == Metric::Cosine {
            for chunk in values.chunks_mut(dim) {
                metric.normalize_for_search(chunk);
            }
        }
        let raw: Vec<u32> = values.iter().map(|&v| dtype.encode(v)).collect();
        // Re-decode so values match storage precision exactly.
        let values: Vec<f32> = raw.iter().map(|&r| dtype.decode(r)).collect();
        // Search under folded cosine (= IP) is only correct on unit
        // vectors; verify the normalization survived storage quantization.
        // F32 round-trips exactly, so the tolerance there is tight; other
        // dtypes are checked loosely (quantization perturbs the norm).
        #[cfg(debug_assertions)]
        if metric == Metric::Cosine {
            let tol = if dtype == ElemType::F32 { 1e-4 } else { 0.12 };
            for (i, chunk) in values.chunks(dim).enumerate() {
                let n2: f32 = crate::metric::dot(chunk, chunk);
                debug_assert!(
                    n2 == 0.0 || (n2 - 1.0).abs() < tol,
                    "cosine preprocessing left vector {i} with norm² {n2}"
                );
            }
        }
        Dataset {
            name: name.into(),
            dtype,
            metric: metric.searched_as(),
            dim,
            values,
            raw,
        }
    }

    /// Reconstruct a dataset from raw storage words (snapshot restore).
    ///
    /// Values are re-derived as `dtype.decode(raw)`, so the result is
    /// bit-identical to the dataset the words were taken from — no
    /// re-quantization round trip. `metric` must already be the *search*
    /// metric (cosine is folded to IP before a dataset ever reaches a
    /// snapshot), so no normalization is applied either.
    ///
    /// # Panics
    ///
    /// Panics if `raw.len()` is not a multiple of `dim`, or if `metric`
    /// is not in folded search form.
    pub fn from_raw(
        name: impl Into<String>,
        dtype: ElemType,
        metric: Metric,
        dim: usize,
        raw: Vec<u32>,
    ) -> Self {
        assert!(dim > 0, "dimension must be positive");
        assert!(
            raw.len().is_multiple_of(dim),
            "raw word count {} is not a multiple of dim {}",
            raw.len(),
            dim
        );
        assert_eq!(
            metric,
            metric.searched_as(),
            "from_raw expects the folded search metric"
        );
        let values: Vec<f32> = raw.iter().map(|&r| dtype.decode(r)).collect();
        Dataset {
            name: name.into(),
            dtype,
            metric,
            dim,
            values,
            raw,
        }
    }

    /// Dataset name (e.g. "SIFT").
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Element datatype.
    pub fn dtype(&self) -> ElemType {
        self.dtype
    }

    /// Search-time distance metric (cosine is already folded to IP).
    pub fn metric(&self) -> Metric {
        self.metric
    }

    /// Vector dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of vectors.
    pub fn len(&self) -> usize {
        self.values.len() / self.dim
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Canonical values of vector `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn vector(&self, i: usize) -> &[f32] {
        &self.values[i * self.dim..(i + 1) * self.dim]
    }

    /// Raw storage bit patterns of vector `i` (one LSB-aligned `u32` per
    /// element).
    pub fn raw_vector(&self, i: usize) -> &[u32] {
        &self.raw[i * self.dim..(i + 1) * self.dim]
    }

    /// Size in bytes of one stored vector (natural, untransformed layout).
    pub fn vector_bytes(&self) -> usize {
        self.dim * self.dtype.bytes()
    }

    /// Number of 64 B lines one vector occupies in the natural layout.
    pub fn vector_lines(&self) -> usize {
        self.vector_bytes().div_ceil(64)
    }

    /// Iterate over vectors as value slices.
    pub fn iter(&self) -> impl Iterator<Item = &[f32]> + '_ {
        self.values.chunks(self.dim)
    }

    /// Distance between stored vector `i` and `query`.
    pub fn distance_to(&self, i: usize, query: &[f32]) -> f32 {
        self.metric.distance(self.vector(i), query)
    }

    /// Append one vector (streaming ingest), quantizing through the
    /// dataset's dtype so values/raw stay consistent. Returns the new id.
    ///
    /// The metric is already the *search* metric (cosine was folded to IP
    /// at construction), so callers streaming into a cosine dataset must
    /// normalize before pushing — [`Metric::normalize_for_search`] under
    /// [`Metric::Ip`] does exactly that.
    ///
    /// # Panics
    ///
    /// Panics if `vector.len() != dim`.
    pub fn push_vector(&mut self, vector: &[f32]) -> usize {
        assert_eq!(
            vector.len(),
            self.dim,
            "pushed vector has dim {}, dataset is {}-dimensional",
            vector.len(),
            self.dim
        );
        let id = self.len();
        for &v in vector {
            let r = self.dtype.encode(v);
            self.raw.push(r);
            self.values.push(self.dtype.decode(r));
        }
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Dataset {
        Dataset::from_values(
            "t",
            ElemType::U8,
            Metric::L2,
            2,
            vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0],
        )
    }

    #[test]
    fn shape_accessors() {
        let d = small();
        assert_eq!(d.len(), 3);
        assert_eq!(d.dim(), 2);
        assert!(!d.is_empty());
        assert_eq!(d.vector(1), &[3.0, 4.0]);
        assert_eq!(d.raw_vector(2), &[5, 6]);
        assert_eq!(d.vector_bytes(), 2);
        assert_eq!(d.vector_lines(), 1);
    }

    #[test]
    fn quantization_applied() {
        let d = Dataset::from_values("q", ElemType::U8, Metric::L2, 1, vec![2.7, 300.0]);
        assert_eq!(d.vector(0), &[3.0]);
        assert_eq!(d.vector(1), &[255.0]);
    }

    #[test]
    fn cosine_folds_to_ip_with_normalization() {
        let d = Dataset::from_values(
            "c",
            ElemType::F32,
            Metric::Cosine,
            2,
            vec![3.0, 4.0, 6.0, 8.0],
        );
        assert_eq!(d.metric(), Metric::Ip);
        // Both normalized to (0.6, 0.8).
        assert!((d.vector(0)[0] - 0.6).abs() < 1e-6);
        assert!((d.vector(1)[1] - 0.8).abs() < 1e-6);
    }

    #[test]
    fn values_match_raw_decoding() {
        let d = Dataset::from_values(
            "f16",
            ElemType::F16,
            Metric::L2,
            2,
            vec![0.1, 0.2, 0.3, 0.4],
        );
        for i in 0..d.len() {
            for (v, r) in d.vector(i).iter().zip(d.raw_vector(i)) {
                assert_eq!(*v, ElemType::F16.decode(*r));
            }
        }
    }

    #[test]
    #[should_panic(expected = "multiple of dim")]
    fn bad_shape_panics() {
        Dataset::from_values("bad", ElemType::U8, Metric::L2, 3, vec![1.0; 4]);
    }

    #[test]
    fn push_vector_quantizes_like_construction() {
        let mut d = small();
        let id = d.push_vector(&[7.4, 300.0]);
        assert_eq!(id, 3);
        assert_eq!(d.len(), 4);
        // Same U8 quantization as from_values: round + clamp.
        assert_eq!(d.vector(3), &[7.0, 255.0]);
        assert_eq!(d.raw_vector(3), &[7, 255]);
        // Pushing the same values as a fresh build yields identical bytes.
        let rebuilt = Dataset::from_values(
            "t",
            ElemType::U8,
            Metric::L2,
            2,
            vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.4, 300.0],
        );
        for i in 0..4 {
            assert_eq!(d.raw_vector(i), rebuilt.raw_vector(i));
        }
    }

    #[test]
    #[should_panic(expected = "dataset is 2-dimensional")]
    fn push_vector_wrong_dim_panics() {
        small().push_vector(&[1.0, 2.0, 3.0]);
    }

    #[test]
    fn from_raw_round_trips_exactly() {
        let d = Dataset::from_values(
            "rt",
            ElemType::F16,
            Metric::Cosine,
            2,
            vec![0.1, 0.2, 0.3, 0.4],
        );
        let raw: Vec<u32> = (0..d.len())
            .flat_map(|i| d.raw_vector(i).to_vec())
            .collect();
        let r = Dataset::from_raw("rt", d.dtype(), d.metric(), d.dim(), raw);
        assert_eq!(r.metric(), Metric::Ip, "folded metric preserved");
        for i in 0..d.len() {
            assert_eq!(d.raw_vector(i), r.raw_vector(i));
            assert_eq!(d.vector(i), r.vector(i));
        }
    }

    #[test]
    #[should_panic(expected = "folded search metric")]
    fn from_raw_rejects_unfolded_cosine() {
        Dataset::from_raw("bad", ElemType::F32, Metric::Cosine, 2, vec![0, 0]);
    }

    #[test]
    fn gist_like_vector_lines() {
        let d = Dataset::from_values("g", ElemType::F32, Metric::L2, 960, vec![0.0; 960]);
        // 960 × 4 B = 3840 B = 60 lines.
        assert_eq!(d.vector_lines(), 60);
    }
}
