//! Vector datasets, element types, distance metrics, synthetic generators,
//! and ground-truth utilities for the ANSMET reproduction.
//!
//! The paper evaluates seven public datasets (Table 2). Billion-scale
//! originals are not available here, so [`synth`] provides seeded synthetic
//! generators that match each dataset's *metric, element datatype,
//! dimension, and bit-level statistical shape* at a reduced scale — the
//! properties that early-termination effectiveness actually depends on.
//!
//! # Example
//!
//! ```
//! use ansmet_vecdata::{SynthSpec, Metric};
//!
//! let (data, queries) = SynthSpec::sift().scaled(1000, 10).generate();
//! assert_eq!(data.dim(), 128);
//! assert_eq!(data.len(), 1000);
//! assert_eq!(queries.len(), 10);
//! let d = data.metric().distance(data.vector(0), &queries[0]);
//! assert!(d >= 0.0 || data.metric() != Metric::L2);
//! ```

pub mod dataset;
pub mod dtype;
pub mod ground_truth;
pub mod metric;
pub mod quantize;
pub mod recall;
pub mod synth;

pub use dataset::Dataset;
pub use dtype::ElemType;
pub use ground_truth::{brute_force_knn, GroundTruth};
pub use metric::Metric;
pub use quantize::{scalar_quantize, ScalarQuantizer};
pub use recall::recall_at_k;
pub use synth::SynthSpec;
