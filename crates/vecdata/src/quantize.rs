//! Scalar quantization (§4.3): affine conversion of floating-point
//! datasets to low-precision integers, e.g. FP32 → UINT8.
//!
//! The paper notes that early termination "can still estimate the missing
//! bits/elements for the quantized data type, but quantization reduces
//! the effectiveness of prefix elimination" — quantization stretches the
//! value range across the full integer domain, destroying the shared
//! high-bit prefixes. Both properties are exercised by this module's
//! tests.

use crate::dataset::Dataset;
use crate::dtype::ElemType;

/// Affine quantization parameters: `code = round((value − offset) / scale)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScalarQuantizer {
    /// Value mapped to code 0 (unsigned) or the code-domain midpoint
    /// (signed).
    pub offset: f32,
    /// Value units per code step.
    pub scale: f32,
    /// Target integer type.
    pub target: ElemType,
}

impl ScalarQuantizer {
    /// Fit min/max calibration over `data` for `target` (U8 or I8).
    ///
    /// # Panics
    ///
    /// Panics for non-integer targets or an empty dataset.
    pub fn fit(data: &Dataset, target: ElemType) -> Self {
        assert!(
            matches!(target, ElemType::U8 | ElemType::I8),
            "scalar quantization targets integer types"
        );
        assert!(!data.is_empty(), "cannot calibrate on an empty dataset");
        let mut lo = f32::INFINITY;
        let mut hi = f32::NEG_INFINITY;
        for v in data.iter().flatten() {
            lo = lo.min(*v);
            hi = hi.max(*v);
        }
        let span = (hi - lo).max(f32::EPSILON);
        let levels = 255.0;
        ScalarQuantizer {
            offset: if target == ElemType::U8 {
                lo
            } else {
                (lo + hi) * 0.5
            },
            scale: span / levels,
            target,
        }
    }

    /// Quantize one value to the code domain (as the canonical value of
    /// the integer code).
    pub fn quantize(&self, v: f32) -> f32 {
        let code = (v - self.offset) / self.scale;
        self.target.decode(self.target.encode(code))
    }

    /// Map a query into the code domain so distances compare against the
    /// quantized dataset (codes kept as real numbers — the query is not
    /// rounded, as in standard asymmetric scalar quantization).
    pub fn quantize_query(&self, q: &[f32]) -> Vec<f32> {
        q.iter().map(|&v| (v - self.offset) / self.scale).collect()
    }

    /// Reconstruct the approximate original value of a code.
    pub fn dequantize(&self, code: f32) -> f32 {
        code * self.scale + self.offset
    }
}

/// Quantize a whole dataset to `target`, returning the integer dataset
/// (same name, metric, dimensionality) and the calibration.
pub fn scalar_quantize(data: &Dataset, target: ElemType) -> (Dataset, ScalarQuantizer) {
    let sq = ScalarQuantizer::fit(data, target);
    let values: Vec<f32> = data
        .iter()
        .flatten()
        .map(|&v| (v - sq.offset) / sq.scale)
        .collect();
    let q = Dataset::from_values(
        format!("{}-{}", data.name(), target),
        target,
        data.metric(),
        data.dim(),
        values,
    );
    (q, sq)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ground_truth::brute_force_knn;
    use crate::recall::recall_at_k;
    use crate::synth::SynthSpec;

    #[test]
    fn roundtrip_error_bounded_by_one_step() {
        let (data, _) = SynthSpec::deep().scaled(200, 1).generate();
        let sq = ScalarQuantizer::fit(&data, ElemType::U8);
        for v in data.iter().flatten().take(2000) {
            let rec = sq.dequantize(sq.quantize(*v));
            assert!(
                (rec - v).abs() <= sq.scale * 0.51,
                "value {v} reconstructed to {rec} (step {})",
                sq.scale
            );
        }
    }

    #[test]
    fn quantized_search_preserves_most_neighbors() {
        let (data, queries) = SynthSpec::deep().scaled(500, 8).generate();
        let (qdata, sq) = scalar_quantize(&data, ElemType::U8);
        assert_eq!(qdata.dtype(), ElemType::U8);
        let mut total = 0.0;
        for q in &queries {
            let (truth, _) = brute_force_knn(&data, q, 10);
            let (approx, _) = brute_force_knn(&qdata, &sq.quantize_query(q), 10);
            total += recall_at_k(&approx, &truth, 10);
        }
        let recall = total / queries.len() as f64;
        assert!(recall >= 0.8, "8-bit scalar quantization recall {recall}");
    }

    #[test]
    fn signed_target_centers_codes() {
        let (data, _) = SynthSpec::glove().scaled(200, 1).generate();
        let (qdata, _) = scalar_quantize(&data, ElemType::I8);
        let mean: f32 = qdata.iter().flatten().sum::<f32>() / (qdata.len() * qdata.dim()) as f32;
        assert!(
            mean.abs() < 32.0,
            "signed codes should straddle zero: {mean}"
        );
    }

    #[test]
    fn quantization_destroys_common_prefixes() {
        // §4.3: the stretched code range removes the shared high bits that
        // prefix elimination exploits — u8 codes span nearly 0..255.
        let (data, _) = SynthSpec::gist().scaled(300, 1).generate();
        let (qdata, _) = scalar_quantize(&data, ElemType::U8);
        let mut lo = 255.0f32;
        let mut hi = 0.0f32;
        for v in qdata.iter().flatten() {
            lo = lo.min(*v);
            hi = hi.max(*v);
        }
        assert!(
            lo < 16.0 && hi > 239.0,
            "codes must span the range: [{lo}, {hi}]"
        );
    }
}
