//! Exact k-nearest-neighbor ground truth via brute force.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::dataset::Dataset;

/// Exact top-k results for a set of queries: `ids[q]` are the indices of
/// the k closest database vectors to query `q`, closest first.
#[derive(Debug, Clone, PartialEq)]
pub struct GroundTruth {
    /// Neighbor ids per query, closest first.
    pub ids: Vec<Vec<usize>>,
    /// Matching distances per query.
    pub distances: Vec<Vec<f32>>,
}

#[derive(Debug, PartialEq)]
struct HeapItem {
    dist: f32,
    id: usize,
}

impl Eq for HeapItem {}

impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap by distance; ties by id for determinism.
        self.dist
            .partial_cmp(&other.dist)
            .unwrap_or(Ordering::Equal)
            .then(self.id.cmp(&other.id))
    }
}

impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Exact top-`k` of `query` against every vector in `data`.
///
/// Returns `(ids, distances)` sorted closest-first. `k` is clamped to the
/// dataset size.
pub fn brute_force_knn(data: &Dataset, query: &[f32], k: usize) -> (Vec<usize>, Vec<f32>) {
    let k = k.min(data.len());
    let mut heap: BinaryHeap<HeapItem> = BinaryHeap::with_capacity(k + 1);
    for i in 0..data.len() {
        let dist = data.distance_to(i, query);
        if heap.len() < k {
            heap.push(HeapItem { dist, id: i });
        } else if let Some(top) = heap.peek() {
            if dist < top.dist {
                heap.pop();
                heap.push(HeapItem { dist, id: i });
            }
        }
    }
    let mut items: Vec<HeapItem> = heap.into_vec();
    items.sort();
    let ids = items.iter().map(|x| x.id).collect();
    let distances = items.iter().map(|x| x.dist).collect();
    (ids, distances)
}

impl GroundTruth {
    /// Compute exact ground truth for all `queries`.
    pub fn compute(data: &Dataset, queries: &[Vec<f32>], k: usize) -> Self {
        let mut ids = Vec::with_capacity(queries.len());
        let mut distances = Vec::with_capacity(queries.len());
        for q in queries {
            let (i, d) = brute_force_knn(data, q, k);
            ids.push(i);
            distances.push(d);
        }
        GroundTruth { ids, distances }
    }

    /// Number of queries covered.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether there are no queries.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dtype::ElemType;
    use crate::metric::Metric;
    use crate::synth::SynthSpec;

    #[test]
    fn exact_on_tiny_dataset() {
        let data =
            Dataset::from_values("t", ElemType::F32, Metric::L2, 1, vec![0.0, 10.0, 3.0, 7.0]);
        let (ids, dists) = brute_force_knn(&data, &[2.9], 2);
        assert_eq!(ids, vec![2, 0]);
        assert!((dists[0] - 0.01).abs() < 1e-4);
    }

    #[test]
    fn k_clamped_to_len() {
        let data = Dataset::from_values("t", ElemType::F32, Metric::L2, 1, vec![0.0, 1.0]);
        let (ids, _) = brute_force_knn(&data, &[0.0], 10);
        assert_eq!(ids.len(), 2);
    }

    #[test]
    fn results_sorted_ascending() {
        let (data, queries) = SynthSpec::sift().scaled(300, 3).generate();
        for q in &queries {
            let (_, d) = brute_force_knn(&data, q, 10);
            for w in d.windows(2) {
                assert!(w[0] <= w[1]);
            }
        }
    }

    #[test]
    fn ground_truth_matches_direct_call() {
        let (data, queries) = SynthSpec::deep().scaled(200, 4).generate();
        let gt = GroundTruth::compute(&data, &queries, 5);
        assert_eq!(gt.len(), 4);
        let (ids0, _) = brute_force_knn(&data, &queries[0], 5);
        assert_eq!(gt.ids[0], ids0);
    }

    #[test]
    fn ip_metric_picks_largest_dot() {
        let data = Dataset::from_values(
            "ip",
            ElemType::F32,
            Metric::Ip,
            2,
            vec![1.0, 0.0, 10.0, 10.0, -5.0, -5.0],
        );
        let (ids, _) = brute_force_knn(&data, &[1.0, 1.0], 1);
        assert_eq!(ids, vec![1]);
    }
}
