//! Experiment drivers regenerating every table and figure of the paper's
//! evaluation (§7). Each function returns a rendered text report; the
//! `experiments` binary in `ansmet-bench` dispatches them.
//!
//! Absolute numbers differ from the paper (synthetic, scaled datasets on
//! a from-scratch simulator); the reproduced quantities are the *shapes*:
//! which design wins, by roughly what factor, and where the crossovers
//! fall. `EXPERIMENTS.md` records paper-vs-measured for each entry.

mod ablation;
mod faults;
mod figures;
mod tables;
mod trace;

pub use ablation::ablation;
pub use faults::faults;
pub use figures::{fig1, fig10, fig11, fig12, fig3, fig6, fig7, fig8, fig9, loadbal};
pub use tables::{table2, table3, table4, table5};
pub use trace::{trace, trace_bundle, TraceBundle, TRACED_QUERIES};

use ansmet_vecdata::SynthSpec;

/// Experiment scale: quick (CI-sized) or full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Small datasets, few queries — minutes on a laptop.
    Quick,
    /// The full synthetic sizes (Table 2 scaled) — tens of minutes.
    Full,
}

impl Scale {
    /// Scale a dataset spec to this experiment size.
    pub fn spec(self, base: SynthSpec) -> SynthSpec {
        match self {
            Scale::Quick => {
                let n = (base.n_vectors / 10).clamp(400, 2_000);
                base.scaled(n, 3)
            }
            Scale::Full => {
                let q = base.n_queries.min(8);
                let n = base.n_vectors;
                base.scaled(n, q)
            }
        }
    }

    /// The datasets evaluated at this scale (all seven at full scale; a
    /// representative trio quick).
    pub fn datasets(self) -> Vec<SynthSpec> {
        match self {
            Scale::Quick => vec![
                self.spec(SynthSpec::sift()),
                self.spec(SynthSpec::deep()),
                self.spec(SynthSpec::gist()),
            ],
            Scale::Full => SynthSpec::all_paper_datasets()
                .into_iter()
                .map(|s| self.spec(s))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_scale_is_small() {
        let s = Scale::Quick.spec(SynthSpec::sift());
        assert!(s.n_vectors <= 2000);
        assert_eq!(s.n_queries, 3);
    }

    #[test]
    fn dataset_lists() {
        assert_eq!(Scale::Quick.datasets().len(), 3);
        assert_eq!(Scale::Full.datasets().len(), 7);
    }
}
