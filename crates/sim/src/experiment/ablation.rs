//! Ablation study over the design choices DESIGN.md calls out: each row
//! removes or swaps one mechanism of the full NDP-ETOpt system and
//! reports the impact on latency and traffic (DEEP dataset).

use ansmet_vecdata::SynthSpec;

use crate::design::Design;
use crate::experiment::Scale;
use crate::report::{speedup, Table};
use crate::timing::run_design_shared;
use crate::workload::Workload;
use crate::SystemConfig;

/// Run the ablation table.
pub fn ablation(scale: Scale) -> String {
    let spec = scale.spec(SynthSpec::deep());
    let wl = Workload::prepare_shared(&spec, 10, None);
    let full_cfg = SystemConfig::default();
    let full = run_design_shared(Design::NdpEtOpt, &wl, &full_cfg);
    let norm = full.total_cycles as f64;
    let norm_lines = full.total_lines() as f64;

    let mut t = Table::new(
        format!("Ablation: NDP-ETOpt on {} (1.00 = full system)", wl.name),
        &["variant", "rel. latency", "rel. traffic", "what it shows"],
    );
    let mut row = |label: &str, design: Design, cfg: &SystemConfig, note: &str| {
        let r = run_design_shared(design, &wl, cfg);
        t.row(vec![
            label.to_string(),
            speedup(r.total_cycles as f64 / norm),
            speedup(r.total_lines() as f64 / norm_lines),
            note.to_string(),
        ]);
    };

    row("full system", Design::NdpEtOpt, &full_cfg, "baseline");
    row(
        "no prefix elimination",
        Design::NdpEtDual,
        &full_cfg,
        "Fig.4 contribution",
    );
    row(
        "no dual granularity",
        Design::NdpEt,
        &full_cfg,
        "§4.2 dual-fetch contribution",
    );
    row(
        "no early termination",
        Design::NdpBase,
        &full_cfg,
        "§4 contribution",
    );
    row(
        "bit-serial steps",
        Design::NdpBitEt,
        &full_cfg,
        "vs BitNN-style fetch",
    );
    row(
        "dimension-only ET",
        Design::NdpDimEt,
        &full_cfg,
        "vs prior partial-dimension work",
    );
    let no_repl = SystemConfig {
        replicate_hot: false,
        ..SystemConfig::default()
    };
    row(
        "no hot replication",
        Design::NdpEtOpt,
        &no_repl,
        "§5.3 load balancing",
    );
    row(
        "conventional polling",
        Design::NdpEtOpt,
        &SystemConfig::default().with_conventional_polling(),
        "§5.4 adaptive polling",
    );
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablation_has_all_rows() {
        let s = ablation(Scale::Quick);
        for label in [
            "full system",
            "no prefix elimination",
            "no early termination",
            "no hot replication",
            "conventional polling",
        ] {
            assert!(s.contains(label), "{label} missing");
        }
    }
}
