//! Table experiments (Tables 2–5).

use ansmet_core::{
    EtConfig, EtEngine, EtOracle, FetchSchedule, PrefixSpec, SamplingConfig, SamplingProfile,
    TransformedDataset,
};
use ansmet_index::DistanceOracle;
use ansmet_vecdata::{recall::mean_recall_at_k, SynthSpec};

use crate::design::Design;
use crate::experiment::Scale;
use crate::report::{pct, speedup, Table};
use crate::timing::{run_design, run_design_shared};
use crate::workload::Workload;
use crate::SystemConfig;

/// Table 2 — dataset characteristics (as instantiated at this scale).
pub fn table2(scale: Scale) -> String {
    let mut t = Table::new(
        "Table 2: datasets (synthetic, scaled)",
        &[
            "dataset", "distance", "datatype", "#dims", "#vectors", "#queries",
        ],
    );
    for spec in SynthSpec::all_paper_datasets() {
        let s = scale.spec(spec);
        let (data, queries) = s.generate();
        t.row(vec![
            data.name().to_string(),
            data.metric().to_string(),
            data.dtype().to_string(),
            data.dim().to_string(),
            data.len().to_string(),
            queries.len().to_string(),
        ]);
    }
    t.render()
}

/// Table 3 — ANSMET (NDP-ETOpt) throughput speedup over CPU-Base with
/// 8 / 16 / 32 / 64 NDP units, geomean over the evaluated datasets.
///
/// The paper's scaling comes from many concurrent queries (one per host
/// core) keeping the ranks busy, so this experiment uses the wave-based
/// multi-stream simulator with 16 streams; the CPU baseline throughput is
/// `cores ×` its (contention-modeled) single-stream rate.
pub fn table3(scale: Scale) -> String {
    let mut t = Table::new(
        "Table 3: throughput speedup over CPU-Base by NDP unit count (16 streams)",
        &["units", "geomean speedup", "scaling vs 8 units"],
    );
    // Enough queries to keep all 16 streams busy.
    let workloads: Vec<_> = scale
        .datasets()
        .into_iter()
        .map(|s| {
            let n = s.n_vectors;
            Workload::prepare_shared(&s.scaled(n, 32), 10, None)
        })
        .collect();
    let cfg0 = SystemConfig::default();
    let cpu_qps: Vec<f64> = workloads
        .iter()
        .map(|wl| {
            let r = run_design_shared(Design::CpuBase, wl, &cfg0);
            r.qps(cfg0.dram.clock_mhz) * cfg0.cpu.cores as f64
        })
        .collect();
    let mut at8 = None;
    for units in [8usize, 16, 32, 64] {
        let cfg = SystemConfig::default().with_ndp_units(units);
        let mut geo = 1.0f64;
        for (wl, &base) in workloads.iter().zip(&cpu_qps) {
            let r = crate::throughput::run_design_throughput(Design::NdpEtOpt, wl, &cfg, 16);
            geo *= r.qps(cfg.dram.clock_mhz) / base;
        }
        let g = geo.powf(1.0 / workloads.len().max(1) as f64);
        let base8 = *at8.get_or_insert(g);
        t.row(vec![units.to_string(), speedup(g), speedup(g / base8)]);
    }
    t.render()
}

/// Table 4 — preprocessing time (sampling + layout optimization + data
/// transformation) vs. index construction time, per dataset.
pub fn table4(scale: Scale) -> String {
    let mut t = Table::new(
        "Table 4: preprocessing vs graph construction time (seconds)",
        &["dataset", "preproc (s)", "graph constr (s)", "overhead"],
    );
    for spec in scale.datasets() {
        let wl = Workload::prepare_shared(&spec, 10, Some(10));
        let data = &wl.data;
        let t0 = std::time::Instant::now();
        // The full offline pipeline: sampling, prefix selection, dual
        // schedule optimization, and the physical layout transform.
        let prof = SamplingProfile::build(
            data,
            &SamplingConfig::default().with_samples(100.min(data.len() / 2)),
        );
        let spec_p = PrefixSpec::choose(data, &prof.sample_ids, 0.001);
        let params = ansmet_core::optimize_dual_schedule(
            data.dim(),
            data.dtype().bits(),
            spec_p.len(),
            &prof.et_histogram,
            prof.never_frac,
        );
        let sched = params.schedule(data.dtype(), spec_p.len());
        let transformed = TransformedDataset::build(data, sched);
        let preproc = t0.elapsed().as_secs_f64();
        std::hint::black_box(&transformed);
        t.row(vec![
            wl.name.clone(),
            format!("{preproc:.2}"),
            format!("{:.2}", wl.graph_build_secs),
            pct(preproc / wl.graph_build_secs.max(1e-9)),
        ]);
    }
    t.render()
}

/// Table 5 — impact of the allowed outlier fraction in common-prefix
/// elimination (SPACEV, k = 10): speedup over no-elimination, space
/// saved, extra backup space/accesses, and the accuracy loss when the
/// backup re-check is disabled.
pub fn table5(scale: Scale) -> String {
    let spec = scale.spec(SynthSpec::spacev());
    let wl = Workload::prepare_shared(&spec, 10, None);
    let data = &wl.data;
    let dtype = data.dtype();
    let cfg = SystemConfig::default();
    // Baseline: ET without prefix elimination.
    let base_cycles = {
        let r = run_design_shared(Design::NdpEtDual, &wl, &cfg);
        r.total_cycles as f64
    };

    let mut t = Table::new(
        "Table 5: outlier-aware common prefix elimination (SPACEV, k=10)",
        &[
            "outlier %",
            "prefix bits",
            "speedup",
            "saved space",
            "extra space",
            "extra accesses",
            "recall loss w/o backup",
        ],
    );
    // One owned workload, re-used across outlier fractions: preparation
    // is deterministic, so mutating `outlier_frac` between replays is
    // identical to preparing a fresh workload per fraction.
    let mut wl2 = Workload::prepare_owned(&scale.spec(SynthSpec::spacev()), 10, Some(wl.ef));
    for frac in [0.0, 0.0001, 0.001, 0.01, 0.2] {
        let spec_p = PrefixSpec::choose(data, &wl.profile.sample_ids, frac);
        let stats = spec_p.stats(data);
        // Run NDP-ETOpt with this prefix spec by overriding the workload's
        // outlier fraction.
        wl2.outlier_frac = frac;
        let r = run_design(Design::NdpEtOpt, &wl2, &cfg);
        let extra_accesses =
            r.backup_lines as f64 / (r.effectual_lines + r.ineffectual_lines).max(1) as f64;

        // Accuracy without the backup re-check: run the search through an
        // ET oracle whose engine reports bound distances for outliers.
        let recall_loss = if spec_p.is_disabled() {
            0.0
        } else {
            let n = if dtype.is_float() { 8 } else { 4 };
            let sched = FetchSchedule::uniform_after_prefix(dtype, spec_p.len(), n);
            let engine = EtEngine::new(
                data,
                EtConfig::with_prefix(sched, spec_p.clone()).without_backup(),
            );
            let mut results = Vec::new();
            for q in &wl2.queries {
                let mut oracle = EtOracle::new(&engine);
                let r =
                    wl2.hnsw
                        .as_ref()
                        .expect("hnsw workload")
                        .search(q, 10, wl2.ef, &mut oracle);
                let _ = oracle.comparisons();
                results.push(r.ids());
            }
            let lossy = mean_recall_at_k(&results, &wl2.ground_truth.ids, 10);
            (wl2.recall - lossy).max(0.0)
        };

        t.row(vec![
            format!("{}%", frac * 100.0),
            spec_p.len().to_string(),
            speedup(base_cycles / r.total_cycles as f64),
            pct(stats.saved_space_frac),
            pct(stats.extra_space_frac * stats.saved_space_frac.max(0.01)),
            pct(extra_accesses),
            pct(recall_loss),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_lists_seven() {
        let s = table2(Scale::Quick);
        for name in [
            "SIFT", "BigANN", "SPACEV", "DEEP", "GloVe", "Txt2Img", "GIST",
        ] {
            assert!(s.contains(name), "{name} missing");
        }
    }
}
