//! Robustness experiment (not in the paper): full searches under
//! injected NDP faults, demonstrating the zero-accuracy-loss recovery
//! guarantee and reporting what recovery cost.

use ansmet_faults::{FaultPlan, FaultRates};
use ansmet_host::RetryPolicy;
use ansmet_vecdata::SynthSpec;

use super::Scale;
use crate::config::SystemConfig;
use crate::degraded::run_degraded;
use crate::report::{pct, Table};
use crate::workload::Workload;

/// Fault profiles swept by the experiment.
fn profiles() -> Vec<(&'static str, FaultRates)> {
    let heavy = FaultRates {
        drop_instruction: 0.05,
        stall: 0.10,
        hang: 0.03,
        corrupt_result: 0.08,
        lost_result: 0.05,
        poll_miss: 0.08,
    };
    vec![
        ("none", FaultRates::none()),
        ("mixed", FaultRates::mixed()),
        ("heavy", heavy),
    ]
}

/// Search under injected faults: for each fault profile, every query runs
/// through the degraded-mode NDP path and the resulting top-k is compared
/// against the fault-free run.
pub fn faults(scale: Scale) -> String {
    let spec = scale.spec(SynthSpec::sift());
    let wl = Workload::prepare_shared(&spec, 10, None);
    let cfg = SystemConfig::default();
    let retry = RetryPolicy::default_ndp();
    let ops = wl
        .traces
        .iter()
        .map(|t| t.total_evals() as u64)
        .sum::<u64>()
        / cfg.ndp_units() as u64
        + 16;

    let clean = run_degraded(&wl, &cfg, FaultPlan::none(), retry);
    let mut t = Table::new(
        format!(
            "fault recovery — {} ({} queries)",
            wl.name,
            wl.queries.len()
        ),
        &[
            "profile",
            "injected",
            "timeouts",
            "crc-rej",
            "retries",
            "re-off",
            "fallback",
            "added-cycles",
            "recall",
            "identical",
        ],
    );
    let mut out = String::new();
    for (name, rates) in profiles() {
        let plan = FaultPlan::random(0xA45_5EED, cfg.ndp_units(), ops, rates);
        let run = run_degraded(&wl, &cfg, plan, retry);
        let identical = run.results == clean.results;
        t.row(vec![
            name.to_string(),
            run.report.injected.total().to_string(),
            run.report.timeouts.to_string(),
            run.report.crc_rejections.to_string(),
            run.report.retries.to_string(),
            run.report.reoffloads.to_string(),
            run.report.host_fallbacks.to_string(),
            run.report.added_latency_cycles.to_string(),
            pct(run.recall),
            if identical { "yes" } else { "NO" }.to_string(),
        ]);
        if name == "heavy" {
            out.push_str(&run.report.render("heavy-profile recovery detail"));
            out.push('\n');
        }
    }
    format!("{}\n{out}", t.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faults_experiment_reports_identical_results() {
        let s = faults(Scale::Quick);
        assert!(s.contains("fault recovery"));
        assert!(s.contains("yes"));
        assert!(!s.contains("NO"), "recovery must be lossless:\n{s}");
        assert!(s.contains("heavy-profile recovery detail"));
    }
}
