//! The `trace` experiment: a per-query flight recording of the full
//! ANSMET design (`NdpEtOpt`), exported two ways — a Perfetto-loadable
//! Trace Event JSON of the slowest queries, and a deterministic
//! run-wide metrics snapshot. The text report renders the per-phase
//! cycle-attribution table; span sums are checked against each query's
//! end-to-end cycles before anything is emitted.

use std::fmt::Write as _;

use ansmet_obs::{attribution_check, attribution_table, perfetto_trace_json, MetricsRegistry};
use ansmet_vecdata::SynthSpec;

use crate::design::Design;
use crate::experiment::Scale;
use crate::timing::{run_design_traced, TraceOptions};
use crate::workload::Workload;
use crate::SystemConfig;

/// How many of the slowest queries the Perfetto export carries.
pub const TRACED_QUERIES: usize = 5;

/// Everything the `trace` experiment produces.
#[derive(Debug, Clone)]
pub struct TraceBundle {
    /// Human-readable report (attribution table + metrics table).
    pub report: String,
    /// Perfetto / `chrome://tracing` Trace Event JSON.
    pub perfetto_json: String,
    /// Deterministic run-wide metrics snapshot (JSON).
    pub metrics_json: String,
}

/// Run the trace experiment at `scale`.
///
/// # Panics
///
/// Panics if any recorded query's phase spans fail to sum to its
/// end-to-end cycles (the attribution-exactness contract).
pub fn trace_bundle(scale: Scale) -> TraceBundle {
    let spec = scale.spec(SynthSpec::sift());
    let wl = Workload::prepare_shared(&spec, 10, None);
    let cfg = SystemConfig::default();
    let design = Design::NdpEtOpt;
    let opts = TraceOptions {
        dram_commands: true,
        ..TraceOptions::default()
    };
    let (run, rec) = run_design_traced(design, &wl, &cfg, &opts);

    let slowest = rec.slowest(TRACED_QUERIES);
    if let Err((q, attributed, total)) = attribution_check(&slowest) {
        panic!("query {q}: attributed {attributed} cycles != total {total}");
    }

    let mut report = String::new();
    let _ = writeln!(
        report,
        "trace: {design:?} on {} ({} queries, {} MHz mem clock)",
        spec.name, run.queries, cfg.dram.clock_mhz
    );
    let _ = writeln!(
        report,
        "cycle attribution of the {} slowest queries (phase sums equal \
         end-to-end cycles):",
        slowest.len()
    );
    report.push_str(&attribution_table(&slowest));
    let _ = writeln!(report, "\nrun-wide metrics:");
    report.push_str(&format!("{}", rec.metrics));

    let perfetto_json = perfetto_trace_json(&slowest, cfg.dram.clock_mhz);
    let metrics_json = metrics_envelope(scale, design, run.queries, &rec.metrics);

    TraceBundle {
        report,
        perfetto_json,
        metrics_json,
    }
}

/// Wrap the metrics snapshot in the BENCH artifact envelope.
fn metrics_envelope(
    scale: Scale,
    design: Design,
    queries: usize,
    metrics: &MetricsRegistry,
) -> String {
    let mut s = String::from("{\n");
    let _ = writeln!(s, "  \"experiment\": \"trace\",");
    let _ = writeln!(
        s,
        "  \"scale\": \"{}\",",
        match scale {
            Scale::Quick => "quick",
            Scale::Full => "full",
        }
    );
    let _ = writeln!(s, "  \"design\": \"{design:?}\",");
    let _ = writeln!(s, "  \"queries\": {queries},");
    let body = metrics.to_json();
    let mut lines = body.lines();
    let _ = writeln!(s, "  \"metrics\": {}", lines.next().unwrap_or("{"));
    for line in lines {
        let _ = writeln!(s, "  {line}");
    }
    s.push_str("}\n");
    s
}

/// Text-only entry point used by the generic experiment dispatcher.
pub fn trace(scale: Scale) -> String {
    trace_bundle(scale).report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bundle_is_deterministic_and_well_formed() {
        let a = trace_bundle(Scale::Quick);
        let b = trace_bundle(Scale::Quick);
        assert_eq!(a.report, b.report);
        assert_eq!(a.perfetto_json, b.perfetto_json);
        assert_eq!(a.metrics_json, b.metrics_json);
        assert!(a.report.contains("TOTAL"));
        assert!(a.perfetto_json.contains("\"traceEvents\""));
        assert!(a.metrics_json.contains("\"experiment\": \"trace\""));
        assert!(a.metrics_json.contains("replay.query_cycles"));
        // Balanced JSON delimiters in both artifacts.
        for j in [&a.perfetto_json, &a.metrics_json] {
            assert_eq!(j.matches('{').count(), j.matches('}').count());
            assert_eq!(j.matches('[').count(), j.matches(']').count());
        }
    }
}
