//! Figure experiments (Figs. 1, 3, 6–12 plus the §5.3 load-balance
//! numbers).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use ansmet_core::analysis::{et_frequency_profile, normalized_prefix_entropy_profile};
use ansmet_core::sampling::{kl_divergence, SamplingConfig, SamplingProfile};

/// Smooth a termination histogram with a small binomial kernel so the KL
/// divergence measures distribution *shape* rather than exact-bucket
/// overlap (sampled and true positions differ by a bit or two).
fn smooth(h: &[f64]) -> Vec<f64> {
    let mut out = h.to_vec();
    for _ in 0..2 {
        let prev = out.clone();
        for i in 0..out.len() {
            let l = if i > 0 { prev[i - 1] } else { prev[i] };
            let r = if i + 1 < prev.len() {
                prev[i + 1]
            } else {
                prev[i]
            };
            out[i] = 0.25 * l + 0.5 * prev[i] + 0.25 * r;
        }
    }
    out
}
use ansmet_ndp::PartitionScheme;
use ansmet_vecdata::SynthSpec;

use crate::design::Design;
use crate::energy::SystemEnergyModel;
use crate::experiment::Scale;
use crate::report::{pct, speedup, Table};
use crate::timing::{run_design, run_design_shared};
use crate::workload::{IndexKind, Workload};
use crate::SystemConfig;

/// Fig. 1 — CPU time breakdown of IVF and HNSW on SIFT and GIST:
/// index+sort vs. distance comparison (split into accepted / rejected).
pub fn fig1(scale: Scale) -> String {
    let mut t = Table::new(
        "Fig.1: CPU-Base performance breakdown",
        &[
            "workload",
            "index+sort",
            "dist (accepted)",
            "dist (rejected)",
        ],
    );
    let cfg = SystemConfig::default();
    for (kind, label) in [(IndexKind::Hnsw, "HNSW"), (IndexKind::Ivf, "IVF")] {
        for spec in [scale.spec(SynthSpec::sift()), scale.spec(SynthSpec::gist())] {
            let wl = Workload::prepare_shared_with_index(&spec, 10, None, kind);
            let r = run_design_shared(Design::CpuBase, &wl, &cfg);
            let dist = r.breakdown.dist_comp as f64;
            let other = (r.total_cycles - r.breakdown.dist_comp) as f64;
            let total = r.total_cycles as f64;
            // Attribute distance time by the line split.
            let acc_frac = r.effectual_lines as f64 / r.total_lines().max(1) as f64;
            t.row(vec![
                format!("{label}-{}", wl.name),
                pct(other / total),
                pct(dist * acc_frac / total),
                pct(dist * (1.0 - acc_frac) / total),
            ]);
        }
    }
    t.render()
}

/// Fig. 3 — prefix entropy and early-termination frequency per prefix
/// bit length, on GIST / DEEP / BigANN / SPACEV.
pub fn fig3(scale: Scale) -> String {
    let mut out = String::new();
    for base in [
        SynthSpec::gist(),
        SynthSpec::deep(),
        SynthSpec::bigann(),
        SynthSpec::spacev(),
    ] {
        let spec = scale.spec(base);
        let (data, _) = spec.generate();
        let profile = SamplingProfile::build(
            &data,
            &SamplingConfig::default().with_samples(100.min(data.len() / 2)),
        );
        let entropy = normalized_prefix_entropy_profile(&data, &profile.sample_ids);
        let queries: Vec<Vec<f32>> = profile
            .sample_ids
            .iter()
            .take(20)
            .map(|&i| data.vector(i).to_vec())
            .collect();
        let ids: Vec<usize> = profile
            .sample_ids
            .iter()
            .skip(20)
            .take(40)
            .copied()
            .collect();
        let freq = et_frequency_profile(&data, &ids, &queries, profile.threshold);
        let mut t = Table::new(
            format!("Fig.3: {} prefix profile", data.name()),
            &["prefix bits", "norm. entropy", "ET frequency"],
        );
        let bits = data.dtype().bits() as usize;
        let stride = if bits > 16 { 2 } else { 1 };
        for p in (1..=bits).step_by(stride) {
            t.row(vec![
                p.to_string(),
                format!("{:.3}", entropy[p - 1]),
                format!("{:.3}", freq[p - 1]),
            ]);
        }
        out.push_str(&t.render());
        out.push('\n');
    }
    out
}

/// Fig. 6 — speedups of all nine designs over CPU-Base, for each dataset
/// and k ∈ {1, 5, 10}.
pub fn fig6(scale: Scale, ks: &[usize]) -> String {
    let cfg = SystemConfig::default();
    let mut out = String::new();
    for &k in ks {
        let mut t = Table::new(
            format!("Fig.6: speedup over CPU-Base (k = {k})"),
            &[
                "dataset",
                "CPU-ET",
                "CPU-ETOpt",
                "NDP-Base",
                "NDP-DimET",
                "NDP-BitET",
                "NDP-ET",
                "NDP-ET+Dual",
                "NDP-ETOpt",
            ],
        );
        let mut geo: Vec<f64> = vec![1.0; 8];
        let mut n = 0usize;
        for spec in scale.datasets() {
            let wl = Workload::prepare_shared(&spec, k, None);
            let base = run_design_shared(Design::CpuBase, &wl, &cfg).total_cycles as f64;
            let mut row = vec![wl.name.clone()];
            for (i, d) in Design::all().iter().skip(1).enumerate() {
                let r = run_design_shared(*d, &wl, &cfg);
                let s = base / r.total_cycles as f64;
                geo[i] *= s;
                row.push(speedup(s));
            }
            n += 1;
            t.row(row);
        }
        let mut row = vec!["geomean".to_string()];
        for g in geo {
            row.push(speedup(g.powf(1.0 / n.max(1) as f64)));
        }
        t.row(row);
        out.push_str(&t.render());
        out.push('\n');
    }
    out
}

/// Fig. 7 — system energy of the six Fig. 7 designs, normalized to
/// CPU-Base.
pub fn fig7(scale: Scale) -> String {
    let cfg = SystemConfig::default();
    let model = SystemEnergyModel::default();
    let designs = [
        Design::CpuBase,
        Design::CpuEtOpt,
        Design::NdpBase,
        Design::NdpDimEt,
        Design::NdpBitEt,
        Design::NdpEtOpt,
    ];
    let mut t = Table::new(
        "Fig.7: system energy normalized to CPU-Base",
        &[
            "dataset",
            "CPU-Base",
            "CPU-ETOpt",
            "NDP-Base",
            "NDP-DimET",
            "NDP-BitET",
            "NDP-ETOpt",
        ],
    );
    for spec in scale.datasets() {
        let wl = Workload::prepare_shared(&spec, 10, None);
        let base = model
            .compute(&run_design_shared(Design::CpuBase, &wl, &cfg), &cfg)
            .total_nj();
        let mut row = vec![wl.name.clone()];
        for d in designs {
            let e = model
                .compute(&run_design_shared(d, &wl, &cfg), &cfg)
                .total_nj();
            row.push(format!("{:.3}", e / base));
        }
        t.row(row);
    }
    t.render()
}

/// Fig. 8 — recall@10 vs. QPS for SIFT and GIST under CPU-Base,
/// NDP-Base, and NDP-ETOpt, sweeping the result-queue size k′.
pub fn fig8(scale: Scale) -> String {
    let cfg = SystemConfig::default();
    let mut out = String::new();
    for base_spec in [SynthSpec::sift(), SynthSpec::gist()] {
        let spec = scale.spec(base_spec);
        let mut wl = Workload::prepare_owned(&spec, 10, Some(10));
        let mut t = Table::new(
            format!("Fig.8: recall vs QPS — {}", wl.name),
            &[
                "ef (k')",
                "recall@10",
                "CPU-Base QPS",
                "NDP-Base QPS",
                "NDP-ETOpt QPS",
            ],
        );
        for ef in [10usize, 20, 40, 80, 160] {
            // retrace is deterministic, so the prepared ef=10 traces are
            // already exactly what retrace(10) would rebuild.
            if wl.ef != ef {
                wl.retrace(ef);
            }
            let mut row = vec![ef.to_string(), format!("{:.3}", wl.recall)];
            for d in [Design::CpuBase, Design::NdpBase, Design::NdpEtOpt] {
                let r = run_design(d, &wl, &cfg);
                row.push(format!("{:.0}", r.qps(cfg.dram.clock_mhz)));
            }
            t.row(row);
        }
        out.push_str(&t.render());
        out.push('\n');
    }
    out
}

/// Fig. 9 — per-query latency breakdown on SIFT: CPU-Base, NDP-Base,
/// NDP-ETOpt with conventional 100 ns polling, and with adaptive polling.
/// Normalized to NDP-Base.
pub fn fig9(scale: Scale) -> String {
    let spec = scale.spec(SynthSpec::sift());
    let wl = Workload::prepare_shared(&spec, 10, None);
    let runs = [
        ("CPU-Base", Design::CpuBase, SystemConfig::default()),
        ("NDP-Base", Design::NdpBase, SystemConfig::default()),
        (
            "NDP-ETOpt+ConvPoll",
            Design::NdpEtOpt,
            SystemConfig::default().with_conventional_polling(),
        ),
        (
            "NDP-ETOpt+AdaptPoll",
            Design::NdpEtOpt,
            SystemConfig::default(),
        ),
    ];
    let norm =
        run_design_shared(Design::NdpBase, &wl, &SystemConfig::default()).total_cycles as f64;
    let mut t = Table::new(
        "Fig.9: latency breakdown (normalized to NDP-Base)",
        &[
            "design",
            "traversal",
            "offload",
            "dist comp",
            "result collect",
            "total",
        ],
    );
    for (label, d, cfg) in runs {
        let r = run_design_shared(d, &wl, &cfg);
        let b = r.breakdown;
        t.row(vec![
            label.to_string(),
            format!("{:.3}", b.traversal as f64 / norm),
            format!("{:.3}", b.offload as f64 / norm),
            format!("{:.3}", b.dist_comp as f64 / norm),
            format!("{:.3}", b.result_collect as f64 / norm),
            format!("{:.3}", r.total_cycles as f64 / norm),
        ]);
    }
    t.render()
}

/// Fig. 10 — access traffic split into effectual and ineffectual fetches
/// for the six NDP designs, normalized to NDP-Base.
pub fn fig10(scale: Scale) -> String {
    let cfg = SystemConfig::default();
    let mut t = Table::new(
        "Fig.10: normalized fetched lines (effectual + ineffectual)",
        &[
            "dataset",
            "design",
            "effectual",
            "ineffectual",
            "utilization",
        ],
    );
    for spec in scale.datasets() {
        let wl = Workload::prepare_shared(&spec, 10, None);
        let base = run_design_shared(Design::NdpBase, &wl, &cfg).total_lines() as f64;
        for d in Design::ndp_designs() {
            let r = run_design_shared(d, &wl, &cfg);
            t.row(vec![
                wl.name.clone(),
                d.label().to_string(),
                format!("{:.3}", r.effectual_lines as f64 / base),
                format!(
                    "{:.3}",
                    (r.ineffectual_lines + r.backup_lines) as f64 / base
                ),
                pct(r.fetch_utilization()),
            ]);
        }
    }
    t.render()
}

/// Fig. 11 — KL divergence between the sampled early-termination
/// distribution and the true one, sweeping the sample count and the
/// threshold percentile (DEEP dataset).
pub fn fig11(scale: Scale) -> String {
    let spec = scale.spec(SynthSpec::deep());
    let wl = Workload::prepare_shared(&spec, 10, None);
    let data = &wl.data;
    // "True" distribution: the early-termination positions real queries
    // produce on the full dataset, under the thresholds the search
    // actually carried at each comparison (from the functional traces).
    let bits = data.dtype().bits() as usize;
    let mut truth = vec![0.0f64; bits];
    let mut mass = 0.0;
    let mut probes = 0usize;
    'outer: for (qi, t) in wl.traces.iter().enumerate() {
        for e in t.hops.iter().flat_map(|h| &h.evals) {
            if !e.threshold.is_finite() {
                continue;
            }
            probes += 1;
            if probes > 2000 {
                break 'outer;
            }
            if let Some(p) = ansmet_core::analysis::first_termination_position(
                data,
                e.id,
                &wl.queries[qi],
                e.threshold,
            ) {
                let idx = (p as usize).clamp(1, bits) - 1;
                truth[idx] += 1.0;
                mass += 1.0;
            }
        }
    }
    if mass > 0.0 {
        for v in truth.iter_mut() {
            *v /= mass;
        }
    }

    let mut out = String::new();
    let mut t = Table::new(
        "Fig.11a: KL divergence vs number of sampled vectors (thr = 10%)",
        &["#samples", "KL divergence"],
    );
    for n in [5usize, 10, 50, 100] {
        let prof = SamplingProfile::build(
            data,
            &SamplingConfig::default().with_samples(n.min(data.len() / 2)),
        );
        t.row(vec![
            n.to_string(),
            format!(
                "{:.4}",
                kl_divergence(&smooth(&truth), &smooth(&prof.et_histogram))
            ),
        ]);
    }
    out.push_str(&t.render());
    out.push('\n');

    let mut t = Table::new(
        "Fig.11b: KL divergence vs threshold percentile (100 samples)",
        &["percentile", "KL divergence"],
    );
    for p in [0.02, 0.05, 0.10, 0.20, 0.50] {
        let prof = SamplingProfile::build(
            data,
            &SamplingConfig::default()
                .with_samples(100.min(data.len() / 2))
                .with_percentile(p),
        );
        t.row(vec![
            format!("{:.0}%", p * 100.0),
            format!(
                "{:.4}",
                kl_divergence(&smooth(&truth), &smooth(&prof.et_histogram))
            ),
        ]);
    }
    out.push_str(&t.render());
    out
}

/// Fig. 12 — vector-data partitioning sweep on GIST: Vertical, Hybrid
/// 256 B / 512 B / 1 kB / 2 kB, Horizontal. Normalized to Hybrid 1 kB.
pub fn fig12(scale: Scale) -> String {
    let spec = scale.spec(SynthSpec::gist());
    let wl = Workload::prepare_shared(&spec, 10, None);
    let schemes = [
        ("Vertical", PartitionScheme::Vertical),
        ("Hybrid 256B", PartitionScheme::Hybrid { subvec_bytes: 256 }),
        ("Hybrid 512B", PartitionScheme::Hybrid { subvec_bytes: 512 }),
        ("Hybrid 1kB", PartitionScheme::Hybrid { subvec_bytes: 1024 }),
        ("Hybrid 2kB", PartitionScheme::Hybrid { subvec_bytes: 2048 }),
        ("Horizontal", PartitionScheme::Horizontal),
    ];
    let base = run_design_shared(
        Design::NdpEtOpt,
        &wl,
        &SystemConfig::default().with_partition(PartitionScheme::Hybrid { subvec_bytes: 1024 }),
    );
    let (norm_cycles, norm_lines) = (base.total_cycles as f64, base.total_lines() as f64);
    let mut t = Table::new(
        "Fig.12: NDP-ETOpt by partitioning (GIST, norm. to Hybrid 1kB)",
        &[
            "scheme",
            "single-query latency perf",
            "throughput perf (1/lines)",
        ],
    );
    for (label, scheme) in schemes {
        let r = run_design_shared(
            Design::NdpEtOpt,
            &wl,
            &SystemConfig::default().with_partition(scheme),
        );
        t.row(vec![
            label.to_string(),
            format!("{:.3}", norm_cycles / r.total_cycles as f64),
            format!("{:.3}", norm_lines / r.total_lines() as f64),
        ]);
    }
    t.render()
}

/// §5.3 — load-imbalance ratio with and without hot-vector replication,
/// with uniform and zipf-skewed query mixes (GIST).
pub fn loadbal(scale: Scale) -> String {
    let spec = scale.spec(SynthSpec::gist());
    let mut wl = Workload::prepare_owned(&spec, 10, None);
    let mut t = Table::new(
        "§5.3: rank load imbalance (max / average)",
        &["query mix", "no replication", "with replication"],
    );
    let imbalance = |wl: &Workload, replicate: bool| -> f64 {
        let cfg = SystemConfig {
            replicate_hot: replicate,
            ..SystemConfig::default()
        };
        let r = run_design(Design::NdpEtOpt, wl, &cfg);
        let max = *r.rank_loads.iter().max().unwrap_or(&0) as f64;
        let avg = r.rank_loads.iter().sum::<u64>() as f64 / r.rank_loads.len().max(1) as f64;
        if avg == 0.0 {
            1.0
        } else {
            max / avg
        }
    };
    t.row(vec![
        "uniform".into(),
        format!("{:.2}x", imbalance(&wl, false)),
        format!("{:.2}x", imbalance(&wl, true)),
    ]);

    // Zipf(α = 2) skew: repeat a few queries heavily.
    let mut rng = SmallRng::seed_from_u64(0x21BF);
    let base_queries = wl.queries.clone();
    let mut skewed = Vec::with_capacity(base_queries.len());
    for _ in 0..base_queries.len() {
        // Approximate zipf by inverse-power sampling.
        let u: f64 = rng.gen_range(0.0..1.0f64);
        let idx = ((base_queries.len() as f64).powf(u) as usize - 1).min(base_queries.len() - 1);
        skewed.push(base_queries[idx].clone());
    }
    wl.queries = skewed;
    wl.retrace(wl.ef);
    t.row(vec![
        "zipf (a=2.0)".into(),
        format!("{:.2}x", imbalance(&wl, false)),
        format!("{:.2}x", imbalance(&wl, true)),
    ]);
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig9_runs_quick() {
        let s = fig9(Scale::Quick);
        assert!(s.contains("NDP-ETOpt+AdaptPoll"));
        assert!(s.contains("CPU-Base"));
    }

    #[test]
    fn fig3_has_all_four_datasets() {
        let s = fig3(Scale::Quick);
        for name in ["GIST", "DEEP", "BigANN", "SPACEV"] {
            assert!(s.contains(name), "{name} missing");
        }
    }
}
