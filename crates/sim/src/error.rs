//! The simulator-level error hierarchy.
//!
//! [`AnsmetError`] unifies the per-crate typed errors ([`MemoryError`],
//! [`NdpError`], [`EtError`]) with the fault-recovery conditions the host
//! driver itself raises (poll deadlines, exhausted retry budgets), so
//! recovery code threads one error type through the whole stack.

use std::error::Error;
use std::fmt;

use ansmet_core::EtError;
use ansmet_dram::MemoryError;
use ansmet_ndp::NdpError;

/// Any recoverable error in the simulated ANSMET stack.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AnsmetError {
    /// A memory-system protocol error.
    Memory(MemoryError),
    /// An NDP-unit protocol or data-integrity error.
    Ndp(NdpError),
    /// An evaluation-engine misuse error.
    Et(EtError),
    /// A polled batch missed its completion deadline (stalled or hung
    /// NDP unit).
    DeadlineExceeded {
        /// The rank whose batch timed out.
        rank: usize,
        /// The deadline, in cycles after batch issue.
        deadline: u64,
    },
    /// The bounded retry budget ran out without a healthy completion.
    RetriesExhausted {
        /// The rank the batch was last offloaded to.
        rank: usize,
        /// Retries attempted (not counting the initial offload).
        attempts: u32,
    },
}

impl fmt::Display for AnsmetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnsmetError::Memory(e) => write!(f, "memory: {e}"),
            AnsmetError::Ndp(e) => write!(f, "ndp: {e}"),
            AnsmetError::Et(e) => write!(f, "et: {e}"),
            AnsmetError::DeadlineExceeded { rank, deadline } => {
                write!(
                    f,
                    "rank {rank}: poll deadline of {deadline} cycles exceeded"
                )
            }
            AnsmetError::RetriesExhausted { rank, attempts } => {
                write!(
                    f,
                    "rank {rank}: retry budget exhausted after {attempts} attempts"
                )
            }
        }
    }
}

impl Error for AnsmetError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            AnsmetError::Memory(e) => Some(e),
            AnsmetError::Ndp(e) => Some(e),
            AnsmetError::Et(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MemoryError> for AnsmetError {
    fn from(e: MemoryError) -> Self {
        AnsmetError::Memory(e)
    }
}

impl From<NdpError> for AnsmetError {
    fn from(e: NdpError) -> Self {
        AnsmetError::Ndp(e)
    }
}

impl From<EtError> for AnsmetError {
    fn from(e: EtError) -> Self {
        AnsmetError::Et(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_and_sources() {
        let e: AnsmetError = NdpError::NotConfigured.into();
        assert!(e.to_string().contains("configured"));
        assert!(e.source().is_some());
        let e = AnsmetError::RetriesExhausted {
            rank: 2,
            attempts: 3,
        };
        assert!(e.to_string().contains("exhausted"));
        assert!(e.source().is_none());
    }
}
