//! Shared evaluation of one comparison across sub-vector chunks: local
//! early termination against proportional threshold shares, host-side
//! aggregation of partial bounds, and the residual round that preserves
//! exact accuracy (§5.3). Used by the timing replay and by the empirical
//! layout selection so both see identical fetch behavior.

use ansmet_core::{EtEngine, EtObserver, EtScratch, NoopEtObserver};

/// Per-chunk line counts and the sound rejection verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MultiEval {
    /// Lines fetched per chunk (same order as the input chunks).
    pub lines: Vec<usize>,
    /// Natural-layout backup lines (outlier re-check; charged once).
    pub backup_lines: usize,
    /// Whether the comparison was soundly rejected on bounds alone.
    pub pruned: bool,
    /// Whether a residual round was needed (an extra host round-trip:
    /// the host re-offloads to locally-terminated ranks and re-polls).
    pub resumed: bool,
}

impl MultiEval {
    /// Total lines across chunks plus backups.
    pub fn total_lines(&self) -> usize {
        self.lines.iter().sum::<usize>() + self.backup_lines
    }
}

/// Evaluate vector `id` against `query` split into `chunks` of dimensions.
///
/// Each chunk terminates locally against `threshold × |chunk| / dim`; the
/// summed bounds decide rejection soundly. Chunks whose local bound
/// stopped short resume once with the residual threshold slack; a
/// numerical corner case falls back to the full fetch.
///
/// # Panics
///
/// Panics if chunks are empty or out of range.
pub fn evaluate_chunked(
    engine: &EtEngine<'_>,
    id: usize,
    query: &[f32],
    chunks: &[std::ops::Range<usize>],
    threshold: f32,
    scratch: &mut EtScratch,
) -> MultiEval {
    evaluate_chunked_obs(
        engine,
        id,
        query,
        chunks,
        threshold,
        scratch,
        &mut NoopEtObserver,
    )
}

/// [`evaluate_chunked`] reporting per-chunk termination outcomes to
/// `obs` (see [`EtObserver`]). The observer never affects the result.
///
/// # Panics
///
/// Panics if chunks are empty or out of range.
pub fn evaluate_chunked_obs<O: EtObserver>(
    engine: &EtEngine<'_>,
    id: usize,
    query: &[f32],
    chunks: &[std::ops::Range<usize>],
    threshold: f32,
    scratch: &mut EtScratch,
    obs: &mut O,
) -> MultiEval {
    assert!(!chunks.is_empty(), "need at least one chunk");
    let dim = engine.dataset().dim();
    if chunks.len() == 1 && chunks[0] == (0..dim) {
        let c = engine.evaluate_obs(id, query, threshold, scratch, obs);
        return MultiEval {
            lines: vec![c.lines],
            backup_lines: c.backup_lines,
            pruned: c.pruned,
            resumed: false,
        };
    }

    struct Local {
        lines: usize,
        stopped: bool,
        bound: f64,
        dims: std::ops::Range<usize>,
    }
    let mut bounds_sum = 0.0f64;
    let mut local: Vec<Local> = Vec::with_capacity(chunks.len());
    for dims in chunks {
        let share = threshold * (dims.len() as f32 / dim as f32);
        let c = engine
            .evaluate_range_obs(id, query, dims.clone(), share, scratch, obs)
            .expect("planner chunks are in range");
        bounds_sum += c.final_bound;
        local.push(Local {
            lines: c.lines,
            stopped: c.pruned,
            bound: c.final_bound,
            dims: dims.clone(),
        });
    }
    let mut pruned = false;
    let mut resumed = false;
    if local.iter().any(|l| l.stopped) {
        if bounds_sum < threshold as f64 {
            resumed = true;
            // Residual round: each stopped chunk resumes with the slack
            // the other chunks' returned bounds leave it.
            let old_sum = bounds_sum;
            for l in local.iter_mut().filter(|l| l.stopped) {
                let residual = (threshold as f64 - (old_sum - l.bound)) as f32;
                let c = engine
                    .evaluate_range_obs(id, query, l.dims.clone(), residual, scratch, obs)
                    .expect("planner chunks are in range");
                bounds_sum += c.final_bound - l.bound;
                l.bound = c.final_bound;
                l.lines = l.lines.max(c.lines);
                l.stopped = c.pruned;
            }
        }
        if local.iter().any(|l| l.stopped) {
            if bounds_sum >= threshold as f64 {
                pruned = true;
            } else {
                // Numerical corner: complete the fetch.
                for l in local.iter_mut().filter(|l| l.stopped) {
                    l.lines = engine.config().schedule.total_lines(l.dims.len());
                    l.stopped = false;
                }
            }
        }
    }
    MultiEval {
        lines: local.iter().map(|l| l.lines).collect(),
        backup_lines: 0,
        pruned,
        resumed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ansmet_core::{EtConfig, FetchSchedule};
    use ansmet_vecdata::SynthSpec;

    #[test]
    fn chunked_rejection_is_sound() {
        let (data, queries) = SynthSpec::gist().scaled(120, 2).generate();
        let engine = EtEngine::new(
            &data,
            EtConfig::new(FetchSchedule::uniform(data.dtype(), 8)),
        );
        let chunks: Vec<std::ops::Range<usize>> = (0..4).map(|i| i * 240..(i + 1) * 240).collect();
        let mut scratch = EtScratch::new();
        for q in &queries {
            for id in 0..40 {
                let d = data.distance_to(id, q);
                let m = evaluate_chunked(&engine, id, q, &chunks, d * 0.7, &mut scratch);
                if m.pruned {
                    assert!(d >= d * 0.7);
                } else {
                    // Unpruned comparisons under a sub-distance threshold
                    // must have fetched everything.
                    assert_eq!(
                        m.lines.iter().sum::<usize>(),
                        engine.config().schedule.total_lines(240) * 4
                    );
                }
            }
        }
    }

    #[test]
    fn single_chunk_matches_whole_vector() {
        let (data, queries) = SynthSpec::sift().scaled(100, 1).generate();
        let engine = EtEngine::new(
            &data,
            EtConfig::new(FetchSchedule::uniform(data.dtype(), 4)),
        );
        let dim = data.dim();
        #[allow(clippy::single_range_in_vec_init)] // one whole-vector chunk is the point
        let chunks = [0..dim];
        let mut scratch = EtScratch::new();
        let m = evaluate_chunked(
            &engine,
            5,
            &queries[0],
            &chunks,
            f32::INFINITY,
            &mut scratch,
        );
        let c = engine.evaluate(5, &queries[0], f32::INFINITY);
        assert_eq!(m.lines[0], c.lines);
        assert_eq!(m.pruned, c.pruned);
    }

    #[test]
    fn rejected_chunked_saves_lines() {
        let (data, queries) = SynthSpec::gist().scaled(120, 2).generate();
        let engine = EtEngine::new(
            &data,
            EtConfig::new(FetchSchedule::uniform(data.dtype(), 8)),
        );
        let chunks: Vec<std::ops::Range<usize>> = (0..4).map(|i| i * 240..(i + 1) * 240).collect();
        let q = &queries[0];
        let full = engine.config().schedule.total_lines(240) * 4;
        let mut saved = false;
        let mut scratch = EtScratch::new();
        for id in 0..60 {
            let d = data.distance_to(id, q);
            let m = evaluate_chunked(&engine, id, q, &chunks, d * 0.5, &mut scratch);
            if m.pruned && m.total_lines() < full {
                saved = true;
            }
        }
        assert!(saved, "no chunked comparison saved lines");
    }
}
