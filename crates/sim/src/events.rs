//! Cross-stack event wheel: the hierarchical wakeup scheduler that
//! unifies DRAM, NDP, host, and serve-clock time-stepping.
//!
//! Every simulated agent registers its *next provable wakeup* — the
//! earliest future cycle at which it can possibly act — and the driving
//! loop advances time straight to the minimum registered wakeup instead
//! of ticking through dead cycles. The DRAM model is the one agent whose
//! wakeup changes as a side effect of other agents' actions (an enqueue
//! creates a new issue opportunity), so drivers query
//! [`MemorySystem::next_event_cycle`](ansmet_dram::MemorySystem::next_event_cycle)
//! fresh each round and take the min with [`EventWheel::next_due`].
//!
//! # Structure
//!
//! A two-tier hierarchical timing wheel:
//!
//! * **Near wheel** — `SLOTS` single-cycle slots covering
//!   `[now, now + SLOTS)`, with a bitmap per 64 slots so finding the next
//!   occupied slot is a couple of trailing-zero counts, not a scan.
//!   Insert and pop are O(1).
//! * **Far calendar** — a sorted map for events beyond the near horizon.
//!   Events migrate into the near wheel lazily as time advances past
//!   their `cycle - SLOTS` boundary.
//!
//! # Determinism
//!
//! Pop order is `(cycle, token)`: same-cycle events drain in ascending
//! token order regardless of insertion order, so wheel-driven replays are
//! bit-identical across runs and thread counts (each worker owns a
//! private wheel, like it owns a private [`MemorySystem`]).
//!
//! [`MemorySystem`]: ansmet_dram::MemorySystem

use std::collections::BTreeMap;

/// Number of single-cycle slots in the near wheel (power of two).
const SLOTS: usize = 256;
/// Bitmap words covering the near wheel (64 slots per word).
const WORDS: usize = SLOTS / 64;

/// A scheduled wakeup: `token` identifies the agent (driver-defined).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Wakeup {
    /// Absolute cycle at which the agent must be serviced.
    pub cycle: u64,
    /// Driver-defined agent id (e.g. a sub-task index).
    pub token: u32,
}

/// Hierarchical wakeup scheduler keyed on the global cycle.
#[derive(Debug, Clone)]
pub struct EventWheel {
    /// Earliest cycle still schedulable; all stored events are `>= now`.
    now: u64,
    /// Near wheel: slot `c & (SLOTS-1)` holds tokens due exactly at `c`
    /// for `c` in `[now, now + SLOTS)`.
    near: Vec<Vec<u32>>,
    /// Occupancy bitmap over `near` (bit i of word w = slot `w*64 + i`).
    occupied: [u64; WORDS],
    /// Events at or beyond `now + SLOTS`.
    far: BTreeMap<u64, Vec<u32>>,
    /// Total events stored (near + far).
    pending: usize,
}

impl EventWheel {
    /// An empty wheel anchored at `now`.
    pub fn new(now: u64) -> Self {
        EventWheel {
            now,
            near: vec![Vec::new(); SLOTS],
            occupied: [0; WORDS],
            far: BTreeMap::new(),
            pending: 0,
        }
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.pending
    }

    /// Whether no events are scheduled.
    pub fn is_empty(&self) -> bool {
        self.pending == 0
    }

    /// The wheel's current anchor cycle.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Register `token`'s next wakeup. A cycle in the past is clamped to
    /// `now` (it is due immediately).
    pub fn schedule(&mut self, cycle: u64, token: u32) {
        let cycle = cycle.max(self.now);
        self.pending += 1;
        if cycle - self.now < SLOTS as u64 {
            let slot = (cycle as usize) & (SLOTS - 1);
            self.near[slot].push(token);
            self.occupied[slot / 64] |= 1u64 << (slot % 64);
        } else {
            self.far.entry(cycle).or_default().push(token);
        }
    }

    /// The earliest scheduled cycle, if any.
    pub fn next_due(&self) -> Option<u64> {
        if self.pending == 0 {
            return None;
        }
        let near = self.next_near_slot();
        match (near, self.far.keys().next().copied()) {
            (Some(n), Some(f)) => Some(n.min(f)),
            (Some(n), None) => Some(n),
            (None, Some(f)) => Some(f),
            (None, None) => None,
        }
    }

    /// Earliest occupied near-wheel cycle (`>= now`), via the bitmap.
    fn next_near_slot(&self) -> Option<u64> {
        let base = self.now as usize & (SLOTS - 1);
        // Slots [base, SLOTS) map to [now, ...), slots [0, base) wrap to
        // the next SLOTS-aligned window.
        for off in 0..=WORDS {
            // Walk words starting at base's word; the first iteration
            // masks off bits below base, the last (wrapped) iteration
            // masks bits at/above base.
            let w = (base / 64 + off) % WORDS;
            let mut bits = self.occupied[w];
            if off == 0 {
                bits &= !0u64 << (base % 64);
            } else if off == WORDS {
                bits &= !(!0u64 << (base % 64));
            }
            if bits != 0 {
                let slot = w * 64 + bits.trailing_zeros() as usize;
                // A slot below `now`'s position belongs to the next
                // SLOTS-aligned window (the wheel wraps).
                let window = self.now & !(SLOTS as u64 - 1);
                let mut cycle = window + slot as u64;
                if cycle < self.now {
                    cycle += SLOTS as u64;
                }
                return Some(cycle);
            }
        }
        None
    }

    /// Advance the anchor to `cycle`, migrating far events whose horizon
    /// is reached into the near wheel. Never moves backwards.
    fn advance(&mut self, cycle: u64) {
        if cycle <= self.now {
            return;
        }
        debug_assert!(
            self.next_due().map(|d| d >= cycle).unwrap_or(true),
            "advance past a due event"
        );
        self.now = cycle;
        // Pull far events now inside the near horizon.
        let horizon = self.now + SLOTS as u64;
        while let Some((&c, _)) = self.far.iter().next() {
            if c >= horizon {
                break;
            }
            let (c, tokens) = self.far.pop_first().expect("checked non-empty");
            let slot = (c as usize) & (SLOTS - 1);
            self.occupied[slot / 64] |= 1u64 << (slot % 64);
            self.near[slot].extend(tokens);
        }
    }

    /// Drain every event due at or before `cycle` into `out`, sorted by
    /// `(cycle, token)`, and advance the anchor to `cycle`. Servicing a
    /// whole batch of same-cycle wakeups through one call is the
    /// coalescing contract: N adjacent QSHR completions cost one wakeup,
    /// not N loop rounds.
    pub fn pop_due(&mut self, cycle: u64, out: &mut Vec<Wakeup>) {
        out.clear();
        while let Some(due) = self.next_due() {
            if due > cycle {
                break;
            }
            self.advance(due);
            let slot = (due as usize) & (SLOTS - 1);
            let start = out.len();
            for t in self.near[slot].drain(..) {
                out.push(Wakeup {
                    cycle: due,
                    token: t,
                });
            }
            self.occupied[slot / 64] &= !(1u64 << (slot % 64));
            self.pending -= out.len() - start;
            out[start..].sort_unstable_by_key(|w| w.token);
        }
        self.advance(cycle);
    }

    /// Pop the single earliest event (ties broken by token).
    pub fn pop_next(&mut self) -> Option<Wakeup> {
        let due = self.next_due()?;
        self.advance(due);
        let slot = (due as usize) & (SLOTS - 1);
        let min_idx = self.near[slot]
            .iter()
            .enumerate()
            .min_by_key(|&(_, &t)| t)
            .map(|(i, _)| i)?;
        let token = self.near[slot].swap_remove(min_idx);
        if self.near[slot].is_empty() {
            self.occupied[slot / 64] &= !(1u64 << (slot % 64));
        }
        self.pending -= 1;
        Some(Wakeup { cycle: due, token })
    }

    /// Merge all events of `other` into `self` (used when a driver folds
    /// per-agent wheels into one scheduler).
    pub fn merge(&mut self, other: &EventWheel) {
        let mut scratch = Vec::new();
        let mut o = other.clone();
        while let Some(d) = o.next_due() {
            o.pop_due(d, &mut scratch);
            for w in &scratch {
                self.schedule(w.cycle, w.token);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_cycle_then_token_order() {
        let mut w = EventWheel::new(0);
        w.schedule(10, 3);
        w.schedule(5, 7);
        w.schedule(10, 1);
        w.schedule(5, 2);
        let mut got = Vec::new();
        while let Some(x) = w.pop_next() {
            got.push((x.cycle, x.token));
        }
        assert_eq!(got, vec![(5, 2), (5, 7), (10, 1), (10, 3)]);
        assert!(w.is_empty());
    }

    #[test]
    fn far_events_migrate_into_near_wheel() {
        let mut w = EventWheel::new(0);
        w.schedule(3, 1);
        w.schedule(100_000, 2);
        w.schedule(1_000_000, 3);
        assert_eq!(w.next_due(), Some(3));
        assert_eq!(w.pop_next(), Some(Wakeup { cycle: 3, token: 1 }));
        assert_eq!(w.next_due(), Some(100_000));
        assert_eq!(
            w.pop_next(),
            Some(Wakeup {
                cycle: 100_000,
                token: 2
            })
        );
        assert_eq!(
            w.pop_next(),
            Some(Wakeup {
                cycle: 1_000_000,
                token: 3
            })
        );
        assert_eq!(w.pop_next(), None);
    }

    #[test]
    fn pop_due_coalesces_a_batch() {
        let mut w = EventWheel::new(50);
        for t in 0..10u32 {
            w.schedule(60, t);
        }
        w.schedule(61, 99);
        w.schedule(5_000, 42);
        let mut out = Vec::new();
        w.pop_due(61, &mut out);
        assert_eq!(out.len(), 11);
        assert_eq!(
            out[0],
            Wakeup {
                cycle: 60,
                token: 0
            }
        );
        assert_eq!(
            out[9],
            Wakeup {
                cycle: 60,
                token: 9
            }
        );
        assert_eq!(
            out[10],
            Wakeup {
                cycle: 61,
                token: 99
            }
        );
        assert_eq!(w.len(), 1);
        assert_eq!(w.next_due(), Some(5_000));
    }

    #[test]
    fn past_schedules_clamp_to_now() {
        let mut w = EventWheel::new(1000);
        w.schedule(3, 8);
        assert_eq!(w.next_due(), Some(1000));
        assert_eq!(
            w.pop_next(),
            Some(Wakeup {
                cycle: 1000,
                token: 8
            })
        );
    }

    #[test]
    fn merge_combines_schedules() {
        let mut a = EventWheel::new(0);
        a.schedule(10, 1);
        let mut b = EventWheel::new(0);
        b.schedule(5, 2);
        b.schedule(70_000, 3);
        a.merge(&b);
        assert_eq!(a.len(), 3);
        assert_eq!(a.pop_next(), Some(Wakeup { cycle: 5, token: 2 }));
        assert_eq!(
            a.pop_next(),
            Some(Wakeup {
                cycle: 10,
                token: 1
            })
        );
        assert_eq!(
            a.pop_next(),
            Some(Wakeup {
                cycle: 70_000,
                token: 3
            })
        );
    }

    #[test]
    fn dense_and_sparse_mix_matches_reference_heap() {
        // Cross-check against a sorted reference over a pseudo-random
        // schedule spanning near and far horizons.
        let mut s = 0x9E37_79B9_7F4A_7C15u64;
        let mut step = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        let mut w = EventWheel::new(0);
        let mut reference: Vec<(u64, u32)> = Vec::new();
        let mut base = 0u64;
        let mut out = Vec::new();
        for round in 0..200 {
            for _ in 0..(step() % 8) {
                let delta = match step() % 4 {
                    0 => step() % 4,
                    1 => step() % 200,
                    2 => step() % 5_000,
                    _ => step() % 2_000_000,
                };
                let cycle = base + delta;
                let token = (step() % 1000) as u32;
                w.schedule(cycle, token);
                reference.push((cycle.max(base), token));
            }
            // Drain everything due in the next window.
            let upto = base + step() % 10_000;
            w.pop_due(upto, &mut out);
            let mut expect: Vec<(u64, u32)> = reference
                .iter()
                .filter(|&&(c, _)| c <= upto)
                .copied()
                .collect();
            expect.sort_unstable();
            reference.retain(|&(c, _)| c > upto);
            let got: Vec<(u64, u32)> = out.iter().map(|x| (x.cycle, x.token)).collect();
            assert_eq!(got, expect, "round {round} upto {upto}");
            base = upto;
        }
    }
}
