//! Trace-driven timing simulation of one design over one workload.
//!
//! Every query's functional trace is replayed hop by hop. A hop is a
//! dependency barrier (the greedy search pops one candidate, evaluates
//! its neighbors, then updates the heaps). Within a hop, comparisons run
//! in parallel: on the CPU designs through the channel-shared host port,
//! on the NDP designs through per-rank QSHRs issuing rank-local fetches.
//! All data movement goes through the cycle-accurate DDR5 simulator.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};

use ansmet_core::{EtEngine, EtObserver};
use ansmet_dram::{AccessKind, CommandKind, Location, MemorySystem, Port, Request};
use ansmet_index::HopKind;
use ansmet_ndp::qshr::QSHRS_PER_UNIT;
use ansmet_ndp::{LoadTracker, Partitioner, PollingPolicy, PollingStats, ReplicaSet};
use ansmet_obs::{
    DramCommandKind, EventKind, FlightRecorder, NoopSink, Phase, QueryRecorder, RecorderConfig,
    TraceSink,
};

use crate::config::SystemConfig;
use crate::design::{Design, DesignPlan};
use crate::events::{EventWheel, Wakeup};
use crate::workload::Workload;

/// Per-query latency breakdown (Fig. 9 buckets), in memory cycles.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryBreakdown {
    /// Host-side index traversal and result sorting.
    pub traversal: u64,
    /// NDP task offloading (query upload + set-search commands).
    pub offload: u64,
    /// Distance comparison (memory fetches + arithmetic).
    pub dist_comp: u64,
    /// Result collection (polling delay + processing).
    pub result_collect: u64,
}

impl QueryBreakdown {
    /// Total cycles.
    pub fn total(&self) -> u64 {
        self.traversal + self.offload + self.dist_comp + self.result_collect
    }

    fn add(&mut self, other: &QueryBreakdown) {
        self.traversal += other.traversal;
        self.offload += other.offload;
        self.dist_comp += other.dist_comp;
        self.result_collect += other.result_collect;
    }
}

impl std::fmt::Display for QueryBreakdown {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "traversal {} + offload {} + dist_comp {} + result_collect {} = {} cycles",
            self.traversal,
            self.offload,
            self.dist_comp,
            self.result_collect,
            self.total()
        )
    }
}

/// Result of running one design over a workload.
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// The design simulated.
    pub design: Design,
    /// Total memory-clock cycles over all queries.
    pub total_cycles: u64,
    /// Summed latency breakdown.
    pub breakdown: QueryBreakdown,
    /// 64 B lines fetched for comparisons that were accepted.
    pub effectual_lines: u64,
    /// Lines fetched for comparisons that were rejected.
    pub ineffectual_lines: u64,
    /// Extra backup-recheck lines (prefix-elimination outliers).
    pub backup_lines: u64,
    /// Comparisons early-terminated before the full fetch.
    pub pruned_evals: u64,
    /// Total comparisons replayed.
    pub total_evals: u64,
    /// Host CPU busy cycles (CPU clock domain), for energy.
    pub host_cpu_cycles: u64,
    /// Lines processed by NDP compute units, for energy.
    pub ndp_compute_lines: u64,
    /// Per-rank command counters from the DRAM simulator.
    pub rank_counts: Vec<(u64, u64, u64, u64, u64)>,
    /// Per-rank comparison-line loads (imbalance analysis, §5.3).
    pub rank_loads: Vec<u64>,
    /// Poll commands issued.
    pub polls: u64,
    /// Number of queries.
    pub queries: usize,
}

impl RunResult {
    /// Mean per-query latency in memory cycles.
    pub fn cycles_per_query(&self) -> f64 {
        self.total_cycles as f64 / self.queries.max(1) as f64
    }

    /// Mean per-query latency in nanoseconds (2400 MHz memory clock).
    pub fn ns_per_query(&self, mem_clock_mhz: u64) -> f64 {
        self.cycles_per_query() * 1000.0 / mem_clock_mhz as f64
    }

    /// Queries per second of one search stream.
    pub fn qps(&self, mem_clock_mhz: u64) -> f64 {
        1e9 / self.ns_per_query(mem_clock_mhz)
    }

    /// All lines moved (including backups).
    pub fn total_lines(&self) -> u64 {
        self.effectual_lines + self.ineffectual_lines + self.backup_lines
    }

    /// Fetch utilization: fraction of moved data that served accepted
    /// comparisons (Fig. 10).
    pub fn fetch_utilization(&self) -> f64 {
        let t = self.total_lines();
        if t == 0 {
            0.0
        } else {
            self.effectual_lines as f64 / t as f64
        }
    }
}

impl std::fmt::Display for RunResult {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:?}: {} queries, {} cycles ({:.0} cycles/query), {} lines moved \
             ({:.1}% effectual), {}/{} evals pruned",
            self.design,
            self.queries,
            self.total_cycles,
            self.cycles_per_query(),
            self.total_lines(),
            self.fetch_utilization() * 100.0,
            self.pruned_evals,
            self.total_evals,
        )
    }
}

/// Map a rank-local line index to a physical address in `rank`
/// (global rank id). Consecutive lines fill a row (row hits), and
/// consecutive vectors spread across banks.
fn rank_line_addr(mem: &MemorySystem, global_rank: usize, line_idx: u64) -> u64 {
    let cfg = mem.config();
    let channel = global_rank % cfg.channels;
    let rank = global_rank / cfg.channels;
    let col = (line_idx % cfg.columns as u64) as usize;
    let tmp = line_idx / cfg.columns as u64;
    let bank = (tmp % cfg.banks_per_group as u64) as usize;
    let tmp = tmp / cfg.banks_per_group as u64;
    let bank_group = (tmp % cfg.bank_groups as u64) as usize;
    let row = ((tmp / cfg.bank_groups as u64) % cfg.rows as u64) as usize;
    mem.addr_map().encode(Location {
        channel,
        rank,
        bank_group,
        bank,
        row,
        column: col,
    })
}

/// One comparison sub-task bound for one rank.
#[derive(Debug, Clone)]
pub(crate) struct SubTask {
    rank: usize,
    lines_left: usize,
    next_line: u64,
    compute_delay: u64,
    /// When the next fetch may issue.
    ready_at: u64,
    outstanding: Option<u64>,
    finished_at: Option<u64>,
}

impl SubTask {
    /// Create a sub-task fetching `lines` 64 B lines from `rank`
    /// starting at rank-local line index `base`.
    pub(crate) fn new(rank: usize, lines: usize, base: u64, compute_delay: u64) -> Self {
        SubTask {
            rank,
            lines_left: lines,
            next_line: base,
            compute_delay,
            ready_at: 0,
            outstanding: None,
            finished_at: None,
        }
    }
}

/// Which driver advances time inside [`run_ndp_batch`].
///
/// Both produce bit-identical results; `Tick` is the original
/// scan-every-sub-each-cycle reference kept for equivalence testing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchDriver {
    /// Event-wheel driver: wakeups (compute-gap expiries, admissions)
    /// are scheduled explicitly and dead spans are jumped. The default.
    Wheel,
    /// Reference driver: rescans every sub-task at every visited cycle.
    Tick,
}

static BATCH_DRIVER: AtomicU8 = AtomicU8::new(0);

/// Select the batch time-stepping driver process-wide. Test hook for
/// wheel-vs-tick equivalence runs; production code never calls this.
#[doc(hidden)]
pub fn set_batch_driver(driver: BatchDriver) {
    BATCH_DRIVER.store(driver as u8, Ordering::Relaxed);
}

/// The currently selected batch driver.
pub fn batch_driver() -> BatchDriver {
    match BATCH_DRIVER.load(Ordering::Relaxed) {
        0 => BatchDriver::Wheel,
        _ => BatchDriver::Tick,
    }
}

/// Executes the per-hop batch on the NDP units; returns the cycle when
/// the last sub-task finished.
///
/// QSHR occupancy transitions (allocate on admission, free on
/// completion) are reported to `sink` with event times rebased to
/// `trace_base + (cycle - t0)`, so they land inside the caller's
/// attribution-clock `dist_comp` span. With a [`NoopSink`] the calls
/// monomorphize to nothing.
///
/// With the `dual-driver` feature, every call additionally replays the
/// batch on the tick-driven reference and asserts the two drivers agree
/// on every observable: finish cycle, memory clock, stats, per-rank
/// command counts, request-id cursor, and each sub-task's completion
/// cycle.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_ndp_batch<S: TraceSink>(
    mem: &mut MemorySystem,
    subs: &mut [SubTask],
    qshrs_per_rank: usize,
    req_base: &mut u64,
    t0: u64,
    sink: &mut S,
    trace_base: u64,
) -> u64 {
    #[cfg(feature = "dual-driver")]
    let reference = {
        let mut mem_ref = mem.clone();
        let mut subs_ref: Vec<SubTask> = subs.to_vec();
        let mut req_ref = *req_base;
        let fin = run_ndp_batch_tick(
            &mut mem_ref,
            &mut subs_ref,
            qshrs_per_rank,
            &mut req_ref,
            t0,
            &mut NoopSink,
            trace_base,
        );
        (mem_ref, subs_ref, req_ref, fin)
    };

    let finish = match batch_driver() {
        BatchDriver::Wheel => {
            run_ndp_batch_wheel(mem, subs, qshrs_per_rank, req_base, t0, sink, trace_base)
        }
        BatchDriver::Tick => {
            run_ndp_batch_tick(mem, subs, qshrs_per_rank, req_base, t0, sink, trace_base)
        }
    };

    #[cfg(feature = "dual-driver")]
    {
        let (mem_ref, subs_ref, req_ref, fin_ref) = reference;
        assert_eq!(finish, fin_ref, "dual-driver: finish cycle diverged");
        assert_eq!(mem.now(), mem_ref.now(), "dual-driver: clock diverged");
        assert_eq!(*req_base, req_ref, "dual-driver: request ids diverged");
        assert_eq!(mem.stats(), mem_ref.stats(), "dual-driver: stats diverged");
        assert_eq!(
            mem.rank_command_counts(),
            mem_ref.rank_command_counts(),
            "dual-driver: command counts diverged"
        );
        for (i, (s, r)) in subs.iter().zip(&subs_ref).enumerate() {
            assert_eq!(
                s.finished_at, r.finished_at,
                "dual-driver: sub-task {i} completion diverged"
            );
        }
    }

    finish
}

/// Event-wheel batch driver. Each visited cycle costs O(due wakeups +
/// completions) instead of the reference driver's O(all sub-tasks):
/// compute-gap expiries live in an [`EventWheel`], unadmitted sub-tasks
/// wait in per-rank queues scanned only when a QSHR frees, and the skip
/// target is `min(DRAM event horizon, wheel.next_due())`.
///
/// Cycle-for-cycle equivalent to [`run_ndp_batch_tick`] by construction:
/// fetches enqueue at the same cycles (admission order is ascending
/// sub-index, retries after a queue-full block happen at the very next
/// cycle), ticks and skips interleave identically, and sink events fire
/// in the same order at the same rebased times.
#[allow(clippy::too_many_arguments)]
fn run_ndp_batch_wheel<S: TraceSink>(
    mem: &mut MemorySystem,
    subs: &mut [SubTask],
    qshrs_per_rank: usize,
    req_base: &mut u64,
    t0: u64,
    sink: &mut S,
    trace_base: u64,
) -> u64 {
    debug_assert!(mem.now() <= t0 || !mem.busy());
    if mem.now() < t0 {
        mem.fast_forward_to(t0).expect("idle fast-forward");
    }
    let mut finish_max = t0;
    // Zero-line sub-tasks finish immediately.
    for s in subs.iter_mut() {
        s.ready_at = s.ready_at.max(t0);
        if s.lines_left == 0 {
            s.finished_at = Some(t0);
        }
    }
    let n_ranks_total = mem.config().total_ranks();
    let mut active_per_rank = vec![0usize; n_ranks_total];
    // Unadmitted sub-tasks per rank, in ascending sub-index order (the
    // reference driver's admission scan order).
    let mut waiting: Vec<VecDeque<u32>> = vec![VecDeque::new(); n_ranks_total];
    let mut remaining = 0usize;
    for (i, s) in subs.iter().enumerate() {
        if s.finished_at.is_none() {
            waiting[s.rank].push_back(i as u32);
            remaining += 1;
        }
    }
    // Sub-tasks ready to issue a fetch this cycle (admitted, no
    // outstanding request, compute gap elapsed). Queue-full failures
    // stay and retry at the next cycle.
    let mut issuable: Vec<u32> = Vec::new();
    // Compute-gap expiries of admitted sub-tasks.
    let mut wheel = EventWheel::new(mem.now());
    let mut due: Vec<Wakeup> = Vec::new();
    // Request id → sub index; batch ids are sequential, so a Vec indexed
    // by `id - id_base` replaces the reference driver's hash map.
    let id_base = *req_base;
    let mut inflight: Vec<u32> = Vec::new();
    // QSHR slots only free at completions, so the admission scan runs at
    // the first cycle and after any completion — never in between.
    let mut admit_scan = true;
    let mut admitted_now: Vec<(u32, u32)> = Vec::new();

    while remaining > 0 {
        let now = mem.now();
        // Wake admitted sub-tasks whose compute gap elapsed.
        wheel.pop_due(now, &mut due);
        for w in &due {
            issuable.push(w.token);
        }
        if admit_scan {
            admit_scan = false;
            admitted_now.clear();
            for (rank, q) in waiting.iter_mut().enumerate() {
                while active_per_rank[rank] < qshrs_per_rank {
                    match q.pop_front() {
                        Some(i) => {
                            active_per_rank[rank] += 1;
                            admitted_now.push((i, active_per_rank[rank] as u32));
                        }
                        None => break,
                    }
                }
            }
            // Emit admissions in ascending sub-index order across ranks,
            // matching the reference driver's single scan.
            admitted_now.sort_unstable();
            let at = trace_base + (now - t0);
            for &(i, active) in &admitted_now {
                let s = &subs[i as usize];
                sink.event(
                    at,
                    EventKind::QshrAlloc {
                        rank: s.rank as u32,
                        active,
                    },
                );
                sink.event(
                    at,
                    EventKind::GroupFetch {
                        rank: s.rank as u32,
                        lines: s.lines_left as u32,
                    },
                );
                sink.gauge_max("ndp.qshr_active_max", active as u64);
                issuable.push(i);
            }
        }
        // Issue fetches in ascending sub-index order; a full rank queue
        // blocks the sub (and suppresses the skip) until the next cycle.
        let mut blocked = false;
        if !issuable.is_empty() {
            issuable.sort_unstable();
            issuable.retain(|&iu| {
                let addr = {
                    let s = &subs[iu as usize];
                    debug_assert!(s.outstanding.is_none() && s.lines_left > 0 && s.ready_at <= now);
                    rank_line_addr(mem, s.rank, s.next_line)
                };
                let id = *req_base;
                let req = Request::new(id, AccessKind::Read, addr, Port::Ndp);
                if mem.enqueue(req).is_ok() {
                    *req_base += 1;
                    subs[iu as usize].outstanding = Some(id);
                    inflight.push(iu);
                    false
                } else {
                    blocked = true;
                    true
                }
            });
        }
        mem.tick();
        let now = mem.now();
        let responses = mem.take_completed();
        if responses.is_empty() && !blocked {
            // Dead cycles until the DRAM model can act again or a compute
            // gap elapses — jump straight there.
            mem.skip_to_event(wheel.next_due().unwrap_or(u64::MAX));
        }
        for resp in responses {
            let iu = inflight[(resp.id - id_base) as usize];
            let s = &mut subs[iu as usize];
            debug_assert_eq!(s.outstanding, Some(resp.id));
            s.outstanding = None;
            s.lines_left -= 1;
            s.next_line += 1;
            s.ready_at = now + s.compute_delay;
            if s.lines_left == 0 {
                let done = s.ready_at;
                s.finished_at = Some(done);
                finish_max = finish_max.max(done);
                active_per_rank[s.rank] -= 1;
                remaining -= 1;
                admit_scan = true;
                sink.event(
                    trace_base + (done - t0),
                    EventKind::QshrFree {
                        rank: s.rank as u32,
                        active: active_per_rank[s.rank] as u32,
                    },
                );
            } else {
                wheel.schedule(s.ready_at, iu);
            }
        }
    }
    // Let the memory system settle past the final compute.
    if mem.now() < finish_max && !mem.busy() {
        mem.fast_forward_to(finish_max).expect("idle fast-forward");
    }
    finish_max
}

/// Tick-driven reference batch driver: the original implementation,
/// kept always-compiled as the equivalence oracle for the wheel driver
/// (see [`BatchDriver`] and the `dual-driver` feature).
#[allow(clippy::too_many_arguments)]
fn run_ndp_batch_tick<S: TraceSink>(
    mem: &mut MemorySystem,
    subs: &mut [SubTask],
    qshrs_per_rank: usize,
    req_base: &mut u64,
    t0: u64,
    sink: &mut S,
    trace_base: u64,
) -> u64 {
    debug_assert!(mem.now() <= t0 || !mem.busy());
    if mem.now() < t0 {
        mem.fast_forward_to(t0).expect("idle fast-forward");
    }
    let mut finish_max = t0;
    // Zero-line sub-tasks finish immediately.
    for s in subs.iter_mut() {
        s.ready_at = s.ready_at.max(t0);
        if s.lines_left == 0 {
            s.finished_at = Some(t0);
        }
    }
    let n_ranks_total = mem.config().total_ranks();
    let mut active_per_rank = vec![0usize; n_ranks_total];
    let mut admitted: Vec<bool> = subs.iter().map(|s| s.finished_at.is_some()).collect();
    let mut inflight: HashMap<u64, usize> = HashMap::new();
    let mut remaining = subs.iter().filter(|s| s.finished_at.is_none()).count();

    while remaining > 0 {
        let now = mem.now();
        // Admit waiting sub-tasks up to the QSHR limit, then issue fetches.
        // Track the earliest compute-gap expiry among admitted sub-tasks
        // so the event skip below never jumps past an issuable fetch.
        let mut wake = u64::MAX;
        let mut blocked = false;
        for (i, s) in subs.iter_mut().enumerate() {
            if s.finished_at.is_some() {
                continue;
            }
            if !admitted[i] {
                if active_per_rank[s.rank] < qshrs_per_rank {
                    active_per_rank[s.rank] += 1;
                    admitted[i] = true;
                    let at = trace_base + (now - t0);
                    sink.event(
                        at,
                        EventKind::QshrAlloc {
                            rank: s.rank as u32,
                            active: active_per_rank[s.rank] as u32,
                        },
                    );
                    sink.event(
                        at,
                        EventKind::GroupFetch {
                            rank: s.rank as u32,
                            lines: s.lines_left as u32,
                        },
                    );
                    sink.gauge_max("ndp.qshr_active_max", active_per_rank[s.rank] as u64);
                } else {
                    continue;
                }
            }
            if s.outstanding.is_none() && s.lines_left > 0 {
                if s.ready_at <= now {
                    let addr = rank_line_addr(mem, s.rank, s.next_line);
                    let id = *req_base;
                    let req = Request::new(id, AccessKind::Read, addr, Port::Ndp);
                    if mem.enqueue(req).is_ok() {
                        *req_base += 1;
                        s.outstanding = Some(id);
                        inflight.insert(id, i);
                    } else {
                        blocked = true;
                    }
                } else {
                    wake = wake.min(s.ready_at);
                }
            }
        }
        mem.tick();
        let now = mem.now();
        let responses = mem.take_completed();
        if responses.is_empty() && !blocked {
            // Dead cycles until the DRAM model can act again or a compute
            // gap elapses — jump straight there.
            mem.skip_to_event(wake);
        }
        for resp in responses {
            if let Some(&i) = inflight.get(&resp.id) {
                inflight.remove(&resp.id);
                let s = &mut subs[i];
                s.outstanding = None;
                s.lines_left -= 1;
                s.next_line += 1;
                s.ready_at = now + s.compute_delay;
                if s.lines_left == 0 {
                    let done = s.ready_at;
                    s.finished_at = Some(done);
                    finish_max = finish_max.max(done);
                    active_per_rank[s.rank] -= 1;
                    remaining -= 1;
                    sink.event(
                        trace_base + (done - t0),
                        EventKind::QshrFree {
                            rank: s.rank as u32,
                            active: active_per_rank[s.rank] as u32,
                        },
                    );
                }
            }
        }
    }
    // Let the memory system settle past the final compute.
    if mem.now() < finish_max && !mem.busy() {
        mem.fast_forward_to(finish_max).expect("idle fast-forward");
    }
    finish_max
}

/// Immutable per-run state shared (read-only) by all worker threads.
struct RunPrep<'a> {
    design: Design,
    workload: &'a Workload,
    config: &'a SystemConfig,
    partitioner: Partitioner,
    engine: Option<EtEngine<'a>>,
    replicas: ReplicaSet,
    polling: PollingPolicy,
    natural_lines: usize,
    full_lines: usize,
    ndp_compute_delay: u64,
    query_bytes: usize,
    elem_bytes: usize,
    mem_clock: u64,
}

impl<'a> RunPrep<'a> {
    fn new(design: Design, workload: &'a Workload, config: &'a SystemConfig) -> Self {
        let data = &workload.data;
        let dim = data.dim();
        let elem_bytes = data.dtype().bytes();

        // NDP-side structures.
        let partitioner = Partitioner::new(config.partition, config.ndp_units(), dim, elem_bytes);
        let layout_dim = if design.is_ndp() {
            partitioner.dims_per_subvector()
        } else {
            dim
        };
        let plan = DesignPlan::build_for_layout(design, workload, layout_dim);
        let engine = plan
            .et
            .as_ref()
            .map(|et| EtEngine::new(&workload.data, et.clone()));
        let natural_lines = data.vector_lines();
        let mem_clock = config.dram.clock_mhz;

        let replicas = if config.replicate_hot && design.is_ndp() {
            ReplicaSet::new(workload.hot_ids())
        } else {
            ReplicaSet::new([])
        };

        // Compute delay per fetched line in memory cycles. The 16 lanes
        // consume elements while the burst streams in and while the next
        // fetch's DRAM access latency elapses, so only the reduce/compare
        // tail gates the decision to issue the next fetch.
        let ndp_compute_delay = config
            .compute
            .to_mem_cycles(config.compute.reduce_cycles, mem_clock)
            .max(1);

        // Polling policy.
        let polling = config.polling.clone().unwrap_or_else(|| {
            let hist = line_histogram(&plan, workload, natural_lines);
            PollingPolicy::Adaptive {
                latency_histogram: hist,
                cycles_per_line: 60,
                task_overhead: 50 + ndp_compute_delay,
                retry_period: 60,
            }
        });

        // Lines one full (non-terminated) comparison fetches.
        let full_lines = engine
            .as_ref()
            .map(|e| e.full_lines())
            .unwrap_or(natural_lines);

        RunPrep {
            design,
            workload,
            config,
            partitioner,
            engine,
            replicas,
            polling,
            natural_lines,
            full_lines,
            ndp_compute_delay,
            query_bytes: (dim * elem_bytes).min(1024),
            elem_bytes,
            mem_clock,
        }
    }
}

/// Per-query simulation output, merged in query order so aggregates are
/// independent of worker scheduling.
#[derive(Debug, Default)]
struct QueryStats {
    breakdown: QueryBreakdown,
    effectual_lines: u64,
    ineffectual_lines: u64,
    backup_lines: u64,
    pruned_evals: u64,
    total_evals: u64,
    host_cpu_cycles: u64,
    ndp_compute_lines: u64,
    polls: u64,
    rank_counts: Vec<(u64, u64, u64, u64, u64)>,
    rank_loads: Vec<u64>,
}

/// Fold one query's stats into the aggregate. Addition is performed in
/// query order, so serial and parallel runs produce bit-identical results.
fn merge_query(agg: &mut RunResult, qs: QueryStats) {
    agg.total_cycles += qs.breakdown.total();
    agg.breakdown.add(&qs.breakdown);
    agg.effectual_lines += qs.effectual_lines;
    agg.ineffectual_lines += qs.ineffectual_lines;
    agg.backup_lines += qs.backup_lines;
    agg.pruned_evals += qs.pruned_evals;
    agg.total_evals += qs.total_evals;
    agg.host_cpu_cycles += qs.host_cpu_cycles;
    agg.ndp_compute_lines += qs.ndp_compute_lines;
    agg.polls += qs.polls;
    if agg.rank_counts.is_empty() {
        agg.rank_counts = qs.rank_counts;
    } else {
        for (a, b) in agg.rank_counts.iter_mut().zip(&qs.rank_counts) {
            a.0 += b.0;
            a.1 += b.1;
            a.2 += b.2;
            a.3 += b.3;
            a.4 += b.4;
        }
    }
    if agg.rank_loads.is_empty() {
        agg.rank_loads = qs.rank_loads;
    } else {
        for (a, b) in agg.rank_loads.iter_mut().zip(&qs.rank_loads) {
            *a += b;
        }
    }
}

/// Run `f` for every index in `0..n`, sharded over `threads` workers,
/// returning results in index order.
///
/// Work-stealing only changes *which worker* runs an index, never the
/// index's inputs or the merge order, so callers folding the returned
/// vector left-to-right get bit-identical aggregates for every thread
/// count.
fn replay_ordered<T: Send>(n: usize, threads: usize, f: impl Fn(usize) -> T + Sync) -> Vec<T> {
    if threads <= 1 {
        return (0..n).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let mut parts: Vec<(usize, T)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let f = &f;
                let next = &next;
                s.spawn(move || {
                    let mut out = Vec::new();
                    loop {
                        let qi = next.fetch_add(1, Ordering::Relaxed);
                        if qi >= n {
                            break;
                        }
                        out.push((qi, f(qi)));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("simulation worker panicked"))
            .collect()
    });
    parts.sort_by_key(|p| p.0);
    parts.into_iter().map(|(_, t)| t).collect()
}

fn empty_result(design: Design, queries: usize) -> RunResult {
    RunResult {
        design,
        total_cycles: 0,
        breakdown: QueryBreakdown::default(),
        effectual_lines: 0,
        ineffectual_lines: 0,
        backup_lines: 0,
        pruned_evals: 0,
        total_evals: 0,
        host_cpu_cycles: 0,
        ndp_compute_lines: 0,
        rank_counts: Vec::new(),
        rank_loads: Vec::new(),
        polls: 0,
        queries,
    }
}

/// Run `design` over `workload` under `config`.
///
/// Queries are independent traces replayed on private per-query memory
/// state, so they shard freely across worker threads
/// (`config.parallelism`); per-query stats are merged in query order, so
/// the result is bit-identical for every thread count.
pub fn run_design(design: Design, workload: &Workload, config: &SystemConfig) -> RunResult {
    let prep = RunPrep::new(design, workload, config);
    let n = workload.traces.len();
    let mut agg = empty_result(design, workload.queries.len());
    let threads = config.parallelism.resolve().min(n.max(1));
    for qs in replay_ordered(n, threads, |qi| run_query(&prep, qi)) {
        merge_query(&mut agg, qs);
    }
    crate::parallel::record_queries(n as u64);
    agg
}

/// Memoized [`run_design`] for cache-resident workloads.
///
/// Replay is a pure function of `(design, workload, config)`, and the
/// experiment suite re-runs many identical combinations (the energy,
/// speedup, and fetch-utilization figures all replay the same designs
/// over the same datasets under the default config). The workload is
/// identified by its [`Arc`] pointer — sound because shared workloads
/// live forever in the [`Workload::prepare_shared`] cache and are
/// immutable behind the `Arc` — and the config by its `Debug` rendering.
///
/// Hits still count toward [`crate::parallel::queries_simulated`] (the
/// queries were logically replayed) but add no DRAM tick/skip cycles
/// (no simulation actually ran).
pub fn run_design_shared(
    design: Design,
    workload: &std::sync::Arc<Workload>,
    config: &SystemConfig,
) -> RunResult {
    use std::sync::{Arc, Mutex, OnceLock};
    type Key = (usize, Design, String);
    static CACHE: OnceLock<Mutex<HashMap<Key, RunResult>>> = OnceLock::new();
    let key = (
        Arc::as_ptr(workload) as usize,
        design,
        format!("{config:?}"),
    );
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    if let Some(r) = cache.lock().expect("run cache poisoned").get(&key) {
        crate::parallel::record_queries(workload.traces.len() as u64);
        return r.clone();
    }
    let r = run_design(design, workload, config);
    cache
        .lock()
        .expect("run cache poisoned")
        .insert(key, r.clone());
    r
}

/// Tracing knobs for [`run_design_traced`].
#[derive(Debug, Clone, Copy, Default)]
pub struct TraceOptions {
    /// Per-query retention caps for the flight recorder.
    pub recorder: RecorderConfig,
    /// Record individual DRAM commands as trace events (high volume;
    /// bounded by the event ring, which drops oldest-first).
    pub dram_commands: bool,
}

/// [`run_design`] with a per-query flight recorder attached.
///
/// Each query records into its own [`QueryRecorder`] shard; traces are
/// folded into the returned [`FlightRecorder`] in query order, so the
/// recording — like the [`RunResult`] — is bit-identical across thread
/// counts. The returned `RunResult` is byte-for-byte the same as an
/// untraced [`run_design`] of the same inputs: instrumentation observes
/// the replay, never steers it.
pub fn run_design_traced(
    design: Design,
    workload: &Workload,
    config: &SystemConfig,
    opts: &TraceOptions,
) -> (RunResult, FlightRecorder) {
    let prep = RunPrep::new(design, workload, config);
    let n = workload.traces.len();
    let mut agg = empty_result(design, workload.queries.len());
    let mut recorder = FlightRecorder::new();
    let threads = config.parallelism.resolve().min(n.max(1));
    let parts = replay_ordered(n, threads, |qi| {
        let mut rec = QueryRecorder::new(qi, opts.recorder);
        let qs = run_query_sink(&prep, qi, &mut rec, opts.dram_commands);
        let total = qs.breakdown.total();
        (qs, rec.finish(total))
    });
    for (qs, trace) in parts {
        merge_query(&mut agg, qs);
        recorder.push(trace);
    }
    crate::parallel::record_queries(n as u64);
    (agg, recorder)
}

/// Emit a `phase` span of `d` cycles on the attribution clock and
/// advance it. Pairing every `QueryBreakdown` increment with exactly one
/// call makes the recorded spans tile `[0, breakdown.total())` — phase
/// sums equal end-to-end cycles by construction.
fn span_adv<S: TraceSink>(sink: &mut S, att: &mut u64, phase: Phase, d: u64) {
    if d > 0 {
        sink.span(phase, *att, *att + d);
    }
    *att += d;
}

/// Forwards ET engine callbacks as trace events stamped at `cycle`.
struct SinkEtObserver<'a, S> {
    sink: &'a mut S,
    cycle: u64,
}

impl<S: TraceSink> EtObserver for SinkEtObserver<'_, S> {
    fn terminated(&mut self, lines: usize, planned: usize) {
        self.sink.event(
            self.cycle,
            EventKind::EtTerminated {
                lines: lines as u32,
                planned: planned as u32,
            },
        );
    }

    fn backup_recheck(&mut self, lines: usize) {
        self.sink.event(
            self.cycle,
            EventKind::EtBackup {
                lines: lines as u32,
            },
        );
    }
}

fn obs_command_kind(kind: CommandKind) -> DramCommandKind {
    match kind {
        CommandKind::Activate => DramCommandKind::Activate,
        CommandKind::Precharge => DramCommandKind::Precharge,
        CommandKind::Read => DramCommandKind::Read,
        CommandKind::Write => DramCommandKind::Write,
        CommandKind::Refresh => DramCommandKind::Refresh,
    }
}

/// Drain the DRAM command trace into `sink`, rebasing issue cycles from
/// memory time (`t_ref`) onto the attribution clock (`att_base`).
fn drain_dram_commands<S: TraceSink>(
    mem: &mut MemorySystem,
    sink: &mut S,
    att_base: u64,
    t_ref: u64,
) {
    for r in mem.take_command_trace() {
        sink.event(
            att_base + r.cycle.saturating_sub(t_ref),
            EventKind::DramCommand {
                kind: obs_command_kind(r.kind),
                channel: r.channel as u16,
                rank: r.rank as u16,
            },
        );
    }
}

/// Emit the row-buffer outcome delta between two stats snapshots.
pub(crate) fn row_buffer_delta<S: TraceSink>(
    sink: &mut S,
    at: u64,
    s0: &ansmet_dram::MemoryStats,
    s1: &ansmet_dram::MemoryStats,
) {
    let hits = s1.row_hits - s0.row_hits;
    let misses = s1.row_misses - s0.row_misses;
    let conflicts = s1.row_conflicts - s0.row_conflicts;
    if hits + misses + conflicts > 0 {
        sink.event(
            at,
            EventKind::RowBuffer {
                hits: hits as u32,
                misses: misses as u32,
                conflicts: conflicts as u32,
            },
        );
    }
}

/// Replay one query's trace on fresh per-query memory/NDP state.
///
/// Purity is the determinism contract: everything mutated here (memory
/// system, load tracker, request ids, the adaptive-polling EWMA) is local
/// to this call, so the result depends only on `(prep, qi)` — never on
/// which other queries ran before or concurrently.
fn run_query(prep: &RunPrep, qi: usize) -> QueryStats {
    run_query_sink(prep, qi, &mut NoopSink, false)
}

/// [`run_query`] with a [`TraceSink`] riding along.
///
/// The sink observes the replay — spans on a per-query attribution
/// clock mirroring every [`QueryBreakdown`] increment, point events for
/// ET outcomes, QSHR occupancy, polling, row-buffer behavior and
/// (opt-in) individual DRAM commands — but never influences it: with
/// [`NoopSink`] every call monomorphizes to nothing and the returned
/// stats are bit-identical to the untraced replay.
fn run_query_sink<S: TraceSink>(
    prep: &RunPrep,
    qi: usize,
    sink: &mut S,
    dram_commands: bool,
) -> QueryStats {
    let config = prep.config;
    let workload = prep.workload;
    let design = prep.design;
    let cpu = &config.cpu;
    let mem_clock = prep.mem_clock;
    let engine = &prep.engine;
    let natural_lines = prep.natural_lines;
    let full_lines = prep.full_lines;
    let ndp_compute_delay = prep.ndp_compute_delay;
    let query_bytes = prep.query_bytes;
    let elem_bytes = prep.elem_bytes;
    let partitioner = &prep.partitioner;
    let replicas = &prep.replicas;
    let polling = &prep.polling;

    let mut mem = MemorySystem::new(config.dram.clone());
    let trace_dram = dram_commands && sink.enabled();
    if trace_dram {
        mem.enable_command_trace();
    }
    let mut loads = LoadTracker::new(config.ndp_units(), partitioner.group_size());
    let mut qs = QueryStats::default();
    let mut req_base: u64 = 0;
    let mut et_scratch = ansmet_core::EtScratch::new();
    // Running estimate of per-hop batch latency for adaptive polling,
    // seeded from the sampling-profile expectation and refined with an
    // exponential moving average of observed batches (the sampled
    // distribution fixes the shape; the EWMA absorbs service-time
    // queueing the offline model cannot see). Reset per query so results
    // do not depend on query execution order.
    let mut batch_ewma: f64 = polling.expected_batch_latency(1) as f64;

    let trace = &workload.traces[qi];
    let query = &workload.queries[qi];
    let mut clock = mem.now();
    let mut bd = QueryBreakdown::default();
    // Attribution clock: advances only with `bd` increments, so the
    // emitted spans partition `[0, bd.total())` exactly.
    let mut att: u64 = 0;
    let mut uploaded = vec![false; config.ndp_units()];

    if let Some(eng) = engine {
        sink.event(
            0,
            EventKind::EtPlan {
                full_lines: eng.full_lines() as u32,
                natural_lines: natural_lines as u32,
            },
        );
    }

    for hop in &trace.hops {
        // Host traversal work for this hop.
        let accepted = hop.evals.iter().filter(|e| e.accepted).count();
        let hop_cpu = cpu.hop_cycles(hop.evals.len(), accepted);
        qs.host_cpu_cycles += hop_cpu;
        let hop_mem = cpu.to_mem_cycles(hop_cpu, mem_clock);
        clock += hop_mem;
        bd.traversal += hop_mem;
        span_adv(sink, &mut att, Phase::Traversal, hop_mem);

        if hop.evals.is_empty() {
            continue;
        }
        // Centroid hops are host-side arithmetic on cached centroids.
        if hop.kind == HopKind::Centroid {
            let c = cpu.distance_compute_cycles(natural_lines) * hop.evals.len() as u64;
            qs.host_cpu_cycles += c;
            let m = cpu.to_mem_cycles(c, mem_clock);
            clock += m;
            bd.traversal += m;
            span_adv(sink, &mut att, Phase::Traversal, m);
            continue;
        }

        // Per-eval fetch plans.
        struct EvalPlanned {
            id: usize,
            lines_by_placement: Vec<(usize, usize)>, // (rank, lines)
            backup: usize,
        }
        let mut planned: Vec<EvalPlanned> = Vec::with_capacity(hop.evals.len());
        let mut resumed = false;
        for e in &hop.evals {
            let placements = if replicas.contains(e.id) {
                partitioner.placement_in_group(e.id, loads.least_loaded_group())
            } else {
                partitioner.placement(e.id)
            };
            let mut lines_by_placement = Vec::with_capacity(placements.len());
            let mut backup = 0usize;
            let mut pruned = false;
            if placements.len() == 1 || !design.is_ndp() {
                // Whole vector evaluated in one place (CPU designs
                // always see the whole vector).
                let (lines, bk, pr) = match &engine {
                    None => (natural_lines, 0, false),
                    Some(eng) => {
                        let mut ob = SinkEtObserver {
                            sink: &mut *sink,
                            cycle: att,
                        };
                        let c =
                            eng.evaluate_obs(e.id, query, e.threshold, &mut et_scratch, &mut ob);
                        (c.lines, c.backup_lines, c.pruned)
                    }
                };
                pruned = pr;
                backup = bk;
                let rank = placements[0].rank;
                lines_by_placement.push((rank, lines));
            } else {
                // Vertical sub-vectors: local ET with proportional
                // threshold shares, aggregated soundly by the host
                // (see `etplan`).
                match &engine {
                    None => {
                        for p in &placements {
                            let lines = (p.dims.len() * elem_bytes).div_ceil(64);
                            lines_by_placement.push((p.rank, lines));
                        }
                    }
                    Some(eng) => {
                        let chunks: Vec<std::ops::Range<usize>> =
                            placements.iter().map(|p| p.dims.clone()).collect();
                        let mut ob = SinkEtObserver {
                            sink: &mut *sink,
                            cycle: att,
                        };
                        let m = crate::etplan::evaluate_chunked_obs(
                            eng,
                            e.id,
                            query,
                            &chunks,
                            e.threshold,
                            &mut et_scratch,
                            &mut ob,
                        );
                        pruned = m.pruned;
                        backup = m.backup_lines;
                        resumed |= m.resumed;
                        for (p, l) in placements.iter().zip(&m.lines) {
                            lines_by_placement.push((p.rank, *l));
                        }
                    }
                }
            }
            let total: usize = lines_by_placement.iter().map(|&(_, l)| l).sum::<usize>() + backup;
            if e.accepted {
                qs.effectual_lines += (total - backup) as u64;
            } else {
                qs.ineffectual_lines += (total - backup) as u64;
            }
            qs.backup_lines += backup as u64;
            qs.total_evals += 1;
            if pruned {
                qs.pruned_evals += 1;
            }
            qs.ndp_compute_lines += total as u64;
            for &(rank, lines) in &lines_by_placement {
                loads.add(rank, lines as u64);
            }
            planned.push(EvalPlanned {
                id: e.id,
                lines_by_placement,
                backup,
            });
        }
        if design.is_ndp() {
            // Offload: upload query to first-touched ranks, then
            // set-search writes (≤ 8 tasks each).
            let mut tasks_per_rank: HashMap<usize, usize> = HashMap::new();
            for p in &planned {
                for &(rank, _) in &p.lines_by_placement {
                    *tasks_per_rank.entry(rank).or_insert(0) += 1;
                }
            }
            // §5.2: set-search is issued before set-query, so the
            // NDP unit starts fetching the search vector while the
            // query uploads — the upload overlaps the batch below.
            let mut offload_cpu = 0u64;
            let mut upload_cpu = 0u64;
            for (&rank, &tasks) in &tasks_per_rank {
                if !uploaded[rank] {
                    uploaded[rank] = true;
                    upload_cpu += cpu.query_upload_cycles(query_bytes);
                }
                offload_cpu += cpu.offload_cycles(tasks);
            }
            qs.host_cpu_cycles += offload_cpu + upload_cpu;
            let offload_mem = cpu.to_mem_cycles(offload_cpu, mem_clock);
            let upload_mem = cpu.to_mem_cycles(upload_cpu, mem_clock);
            clock += offload_mem;
            bd.offload += offload_mem;
            span_adv(sink, &mut att, Phase::Offload, offload_mem);

            // Build sub-tasks and execute.
            let mut subs: Vec<SubTask> = Vec::new();
            for p in &planned {
                for (pi, &(rank, lines)) in p.lines_by_placement.iter().enumerate() {
                    let base =
                        (p.id as u64) * (full_lines as u64 + natural_lines as u64 + 2) + pi as u64;
                    subs.push(SubTask::new(
                        rank,
                        lines + if pi == 0 { p.backup } else { 0 },
                        base,
                        ndp_compute_delay,
                    ));
                }
            }
            let rb0 = if sink.enabled() {
                Some(mem.stats().clone())
            } else {
                None
            };
            let t0 = clock.max(mem.now());
            // Batch events are rebased to the attribution clock at the
            // start of the dist_comp span emitted below.
            let att_batch = att;
            let mut finish = run_ndp_batch(
                &mut mem,
                &mut subs,
                QSHRS_PER_UNIT,
                &mut req_base,
                t0,
                sink,
                att_batch,
            );
            // The overlapped query upload may outlast the fetches.
            let mut upload_extra = 0;
            if t0 + upload_mem > finish {
                let extra = t0 + upload_mem - finish;
                finish += extra;
                bd.offload += extra;
                upload_extra = extra;
                if mem.now() < finish && !mem.busy() {
                    mem.fast_forward_to(finish).expect("idle fast-forward");
                }
            }
            // A residual round is an extra host round-trip: the host
            // polls the partial bounds, re-offloads to the terminated
            // ranks, and waits for another rank-local fetch burst.
            if resumed {
                finish +=
                    cpu.to_mem_cycles(cpu.offload_cycles(8) + cpu.poll_cycles(), mem_clock) + 200;
                if mem.now() < finish && !mem.busy() {
                    mem.fast_forward_to(finish).expect("idle fast-forward");
                }
                sink.event(att_batch + (finish - t0), EventKind::EtResumed);
            }
            bd.dist_comp += finish - t0;
            // dist_comp first so the batch's rebased events fall inside
            // it; the upload-overshoot share of offload follows.
            span_adv(sink, &mut att, Phase::DistComp, finish - t0);
            span_adv(sink, &mut att, Phase::Offload, upload_extra);
            if trace_dram {
                drain_dram_commands(&mut mem, sink, att_batch, t0);
            }
            if let Some(s0) = rb0 {
                let s1 = mem.stats().clone();
                row_buffer_delta(sink, att, &s0, &s1);
            }

            // Polling. Tasks on one rank occupy distinct QSHRs and
            // run in parallel, so the expected batch latency is that
            // of one task; stragglers are caught by the retry period.
            let actual = finish - t0;
            let stats = match &polling {
                PollingPolicy::Conventional { .. } => polling.observe(1, actual),
                PollingPolicy::Adaptive { retry_period, .. } => {
                    // Poll slightly ahead of the expectation and let
                    // short retries catch the tail: wasted delay stays
                    // below one retry period on average. The first
                    // poll never waits longer than the conventional
                    // period, so adaptive polling cannot lose to it on
                    // short batches either.
                    let first = (batch_ewma.ceil() as u64).min(240);
                    batch_ewma = 0.7 * batch_ewma + 0.3 * actual as f64;
                    PollingStats::observe_at(first, (*retry_period).min(40), actual)
                }
            };
            qs.polls += stats.polls as u64;
            // Intermediate "not ready" polls only read a status word;
            // result parsing happens once, on the final poll.
            let poll_cpu = cpu.costs.offload_command * (stats.polls as u64 - 1) + cpu.poll_cycles();
            qs.host_cpu_cycles += poll_cpu;
            let observe_abs = t0 + stats.observed_at;
            let after_poll = observe_abs + cpu.to_mem_cycles(poll_cpu, mem_clock);
            bd.result_collect += after_poll - finish;
            span_adv(sink, &mut att, Phase::ResultCollect, after_poll - finish);
            sink.event(
                att,
                EventKind::PollRounds {
                    polls: stats.polls,
                    wasted: stats.wasted_delay.min(u32::MAX as u64) as u32,
                },
            );
            clock = after_poll;
            if mem.now() < clock && !mem.busy() {
                mem.fast_forward_to(clock).expect("idle fast-forward");
            }
            clock = clock.max(mem.now());
        } else {
            // CPU path: comparisons execute serially on one core;
            // within one comparison the vector lines stream with
            // memory-level parallelism. Two additional effects make
            // the host memory-bound as in the paper's measurements:
            // every vector fetch traverses the cache hierarchy (an
            // LLC miss costs its lookup latency before DRAM), and the
            // four channels are shared by all sixteen active cores,
            // so per-core streaming bandwidth is capped at
            // channels/cores of the peak.
            let hop_start = clock;
            let att_hop = att;
            let mem_hop0 = mem.now();
            let rb0 = if sink.enabled() {
                Some(mem.stats().clone())
            } else {
                None
            };
            let llc_mem = cpu.to_mem_cycles(60, mem_clock);
            let burst = config.dram.timing.burst_cycles;
            let contention = cpu.cores as u64 * burst / config.dram.channels as u64;
            for p in &planned {
                let lines: usize =
                    p.lines_by_placement.iter().map(|&(_, l)| l).sum::<usize>() + p.backup;
                if lines > 0 {
                    if mem.now() < clock && !mem.busy() {
                        mem.fast_forward_to(clock).expect("idle fast-forward");
                    }
                    let start = mem.now();
                    let base_line = (p.id as u64) * (full_lines as u64 + natural_lines as u64 + 2);
                    for l in 0..lines as u64 {
                        let addr = (base_line + l) * 64;
                        let req = Request::new(req_base, AccessKind::Read, addr, Port::Host);
                        req_base += 1;
                        let accepted = mem.enqueue(req).is_ok();
                        debug_assert!(accepted, "host fetch dropped: queue full after wait");
                        let _ = accepted;
                        // Respect queue capacity. Queue slots free only
                        // at command-issue events, so skipping dead
                        // cycles between them is exact.
                        mem.advance_until_accept((base_line + l + 1) * 64, Port::Host);
                    }
                    mem.drain_all();
                    mem.take_completed();
                    let drained = mem.now() - start;
                    let bw_floor = lines as u64 * contention;
                    clock += drained.max(bw_floor) + llc_mem;
                    if mem.now() < clock && !mem.busy() {
                        mem.fast_forward_to(clock).expect("idle fast-forward");
                    }
                    clock = clock.max(mem.now());
                }
                let c = cpu.distance_compute_cycles(lines.max(1));
                qs.host_cpu_cycles += c;
                clock += cpu.to_mem_cycles(c, mem_clock);
            }
            bd.dist_comp += clock - hop_start;
            span_adv(sink, &mut att, Phase::DistComp, clock - hop_start);
            if trace_dram {
                drain_dram_commands(&mut mem, sink, att_hop, mem_hop0);
            }
            if let Some(s0) = rb0 {
                let s1 = mem.stats().clone();
                row_buffer_delta(sink, att, &s0, &s1);
            }
        }
    }

    let _ = clock;
    debug_assert_eq!(att, bd.total(), "attribution clock mirrors breakdown");
    sink.counter("replay.queries", 1);
    sink.counter("replay.evals", qs.total_evals);
    sink.counter("replay.evals_pruned", qs.pruned_evals);
    sink.counter("replay.lines_effectual", qs.effectual_lines);
    sink.counter("replay.lines_ineffectual", qs.ineffectual_lines);
    sink.counter("replay.lines_backup", qs.backup_lines);
    sink.counter("replay.polls", qs.polls);
    sink.counter("replay.host_cpu_cycles", qs.host_cpu_cycles);
    {
        let st = mem.stats();
        sink.counter("dram.row_hits", st.row_hits);
        sink.counter("dram.row_misses", st.row_misses);
        sink.counter("dram.row_conflicts", st.row_conflicts);
    }
    sink.record("replay.query_cycles", bd.total());
    qs.breakdown = bd;
    qs.rank_counts = mem.rank_command_counts();
    qs.rank_loads = loads.loads().to_vec();
    crate::parallel::record_mem_cycles(&mem);
    qs
}

/// Translate the sampled termination histogram (bit positions) into a
/// per-comparison line-count histogram under the design's schedule.
fn line_histogram(plan: &DesignPlan, workload: &Workload, natural_lines: usize) -> Vec<(u64, f64)> {
    let dim = workload.data.dim();
    match &plan.et {
        None => vec![(natural_lines as u64, 1.0)],
        Some(et) => {
            let sched = &et.schedule;
            let cumulative = sched.cumulative_bits();
            let prefix = sched.prefix_len();
            let mut hist: HashMap<u64, f64> = HashMap::new();
            let full = sched.total_lines(dim) as u64;
            for (i, &p) in workload.profile.et_histogram.iter().enumerate() {
                if p <= 0.0 {
                    continue;
                }
                let bits = (i + 1) as u32;
                let payload = bits.saturating_sub(prefix);
                // Lines until the payload position is covered.
                let mut lines = 0u64;
                for (s, &c) in cumulative.iter().enumerate() {
                    lines += sched.lines_in_step(s, dim) as u64;
                    if c >= payload {
                        break;
                    }
                }
                *hist.entry(lines.min(full)).or_insert(0.0) += p;
            }
            if workload.profile.never_frac > 0.0 {
                *hist.entry(full).or_insert(0.0) += workload.profile.never_frac;
            }
            let mut v: Vec<(u64, f64)> = hist.into_iter().collect();
            v.sort_by_key(|&(l, _)| l);
            v
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ansmet_vecdata::SynthSpec;

    fn small_workload() -> Workload {
        Workload::prepare(&SynthSpec::sift().scaled(500, 2), 10, Some(40))
    }

    #[test]
    fn ndp_base_beats_cpu_base() {
        let wl = small_workload();
        let cfg = SystemConfig::default();
        let cpu = run_design(Design::CpuBase, &wl, &cfg);
        let ndp = run_design(Design::NdpBase, &wl, &cfg);
        assert!(
            ndp.total_cycles < cpu.total_cycles,
            "NDP {} vs CPU {}",
            ndp.total_cycles,
            cpu.total_cycles
        );
    }

    #[test]
    fn et_reduces_lines_and_cycles() {
        let wl = small_workload();
        let cfg = SystemConfig::default();
        let base = run_design(Design::NdpBase, &wl, &cfg);
        let et = run_design(Design::NdpEt, &wl, &cfg);
        assert!(et.total_lines() < base.total_lines());
        assert!(et.pruned_evals > 0);
        // SIFT is the paper's weakest ET case (~10 % gain); on a tiny test
        // workload allow a small noise band around parity.
        assert!(et.total_cycles as f64 <= base.total_cycles as f64 * 1.05);
    }

    #[test]
    fn breakdown_sums_to_total() {
        let wl = small_workload();
        let cfg = SystemConfig::default();
        let r = run_design(Design::NdpEtOpt, &wl, &cfg);
        assert_eq!(r.breakdown.total(), r.total_cycles);
        assert!(r.breakdown.traversal > 0);
        assert!(r.breakdown.dist_comp > 0);
    }

    #[test]
    fn fetch_utilization_improves_with_et() {
        let wl = small_workload();
        let cfg = SystemConfig::default();
        let base = run_design(Design::NdpBase, &wl, &cfg);
        let opt = run_design(Design::NdpEtOpt, &wl, &cfg);
        assert!(
            opt.fetch_utilization() >= base.fetch_utilization(),
            "{} vs {}",
            opt.fetch_utilization(),
            base.fetch_utilization()
        );
    }

    #[test]
    fn traced_run_matches_untraced_and_attributes_every_cycle() {
        let wl = small_workload();
        let cfg = SystemConfig::default();
        let plain = run_design(Design::NdpEtOpt, &wl, &cfg);
        let (traced, rec) =
            run_design_traced(Design::NdpEtOpt, &wl, &cfg, &TraceOptions::default());
        // Instrumentation observes, never steers.
        assert_eq!(plain, traced);
        assert_eq!(rec.queries.len(), wl.traces.len());
        // Phase sums tile each query's end-to-end latency exactly.
        let refs: Vec<&ansmet_obs::QueryTrace> = rec.queries.iter().collect();
        ansmet_obs::attribution_check(&refs).expect("spans tile total cycles");
        // The run-wide shard saw every query.
        assert_eq!(
            rec.metrics.counter("replay.queries"),
            wl.traces.len() as u64
        );
        assert!(rec.metrics.counter("replay.evals") > 0);
    }

    #[test]
    fn dram_command_trace_events_present_when_enabled() {
        let wl = small_workload();
        let cfg = SystemConfig::default();
        let opts = TraceOptions {
            dram_commands: true,
            ..TraceOptions::default()
        };
        let (_, rec) = run_design_traced(Design::NdpEt, &wl, &cfg, &opts);
        let has_cmd = rec.queries.iter().any(|t| {
            t.events
                .iter()
                .any(|e| matches!(e.kind, ansmet_obs::EventKind::DramCommand { .. }))
        });
        assert!(has_cmd, "expected DRAM command events");
    }

    #[test]
    fn rank_loads_populated_for_ndp() {
        let wl = small_workload();
        let cfg = SystemConfig::default();
        let r = run_design(Design::NdpBase, &wl, &cfg);
        assert_eq!(r.rank_loads.len(), 32);
        assert!(r.rank_loads.iter().sum::<u64>() > 0);
    }
}
