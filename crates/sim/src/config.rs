//! System configuration (Table 1) shared by all designs.

use ansmet_dram::DramConfig;
use ansmet_host::CpuModel;
use ansmet_ndp::{ComputeUnit, PartitionScheme, PollingPolicy};

/// How many worker threads the trace replay may use.
///
/// Queries are independent traces replayed on private memory-system
/// state, so any thread count produces bit-identical aggregate results;
/// this knob only trades wall-clock time for cores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Parallelism {
    /// Use the process-wide default set by
    /// [`crate::parallel::set_default_threads`] (1 unless overridden,
    /// e.g. by the experiments binary's `--threads` flag).
    #[default]
    Auto,
    /// Use exactly this many worker threads (clamped to at least 1).
    Threads(usize),
}

impl Parallelism {
    /// Resolve to a concrete thread count.
    pub fn resolve(self) -> usize {
        match self {
            Parallelism::Auto => crate::parallel::default_threads(),
            Parallelism::Threads(n) => n.max(1),
        }
    }
}

/// Full-system parameters.
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// DRAM organization and timing.
    pub dram: DramConfig,
    /// Host CPU model.
    pub cpu: CpuModel,
    /// NDP distance computing unit.
    pub compute: ComputeUnit,
    /// Vector data partitioning across ranks.
    pub partition: PartitionScheme,
    /// Result polling policy for NDP designs (`None` selects the adaptive
    /// policy built from the workload's sampling profile).
    pub polling: Option<PollingPolicy>,
    /// Replicate hot vectors (top HNSW layers / IVF centroids) to all
    /// rank groups.
    pub replicate_hot: bool,
    /// Worker threads for query-parallel trace replay.
    pub parallelism: Parallelism,
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig {
            dram: DramConfig::ddr5_4800(),
            cpu: CpuModel::default(),
            compute: ComputeUnit::default(),
            partition: PartitionScheme::Hybrid { subvec_bytes: 1024 },
            polling: None,
            replicate_hot: true,
            parallelism: Parallelism::Auto,
        }
    }
}

impl SystemConfig {
    /// Total NDP units (= ranks).
    pub fn ndp_units(&self) -> usize {
        self.dram.total_ranks()
    }

    /// Scale the number of NDP units/ranks (Table 3).
    pub fn with_ndp_units(mut self, units: usize) -> Self {
        self.dram = self.dram.with_total_ranks(units);
        self
    }

    /// Use a specific partitioning scheme (Fig. 12).
    pub fn with_partition(mut self, scheme: PartitionScheme) -> Self {
        self.partition = scheme;
        self
    }

    /// Use conventional fixed-period polling (Fig. 9).
    pub fn with_conventional_polling(mut self) -> Self {
        self.polling = Some(PollingPolicy::conventional_100ns());
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_table1() {
        let c = SystemConfig::default();
        assert_eq!(c.ndp_units(), 32);
        assert_eq!(c.cpu.cores, 16);
        assert_eq!(c.cpu.clock_mhz, 3200);
        assert_eq!(c.compute.lanes, 16);
        assert!(matches!(
            c.partition,
            PartitionScheme::Hybrid { subvec_bytes: 1024 }
        ));
    }

    #[test]
    fn ndp_scaling() {
        let c = SystemConfig::default().with_ndp_units(64);
        assert_eq!(c.ndp_units(), 64);
    }
}
