//! Plain-text table rendering for experiment output.

/// A simple left-aligned text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table with a title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render to a string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:<w$}", c, w = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// Format a ratio as `1.23x`.
pub fn speedup(x: f64) -> String {
    format!("{x:.2}x")
}

/// Format a fraction as a percentage.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["long-name".into(), "2".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("long-name"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn bad_width_panics() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn format_helpers() {
        assert_eq!(speedup(5.264), "5.26x");
        assert_eq!(pct(0.123), "12.3%");
    }
}
