//! Prepared workloads: dataset + queries + index + functional search
//! traces + ground truth + sampling profile, shared by every design's
//! timing replay.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use ansmet_core::{SamplingConfig, SamplingProfile};
use ansmet_index::{ExactOracle, Hnsw, HnswParams, Ivf, IvfParams, SearchTrace};
use ansmet_vecdata::{recall::mean_recall_at_k, Dataset, GroundTruth, SynthSpec};

/// Which index structure drives the traversal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexKind {
    /// Hierarchical Navigable Small Worlds (the paper's main index).
    Hnsw,
    /// Inverted-file clustering (Fig. 1).
    Ivf,
}

/// A fully-prepared benchmark workload.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Dataset name (Table 2).
    pub name: String,
    /// The database.
    pub data: Dataset,
    /// Query vectors.
    pub queries: Vec<Vec<f32>>,
    /// The HNSW index (present for [`IndexKind::Hnsw`] workloads).
    pub hnsw: Option<Hnsw>,
    /// The IVF index (present for [`IndexKind::Ivf`] workloads).
    pub ivf: Option<Ivf>,
    /// Result-set size k.
    pub k: usize,
    /// Beam width (efSearch / k′) or nprobe, tuned for ≥ 80 % recall
    /// unless given.
    pub ef: usize,
    /// Functional per-query traces (exact search; identical across
    /// designs by the losslessness of early termination).
    pub traces: Vec<SearchTrace>,
    /// Per-query approximate result ids.
    pub results: Vec<Vec<usize>>,
    /// Exact ground truth.
    pub ground_truth: GroundTruth,
    /// Achieved recall@k.
    pub recall: f64,
    /// Sampling-based preprocessing profile (§4.2).
    pub profile: SamplingProfile,
    /// Outlier budget for prefix elimination (paper default 0.1 %).
    pub outlier_frac: f64,
    /// Wall-clock seconds spent building the index.
    pub graph_build_secs: f64,
}

impl Workload {
    /// Generate, index (HNSW), trace, and profile a workload.
    ///
    /// When `ef` is `None`, the beam width is tuned upward until
    /// recall@k ≥ 80 % (as the paper does).
    pub fn prepare(spec: &SynthSpec, k: usize, ef: Option<usize>) -> Workload {
        Self::prepare_with_index(spec, k, ef, IndexKind::Hnsw)
    }

    /// Memoized [`Workload::prepare`]: preparation is deterministic in
    /// `(spec, k, ef, kind)` (seeded generation, deterministic index
    /// build, exact traces), so identical requests return the same
    /// shared workload instead of rebuilding the index and profile.
    /// Experiment drivers that never mutate the workload (everything
    /// except the Fig. 8 `retrace` sweep) go through here; at quick
    /// scale this removes the dominant share of suite wall-clock.
    pub fn prepare_shared(spec: &SynthSpec, k: usize, ef: Option<usize>) -> Arc<Workload> {
        Self::prepare_shared_with_index(spec, k, ef, IndexKind::Hnsw)
    }

    /// An owned, mutable workload cloned from the shared cache.
    ///
    /// For experiments that mutate their workload (the Fig. 8 `retrace`
    /// sweep, query-mix rewrites): preparation goes through the
    /// memoized cache, so a spec another experiment already built costs
    /// one clone instead of a full index + profile rebuild, and the
    /// clone is bit-identical to a fresh [`Workload::prepare`].
    pub fn prepare_owned(spec: &SynthSpec, k: usize, ef: Option<usize>) -> Workload {
        (*Self::prepare_shared(spec, k, ef)).clone()
    }

    /// Memoized [`Workload::prepare_with_index`].
    pub fn prepare_shared_with_index(
        spec: &SynthSpec,
        k: usize,
        ef: Option<usize>,
        kind: IndexKind,
    ) -> Arc<Workload> {
        static CACHE: OnceLock<Mutex<HashMap<String, Arc<Workload>>>> = OnceLock::new();
        let key = format!("{spec:?}|k={k}|ef={ef:?}|{kind:?}");
        let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
        if let Some(wl) = cache.lock().expect("workload cache poisoned").get(&key) {
            return Arc::clone(wl);
        }
        // Build outside the lock: preparation is the expensive part, and
        // a duplicate concurrent build is deterministic anyway — last
        // insert wins, both Arcs describe identical workloads.
        let wl = Arc::new(Self::prepare_with_index(spec, k, ef, kind));
        cache
            .lock()
            .expect("workload cache poisoned")
            .insert(key, Arc::clone(&wl));
        wl
    }

    /// Generate, index, trace, and profile with a chosen index kind.
    pub fn prepare_with_index(
        spec: &SynthSpec,
        k: usize,
        ef: Option<usize>,
        kind: IndexKind,
    ) -> Workload {
        let (data, queries) = spec.generate();
        let t0 = std::time::Instant::now();
        let (hnsw, ivf) = match kind {
            IndexKind::Hnsw => {
                let params = if data.len() <= 5_000 {
                    HnswParams {
                        ef_construction: 120,
                        ..HnswParams::default()
                    }
                } else {
                    HnswParams::default()
                };
                (Some(Hnsw::build(&data, params)), None)
            }
            IndexKind::Ivf => (None, Some(Ivf::build(&data, IvfParams::default()))),
        };
        let graph_build_secs = t0.elapsed().as_secs_f64();

        let ground_truth = GroundTruth::compute(&data, &queries, k);
        let n_samples = 100.min(data.len() / 2).max(2);
        let profile =
            SamplingProfile::build(&data, &SamplingConfig::default().with_samples(n_samples));

        let mut wl = Workload {
            name: data.name().to_string(),
            data,
            queries,
            hnsw,
            ivf,
            k,
            ef: ef.unwrap_or(k.max(10)),
            traces: Vec::new(),
            results: Vec::new(),
            ground_truth,
            recall: 0.0,
            profile,
            outlier_frac: 0.001,
            graph_build_secs,
        };
        loop {
            wl.retrace(wl.ef);
            if ef.is_some() || wl.recall >= 0.80 || wl.ef >= wl.data.len() {
                break;
            }
            wl.ef *= 2;
        }
        wl
    }

    /// Assemble a workload from an existing dataset and query list (no
    /// synthetic generation): build the HNSW index, compute ground
    /// truth, profile, and run the functional traced searches at the
    /// given beam width.
    ///
    /// This is the entry point for *derived* workloads whose data is a
    /// slice of a larger dataset — the sharded cluster plane
    /// (`ansmet-cluster`) gives every shard its own index, traces, and
    /// sampling profile over its partition through here. The beam width
    /// is taken as given (no recall-driven tuning loop), so a caller
    /// that reuses a tuned monolithic `ef` gets bit-identical traces
    /// for the single-shard case.
    pub fn from_parts(data: Dataset, queries: Vec<Vec<f32>>, k: usize, ef: usize) -> Workload {
        let t0 = std::time::Instant::now();
        let params = if data.len() <= 5_000 {
            HnswParams {
                ef_construction: 120,
                ..HnswParams::default()
            }
        } else {
            HnswParams::default()
        };
        let hnsw = Hnsw::build(&data, params);
        let graph_build_secs = t0.elapsed().as_secs_f64();

        let ground_truth = GroundTruth::compute(&data, &queries, k);
        let n_samples = 100.min(data.len() / 2).max(2);
        let profile =
            SamplingProfile::build(&data, &SamplingConfig::default().with_samples(n_samples));

        let mut wl = Workload {
            name: data.name().to_string(),
            data,
            queries,
            hnsw: Some(hnsw),
            ivf: None,
            k,
            ef,
            traces: Vec::new(),
            results: Vec::new(),
            ground_truth,
            recall: 0.0,
            profile,
            outlier_frac: 0.001,
            graph_build_secs,
        };
        wl.retrace(ef);
        wl
    }

    /// Re-run the functional searches with a new beam width / nprobe,
    /// refreshing traces, results, and recall (used for the Fig. 8
    /// recall-QPS sweep).
    pub fn retrace(&mut self, ef: usize) {
        self.ef = ef;
        let mut traces = Vec::with_capacity(self.queries.len());
        let mut results = Vec::with_capacity(self.queries.len());
        let mut oracle = ExactOracle::new(&self.data);
        let mut scratch = ansmet_index::SearchScratch::new(self.data.len());
        for q in &self.queries {
            let (r, t) = match (&self.hnsw, &self.ivf) {
                (Some(h), _) => h.search_traced_with(q, self.k, ef, &mut oracle, &mut scratch),
                (None, Some(i)) => {
                    let nprobe = ef.clamp(1, i.n_lists());
                    i.search_traced_with(q, self.k, nprobe, &mut oracle, &mut scratch)
                }
                (None, None) => unreachable!("workload always has an index"),
            };
            results.push(r.ids());
            traces.push(t);
        }
        self.recall = mean_recall_at_k(&results, &self.ground_truth.ids, self.k);
        self.traces = traces;
        self.results = results;
    }

    /// Ids of the paper's "hot vectors": nodes of the upper HNSW layers
    /// (replicated to every rank group in §5.3). Empty for IVF, whose
    /// centroids are not database vectors.
    pub fn hot_ids(&self) -> Vec<usize> {
        match &self.hnsw {
            Some(h) => h.nodes_at_or_above_layer(1),
            None => Vec::new(),
        }
    }

    /// Mean comparisons per query (the paper reports e.g. 617 vectors per
    /// query for HNSW-SIFT).
    pub fn mean_evals_per_query(&self) -> f64 {
        let total: usize = self.traces.iter().map(SearchTrace::total_evals).sum();
        total as f64 / self.traces.len().max(1) as f64
    }

    /// Mean rejection rate across queries (Fig. 1's "rejected" fraction).
    pub fn mean_rejection_rate(&self) -> f64 {
        let s: f64 = self.traces.iter().map(SearchTrace::rejection_rate).sum();
        s / self.traces.len().max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prepare_small_sift() {
        let wl = Workload::prepare(&SynthSpec::sift().scaled(600, 4), 10, None);
        assert_eq!(wl.queries.len(), 4);
        assert_eq!(wl.traces.len(), 4);
        assert!(wl.recall >= 0.8, "recall {}", wl.recall);
        assert!(wl.mean_evals_per_query() > 10.0);
        assert!(wl.mean_rejection_rate() > 0.1);
        assert!(wl.graph_build_secs > 0.0);
        assert!(!wl.hot_ids().is_empty());
    }

    #[test]
    fn fixed_ef_is_respected() {
        let wl = Workload::prepare(&SynthSpec::sift().scaled(300, 2), 5, Some(17));
        assert_eq!(wl.ef, 17);
    }

    #[test]
    fn ivf_workload_traces() {
        let wl = Workload::prepare_with_index(
            &SynthSpec::sift().scaled(400, 3),
            10,
            None,
            IndexKind::Ivf,
        );
        assert!(wl.ivf.is_some());
        assert!(wl.hnsw.is_none());
        assert!(wl.recall >= 0.8, "recall {}", wl.recall);
        assert!(wl.hot_ids().is_empty());
    }

    #[test]
    fn from_parts_matches_prepare_at_fixed_ef() {
        let spec = SynthSpec::sift().scaled(400, 3);
        let wl = Workload::prepare(&spec, 10, Some(40));
        let (data, queries) = spec.generate();
        let parts = Workload::from_parts(data, queries, 10, 40);
        assert_eq!(parts.results, wl.results);
        assert_eq!(parts.recall, wl.recall);
        assert_eq!(parts.traces.len(), wl.traces.len());
        assert_eq!(parts.ef, 40);
    }

    #[test]
    fn retrace_changes_ef_and_recall() {
        let mut wl = Workload::prepare(&SynthSpec::sift().scaled(500, 3), 10, Some(10));
        let r_small = wl.recall;
        wl.retrace(120);
        assert_eq!(wl.ef, 120);
        assert!(wl.recall >= r_small);
    }
}
