//! Multi-stream throughput simulation.
//!
//! [`run_design`](crate::timing::run_design) measures single-query
//! latency: one search thread, one hop in flight. Real deployments run
//! one query per host core (Table 1: 16 cores), so the rank-level
//! parallelism of many NDP units is only exercised when several queries'
//! comparison batches are in flight together — which is where the
//! paper's Table 3 scaling (8 → 64 units) comes from.
//!
//! This module models that regime with *wave scheduling*: up to
//! `streams` queries progress in lock-step; each wave merges one hop
//! from every active query into a single NDP batch executed on the
//! shared memory system. Host-side costs of different streams run on
//! different cores, so a wave pays only the slowest stream's host work.

use std::collections::HashMap;

use ansmet_core::EtEngine;
use ansmet_dram::MemorySystem;
use ansmet_index::HopKind;
use ansmet_ndp::{LoadTracker, Partitioner, ReplicaSet};

use ansmet_obs::{NoopSink, TraceSink};

use crate::config::SystemConfig;
use crate::design::{Design, DesignPlan};
use crate::timing::{row_buffer_delta, run_ndp_batch, SubTask};
use crate::workload::Workload;

/// Result of a throughput run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThroughputResult {
    /// The design simulated.
    pub design: Design,
    /// Wall-clock memory cycles to finish every query.
    pub total_cycles: u64,
    /// Number of queries completed.
    pub queries: usize,
    /// Concurrent streams used.
    pub streams: usize,
}

impl ThroughputResult {
    /// Queries per second at `mem_clock_mhz`.
    pub fn qps(&self, mem_clock_mhz: u64) -> f64 {
        let secs = self.total_cycles as f64 / (mem_clock_mhz as f64 * 1e6);
        self.queries as f64 / secs.max(1e-12)
    }
}

/// Cycle accounting for one executed wave batch.
///
/// Returned by [`WaveContext::execute`]: `total_cycles` is how long the
/// batch occupied the NDP device, and `per_query_cycles[i]` is the cycle
/// (relative to batch start) at which the `i`-th query of the batch
/// retired — its last hop's wave closed and its results were polled.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchExecution {
    /// Device-occupancy cycles for the whole batch.
    pub total_cycles: u64,
    /// Per-query retire cycle, aligned with the `query_ids` argument.
    pub per_query_cycles: Vec<u64>,
}

/// Prepared wave-model state for one `(design, workload, config)`
/// triple, reusable across many batches.
///
/// The offline throughput experiment runs one big batch over the whole
/// workload; the online serving layer (`ansmet-serve`) forms small
/// dynamic batches from queued arrivals and executes each through
/// [`WaveContext::execute`]. Each execution replays the batch on fresh
/// memory/NDP state, so a batch's cost depends only on its member
/// queries — never on what the device ran before. That independence is
/// the serving determinism contract.
pub struct WaveContext<'a> {
    design: Design,
    workload: &'a Workload,
    config: &'a SystemConfig,
    partitioner: Partitioner,
    engine: Option<EtEngine<'a>>,
    replicas: ReplicaSet,
    natural_lines: usize,
    full_lines: usize,
    ndp_compute_delay: u64,
    query_bytes: usize,
    elem_bytes: usize,
}

impl<'a> WaveContext<'a> {
    /// Prepare the wave executor.
    ///
    /// # Panics
    ///
    /// Panics for CPU designs (their throughput is `cores ×` the latency
    /// result, already contention-modeled).
    pub fn new(design: Design, workload: &'a Workload, config: &'a SystemConfig) -> Self {
        assert!(design.is_ndp(), "throughput waves model the NDP designs");
        let data = &workload.data;
        let dim = data.dim();
        let elem_bytes = data.dtype().bytes();
        let partitioner = Partitioner::new(config.partition, config.ndp_units(), dim, elem_bytes);
        let layout_dim = partitioner.dims_per_subvector();
        let plan = DesignPlan::build_for_layout(design, workload, layout_dim);
        let engine = plan
            .et
            .as_ref()
            .map(|et| EtEngine::new(&workload.data, et.clone()));
        let natural_lines = data.vector_lines();
        let full_lines = engine
            .as_ref()
            .map(|e| e.full_lines())
            .unwrap_or(natural_lines);
        let replicas = if config.replicate_hot {
            ReplicaSet::new(workload.hot_ids())
        } else {
            ReplicaSet::new([])
        };
        let ndp_compute_delay = config
            .compute
            .to_mem_cycles(config.compute.reduce_cycles, config.dram.clock_mhz)
            .max(1);
        WaveContext {
            design,
            workload,
            config,
            partitioner,
            engine,
            replicas,
            natural_lines,
            full_lines,
            ndp_compute_delay,
            query_bytes: (dim * elem_bytes).min(1024),
            elem_bytes,
        }
    }

    /// The design this context executes.
    pub fn design(&self) -> Design {
        self.design
    }

    /// Execute the queries named by `query_ids` (indices into the
    /// workload's trace list) as one cohort of lock-step waves on fresh
    /// device state, all in flight together from cycle 0.
    ///
    /// # Panics
    ///
    /// Panics if `query_ids` is empty or any index is out of range.
    pub fn execute(&self, query_ids: &[usize]) -> BatchExecution {
        assert!(!query_ids.is_empty(), "empty batch");
        self.execute_streams(query_ids, query_ids.len())
    }

    /// [`execute`](WaveContext::execute) with a [`TraceSink`] riding
    /// along: per-wave DRAM row-buffer outcome deltas are emitted as
    /// [`RowBuffer`](ansmet_obs::EventKind::RowBuffer) events rebased to
    /// `base_cycle` (the caller's serving-clock dispatch cycle). The
    /// sink observes, never steers: with [`NoopSink`] this is
    /// bit-identical to [`execute`](WaveContext::execute), and snapshot
    /// work is skipped entirely when the sink is disabled.
    pub fn execute_with_sink<S: TraceSink>(
        &self,
        query_ids: &[usize],
        sink: &mut S,
        base_cycle: u64,
    ) -> BatchExecution {
        assert!(!query_ids.is_empty(), "empty batch");
        self.execute_streams_sink(query_ids, query_ids.len(), sink, base_cycle)
    }

    /// Execute `query_ids` with at most `streams` in flight at once;
    /// finished streams refill from the remaining ids in order.
    pub fn execute_streams(&self, query_ids: &[usize], streams: usize) -> BatchExecution {
        self.execute_streams_sink(query_ids, streams, &mut NoopSink, 0)
    }

    /// [`execute_streams`](WaveContext::execute_streams) with a sink.
    fn execute_streams_sink<S: TraceSink>(
        &self,
        query_ids: &[usize],
        streams: usize,
        sink: &mut S,
        base_cycle: u64,
    ) -> BatchExecution {
        assert!(streams > 0, "need at least one stream");
        let workload = self.workload;
        let config = self.config;
        let mem_clock = config.dram.clock_mhz;
        let cpu = &config.cpu;
        let partitioner = &self.partitioner;
        let engine = &self.engine;
        let replicas = &self.replicas;
        let natural_lines = self.natural_lines;
        let full_lines = self.full_lines;
        let ndp_compute_delay = self.ndp_compute_delay;
        let query_bytes = self.query_bytes;
        let elem_bytes = self.elem_bytes;

        let mut loads = LoadTracker::new(config.ndp_units(), partitioner.group_size());
        let mut mem = MemorySystem::new(config.dram.clone());

        // Stream cursors: (position in `query_ids`, hop index).
        let mut next_pos = 0usize;
        let mut cursors: Vec<(usize, usize)> = Vec::new();
        let mut uploaded: HashMap<(usize, usize), ()> = HashMap::new();
        let mut req_base = 0u64;
        let mut clock = 0u64;
        let mut et_scratch = ansmet_core::EtScratch::new();
        let mut retire = vec![0u64; query_ids.len()];

        loop {
            // Refill streams.
            while cursors.len() < streams && next_pos < query_ids.len() {
                cursors.push((next_pos, 0));
                next_pos += 1;
            }
            if cursors.is_empty() {
                break;
            }

            // Build one wave: the current hop of every stream. Host work of
            // different streams runs on different cores; set-query uploads
            // overlap the fetch batch (§5.2). Waves in a real system are
            // de-synchronized, so serial host work is charged at its mean.
            let mut host_serial_sum = 0u64;
            let mut upload_max = 0u64;
            let mut subs: Vec<SubTask> = Vec::new();
            let mut tasks_per_rank: HashMap<usize, usize> = HashMap::new();
            for (pos, hop_idx) in cursors.iter_mut() {
                let qi = query_ids[*pos];
                let trace = &workload.traces[qi];
                let hop = &trace.hops[*hop_idx];
                let query = &workload.queries[qi];
                let accepted = hop.evals.iter().filter(|e| e.accepted).count();
                let mut host = cpu.hop_cycles(hop.evals.len(), accepted);
                let mut upload = 0u64;
                if hop.kind == HopKind::Centroid {
                    host += cpu.distance_compute_cycles(natural_lines) * hop.evals.len() as u64;
                } else {
                    for e in &hop.evals {
                        let placements = if replicas.contains(e.id) {
                            partitioner.placement_in_group(e.id, loads.least_loaded_group())
                        } else {
                            partitioner.placement(e.id)
                        };
                        let chunks: Vec<std::ops::Range<usize>> =
                            placements.iter().map(|p| p.dims.clone()).collect();
                        let (lines, backup): (Vec<usize>, usize) = match &engine {
                            None => (
                                placements
                                    .iter()
                                    .map(|p| (p.dims.len() * elem_bytes).div_ceil(64))
                                    .collect(),
                                0,
                            ),
                            Some(eng) => {
                                let m = crate::etplan::evaluate_chunked(
                                    eng,
                                    e.id,
                                    query,
                                    &chunks,
                                    e.threshold,
                                    &mut et_scratch,
                                );
                                (m.lines, m.backup_lines)
                            }
                        };
                        for (pi, (p, l)) in placements.iter().zip(&lines).enumerate() {
                            let rank = p.rank;
                            *tasks_per_rank.entry(rank).or_insert(0) += 1;
                            loads.add(rank, *l as u64);
                            let base = (e.id as u64)
                                * (full_lines as u64 + natural_lines as u64 + 2)
                                + pi as u64;
                            subs.push(SubTask::new(
                                rank,
                                l + if pi == 0 { backup } else { 0 },
                                base,
                                ndp_compute_delay,
                            ));
                            if uploaded.insert((*pos, rank), ()).is_none() {
                                upload += cpu.query_upload_cycles(query_bytes);
                            }
                        }
                    }
                    let evals = hop.evals.len();
                    host += cpu.offload_cycles(evals.max(1));
                }
                host_serial_sum += cpu.to_mem_cycles(host, mem_clock);
                upload_max = upload_max.max(cpu.to_mem_cycles(upload, mem_clock));
            }

            clock += host_serial_sum / cursors.len().max(1) as u64;
            if !subs.is_empty() {
                let t0 = clock.max(mem.now());
                let stats_before = if sink.enabled() {
                    Some(mem.stats().clone())
                } else {
                    None
                };
                let finish = run_ndp_batch(
                    &mut mem,
                    &mut subs,
                    ansmet_ndp::qshr::QSHRS_PER_UNIT,
                    &mut req_base,
                    t0,
                    &mut NoopSink,
                    t0,
                )
                .max(t0 + upload_max);
                if let Some(s0) = stats_before {
                    row_buffer_delta(sink, base_cycle + finish, &s0, mem.stats());
                }
                // One poll round closes the wave (streams poll in parallel on
                // their own cores).
                clock = finish + cpu.to_mem_cycles(cpu.poll_cycles(), mem_clock);
                if mem.now() < clock && !mem.busy() {
                    mem.fast_forward_to(clock).expect("idle fast-forward");
                }
                clock = clock.max(mem.now());
            }

            // Advance streams; retire finished queries at the close of
            // the wave that executed their last hop.
            cursors = cursors
                .into_iter()
                .filter_map(|(pos, hop_idx)| {
                    if hop_idx + 1 < workload.traces[query_ids[pos]].hops.len() {
                        Some((pos, hop_idx + 1))
                    } else {
                        retire[pos] = clock.max(1);
                        None
                    }
                })
                .collect();
        }

        crate::parallel::record_mem_cycles(&mem);
        BatchExecution {
            total_cycles: clock.max(1),
            per_query_cycles: retire,
        }
    }
}

/// Estimate device capacity (QPS) by executing the whole workload as one
/// saturated cohort through the wave model. The serving and resilience
/// experiments use this to place their offered load relative to what the
/// device can actually sustain.
pub fn saturated_capacity_qps(workload: &Workload, config: &SystemConfig, design: Design) -> f64 {
    let ctx = WaveContext::new(design, workload, config);
    let ids: Vec<usize> = (0..workload.traces.len()).collect();
    let exec = ctx.execute(&ids);
    let secs = exec.total_cycles as f64 / (config.dram.clock_mhz as f64 * 1e6);
    ids.len() as f64 / secs.max(1e-12)
}

/// Run `design` over `workload` with up to `streams` concurrent query
/// streams (NDP designs only).
///
/// # Panics
///
/// Panics for CPU designs (their throughput is `cores ×` the latency
/// result, already contention-modeled) or `streams == 0`.
pub fn run_design_throughput(
    design: Design,
    workload: &Workload,
    config: &SystemConfig,
    streams: usize,
) -> ThroughputResult {
    let ctx = WaveContext::new(design, workload, config);
    let n_queries = workload.traces.len();
    let ids: Vec<usize> = (0..n_queries).collect();
    let exec = ctx.execute_streams(&ids, streams);
    ThroughputResult {
        design,
        total_cycles: exec.total_cycles,
        queries: n_queries,
        streams,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ansmet_vecdata::SynthSpec;

    #[test]
    fn more_streams_more_throughput() {
        let wl = Workload::prepare(&SynthSpec::sift().scaled(600, 6), 10, Some(40));
        let cfg = SystemConfig::default();
        let one = run_design_throughput(Design::NdpBase, &wl, &cfg, 1);
        let many = run_design_throughput(Design::NdpBase, &wl, &cfg, 8);
        assert!(
            many.qps(2400) > one.qps(2400),
            "8 streams {:.0} qps vs 1 stream {:.0} qps",
            many.qps(2400),
            one.qps(2400)
        );
    }

    #[test]
    fn more_units_help_under_load() {
        let wl = Workload::prepare(&SynthSpec::gist().scaled(400, 6), 10, Some(40));
        let r8 = run_design_throughput(
            Design::NdpEtOpt,
            &wl,
            &SystemConfig::default().with_ndp_units(8),
            16,
        );
        let r32 = run_design_throughput(
            Design::NdpEtOpt,
            &wl,
            &SystemConfig::default().with_ndp_units(32),
            16,
        );
        assert!(
            r32.total_cycles <= r8.total_cycles,
            "32 units {} vs 8 units {}",
            r32.total_cycles,
            r8.total_cycles
        );
    }

    #[test]
    #[should_panic(expected = "NDP designs")]
    fn cpu_design_rejected() {
        let wl = Workload::prepare(&SynthSpec::sift().scaled(200, 1), 10, Some(20));
        run_design_throughput(Design::CpuBase, &wl, &SystemConfig::default(), 4);
    }
}
