//! Full-system ANSMET simulator: composes the DRAM simulator, the host
//! CPU model, the NDP hardware model, and the early-termination engine
//! into the nine evaluated designs of the paper (§6), and provides the
//! experiment drivers that regenerate every table and figure of §7.
//!
//! The methodology is trace-driven: each query executes once
//! *functionally* (HNSW/IVF beam search with exact distances, recording a
//! [`ansmet_index::SearchTrace`]), and the trace is then *replayed* on the
//! timing substrate once per design — charging each comparison exactly the
//! 64 B lines that design's fetch schedule and early-termination rule
//! would move, through the cycle-accurate DDR5 model. This is sound
//! because ANSMET's early termination is lossless: every design visits
//! the same vectors and produces the same results; only the data movement
//! and timing differ.
//!
//! # Example
//!
//! ```no_run
//! use ansmet_vecdata::SynthSpec;
//! use ansmet_sim::{Design, SystemConfig, Workload};
//!
//! let wl = Workload::prepare(&SynthSpec::sift().scaled(2000, 4), 10, None);
//! let cfg = SystemConfig::default();
//! let base = ansmet_sim::run_design(Design::CpuBase, &wl, &cfg);
//! let ndp = ansmet_sim::run_design(Design::NdpEtOpt, &wl, &cfg);
//! assert!(ndp.total_cycles < base.total_cycles);
//! ```

pub mod config;
pub mod degraded;
pub mod design;
pub mod energy;
pub mod error;
pub mod etplan;
pub mod events;
pub mod experiment;
pub mod parallel;
pub mod report;
pub mod throughput;
pub mod timing;
pub mod workload;

pub use config::{Parallelism, SystemConfig};
pub use degraded::{run_degraded, DegradedRunResult, FaultyNdpOracle, RecoveryReport};
pub use design::{Design, DesignPlan, EtKind};
pub use energy::{EnergyBreakdown, SystemEnergyModel};
pub use error::AnsmetError;
pub use events::{EventWheel, Wakeup};
pub use parallel::{
    cycles_simulated, cycles_skipped, default_threads, queries_simulated, set_default_threads,
};
pub use throughput::{
    run_design_throughput, saturated_capacity_qps, BatchExecution, ThroughputResult, WaveContext,
};
pub use timing::{
    batch_driver, run_design, run_design_shared, run_design_traced, set_batch_driver, BatchDriver,
    QueryBreakdown, RunResult, TraceOptions,
};
pub use workload::Workload;
