//! Degraded-mode functional runner: whole searches through the NDP
//! offload protocol under injected faults, with host-side recovery.
//!
//! [`FaultyNdpOracle`] implements [`DistanceOracle`] by pushing every
//! comparison through the same protocol the hardware uses: a DDR-encoded
//! set-search instruction to the vector's home rank group, the unit's
//! early-terminating distance pipeline (modeled by [`EtEngine`], exactly
//! as the timing replay charges it), and a CRC-protected result payload
//! retrieved under a deadline-bounded polling loop. A [`FaultInjector`]
//! perturbs each step; the host recovers by retrying with bounded
//! exponential backoff ([`RetryPolicy`]), re-offloading replicated
//! vectors to a healthy rank group, and — once the budget is exhausted —
//! computing the distance itself with the very same engine.
//!
//! Because the healthy NDP model and the host fallback share one
//! deterministic evaluation path, a recovered search returns results
//! bit-identical to a fault-free run: faults cost cycles (tallied in
//! [`RecoveryReport`]), never accuracy. The integration tests in
//! `tests/fault_recovery.rs` assert exactly that.

use ansmet_core::EtEngine;
use ansmet_faults::{ComputeFault, FaultInjector, FaultKind, FaultPlan, FaultStats};
use ansmet_host::RetryPolicy;
use ansmet_index::{DistanceOracle, DistanceOutcome};
use ansmet_ndp::qshr::RESULT_INVALID;
use ansmet_ndp::{
    LoadTracker, NdpInstruction, Partitioner, PollOutcome, PollingPolicy, ReplicaSet,
    ResultPayload, SearchTask,
};
use ansmet_vecdata::recall::mean_recall_at_k;

use crate::config::SystemConfig;
use crate::design::{Design, DesignPlan};
use crate::report::Table;
use crate::workload::Workload;

/// Memory cycles charged per fetched 64 B line (matches the timing
/// replay's adaptive-polling service estimate).
const CYCLES_PER_LINE: u64 = 60;
/// Fixed per-task overhead in cycles (instruction parse + QSHR setup +
/// compute-pipeline drain).
const TASK_OVERHEAD: u64 = 110;
/// Timeouts a rank group accumulates before re-offloads avoid it.
const QUARANTINE_STRIKES: u32 = 2;

/// Counters of everything the host did to survive the injected faults.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Distance comparisons evaluated.
    pub comparisons: u64,
    /// Set-search batches issued (including retries and re-offloads).
    pub offloads: u64,
    /// Re-issued batches (after a timeout or CRC rejection).
    pub retries: u64,
    /// Retries redirected to a different (healthy) rank group.
    pub reoffloads: u64,
    /// Comparisons the host computed itself after exhausting retries.
    pub host_fallbacks: u64,
    /// Batches declared lost at the poll deadline.
    pub timeouts: u64,
    /// Polled payloads rejected by the host's CRC check.
    pub crc_rejections: u64,
    /// Transient stale polls absorbed by one extra poll.
    pub poll_misses: u64,
    /// Hedged offloads issued to a replica group while the primary was
    /// still pending (serving tier only).
    pub hedges: u64,
    /// Hedges whose replica returned the first valid result.
    pub hedge_wins: u64,
    /// Offloads rerouted or host-computed *without* waiting out a
    /// timeout because the target group's circuit breaker was open
    /// (serving tier only).
    pub breaker_fast_paths: u64,
    /// Recovery cycles added on top of the fault-free execution (backoff
    /// waits, abandoned poll windows, wasted poll delay, fallback
    /// compute).
    pub added_latency_cycles: u64,
    /// Rank groups quarantined for repeated timeouts.
    pub quarantined_groups: usize,
    /// What the injector actually injected.
    pub injected: FaultStats,
}

impl RecoveryReport {
    /// Whether any recovery action was taken.
    pub fn any_recovery(&self) -> bool {
        self.retries + self.host_fallbacks + self.crc_rejections + self.timeouts + self.poll_misses
            > 0
    }

    /// Render as a two-column text table for experiment output.
    pub fn render(&self, title: &str) -> String {
        let mut t = Table::new(title, &["event", "count"]);
        let rows: [(&str, u64); 13] = [
            ("comparisons", self.comparisons),
            ("offloads", self.offloads),
            ("faults injected", self.injected.total()),
            ("timeouts", self.timeouts),
            ("crc rejections", self.crc_rejections),
            ("poll misses absorbed", self.poll_misses),
            ("retries", self.retries),
            ("re-offloads", self.reoffloads),
            ("hedges issued", self.hedges),
            ("hedge wins", self.hedge_wins),
            ("breaker fast paths", self.breaker_fast_paths),
            ("host fallbacks", self.host_fallbacks),
            ("added latency (cycles)", self.added_latency_cycles),
        ];
        for (name, v) in rows {
            t.row(vec![name.to_string(), v.to_string()]);
        }
        t.row(vec![
            "quarantined groups".to_string(),
            self.quarantined_groups.to_string(),
        ]);
        t.render()
    }
}

/// Why one offload attempt failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AttemptError {
    /// The poll deadline passed with no completion (drop, hang, or a
    /// stall beyond the deadline).
    TimedOut,
    /// The polled payload failed its CRC.
    Corrupt,
}

/// A [`DistanceOracle`] that routes every comparison through the
/// (fault-injected) NDP protocol and recovers on the host.
#[derive(Debug)]
pub struct FaultyNdpOracle<'a> {
    engine: &'a EtEngine<'a>,
    partitioner: &'a Partitioner,
    replicas: &'a ReplicaSet,
    injector: FaultInjector,
    retry: RetryPolicy,
    polling: PollingPolicy,
    loads: LoadTracker,
    strikes: Vec<u32>,
    report: RecoveryReport,
}

impl<'a> FaultyNdpOracle<'a> {
    /// Build the oracle. `engine` models the rank-side distance pipeline
    /// (and serves as the host fallback); `replicas` names the vectors
    /// present in every rank group and therefore re-offloadable.
    pub fn new(
        engine: &'a EtEngine<'a>,
        partitioner: &'a Partitioner,
        replicas: &'a ReplicaSet,
        plan: FaultPlan,
        retry: RetryPolicy,
        polling: PollingPolicy,
    ) -> Self {
        let groups = partitioner.rank_groups();
        FaultyNdpOracle {
            engine,
            partitioner,
            replicas,
            injector: FaultInjector::new(plan),
            retry,
            polling,
            loads: LoadTracker::new(groups * partitioner.group_size(), partitioner.group_size()),
            strikes: vec![0; groups],
            report: RecoveryReport::default(),
        }
    }

    /// The recovery counters, with the injector's tallies folded in.
    pub fn report(&self) -> RecoveryReport {
        let mut r = self.report;
        r.injected = *self.injector.stats();
        r.quarantined_groups = self
            .strikes
            .iter()
            .filter(|&&s| s >= QUARANTINE_STRIKES)
            .count();
        r
    }

    /// The least-loaded non-quarantined group other than `avoid`, if any.
    fn healthy_alternative(&self, avoid: usize) -> Option<usize> {
        let gs = self.partitioner.group_size();
        (0..self.partitioner.rank_groups())
            .filter(|&g| g != avoid && self.strikes[g] < QUARANTINE_STRIKES)
            .min_by_key(|&g| self.loads.loads()[g * gs..(g + 1) * gs].iter().sum::<u64>())
    }

    /// One offload attempt of a single-task batch to `group`: encode the
    /// instruction, let the injector perturb each step, poll under the
    /// deadline, and CRC-check the returned payload. `value` is what the
    /// healthy unit writes into the result slot; `lines` its fetch count.
    fn offload_once(
        &mut self,
        group: usize,
        qshr: u8,
        id: usize,
        threshold: f32,
        value: f32,
        lines: u64,
    ) -> Result<f32, AttemptError> {
        let lead_rank = group * self.partitioner.group_size();
        let instr = NdpInstruction::SetSearch {
            qshr,
            tasks: vec![SearchTask {
                addr: id as u32,
                threshold,
            }],
        };
        let (addr, payload) = instr.encode();
        self.report.offloads += 1;
        self.loads.add(lead_rank, lines.max(1));

        let delivered = !self.injector.drop_instruction(lead_rank)
            && NdpInstruction::decode(addr, &payload).is_some();
        let actual = if delivered {
            let healthy = TASK_OVERHEAD + lines * CYCLES_PER_LINE;
            match self.injector.compute_fault(lead_rank) {
                ComputeFault::None => Some(healthy),
                ComputeFault::Stall(extra) => Some(healthy + extra),
                ComputeFault::Hang => None,
            }
        } else {
            None
        };

        let deadline = self.polling.deadline(1);
        match self.polling.observe_with_deadline(1, actual, deadline) {
            PollOutcome::Completed(stats) => {
                self.report.added_latency_cycles += stats.wasted_delay;
                let mut p = ResultPayload::encode(&[value]);
                match self.injector.poll_fault(lead_rank, &mut p) {
                    Some(FaultKind::LostResult) => {
                        // The slot was never written: it still holds the
                        // initialization sentinel with no CRC, which the
                        // decoder rejects instead of mistaking it for a
                        // pruned task (or a distance of garbage bytes).
                        let off = ResultPayload::SLOTS_OFF;
                        p[off..off + 4].copy_from_slice(&RESULT_INVALID.to_le_bytes());
                        p[off + 4] = 0;
                    }
                    Some(FaultKind::PollMiss) => {
                        // Stale not-done data: one extra poll catches up.
                        self.report.poll_misses += 1;
                        self.report.added_latency_cycles += self
                            .polling
                            .poll_time(1, stats.polls)
                            .saturating_sub(stats.observed_at);
                    }
                    _ => {}
                }
                match ResultPayload::decode(qshr, &p) {
                    Ok(vals) if vals.len() == 1 => Ok(vals[0]),
                    Ok(_) | Err(_) => Err(AttemptError::Corrupt),
                }
            }
            PollOutcome::TimedOut {
                polls: _,
                gave_up_at,
            } => {
                self.report.added_latency_cycles += gave_up_at;
                Err(AttemptError::TimedOut)
            }
        }
    }
}

fn outcome_of(value: f32) -> DistanceOutcome {
    if value == RESULT_INVALID {
        DistanceOutcome::Pruned
    } else {
        DistanceOutcome::Exact(value)
    }
}

impl DistanceOracle for FaultyNdpOracle<'_> {
    fn evaluate(&mut self, id: usize, query: &[f32], threshold: f32) -> DistanceOutcome {
        self.report.comparisons += 1;
        let qshr = (self.report.comparisons % 32) as u8;
        // What the healthy unit computes: the engine *is* the model of
        // the rank-side distance pipeline, so the value below is what a
        // fault-free run would return for this comparison.
        let cost = self.engine.evaluate(id, query, threshold);
        let value = cost.effective_distance().unwrap_or(RESULT_INVALID);
        let lines = cost.total_lines() as u64;

        let mut group = self.partitioner.group_of(id);
        let mut retries_done = 0u32;
        loop {
            match self.offload_once(group, qshr, id, threshold, value, lines) {
                Ok(v) => return outcome_of(v),
                Err(failure) => {
                    let timed_out = failure == AttemptError::TimedOut;
                    if timed_out {
                        self.report.timeouts += 1;
                        self.strikes[group] += 1;
                    } else {
                        self.report.crc_rejections += 1;
                    }
                    if self.retry.exhausted(retries_done) {
                        // Exact fallback: the host computes the distance
                        // itself through the same engine, so the final
                        // outcome is bit-identical to the fault-free run.
                        self.report.host_fallbacks += 1;
                        self.report.added_latency_cycles += lines * CYCLES_PER_LINE;
                        return outcome_of(value);
                    }
                    self.report.added_latency_cycles += self.retry.backoff(retries_done);
                    self.report.retries += 1;
                    retries_done += 1;
                    // A timed-out group is suspect; replicated vectors
                    // can retry in a healthy group instead.
                    if timed_out && self.replicas.contains(id) {
                        if let Some(g) = self.healthy_alternative(group) {
                            if g != group {
                                group = g;
                                self.report.reoffloads += 1;
                            }
                        }
                    }
                }
            }
        }
    }

    fn comparisons(&self) -> u64 {
        self.report.comparisons
    }
}

/// Result of one degraded-mode run over a whole workload.
#[derive(Debug)]
pub struct DegradedRunResult {
    /// Per-query top-k ids.
    pub results: Vec<Vec<usize>>,
    /// Recall@k against the exact ground truth.
    pub recall: f64,
    /// What recovery cost.
    pub report: RecoveryReport,
}

/// Run every query of `workload` through the fault-tolerant NDP path
/// under `plan`, recovering with `retry`.
///
/// Uses the `NdpEtOpt` design's early-termination configuration and the
/// system's partitioning; hot vectors are replicated per
/// `config.replicate_hot` (enabling re-offload for them). When
/// `config.polling` is `None` the conventional fixed-period policy is
/// used (the adaptive policy's histogram lives in the timing replay).
pub fn run_degraded(
    workload: &Workload,
    config: &SystemConfig,
    plan: FaultPlan,
    retry: RetryPolicy,
) -> DegradedRunResult {
    let et = DesignPlan::build(Design::NdpEtOpt, workload)
        .et
        .expect("NDP design defines an ET config");
    let engine = EtEngine::new(&workload.data, et);
    let partitioner = Partitioner::new(
        config.partition,
        config.ndp_units(),
        workload.data.dim(),
        workload.data.dtype().bytes(),
    );
    let replicas = if config.replicate_hot {
        ReplicaSet::new(workload.hot_ids())
    } else {
        ReplicaSet::default()
    };
    let polling = config
        .polling
        .clone()
        .unwrap_or_else(PollingPolicy::conventional_100ns);
    let mut oracle = FaultyNdpOracle::new(&engine, &partitioner, &replicas, plan, retry, polling);

    let mut results = Vec::with_capacity(workload.queries.len());
    for q in &workload.queries {
        let (r, _trace) = match (&workload.hnsw, &workload.ivf) {
            (Some(h), _) => h.search_traced(q, workload.k, workload.ef, &mut oracle),
            (None, Some(i)) => {
                let nprobe = workload.ef.clamp(1, i.n_lists());
                i.search_traced(q, workload.k, nprobe, &mut oracle)
            }
            (None, None) => unreachable!("workload always has an index"),
        };
        results.push(r.ids());
    }
    let recall = mean_recall_at_k(&results, &workload.ground_truth.ids, workload.k);
    DegradedRunResult {
        results,
        recall,
        report: oracle.report(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ansmet_core::{EtConfig, FetchSchedule};
    use ansmet_faults::{FaultEvent, FaultRates};
    use ansmet_ndp::PartitionScheme;
    use ansmet_vecdata::SynthSpec;

    fn small_workload() -> Workload {
        Workload::prepare(&SynthSpec::sift().scaled(400, 2), 10, Some(40))
    }

    #[test]
    fn fault_free_run_matches_functional_results() {
        let wl = small_workload();
        let cfg = SystemConfig::default();
        let run = run_degraded(&wl, &cfg, FaultPlan::none(), RetryPolicy::default_ndp());
        assert_eq!(run.results, wl.results, "lossless ET through the protocol");
        assert!((run.recall - wl.recall).abs() < 1e-12);
        assert!(!run.report.any_recovery(), "{:?}", run.report);
        assert_eq!(run.report.injected.total(), 0);
        assert!(run.report.offloads >= run.report.comparisons);
    }

    #[test]
    fn random_faults_never_change_results() {
        let wl = small_workload();
        let cfg = SystemConfig::default();
        let clean = run_degraded(&wl, &cfg, FaultPlan::none(), RetryPolicy::default_ndp());
        for seed in [3u64, 17] {
            let plan = FaultPlan::random(seed, cfg.ndp_units(), 200, FaultRates::mixed());
            assert!(!plan.is_empty());
            let faulty = run_degraded(&wl, &cfg, plan, RetryPolicy::default_ndp());
            assert_eq!(faulty.results, clean.results, "seed {seed}");
            assert!(
                faulty.report.any_recovery(),
                "seed {seed}: faults must bite"
            );
            assert!(faulty.report.added_latency_cycles > 0);
        }
    }

    #[test]
    fn lost_result_slot_is_rejected_by_crc() {
        // A never-written slot (sentinel bytes, zero CRC) must not decode
        // as a legitimate pruned result.
        let mut p = ResultPayload::encode(&[1.5f32]);
        let off = ResultPayload::SLOTS_OFF;
        p[off..off + 4].copy_from_slice(&RESULT_INVALID.to_le_bytes());
        p[off + 4] = 0;
        assert!(ResultPayload::decode(0, &p).is_err());
    }

    /// Direct oracle test: a hang on the home rank of a replicated vector
    /// must re-offload to a healthy group and still return the exact
    /// fault-free outcome.
    #[test]
    fn hang_reoffloads_replicated_vector() {
        let (data, queries) = SynthSpec::sift().scaled(64, 1).generate();
        let engine = EtEngine::new(
            &data,
            EtConfig::new(FetchSchedule::uniform(data.dtype(), 4)),
        );
        // Horizontal over 8 ranks: group_of(id) = id % 8, group_size 1.
        let part = Partitioner::new(
            PartitionScheme::Horizontal,
            8,
            data.dim(),
            data.dtype().bytes(),
        );
        let id = 3usize;
        let home_rank = part.group_of(id) * part.group_size();
        let replicas = ReplicaSet::new([id]);
        // Hang the home rank's first few computes so every local retry
        // also fails until the re-offload leaves the group.
        let plan = FaultPlan::new(
            (0..4)
                .map(|at| FaultEvent {
                    rank: home_rank,
                    at,
                    kind: FaultKind::Hang,
                })
                .collect(),
        );
        let mut oracle = FaultyNdpOracle::new(
            &engine,
            &part,
            &replicas,
            plan,
            RetryPolicy::default_ndp(),
            PollingPolicy::conventional_100ns(),
        );
        let got = oracle.evaluate(id, &queries[0], f32::INFINITY);
        let want = engine.evaluate(id, &queries[0], f32::INFINITY);
        assert_eq!(got.distance(), want.distance);
        let r = oracle.report();
        assert!(r.timeouts >= 1);
        assert!(r.reoffloads >= 1, "{r:?}");
        assert_eq!(r.host_fallbacks, 0, "re-offload must succeed: {r:?}");
    }

    /// A non-replicated vector on a dead rank exhausts its retries and
    /// falls back to the host — with the exact same distance.
    #[test]
    fn dead_rank_falls_back_to_host() {
        let (data, queries) = SynthSpec::sift().scaled(64, 1).generate();
        let engine = EtEngine::new(
            &data,
            EtConfig::new(FetchSchedule::uniform(data.dtype(), 4)),
        );
        let part = Partitioner::new(
            PartitionScheme::Horizontal,
            8,
            data.dim(),
            data.dtype().bytes(),
        );
        let id = 5usize;
        let home_rank = part.group_of(id) * part.group_size();
        let replicas = ReplicaSet::default();
        let plan = FaultPlan::new(
            (0..8)
                .map(|at| FaultEvent {
                    rank: home_rank,
                    at,
                    kind: FaultKind::Hang,
                })
                .collect(),
        );
        let retry = RetryPolicy::default_ndp();
        let mut oracle = FaultyNdpOracle::new(
            &engine,
            &part,
            &replicas,
            plan,
            retry,
            PollingPolicy::conventional_100ns(),
        );
        let got = oracle.evaluate(id, &queries[0], f32::INFINITY);
        let want = engine.evaluate(id, &queries[0], f32::INFINITY);
        assert_eq!(got.distance(), want.distance);
        let r = oracle.report();
        assert_eq!(r.host_fallbacks, 1);
        assert_eq!(r.retries, retry.max_retries as u64);
        assert_eq!(r.reoffloads, 0, "nothing to re-offload without replicas");
        assert!(r.added_latency_cycles >= retry.total_backoff());
    }

    /// Corrupt payloads are retried on the same rank and recover once the
    /// one-shot fault has fired.
    #[test]
    fn corrupt_payload_retries_in_place() {
        let (data, queries) = SynthSpec::sift().scaled(64, 1).generate();
        let engine = EtEngine::new(
            &data,
            EtConfig::new(FetchSchedule::uniform(data.dtype(), 4)),
        );
        let part = Partitioner::new(
            PartitionScheme::Horizontal,
            8,
            data.dim(),
            data.dtype().bytes(),
        );
        let id = 2usize;
        let home_rank = part.group_of(id) * part.group_size();
        let replicas = ReplicaSet::default();
        // Flip a bit inside slot 0's protected bytes on the first poll.
        let plan = FaultPlan::new(vec![FaultEvent {
            rank: home_rank,
            at: 0,
            kind: FaultKind::CorruptResult {
                bit: (ResultPayload::SLOTS_OFF as u16) * 8 + 1,
            },
        }]);
        let mut oracle = FaultyNdpOracle::new(
            &engine,
            &part,
            &replicas,
            plan,
            RetryPolicy::default_ndp(),
            PollingPolicy::conventional_100ns(),
        );
        let got = oracle.evaluate(id, &queries[0], f32::INFINITY);
        let want = engine.evaluate(id, &queries[0], f32::INFINITY);
        assert_eq!(got.distance(), want.distance);
        let r = oracle.report();
        assert_eq!(r.crc_rejections, 1);
        assert_eq!(r.retries, 1);
        assert_eq!(r.host_fallbacks, 0);
    }

    /// A group with exactly `QUARANTINE_STRIKES` timeouts is no longer a
    /// re-offload target; one strike below the threshold it still is.
    #[test]
    fn group_at_exact_strike_threshold_is_avoided() {
        let (data, _queries) = SynthSpec::sift().scaled(64, 1).generate();
        let engine = EtEngine::new(
            &data,
            EtConfig::new(FetchSchedule::uniform(data.dtype(), 4)),
        );
        let part = Partitioner::new(
            PartitionScheme::Horizontal,
            8,
            data.dim(),
            data.dtype().bytes(),
        );
        let replicas = ReplicaSet::default();
        let mut oracle = FaultyNdpOracle::new(
            &engine,
            &part,
            &replicas,
            FaultPlan::none(),
            RetryPolicy::default_ndp(),
            PollingPolicy::conventional_100ns(),
        );
        // One strike short of quarantine: group 0 (least index, all loads
        // zero) is still the preferred alternative.
        oracle.strikes[0] = QUARANTINE_STRIKES - 1;
        assert_eq!(oracle.healthy_alternative(1), Some(0));
        // Exactly at the threshold: group 0 is skipped.
        oracle.strikes[0] = QUARANTINE_STRIKES;
        assert_eq!(oracle.healthy_alternative(1), Some(2));
        assert_eq!(oracle.report().quarantined_groups, 1);
        // Quarantining everything except the group under suspicion
        // leaves nowhere to go.
        for g in 0..part.rank_groups() {
            if g != 1 {
                oracle.strikes[g] = QUARANTINE_STRIKES;
            }
        }
        assert_eq!(oracle.healthy_alternative(1), None);
    }

    /// A replicated vector in a single-group fleet has no alternative
    /// group: recovery must fall back to host compute rather than spin
    /// re-offloading to the same dead group.
    #[test]
    fn single_group_replica_falls_back_to_host() {
        let (data, queries) = SynthSpec::sift().scaled(64, 1).generate();
        let engine = EtEngine::new(
            &data,
            EtConfig::new(FetchSchedule::uniform(data.dtype(), 4)),
        );
        // Vertical partitioning: one group spanning all ranks.
        let part = Partitioner::new(
            PartitionScheme::Vertical,
            8,
            data.dim(),
            data.dtype().bytes(),
        );
        assert_eq!(part.rank_groups(), 1);
        let id = 4usize;
        let replicas = ReplicaSet::new([id]);
        let plan = FaultPlan::new(
            (0..8)
                .map(|at| FaultEvent {
                    rank: 0,
                    at,
                    kind: FaultKind::Hang,
                })
                .collect(),
        );
        let retry = RetryPolicy::default_ndp();
        let mut oracle = FaultyNdpOracle::new(
            &engine,
            &part,
            &replicas,
            plan,
            retry,
            PollingPolicy::conventional_100ns(),
        );
        let got = oracle.evaluate(id, &queries[0], f32::INFINITY);
        let want = engine.evaluate(id, &queries[0], f32::INFINITY);
        assert_eq!(got.distance(), want.distance, "accuracy survives");
        let r = oracle.report();
        assert_eq!(r.host_fallbacks, 1, "{r:?}");
        assert_eq!(r.reoffloads, 0, "no alternative group exists");
        assert_eq!(
            r.retries, retry.max_retries as u64,
            "budget bounds the spin"
        );
    }

    #[test]
    fn report_renders() {
        let mut r = RecoveryReport {
            comparisons: 10,
            offloads: 12,
            retries: 2,
            host_fallbacks: 1,
            ..RecoveryReport::default()
        };
        r.injected.hangs = 1;
        let s = r.render("recovery");
        assert!(s.contains("== recovery =="));
        assert!(s.contains("host fallbacks"));
        assert!(s.contains("re-offloads"));
        assert!(r.any_recovery());
    }
}
