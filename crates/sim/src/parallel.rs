//! Process-wide parallelism default and simulation counters.
//!
//! Experiment entry points construct [`crate::SystemConfig`] internally,
//! so the `--threads` flag of the experiments binary is plumbed through a
//! process-wide default that [`crate::config::Parallelism::Auto`]
//! resolves to. Explicit [`crate::config::Parallelism::Threads`] values
//! bypass the default entirely.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

static DEFAULT_THREADS: AtomicUsize = AtomicUsize::new(1);
static QUERIES_SIMULATED: AtomicU64 = AtomicU64::new(0);
static CYCLES_SIMULATED: AtomicU64 = AtomicU64::new(0);
static CYCLES_SKIPPED: AtomicU64 = AtomicU64::new(0);

/// Set the thread count `Parallelism::Auto` resolves to (clamped ≥ 1).
pub fn set_default_threads(n: usize) {
    DEFAULT_THREADS.store(n.max(1), Ordering::Relaxed);
}

/// The thread count `Parallelism::Auto` currently resolves to.
pub fn default_threads() -> usize {
    DEFAULT_THREADS.load(Ordering::Relaxed)
}

/// Total queries replayed by [`crate::run_design`] since process start.
/// Monotonic; benchmark harnesses read deltas around timed sections to
/// derive queries-per-second.
pub fn queries_simulated() -> u64 {
    QUERIES_SIMULATED.load(Ordering::Relaxed)
}

pub(crate) fn record_queries(n: u64) {
    QUERIES_SIMULATED.fetch_add(n, Ordering::Relaxed);
}

/// DRAM cycles actually stepped (`tick` calls) since process start,
/// summed over every memory system the simulator instantiated.
pub fn cycles_simulated() -> u64 {
    CYCLES_SIMULATED.load(Ordering::Relaxed)
}

/// DRAM cycles the event machinery jumped over without ticking since
/// process start. `skipped / (simulated + skipped)` is the fraction of
/// simulated time that cost nothing — the skip-effectiveness number the
/// timing report records per experiment.
pub fn cycles_skipped() -> u64 {
    CYCLES_SKIPPED.load(Ordering::Relaxed)
}

/// Fold one retired memory system's tick/skip counters into the
/// process-wide totals. Sums are order-independent, so parallel replay
/// reports the same totals as serial.
pub(crate) fn record_mem_cycles(mem: &ansmet_dram::MemorySystem) {
    CYCLES_SIMULATED.fetch_add(mem.cycles_ticked(), Ordering::Relaxed);
    CYCLES_SKIPPED.fetch_add(mem.cycles_skipped(), Ordering::Relaxed);
}
