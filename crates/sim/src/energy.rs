//! System energy model (Fig. 7): DRAM + host CPU + NDP compute units.

use ansmet_dram::EnergyModel;

use crate::config::SystemConfig;
use crate::timing::RunResult;

/// Energy breakdown of one run, in nanojoules.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnergyBreakdown {
    /// DRAM array + I/O energy.
    pub dram_nj: f64,
    /// Host CPU energy (active compute + socket background).
    pub cpu_nj: f64,
    /// NDP compute-unit energy.
    pub ndp_nj: f64,
}

impl EnergyBreakdown {
    /// Total system energy.
    pub fn total_nj(&self) -> f64 {
        self.dram_nj + self.cpu_nj + self.ndp_nj
    }
}

/// Combines the component models into system energy.
#[derive(Debug, Clone)]
pub struct SystemEnergyModel {
    dram: EnergyModel,
    /// Socket background activity fraction while queries run.
    pub idle_socket_frac: f64,
}

impl Default for SystemEnergyModel {
    fn default() -> Self {
        SystemEnergyModel {
            dram: EnergyModel::ddr5(),
            idle_socket_frac: 0.25,
        }
    }
}

impl SystemEnergyModel {
    /// Compute the energy of `run` under `config`.
    pub fn compute(&self, run: &RunResult, config: &SystemConfig) -> EnergyBreakdown {
        let cycle_ns = config.dram.cycle_ns();
        let dram = self
            .dram
            .compute(&run.rank_counts, run.total_cycles, cycle_ns);
        // Active single-core energy for the host work, plus background
        // socket power over the run's wall-clock.
        let cpu_active = config.cpu.energy_nj(run.host_cpu_cycles);
        let cpu_bg = config.cpu.socket_energy_nj(
            run.total_cycles,
            config.dram.clock_mhz,
            self.idle_socket_frac,
        );
        let elements = 64 / config_elem_bytes(run);
        let ndp = if run.design.is_ndp() {
            config.compute.energy_nj(run.ndp_compute_lines, elements)
        } else {
            0.0
        };
        EnergyBreakdown {
            dram_nj: dram.total_nj(),
            cpu_nj: cpu_active + cpu_bg,
            ndp_nj: ndp,
        }
    }
}

fn config_elem_bytes(_run: &RunResult) -> usize {
    // Elements per line vary by schedule; a representative 4 B element
    // gives 16 elements per 64 B line for the compute-energy estimate.
    4
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::Design;
    use crate::timing::run_design;
    use crate::workload::Workload;
    use ansmet_vecdata::SynthSpec;

    #[test]
    fn ndp_consumes_less_energy_than_cpu() {
        let wl = Workload::prepare(&SynthSpec::sift().scaled(400, 2), 10, Some(40));
        let cfg = SystemConfig::default();
        let model = SystemEnergyModel::default();
        let cpu = model.compute(&run_design(Design::CpuBase, &wl, &cfg), &cfg);
        let ndp = model.compute(&run_design(Design::NdpBase, &wl, &cfg), &cfg);
        assert!(ndp.total_nj() < cpu.total_nj());
    }

    #[test]
    fn et_saves_energy_on_ndp() {
        let wl = Workload::prepare(&SynthSpec::sift().scaled(400, 2), 10, Some(40));
        let cfg = SystemConfig::default();
        let model = SystemEnergyModel::default();
        let base = model.compute(&run_design(Design::NdpBase, &wl, &cfg), &cfg);
        let et = model.compute(&run_design(Design::NdpEtOpt, &wl, &cfg), &cfg);
        assert!(et.total_nj() <= base.total_nj() * 1.05);
    }

    #[test]
    fn components_positive() {
        let wl = Workload::prepare(&SynthSpec::sift().scaled(300, 1), 10, Some(40));
        let cfg = SystemConfig::default();
        let r = run_design(Design::NdpEt, &wl, &cfg);
        let e = SystemEnergyModel::default().compute(&r, &cfg);
        assert!(e.dram_nj > 0.0);
        assert!(e.cpu_nj > 0.0);
        assert!(e.ndp_nj > 0.0);
        assert!(e.total_nj() > 0.0);
    }
}
