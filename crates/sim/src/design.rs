//! The nine evaluated designs (§6, "Evaluated designs") and their
//! early-termination plans.

use ansmet_core::{EtConfig, FetchSchedule, PrefixSpec};
use ansmet_vecdata::Dataset;

use crate::workload::Workload;

/// Early-termination flavor of a design.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EtKind {
    /// No early termination (full vector fetch, natural layout).
    None,
    /// Partial-dimension-only early termination (prior work).
    Dim,
    /// Fixed 1-bit (bit-serial) early termination (BitNN-style).
    Bit,
    /// Hybrid partial-dimension/bit with the simple heuristic layout
    /// (4-bit integer / 8-bit float chunks).
    Simple,
    /// Simple + sampling-optimized dual-granularity fetch.
    Dual,
    /// Dual + outlier-aware common-prefix elimination (full ANSMET).
    Opt,
}

/// One of the paper's evaluated designs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Design {
    /// Host CPU, conventional memory, no early termination.
    CpuBase,
    /// Host CPU with hybrid early termination (simple layout).
    CpuEt,
    /// Host CPU with the fully optimized early termination.
    CpuEtOpt,
    /// NDP offload, no early termination.
    NdpBase,
    /// NDP with partial-dimension-only early termination.
    NdpDimEt,
    /// NDP with bit-serial early termination.
    NdpBitEt,
    /// NDP with hybrid ET, simple heuristic layout.
    NdpEt,
    /// NDP with dual-granularity fetch.
    NdpEtDual,
    /// Full ANSMET: NDP + dual granularity + prefix elimination.
    NdpEtOpt,
}

impl Design {
    /// All designs in the paper's Fig. 6 order.
    pub fn all() -> [Design; 9] {
        [
            Design::CpuBase,
            Design::CpuEt,
            Design::CpuEtOpt,
            Design::NdpBase,
            Design::NdpDimEt,
            Design::NdpBitEt,
            Design::NdpEt,
            Design::NdpEtDual,
            Design::NdpEtOpt,
        ]
    }

    /// The NDP designs of Fig. 7 / Fig. 10.
    pub fn ndp_designs() -> [Design; 6] {
        [
            Design::NdpBase,
            Design::NdpDimEt,
            Design::NdpBitEt,
            Design::NdpEt,
            Design::NdpEtDual,
            Design::NdpEtOpt,
        ]
    }

    /// Whether distance comparison runs on the NDP units.
    pub fn is_ndp(self) -> bool {
        !matches!(self, Design::CpuBase | Design::CpuEt | Design::CpuEtOpt)
    }

    /// The early-termination flavor.
    pub fn et_kind(self) -> EtKind {
        match self {
            Design::CpuBase | Design::NdpBase => EtKind::None,
            Design::NdpDimEt => EtKind::Dim,
            Design::NdpBitEt => EtKind::Bit,
            Design::CpuEt | Design::NdpEt => EtKind::Simple,
            Design::NdpEtDual => EtKind::Dual,
            Design::CpuEtOpt | Design::NdpEtOpt => EtKind::Opt,
        }
    }

    /// The paper's display label.
    pub fn label(self) -> &'static str {
        match self {
            Design::CpuBase => "CPU-Base",
            Design::CpuEt => "CPU-ET",
            Design::CpuEtOpt => "CPU-ETOpt",
            Design::NdpBase => "NDP-Base",
            Design::NdpDimEt => "NDP-DimET",
            Design::NdpBitEt => "NDP-BitET",
            Design::NdpEt => "NDP-ET",
            Design::NdpEtDual => "NDP-ET+Dual",
            Design::NdpEtOpt => "NDP-ETOpt",
        }
    }
}

impl std::fmt::Display for Design {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A design's concrete fetch plan for one workload: the ET configuration
/// (if any) used to charge lines per comparison.
#[derive(Debug)]
pub struct DesignPlan {
    /// The design.
    pub design: Design,
    /// ET configuration; `None` means full natural-layout fetches.
    pub et: Option<EtConfig>,
}

impl DesignPlan {
    /// Build the plan for `design` over `workload`, using the workload's
    /// sampling profile for the optimized layouts. The schedule is
    /// optimized for whole-vector layouts.
    pub fn build(design: Design, workload: &Workload) -> DesignPlan {
        Self::build_for_layout(design, workload, workload.data.dim())
    }

    /// Build the plan with the physical layout unit being `layout_dim`
    /// dimensions (the sub-vector size under vertical/hybrid
    /// partitioning — padding is paid per sub-vector, so the
    /// dual-granularity optimizer must see the real unit).
    pub fn build_for_layout(design: Design, workload: &Workload, layout_dim: usize) -> DesignPlan {
        let data: &Dataset = &workload.data;
        let dtype = data.dtype();
        let et = match design.et_kind() {
            EtKind::None => None,
            EtKind::Dim => Some(EtConfig::new(FetchSchedule::full_width(dtype))),
            EtKind::Bit => Some(EtConfig::new(FetchSchedule::bit_serial(dtype))),
            EtKind::Simple => Some(EtConfig::new(FetchSchedule::simple_heuristic(dtype))),
            EtKind::Dual => {
                let (hist, never) = weighted_histogram(workload);
                let params =
                    ansmet_core::optimize_dual_schedule(layout_dim, dtype.bits(), 0, &hist, never);
                let candidate = EtConfig::new(params.schedule(dtype, 0));
                let simple = EtConfig::new(FetchSchedule::simple_heuristic(dtype));
                Some(pick_measured(workload, layout_dim, [candidate, simple]))
            }
            EtKind::Opt => {
                let p = &workload.profile;
                let spec = PrefixSpec::choose(data, &p.sample_ids, workload.outlier_frac);
                let (hist, never) = weighted_histogram(workload);
                let params = ansmet_core::optimize_dual_schedule(
                    layout_dim,
                    dtype.bits(),
                    spec.len(),
                    &hist,
                    never,
                );
                let sched = params.schedule(dtype, spec.len());
                let candidate = if spec.is_disabled() {
                    EtConfig::new(sched)
                } else {
                    EtConfig::with_prefix(sched, spec.clone())
                };
                let simple = if spec.is_disabled() {
                    EtConfig::new(FetchSchedule::simple_heuristic(dtype))
                } else {
                    let n = if dtype.is_float() { 8 } else { 4 };
                    EtConfig::with_prefix(
                        FetchSchedule::uniform_after_prefix(dtype, spec.len(), n),
                        spec,
                    )
                };
                Some(pick_measured(workload, layout_dim, [candidate, simple]))
            }
        };
        DesignPlan { design, et }
    }
}

/// Choose between candidate ET configurations by *measuring* their mean
/// fetch cost on the sampling set (§4.2's offline exploration, done with
/// the real evaluation engine instead of the closed-form model so that
/// sub-vector threshold shares and mid-step bound checks are captured).
fn pick_measured(workload: &Workload, layout_dim: usize, candidates: [EtConfig; 2]) -> EtConfig {
    use ansmet_core::EtEngine;
    let data = &workload.data;
    let dim = data.dim();
    let frac = layout_dim.min(dim) as f32 / dim as f32;
    let range = 0..layout_dim.min(dim);
    // A small slice of real comparisons: the synthetic datasets'
    // pairwise-distance percentile underestimates search-time thresholds,
    // so candidates are validated in the regime they will actually run in
    // (documented deviation from the paper's sampling-only exploration).
    let mut probes: Vec<(usize, usize, f32)> = Vec::with_capacity(256);
    'outer: for (qi, t) in workload.traces.iter().enumerate() {
        for e in t.hops.iter().flat_map(|h| &h.evals) {
            if e.threshold.is_finite() {
                probes.push((qi, e.id, e.threshold));
                if probes.len() >= 256 {
                    break 'outer;
                }
            }
        }
    }
    let chunks: Vec<std::ops::Range<usize>> = {
        let n = dim.div_ceil(layout_dim.min(dim).max(1));
        (0..n)
            .map(|i| (i * layout_dim).min(dim)..((i + 1) * layout_dim).min(dim))
            .filter(|r| !r.is_empty())
            .collect()
    };
    let _ = (frac, range);
    let mut best = None;
    let mut best_cost = u64::MAX;
    let mut scratch = ansmet_core::EtScratch::new();
    for cfg in candidates {
        let engine = EtEngine::new(data, cfg.clone());
        let mut cost = 0u64;
        for &(qi, vid, thr) in &probes {
            let m = crate::etplan::evaluate_chunked(
                &engine,
                vid,
                &workload.queries[qi],
                &chunks,
                thr,
                &mut scratch,
            );
            cost += m.total_lines() as u64;
        }
        if cost < best_cost {
            best_cost = cost;
            best = Some(cfg);
        }
    }
    best.expect("two candidates provided")
}

/// The sampled termination histogram describes *rejected* comparisons
/// under the sampled threshold. Accepted comparisons (which always fetch
/// the whole vector) must weigh on the full-fetch cost, so the histogram
/// is scaled by the workload's rejection rate and the remainder is added
/// to the never-terminates mass.
fn weighted_histogram(workload: &Workload) -> (Vec<f64>, f64) {
    let p = &workload.profile;
    let rej = workload.mean_rejection_rate().clamp(0.05, 1.0);
    let hist: Vec<f64> = p.et_histogram.iter().map(|v| v * rej).collect();
    let never = (1.0 - rej) + p.never_frac * rej;
    (hist, never)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ansmet_vecdata::SynthSpec;

    #[test]
    fn kinds_and_labels() {
        assert_eq!(Design::NdpEtOpt.et_kind(), EtKind::Opt);
        assert_eq!(Design::CpuBase.et_kind(), EtKind::None);
        assert!(Design::NdpBase.is_ndp());
        assert!(!Design::CpuEtOpt.is_ndp());
        assert_eq!(Design::NdpEtDual.label(), "NDP-ET+Dual");
        assert_eq!(Design::all().len(), 9);
        assert_eq!(Design::ndp_designs().len(), 6);
    }

    #[test]
    fn plans_build_for_every_design() {
        let wl = Workload::prepare(&SynthSpec::sift().scaled(400, 2), 10, Some(40));
        for d in Design::all() {
            let plan = DesignPlan::build(d, &wl);
            match d.et_kind() {
                EtKind::None => assert!(plan.et.is_none()),
                _ => assert!(plan.et.is_some()),
            }
        }
    }

    #[test]
    fn bit_et_uses_one_bit_steps() {
        let wl = Workload::prepare(&SynthSpec::sift().scaled(300, 1), 10, Some(40));
        let plan = DesignPlan::build(Design::NdpBitEt, &wl);
        let et = plan.et.expect("bit ET plan");
        assert!(et.schedule.steps().iter().all(|&s| s == 1));
    }
}
