//! Fetch schedules: how a vector's bits are split into 64 B fetch steps.
//!
//! A schedule is a sequence of bit-step widths `n_i` (§4.2). Step *i*
//! packs the next `n_i` bits of every dimension; one 64 B line holds
//! `m_i = ⌊512 / n_i⌋` dimensions, so a step over `D` dimensions spans
//! `⌈D / m_i⌉` lines (the ceiling captures the paper's padding overhead).
//! The sum of all steps equals the element width minus any eliminated
//! common prefix.

use ansmet_vecdata::ElemType;

/// Bits available in one 64 B fetch.
pub const LINE_BITS: u32 = 64 * 8;

/// One 64 B line of the transformed layout: which dimensions gain how
/// many bits when this line arrives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinePlan {
    /// Schedule step this line belongs to.
    pub step: usize,
    /// Dimension range `[dim_start, dim_end)` covered by this line.
    pub dim_start: usize,
    /// End of the covered dimension range (exclusive).
    pub dim_end: usize,
    /// Bits added per covered dimension.
    pub bits: u32,
}

/// A fetch schedule over the stored (post-prefix-elimination) bits of an
/// element.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FetchSchedule {
    dtype: ElemType,
    /// Eliminated common-prefix length (0 when prefix elimination is off).
    prefix_len: u32,
    /// Per-step bit widths; sums to `dtype.bits() - prefix_len`.
    steps: Vec<u32>,
}

impl FetchSchedule {
    /// A schedule with explicit steps.
    ///
    /// # Panics
    ///
    /// Panics unless every step is in `1..=32` and the steps plus
    /// `prefix_len` sum exactly to the element width.
    pub fn from_steps(dtype: ElemType, prefix_len: u32, steps: Vec<u32>) -> Self {
        assert!(
            steps.iter().all(|&s| (1..=32).contains(&s)),
            "step widths must be 1..=32"
        );
        let total: u32 = steps.iter().sum();
        assert_eq!(
            total + prefix_len,
            dtype.bits(),
            "steps ({total}) + prefix ({prefix_len}) must equal element width ({})",
            dtype.bits()
        );
        FetchSchedule {
            dtype,
            prefix_len,
            steps,
        }
    }

    /// Uniform `n`-bit steps (the simple NDP-ET heuristic: 4-bit chunks
    /// for integers, 8-bit for floats). The final step absorbs any
    /// remainder.
    pub fn uniform(dtype: ElemType, n: u32) -> Self {
        Self::uniform_after_prefix(dtype, 0, n)
    }

    /// Uniform `n`-bit steps over the bits remaining after a `prefix_len`
    /// common prefix.
    pub fn uniform_after_prefix(dtype: ElemType, prefix_len: u32, n: u32) -> Self {
        assert!(n >= 1, "step width must be positive");
        let rem = dtype.bits() - prefix_len;
        let mut steps = Vec::new();
        let mut left = rem;
        while left > 0 {
            let s = n.min(left);
            steps.push(s);
            left -= s;
        }
        Self::from_steps(dtype, prefix_len, steps)
    }

    /// The paper's NDP-ET default: 4-bit chunks for integer types, 8-bit
    /// for floating-point types (§6, "Evaluated designs").
    pub fn simple_heuristic(dtype: ElemType) -> Self {
        let n = if dtype.is_float() { 8 } else { 4 };
        Self::uniform(dtype, n)
    }

    /// Dual-granularity schedule (§4.2): `t_c` coarse steps of `n_c` bits,
    /// then fine steps of `n_f` bits. Coarse steps are clamped to the
    /// available bits; the tail is fine-grained.
    pub fn dual(dtype: ElemType, prefix_len: u32, n_c: u32, t_c: u32, n_f: u32) -> Self {
        let rem = dtype.bits() - prefix_len;
        let mut steps = Vec::new();
        let mut left = rem;
        for _ in 0..t_c {
            if left == 0 {
                break;
            }
            let s = n_c.min(left);
            steps.push(s);
            left -= s;
        }
        while left > 0 {
            let s = n_f.min(left);
            steps.push(s);
            left -= s;
        }
        Self::from_steps(dtype, prefix_len, steps)
    }

    /// Single full-width step: each dimension is fetched whole, in
    /// dimension order — the partial-dimension-only scheme (NDP-DimET).
    pub fn full_width(dtype: ElemType) -> Self {
        Self::from_steps(dtype, 0, vec![dtype.bits()])
    }

    /// Bit-serial schedule (NDP-BitET, after BitNN): fixed 1-bit steps.
    pub fn bit_serial(dtype: ElemType) -> Self {
        Self::uniform(dtype, 1)
    }

    /// Element type.
    pub fn dtype(&self) -> ElemType {
        self.dtype
    }

    /// Eliminated common-prefix length.
    pub fn prefix_len(&self) -> u32 {
        self.prefix_len
    }

    /// Per-step bit widths.
    pub fn steps(&self) -> &[u32] {
        &self.steps
    }

    /// Dimensions per 64 B line at step width `n`.
    pub fn dims_per_line(n: u32) -> usize {
        (LINE_BITS / n) as usize
    }

    /// 64 B lines spanned by step `i` for a `dim`-dimensional vector.
    pub fn lines_in_step(&self, i: usize, dim: usize) -> usize {
        dim.div_ceil(Self::dims_per_line(self.steps[i]))
    }

    /// Total lines of the transformed vector.
    pub fn total_lines(&self, dim: usize) -> usize {
        (0..self.steps.len())
            .map(|i| self.lines_in_step(i, dim))
            .sum()
    }

    /// The full fetch plan: one [`LinePlan`] per 64 B line, in fetch order.
    pub fn line_plan(&self, dim: usize) -> Vec<LinePlan> {
        let mut plan = Vec::new();
        self.line_plan_into(dim, &mut plan);
        plan
    }

    /// [`FetchSchedule::line_plan`] writing into a reusable buffer
    /// (cleared first), so hot evaluation paths avoid re-allocating.
    pub fn line_plan_into(&self, dim: usize, plan: &mut Vec<LinePlan>) {
        plan.clear();
        for (i, &n) in self.steps.iter().enumerate() {
            let per_line = Self::dims_per_line(n);
            let mut d = 0;
            while d < dim {
                let end = (d + per_line).min(dim);
                plan.push(LinePlan {
                    step: i,
                    dim_start: d,
                    dim_end: end,
                    bits: n,
                });
                d = end;
            }
        }
    }

    /// Cumulative fetched bits per dimension after each whole step
    /// (not counting the eliminated prefix).
    pub fn cumulative_bits(&self) -> Vec<u32> {
        let mut acc = 0;
        self.steps
            .iter()
            .map(|&s| {
                acc += s;
                acc
            })
            .collect()
    }

    /// Bytes of padding wasted by this schedule per vector.
    pub fn padding_bytes(&self, dim: usize) -> usize {
        let useful_bits = (self.dtype.bits() - self.prefix_len) as usize * dim;
        self.total_lines(dim) * 64 - useful_bits.div_ceil(8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_u8_4bit() {
        let s = FetchSchedule::uniform(ElemType::U8, 4);
        assert_eq!(s.steps(), &[4, 4]);
        // 128 dims à 4 bits = 512 bits = exactly one line per step.
        assert_eq!(s.lines_in_step(0, 128), 1);
        assert_eq!(s.total_lines(128), 2);
    }

    #[test]
    fn uniform_absorbs_remainder() {
        let s = FetchSchedule::uniform(ElemType::F32, 5);
        assert_eq!(s.steps().iter().sum::<u32>(), 32);
        assert_eq!(*s.steps().last().expect("nonempty"), 2);
    }

    #[test]
    fn simple_heuristic_matches_paper() {
        assert_eq!(FetchSchedule::simple_heuristic(ElemType::U8).steps()[0], 4);
        assert_eq!(FetchSchedule::simple_heuristic(ElemType::F32).steps()[0], 8);
    }

    #[test]
    fn dual_granularity_shape() {
        let s = FetchSchedule::dual(ElemType::F32, 0, 8, 2, 2);
        assert_eq!(&s.steps()[..2], &[8, 8]);
        assert!(s.steps()[2..].iter().all(|&x| x == 2));
        assert_eq!(s.steps().iter().sum::<u32>(), 32);
    }

    #[test]
    fn dual_with_prefix_elimination() {
        let s = FetchSchedule::dual(ElemType::F32, 6, 8, 1, 4);
        assert_eq!(s.prefix_len(), 6);
        assert_eq!(s.steps().iter().sum::<u32>(), 26);
    }

    #[test]
    fn bit_serial_wastes_lines_on_low_dims() {
        // Paper: SIFT (128 dims) bit-serial fetch uses only 128 of 512
        // bits per line → 8 lines for 8 bits vs 2 lines natural layout.
        let s = FetchSchedule::bit_serial(ElemType::U8);
        assert_eq!(s.total_lines(128), 8);
        // GIST-like 960 dims: 960 bits / plane → 2 lines per plane.
        assert_eq!(s.total_lines(960), 16);
    }

    #[test]
    fn full_width_is_dimension_sequential() {
        let s = FetchSchedule::full_width(ElemType::F32);
        // 16 FP32 dims per 64 B line.
        assert_eq!(FetchSchedule::dims_per_line(32), 16);
        assert_eq!(s.total_lines(96), 6);
        let plan = s.line_plan(96);
        assert_eq!(plan.len(), 6);
        assert_eq!(plan[0].dim_start, 0);
        assert_eq!(plan[0].dim_end, 16);
        assert_eq!(plan[5].dim_end, 96);
    }

    #[test]
    fn line_plan_covers_every_bit_exactly_once() {
        let s = FetchSchedule::dual(ElemType::F32, 4, 8, 2, 3);
        let dim = 100;
        let mut got = vec![0u32; dim];
        for lp in s.line_plan(dim) {
            for g in &mut got[lp.dim_start..lp.dim_end] {
                *g += lp.bits;
            }
        }
        assert!(got.iter().all(|&b| b == 28));
    }

    #[test]
    fn paper_cost_formula_example() {
        // §4.2: "a 64 B chunk may contain the next highest 9 bits from 56
        // dimensions, with 8 padding bits at the end".
        assert_eq!(FetchSchedule::dims_per_line(9), 56);
    }

    #[test]
    fn padding_accounting() {
        let s = FetchSchedule::uniform(ElemType::U8, 4);
        // 100 dims à 4 bits = 400 bits per step; line = 512 bits.
        // 2 steps → 2 lines = 128 B; useful = 100 B.
        assert_eq!(s.padding_bytes(100), 28);
    }

    #[test]
    #[should_panic(expected = "must equal element width")]
    fn mismatched_steps_panic() {
        FetchSchedule::from_steps(ElemType::U8, 0, vec![4, 2]);
    }

    #[test]
    fn cumulative_bits_monotone() {
        let s = FetchSchedule::dual(ElemType::F32, 0, 8, 1, 6);
        let c = s.cumulative_bits();
        assert_eq!(*c.last().expect("nonempty"), 32);
        assert!(c.windows(2).all(|w| w[0] < w[1]));
    }
}
