//! Order-preserving ("sortable") bit encodings.
//!
//! Early termination needs one property from the storage format: knowing
//! the most-significant `p` bits of an element must confine its value to a
//! contiguous interval. Integers already have it; IEEE floats get it after
//! a standard sign-magnitude transformation. The resulting unsigned
//! patterns compare like the values they encode:
//!
//! * `U8` — identity.
//! * `I8` — XOR the sign bit (offset-binary).
//! * `F32`/`F16`/`BF16` — if the sign bit is set, flip all bits; otherwise
//!   flip only the sign bit.
//!
//! This also realizes the paper's observation that "bits having more
//! impact on distance are towards the more significant positions and
//! fetched earlier; e.g., the exponent is fetched before the mantissa".

use ansmet_vecdata::ElemType;

/// Convert a raw storage pattern (LSB-aligned, from
/// [`ansmet_vecdata::Dataset::raw_vector`]) to its sortable encoding
/// (LSB-aligned in the type's bit width).
pub fn to_sortable(dtype: ElemType, raw: u32) -> u32 {
    match dtype {
        ElemType::U8 => raw & 0xff,
        ElemType::I8 => (raw ^ 0x80) & 0xff,
        ElemType::F16 | ElemType::Bf16 => {
            let bits = raw & 0xffff;
            if bits & 0x8000 != 0 {
                !bits & 0xffff
            } else {
                bits | 0x8000
            }
        }
        ElemType::F32 => {
            if raw & 0x8000_0000 != 0 {
                !raw
            } else {
                raw | 0x8000_0000
            }
        }
    }
}

/// Inverse of [`to_sortable`]: recover the raw storage pattern.
pub fn from_sortable(dtype: ElemType, sortable: u32) -> u32 {
    match dtype {
        ElemType::U8 => sortable & 0xff,
        ElemType::I8 => (sortable ^ 0x80) & 0xff,
        ElemType::F16 | ElemType::Bf16 => {
            let bits = sortable & 0xffff;
            if bits & 0x8000 != 0 {
                bits & 0x7fff
            } else {
                !bits & 0xffff
            }
        }
        ElemType::F32 => {
            if sortable & 0x8000_0000 != 0 {
                sortable & 0x7fff_ffff
            } else {
                !sortable
            }
        }
    }
}

/// Decode a sortable pattern directly to the canonical value.
pub fn sortable_to_value(dtype: ElemType, sortable: u32) -> f32 {
    dtype.decode(from_sortable(dtype, sortable))
}

/// Encode a canonical value directly to its sortable pattern.
pub fn value_to_sortable(dtype: ElemType, value: f32) -> u32 {
    to_sortable(dtype, dtype.encode(value))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn all_types() -> [ElemType; 5] {
        [
            ElemType::U8,
            ElemType::I8,
            ElemType::F32,
            ElemType::F16,
            ElemType::Bf16,
        ]
    }

    #[test]
    fn roundtrip_8bit_exhaustive() {
        for dtype in [ElemType::U8, ElemType::I8] {
            for raw in 0..=255u32 {
                assert_eq!(from_sortable(dtype, to_sortable(dtype, raw)), raw);
            }
        }
    }

    #[test]
    fn roundtrip_16bit_exhaustive() {
        for dtype in [ElemType::F16, ElemType::Bf16] {
            for raw in 0..=0xffffu32 {
                assert_eq!(from_sortable(dtype, to_sortable(dtype, raw)), raw);
            }
        }
    }

    #[test]
    fn i8_order_exhaustive() {
        // Sortable encodings must order exactly like the decoded values.
        let mut pairs: Vec<(u32, f32)> = (0..=255u32)
            .map(|raw| (to_sortable(ElemType::I8, raw), ElemType::I8.decode(raw)))
            .collect();
        pairs.sort_by_key(|p| p.0);
        for w in pairs.windows(2) {
            assert!(w[0].1 <= w[1].1, "{:?} vs {:?}", w[0], w[1]);
        }
    }

    #[test]
    fn f16_order_exhaustive_finite() {
        let mut pairs: Vec<(u32, f32)> = (0..=0xffffu32)
            .map(|raw| (to_sortable(ElemType::F16, raw), ElemType::F16.decode(raw)))
            .filter(|(_, v)| v.is_finite())
            .collect();
        pairs.sort_by_key(|p| p.0);
        for w in pairs.windows(2) {
            assert!(w[0].1 <= w[1].1, "{:?} vs {:?}", w[0], w[1]);
        }
    }

    #[test]
    fn f32_known_orderings() {
        let vals = [-1e30f32, -2.5, -0.0, 0.0, 1e-30, 1.0, 3.5, 1e30];
        for w in vals.windows(2) {
            let a = value_to_sortable(ElemType::F32, w[0]);
            let b = value_to_sortable(ElemType::F32, w[1]);
            assert!(a <= b, "{} vs {}", w[0], w[1]);
        }
    }

    #[test]
    fn sortable_to_value_consistency() {
        for dtype in all_types() {
            let raw = dtype.encode(3.0);
            let s = to_sortable(dtype, raw);
            assert_eq!(sortable_to_value(dtype, s), dtype.decode(raw));
        }
    }

    proptest! {
        #[test]
        fn f32_roundtrip(v in -1e30f32..1e30) {
            let raw = v.to_bits();
            prop_assert_eq!(from_sortable(ElemType::F32, to_sortable(ElemType::F32, raw)), raw);
        }

        #[test]
        fn f32_order(a in -1e30f32..1e30, b in -1e30f32..1e30) {
            let sa = value_to_sortable(ElemType::F32, a);
            let sb = value_to_sortable(ElemType::F32, b);
            if a < b {
                prop_assert!(sa < sb);
            } else if a > b {
                prop_assert!(sa > sb);
            }
        }

        #[test]
        fn u8_identity(raw in 0u32..256) {
            prop_assert_eq!(to_sortable(ElemType::U8, raw), raw);
        }
    }
}
