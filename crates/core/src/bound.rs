//! Conservative distance lower bounds from per-dimension value intervals.
//!
//! For each supported metric the per-dimension contribution is bounded in
//! the direction that can only *underestimate* the final distance, which
//! is exactly the paper's missing-bit rule (§4.1):
//!
//! * **L2** — if the query coordinate lies inside the interval the
//!   contribution is 0 (missing bits set to match the query); otherwise
//!   the nearer endpoint is used (missing bits all-0s / all-1s).
//! * **Inner product** (distance = −Σ aᵢbᵢ) — the dot contribution is
//!   *upper*-bounded by `max(lo·q, hi·q)` (missing bits set to 1 for
//!   non-negative query coordinates, 0 otherwise).

use ansmet_vecdata::Metric;

use crate::interval::ValueInterval;

/// Per-metric lower-bound arithmetic.
///
/// Contributions are accumulated in `f64` so that incremental updates stay
/// numerically faithful across thousands of refinements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DistanceBounder {
    metric: Metric,
}

impl DistanceBounder {
    /// Create a bounder for `metric`.
    ///
    /// # Panics
    ///
    /// Panics on [`Metric::Cosine`]: cosine must be folded to IP during
    /// preprocessing ([`Metric::searched_as`]).
    pub fn new(metric: Metric) -> Self {
        assert!(
            metric != Metric::Cosine,
            "cosine must be normalized to IP before search"
        );
        DistanceBounder { metric }
    }

    /// The metric this bounder serves.
    pub fn metric(&self) -> Metric {
        self.metric
    }

    /// Lower bound of dimension `q`'s contribution to the distance when
    /// the element is confined to `iv`.
    ///
    /// For L2 this is `min (x−q)²`; for IP it is `−max(x·q)` so that
    /// summing contributions lower-bounds the (negated-dot) distance.
    pub fn contribution(&self, iv: ValueInterval, q: f32) -> f64 {
        match self.metric {
            Metric::L2 => {
                let q = q as f64;
                let lo = iv.lo as f64;
                let hi = iv.hi as f64;
                if q < lo {
                    let d = lo - q;
                    d * d
                } else if q > hi {
                    let d = q - hi;
                    d * d
                } else {
                    0.0
                }
            }
            Metric::Ip => {
                if q == 0.0 {
                    // A zero query coordinate contributes nothing (and
                    // avoids 0 × ∞ = NaN on unbounded intervals).
                    return 0.0;
                }
                let q = q as f64;
                let lo = iv.lo as f64;
                let hi = iv.hi as f64;
                -(lo * q).max(hi * q)
            }
            Metric::Cosine => unreachable!("rejected in constructor"),
        }
    }

    /// Lower bound of the full distance given one interval per dimension.
    pub fn lower_bound(&self, intervals: &[ValueInterval], query: &[f32]) -> f64 {
        debug_assert_eq!(intervals.len(), query.len());
        intervals
            .iter()
            .zip(query)
            .map(|(iv, &q)| self.contribution(*iv, q))
            .sum()
    }

    /// Exact distance computed through the same arithmetic (all intervals
    /// degenerate). Used to make the final refinement agree exactly with
    /// the bound sequence.
    pub fn exact_distance(&self, values: &[f32], query: &[f32]) -> f64 {
        values
            .iter()
            .zip(query)
            .map(|(&v, &q)| self.contribution(ValueInterval::exact(v), q))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ansmet_vecdata::ElemType;
    use proptest::prelude::*;

    #[test]
    fn paper_partial_dimension_example() {
        // §4: partial vector (1, 2, x₂, x₃) vs query (4, −2, 6, −1):
        // lower bound = (4−1)² + (−2−2)² = 25 (paper quotes √25 = 5).
        let b = DistanceBounder::new(Metric::L2);
        let ivs = [
            ValueInterval::exact(1.0),
            ValueInterval::exact(2.0),
            ValueInterval::full_range(ElemType::F32),
            ValueInterval::full_range(ElemType::F32),
        ];
        let lb = b.lower_bound(&ivs, &[4.0, -2.0, 6.0, -1.0]);
        assert_eq!(lb, 25.0);
    }

    #[test]
    fn l2_query_inside_interval_contributes_zero() {
        let b = DistanceBounder::new(Metric::L2);
        let iv = ValueInterval { lo: 1.0, hi: 5.0 };
        assert_eq!(b.contribution(iv, 3.0), 0.0);
        assert_eq!(b.contribution(iv, 1.0), 0.0);
        assert_eq!(b.contribution(iv, 5.0), 0.0);
    }

    #[test]
    fn l2_outside_uses_nearest_endpoint() {
        let b = DistanceBounder::new(Metric::L2);
        let iv = ValueInterval { lo: 1.0, hi: 5.0 };
        assert_eq!(b.contribution(iv, 0.0), 1.0);
        assert_eq!(b.contribution(iv, 8.0), 9.0);
    }

    #[test]
    fn ip_sign_rule() {
        // Paper: for IP, "bit 1 should be set for unsigned data" — i.e.
        // positive query → use interval hi; negative query → use lo.
        let b = DistanceBounder::new(Metric::Ip);
        let iv = ValueInterval { lo: -2.0, hi: 3.0 };
        assert_eq!(b.contribution(iv, 2.0), -6.0); // hi·q = 6
        assert_eq!(b.contribution(iv, -2.0), -4.0); // lo·q = 4
    }

    #[test]
    fn ip_unfetched_float_dimension_is_unbounded() {
        // The paper's observation that partial-dimension-only ET fails on
        // IP datasets: an unfetched FP32 dimension contributes −∞.
        let b = DistanceBounder::new(Metric::Ip);
        let iv = ValueInterval::full_range(ElemType::F32);
        assert_eq!(b.contribution(iv, 1.0), f64::NEG_INFINITY);
    }

    #[test]
    fn ip_unfetched_u8_dimension_is_bounded() {
        let b = DistanceBounder::new(Metric::Ip);
        let iv = ValueInterval::full_range(ElemType::U8);
        assert_eq!(b.contribution(iv, 2.0), -510.0); // 255 × 2
    }

    #[test]
    #[should_panic(expected = "cosine")]
    fn cosine_rejected() {
        DistanceBounder::new(Metric::Cosine);
    }

    #[test]
    fn exact_distance_matches_metric() {
        let b = DistanceBounder::new(Metric::L2);
        let v = [1.0f32, -2.0, 3.0];
        let q = [0.0f32, 0.0, 0.0];
        let exact = b.exact_distance(&v, &q);
        assert!((exact - 14.0).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn bound_never_exceeds_true_distance_l2(
            v in proptest::collection::vec(-100.0f32..100.0, 6),
            q in proptest::collection::vec(-100.0f32..100.0, 6),
            plen in 0u32..=32,
        ) {
            let b = DistanceBounder::new(Metric::L2);
            let dtype = ElemType::F32;
            let ivs: Vec<ValueInterval> = v.iter().map(|&x| {
                let s = crate::encode::value_to_sortable(dtype, x);
                let prefix = if plen == 0 { 0 } else { s >> (32 - plen) };
                ValueInterval::from_prefix(dtype, prefix, plen)
            }).collect();
            let lb = b.lower_bound(&ivs, &q);
            let exact = b.exact_distance(&v, &q);
            prop_assert!(lb <= exact + 1e-9, "lb {lb} > exact {exact}");
        }

        #[test]
        fn bound_never_exceeds_true_distance_ip(
            v in proptest::collection::vec(-100.0f32..100.0, 6),
            q in proptest::collection::vec(-100.0f32..100.0, 6),
            plen in 0u32..=32,
        ) {
            let b = DistanceBounder::new(Metric::Ip);
            let dtype = ElemType::F32;
            let ivs: Vec<ValueInterval> = v.iter().map(|&x| {
                let s = crate::encode::value_to_sortable(dtype, x);
                let prefix = if plen == 0 { 0 } else { s >> (32 - plen) };
                ValueInterval::from_prefix(dtype, prefix, plen)
            }).collect();
            let lb = b.lower_bound(&ivs, &q);
            let exact = b.exact_distance(&v, &q);
            prop_assert!(lb <= exact + 1e-9, "lb {lb} > exact {exact}");
        }

        #[test]
        fn bound_monotone_in_prefix_length_l2(
            v in -100.0f32..100.0,
            q in -100.0f32..100.0,
        ) {
            let b = DistanceBounder::new(Metric::L2);
            let dtype = ElemType::F32;
            let s = crate::encode::value_to_sortable(dtype, v);
            let mut last = f64::NEG_INFINITY;
            for plen in 0..=32u32 {
                let prefix = if plen == 0 { 0 } else { s >> (32 - plen) };
                let iv = ValueInterval::from_prefix(dtype, prefix, plen);
                let c = b.contribution(iv, q);
                prop_assert!(c >= last - 1e-12, "plen {plen}: {c} < {last}");
                last = c;
            }
        }
    }
}
