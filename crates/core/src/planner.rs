//! Dual-granularity fetch optimization (§4.2).
//!
//! Given the sampled distribution of first-termination bit positions, the
//! planner searches (n_C, T_C, n_F) — coarse step width, coarse step
//! count, fine step width — minimizing the expected fetch cost under the
//! paper's access-cost model:
//!
//! ```text
//! cost(p_ET) = 64 × ( ⌈D/m_C⌉ × #coarse_steps + ⌈D/m_F⌉ × #fine_steps )
//! where m_X = ⌊64·8 / n_X⌋
//! ```

use ansmet_vecdata::ElemType;

use crate::schedule::FetchSchedule;

/// Optimized dual-granularity parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DualParams {
    /// Coarse step width in bits.
    pub n_c: u32,
    /// Number of coarse steps.
    pub t_c: u32,
    /// Fine step width in bits.
    pub n_f: u32,
}

impl DualParams {
    /// Materialize the schedule these parameters describe.
    pub fn schedule(&self, dtype: ElemType, prefix_len: u32) -> FetchSchedule {
        FetchSchedule::dual(dtype, prefix_len, self.n_c, self.t_c, self.n_f)
    }
}

/// Per-fetch-step decision overhead in line-equivalents: every step
/// boundary costs a bound-check/command-generation bubble on the NDP
/// unit, so schedules with many tiny steps are not free even when their
/// byte counts match.
const STEP_PENALTY_LINES: f64 = 0.1;

/// Expected lines fetched for a vector whose first-termination position is
/// `p_et` bits into the stored payload (`None` = never terminates).
fn cost_lines(dim: usize, rem_bits: u32, p: Option<u32>, params: DualParams) -> f64 {
    let m_c = FetchSchedule::dims_per_line(params.n_c);
    let m_f = FetchSchedule::dims_per_line(params.n_f);
    let lines_c = dim.div_ceil(m_c) as f64;
    let lines_f = dim.div_ceil(m_f) as f64;
    let coarse_bits = (params.n_c * params.t_c).min(rem_bits);
    let coarse_steps_total = coarse_bits.div_ceil(params.n_c.max(1));
    let fine_bits_total = rem_bits - coarse_bits;
    let fine_steps_total = fine_bits_total.div_ceil(params.n_f.max(1));
    let with_penalty = |coarse_steps: u32, fine_steps: u32| {
        lines_c * coarse_steps as f64
            + lines_f * fine_steps as f64
            + STEP_PENALTY_LINES * (coarse_steps + fine_steps) as f64
    };
    match p {
        Some(p) if p <= coarse_bits => {
            let steps = p.div_ceil(params.n_c.max(1)).max(1);
            with_penalty(steps, 0)
        }
        Some(p) => {
            let fine = (p - coarse_bits).div_ceil(params.n_f.max(1)).max(1);
            with_penalty(coarse_steps_total, fine.min(fine_steps_total))
        }
        None => with_penalty(coarse_steps_total, fine_steps_total),
    }
}

/// Search the (n_C, T_C, n_F) space for the parameters minimizing the
/// expected fetch cost over the sampled termination histogram.
///
/// `et_histogram[i]` is the probability that termination happens after
/// `i + 1` payload bits are known (positions beyond `rem_bits` are
/// clamped); `never_frac` is the probability of a full fetch. `prefix_len`
/// bits have already been eliminated.
///
/// # Panics
///
/// Panics if `rem_bits` is zero.
pub fn optimize_dual_schedule(
    dim: usize,
    total_bits: u32,
    prefix_len: u32,
    et_histogram: &[f64],
    never_frac: f64,
) -> DualParams {
    let rem_bits = total_bits - prefix_len;
    assert!(rem_bits > 0, "no bits left to schedule");

    // Project the histogram (positions in *total* bits, 1-based) onto the
    // stored payload (positions after the eliminated prefix).
    let mut hist: Vec<(u32, f64)> = Vec::new();
    let mut at_zero = 0.0;
    for (i, &f) in et_histogram.iter().enumerate() {
        if f <= 0.0 {
            continue;
        }
        let pos_total = (i + 1) as u32;
        if pos_total <= prefix_len {
            at_zero += f; // terminates on the on-chip prefix alone
        } else {
            hist.push(((pos_total - prefix_len).min(rem_bits), f));
        }
    }
    let _ = at_zero; // zero-cost terminations do not affect the argmin

    let widths: Vec<u32> = (1..=rem_bits.min(32)).collect();
    let mut best = DualParams {
        n_c: rem_bits.min(32),
        t_c: 1,
        n_f: rem_bits.min(32),
    };
    let mut best_cost = f64::INFINITY;
    for &n_c in &widths {
        let max_tc = rem_bits.div_ceil(n_c);
        for t_c in 0..=max_tc {
            for &n_f in &widths {
                if n_f > n_c {
                    continue; // fine must not be coarser than coarse
                }
                if t_c == 0 && n_f != n_c {
                    continue; // without coarse steps n_c is meaningless
                }
                let params = DualParams { n_c, t_c, n_f };
                let mut cost = never_frac * cost_lines(dim, rem_bits, None, params);
                for &(p, f) in &hist {
                    cost += f * cost_lines(dim, rem_bits, Some(p), params);
                }
                if cost < best_cost - 1e-12 {
                    best_cost = cost;
                    best = params;
                }
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_of_full_fetch_matches_schedule() {
        let params = DualParams {
            n_c: 8,
            t_c: 2,
            n_f: 4,
        };
        let dim = 128;
        let sched = params.schedule(ElemType::F32, 0);
        // Bytes term matches the schedule exactly; the step penalty adds
        // 0.1 per step (2 coarse + 4 fine here).
        let expect = sched.total_lines(dim) as f64 + STEP_PENALTY_LINES * 6.0;
        assert!((cost_lines(dim, 32, None, params) - expect).abs() < 1e-9);
    }

    #[test]
    fn early_termination_costs_less() {
        let params = DualParams {
            n_c: 8,
            t_c: 2,
            n_f: 2,
        };
        let early = cost_lines(96, 32, Some(6), params);
        let late = cost_lines(96, 32, Some(28), params);
        let never = cost_lines(96, 32, None, params);
        assert!(early < late);
        assert!(late < never);
    }

    #[test]
    fn all_terminate_early_prefers_small_first_steps() {
        // Every pair terminates within the first 4 bits: the optimizer
        // should not pick a 32-bit first chunk.
        let mut hist = vec![0.0; 32];
        hist[3] = 1.0; // terminate at bit 4
        let p = optimize_dual_schedule(128, 32, 0, &hist, 0.0);
        assert!(p.n_c <= 8, "got {p:?}");
    }

    #[test]
    fn never_terminating_prefers_full_width() {
        // Nothing terminates: any splitting only adds padding lines, so
        // the optimum is one full-width fetch.
        let hist = vec![0.0; 32];
        let p = optimize_dual_schedule(128, 32, 0, &hist, 1.0);
        let cost_full = cost_lines(
            128,
            32,
            None,
            DualParams {
                n_c: 32,
                t_c: 1,
                n_f: 32,
            },
        );
        let cost_best = cost_lines(128, 32, None, p);
        assert!(cost_best <= cost_full + 1e-9);
    }

    #[test]
    fn mixed_distribution_uses_dual_granularity() {
        // Paper's motivation: skip the low-entropy head coarsely, then
        // fine steps through the high-termination range.
        let mut hist = vec![0.0; 32];
        hist[9] = 0.3; // bit 10
        hist[11] = 0.3; // bit 12
        hist[13] = 0.2; // bit 14
        let p = optimize_dual_schedule(96, 32, 0, &hist, 0.2);
        assert!(p.n_f <= p.n_c);
        let naive = DualParams {
            n_c: 1,
            t_c: 32,
            n_f: 1,
        };
        let cost_p: f64 = [(10u32, 0.3), (12, 0.3), (14, 0.2)]
            .iter()
            .map(|&(pos, f)| f * cost_lines(96, 32, Some(pos), p))
            .sum::<f64>()
            + 0.2 * cost_lines(96, 32, None, p);
        let cost_naive: f64 = [(10u32, 0.3), (12, 0.3), (14, 0.2)]
            .iter()
            .map(|&(pos, f)| f * cost_lines(96, 32, Some(pos), naive))
            .sum::<f64>()
            + 0.2 * cost_lines(96, 32, None, naive);
        assert!(
            cost_p < cost_naive,
            "dual {cost_p} vs bit-serial {cost_naive}"
        );
    }

    #[test]
    fn respects_prefix_elimination() {
        let mut hist = vec![0.0; 32];
        hist[11] = 1.0;
        let p = optimize_dual_schedule(96, 32, 6, &hist, 0.0);
        let sched = p.schedule(ElemType::F32, 6);
        assert_eq!(sched.steps().iter().sum::<u32>(), 26);
    }

    #[test]
    fn positions_inside_prefix_cost_nothing() {
        // If everything terminates within the eliminated prefix, any
        // schedule has expected cost ≈ 0; the function must still return
        // valid parameters.
        let mut hist = vec![0.0; 32];
        hist[2] = 1.0; // bit 3, inside a 6-bit prefix
        let p = optimize_dual_schedule(96, 32, 6, &hist, 0.0);
        let sched = p.schedule(ElemType::F32, 6);
        assert_eq!(sched.steps().iter().sum::<u32>(), 26);
    }
}
