//! Early termination in *exact* search (§4.1: "our approach has no
//! accuracy loss, and can even be used in accurate search algorithms like
//! kmeans and kNN").
//!
//! Because the bound is a true lower bound, a brute-force k-NN scan or a
//! k-means assignment step can drop candidates the moment their bound
//! crosses the current best — returning exactly the exhaustive answer
//! while skipping most of the data.

use ansmet_index::{MaxDistHeap, Neighbor};

use crate::engine::EtEngine;

/// Result of an early-terminating exact scan.
#[derive(Debug, Clone, PartialEq)]
pub struct ExactScan {
    /// Neighbor ids, closest first (identical to exhaustive search).
    pub ids: Vec<usize>,
    /// Matching distances.
    pub distances: Vec<f32>,
    /// 64 B lines fetched (including outlier backups).
    pub lines: u64,
    /// Lines an exhaustive full-fetch scan would have moved.
    pub baseline_lines: u64,
    /// Candidates early-terminated.
    pub pruned: u64,
}

impl ExactScan {
    /// Fraction of baseline traffic actually moved.
    pub fn traffic_fraction(&self) -> f64 {
        self.lines as f64 / self.baseline_lines.max(1) as f64
    }
}

/// Exact k-nearest-neighbor scan with early termination.
///
/// Returns the same ids and distances as
/// [`ansmet_vecdata::brute_force_knn`], in the same order.
///
/// # Panics
///
/// Panics if `k` is zero.
pub fn et_knn(engine: &EtEngine<'_>, query: &[f32], k: usize) -> ExactScan {
    assert!(k > 0, "k must be positive");
    let data = engine.dataset();
    let k = k.min(data.len());
    let mut heap = MaxDistHeap::new(k);
    let mut lines = 0u64;
    let mut pruned = 0u64;
    for id in 0..data.len() {
        let threshold = heap.threshold();
        let cost = engine.evaluate(id, query, threshold);
        lines += cost.total_lines() as u64;
        if cost.pruned {
            pruned += 1;
            continue;
        }
        if let Some(d) = cost.effective_distance() {
            heap.push(Neighbor::new(d, id));
        }
    }
    let sorted = heap.into_sorted();
    ExactScan {
        ids: sorted.iter().map(|n| n.id).collect(),
        distances: sorted.iter().map(|n| n.dist).collect(),
        lines,
        baseline_lines: (data.len() * engine.full_lines()) as u64,
        pruned,
    }
}

/// Exact nearest-centroid assignment with early termination (the k-means
/// assignment step). `engine` must be built over the *centroid* dataset.
///
/// Returns `(centroid index, distance, scan stats)` — identical to an
/// exhaustive argmin.
pub fn et_assign(engine: &EtEngine<'_>, point: &[f32]) -> (usize, f32, ExactScan) {
    let scan = et_knn(engine, point, 1);
    (scan.ids[0], scan.distances[0], scan.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EtConfig;
    use crate::schedule::FetchSchedule;
    use ansmet_vecdata::{brute_force_knn, SynthSpec};

    #[test]
    fn et_knn_matches_brute_force_exactly() {
        for spec in [SynthSpec::sift(), SynthSpec::deep(), SynthSpec::glove()] {
            let (data, queries) = spec.scaled(400, 4).generate();
            let engine = EtEngine::new(
                &data,
                EtConfig::new(FetchSchedule::simple_heuristic(data.dtype())),
            );
            for q in &queries {
                let (truth_ids, truth_d) = brute_force_knn(&data, q, 10);
                let scan = et_knn(&engine, q, 10);
                assert_eq!(scan.ids, truth_ids, "dataset {}", data.name());
                for (a, b) in scan.distances.iter().zip(&truth_d) {
                    assert!((a - b).abs() <= b.abs() * 1e-5 + 1e-4);
                }
            }
        }
    }

    #[test]
    fn et_knn_saves_most_traffic() {
        let (data, queries) = SynthSpec::sift().scaled(800, 2).generate();
        let engine = EtEngine::new(
            &data,
            EtConfig::new(FetchSchedule::simple_heuristic(data.dtype())),
        );
        let scan = et_knn(&engine, &queries[0], 10);
        // In a full scan almost everything is far from the query: the
        // fetched fraction must drop well below 1.
        assert!(
            scan.traffic_fraction() < 0.8,
            "fraction {}",
            scan.traffic_fraction()
        );
        assert!(scan.pruned > data.len() as u64 / 2);
    }

    #[test]
    fn et_assign_matches_argmin() {
        let (data, queries) = SynthSpec::deep().scaled(64, 8).generate();
        let engine = EtEngine::new(
            &data,
            EtConfig::new(FetchSchedule::simple_heuristic(data.dtype())),
        );
        for q in &queries {
            let (truth, _) = brute_force_knn(&data, q, 1);
            let (idx, d, _) = et_assign(&engine, q);
            assert_eq!(idx, truth[0]);
            assert!((d - data.distance_to(idx, q)).abs() < 1e-4);
        }
    }

    #[test]
    fn k_clamped_to_dataset() {
        let (data, queries) = SynthSpec::sift().scaled(5, 1).generate();
        let engine = EtEngine::new(
            &data,
            EtConfig::new(FetchSchedule::simple_heuristic(data.dtype())),
        );
        let scan = et_knn(&engine, &queries[0], 100);
        assert_eq!(scan.ids.len(), 5);
    }
}
