//! Observation seam for early-termination evaluations.
//!
//! The engine reports *why* a comparison stopped — terminated on a
//! bound, forced a backup re-check — through this trait, so an enabled
//! tracer can record per-comparison events without the engine depending
//! on any observability machinery. The default observer is a no-op and
//! monomorphizes away; `core` deliberately defines its own tiny trait
//! (rather than pulling in a sink crate) to stay at the bottom of the
//! dependency graph.

/// Receives per-comparison early-termination outcomes.
///
/// All methods default to no-ops; implement only what you record.
pub trait EtObserver {
    /// The comparison terminated on the lower bound after fetching
    /// `lines` of the `planned` transformed-layout lines.
    fn terminated(&mut self, lines: usize, planned: usize) {
        let _ = (lines, planned);
    }

    /// An in-bound outlier vector forced a backup re-check fetching
    /// `lines` natural-layout lines.
    fn backup_recheck(&mut self, lines: usize) {
        let _ = lines;
    }
}

/// The default observer: records nothing, compiles to nothing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopEtObserver;

impl EtObserver for NoopEtObserver {}

impl<T: EtObserver + ?Sized> EtObserver for &mut T {
    fn terminated(&mut self, lines: usize, planned: usize) {
        (**self).terminated(lines, planned)
    }
    fn backup_recheck(&mut self, lines: usize) {
        (**self).backup_recheck(lines)
    }
}
