//! Typed errors for recoverable evaluation-engine misuse.

use std::error::Error;
use std::fmt;

/// A recoverable early-termination engine error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EtError {
    /// The query's dimensionality differs from the dataset's.
    QueryDimMismatch {
        /// The dataset dimensionality.
        expected: usize,
        /// The query length supplied.
        got: usize,
    },
    /// The requested dimension sub-range exceeds the vector.
    RangeOutOfBounds {
        /// Exclusive end of the requested range.
        end: usize,
        /// The dataset dimensionality.
        dim: usize,
    },
}

impl fmt::Display for EtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EtError::QueryDimMismatch { expected, got } => {
                write!(
                    f,
                    "query dimension mismatch: expected {expected}, got {got}"
                )
            }
            EtError::RangeOutOfBounds { end, dim } => {
                write!(f, "dimension range out of bounds: end {end} > dim {dim}")
            }
        }
    }
}

impl Error for EtError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_reports_both_sides() {
        let e = EtError::QueryDimMismatch {
            expected: 128,
            got: 4,
        };
        assert!(e.to_string().contains("128"));
        assert!(e.to_string().contains('4'));
        let e = EtError::RangeOutOfBounds { end: 9, dim: 8 };
        assert!(e.to_string().contains('9'));
    }
}
