//! Sampling-based preprocessing (§4.2, §7.3).
//!
//! A small sample of database vectors (100 by default) drives all offline
//! decisions: the threshold approximation (a percentile of the pairwise
//! distance distribution), the early-termination position distribution
//! (used for layout optimization and adaptive polling), and the KL
//! divergence diagnostics of Fig. 11.

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use ansmet_vecdata::Dataset;

use crate::analysis::first_termination_position;

/// Parameters of the sampling pass.
#[derive(Debug, Clone, PartialEq)]
pub struct SamplingConfig {
    /// Number of sampled vectors (paper default: 100).
    pub n_samples: usize,
    /// Threshold percentile in the pairwise distance distribution.
    /// The paper empirically selects the boundary of the 10 % largest
    /// distances' complement — the 10 % percentile of §7.3's sweep.
    pub threshold_percentile: f64,
    /// RNG seed for sample selection.
    pub seed: u64,
}

impl Default for SamplingConfig {
    fn default() -> Self {
        SamplingConfig {
            n_samples: 100,
            threshold_percentile: 0.10,
            seed: 0xA17,
        }
    }
}

impl SamplingConfig {
    /// Override the sample count.
    pub fn with_samples(mut self, n: usize) -> Self {
        self.n_samples = n;
        self
    }

    /// Override the threshold percentile.
    pub fn with_percentile(mut self, p: f64) -> Self {
        self.threshold_percentile = p;
        self
    }
}

/// The output of the sampling pass.
#[derive(Debug, Clone, PartialEq)]
pub struct SamplingProfile {
    /// Sampled vector ids.
    pub sample_ids: Vec<usize>,
    /// Approximated early-termination threshold.
    pub threshold: f32,
    /// Distribution of first-termination prefix positions: entry `p`
    /// (0-based; position `p+1` bits) is the fraction of sampled pairs
    /// terminating exactly there.
    pub et_histogram: Vec<f64>,
    /// Fraction of pairs that never terminate under the threshold.
    pub never_frac: f64,
}

impl SamplingProfile {
    /// Run the sampling pass over `data`.
    ///
    /// # Panics
    ///
    /// Panics if the dataset has fewer than two vectors.
    pub fn build(data: &Dataset, cfg: &SamplingConfig) -> Self {
        assert!(data.len() >= 2, "need at least two vectors to sample");
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        let mut ids: Vec<usize> = (0..data.len()).collect();
        ids.shuffle(&mut rng);
        ids.truncate(cfg.n_samples.max(2).min(data.len()));
        ids.sort_unstable();

        // Pairwise distance distribution.
        let mut dists = Vec::with_capacity(ids.len() * (ids.len() - 1) / 2);
        for (i, &a) in ids.iter().enumerate() {
            for &b in &ids[i + 1..] {
                dists.push(data.distance_to(a, data.vector(b)));
            }
        }
        dists.sort_by(|x, y| x.partial_cmp(y).unwrap_or(std::cmp::Ordering::Equal));
        let threshold = percentile(&dists, cfg.threshold_percentile);

        // First-termination positions over sample pairs.
        let bits = data.dtype().bits() as usize;
        let mut hist = vec![0usize; bits];
        let mut never = 0usize;
        let mut pairs = 0usize;
        for &q in &ids {
            let query = data.vector(q).to_vec();
            for &id in &ids {
                if id == q {
                    continue;
                }
                pairs += 1;
                match first_termination_position(data, id, &query, threshold) {
                    Some(p) if p >= 1 => hist[(p as usize - 1).min(bits - 1)] += 1,
                    Some(_) => hist[0] += 1,
                    None => never += 1,
                }
            }
        }
        let total = pairs.max(1) as f64;
        SamplingProfile {
            sample_ids: ids,
            threshold,
            et_histogram: hist.into_iter().map(|c| c as f64 / total).collect(),
            never_frac: never as f64 / total,
        }
    }

    /// Mean first-termination position in bits (ignoring never-terminating
    /// pairs); `None` when nothing terminated.
    pub fn mean_termination_bits(&self) -> Option<f64> {
        let mass: f64 = self.et_histogram.iter().sum();
        if mass <= 0.0 {
            return None;
        }
        let weighted: f64 = self
            .et_histogram
            .iter()
            .enumerate()
            .map(|(i, &f)| (i + 1) as f64 * f)
            .sum();
        Some(weighted / mass)
    }
}

/// Value at `q` (0..=1) in a sorted slice (nearest-rank).
pub fn percentile(sorted: &[f32], q: f64) -> f32 {
    assert!(!sorted.is_empty(), "empty distribution");
    let q = q.clamp(0.0, 1.0);
    let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[idx]
}

/// Kullback–Leibler divergence `D(p ‖ q)` between two histograms
/// (normalized internally; zero-probability bins are smoothed).
pub fn kl_divergence(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "histogram length mismatch");
    const EPS: f64 = 1e-9;
    let sp: f64 = p.iter().sum::<f64>().max(EPS);
    let sq: f64 = q.iter().sum::<f64>().max(EPS);
    p.iter()
        .zip(q)
        .map(|(&pi, &qi)| {
            let pi = (pi / sp).max(EPS);
            let qi = (qi / sq).max(EPS);
            pi * (pi / qi).ln()
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ansmet_vecdata::SynthSpec;

    #[test]
    fn percentile_basics() {
        let v = [1.0f32, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 1.0), 5.0);
        assert_eq!(percentile(&v, 0.5), 3.0);
    }

    #[test]
    fn kl_zero_for_identical() {
        let p = [0.25, 0.25, 0.5];
        assert!(kl_divergence(&p, &p).abs() < 1e-9);
    }

    #[test]
    fn kl_positive_for_different() {
        let p = [0.9, 0.1];
        let q = [0.1, 0.9];
        assert!(kl_divergence(&p, &q) > 0.5);
    }

    #[test]
    fn profile_shapes() {
        let (data, _) = SynthSpec::sift().scaled(200, 1).generate();
        let cfg = SamplingConfig::default().with_samples(20);
        let prof = SamplingProfile::build(&data, &cfg);
        assert_eq!(prof.sample_ids.len(), 20);
        assert_eq!(prof.et_histogram.len(), 8);
        let mass: f64 = prof.et_histogram.iter().sum::<f64>() + prof.never_frac;
        assert!((mass - 1.0).abs() < 1e-9, "mass {mass}");
        assert!(prof.threshold > 0.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let (data, _) = SynthSpec::deep().scaled(150, 1).generate();
        let cfg = SamplingConfig::default().with_samples(15);
        let a = SamplingProfile::build(&data, &cfg);
        let b = SamplingProfile::build(&data, &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn smaller_percentile_means_smaller_threshold() {
        let (data, _) = SynthSpec::sift().scaled(150, 1).generate();
        let lo = SamplingProfile::build(
            &data,
            &SamplingConfig::default()
                .with_samples(20)
                .with_percentile(0.05),
        );
        let hi = SamplingProfile::build(
            &data,
            &SamplingConfig::default()
                .with_samples(20)
                .with_percentile(0.5),
        );
        assert!(lo.threshold <= hi.threshold);
    }

    #[test]
    fn tighter_threshold_terminates_earlier() {
        let (data, _) = SynthSpec::sift().scaled(150, 1).generate();
        let lo = SamplingProfile::build(
            &data,
            &SamplingConfig::default()
                .with_samples(15)
                .with_percentile(0.05),
        );
        let hi = SamplingProfile::build(
            &data,
            &SamplingConfig::default()
                .with_samples(15)
                .with_percentile(0.9),
        );
        if let (Some(a), Some(b)) = (lo.mean_termination_bits(), hi.mean_termination_bits()) {
            assert!(a <= b + 1.0, "{a} vs {b}")
        }
    }
}
