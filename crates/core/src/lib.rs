//! The ANSMET hybrid partial-dimension / partial-bit early-termination
//! algorithm (§4 of the paper) — the paper's primary contribution.
//!
//! The pipeline:
//!
//! 1. [`encode`] maps every element type to an **order-preserving sortable
//!    encoding**, so that a known bit *prefix* confines the element's value
//!    to a contiguous interval.
//! 2. [`interval`] + [`bound`] turn per-dimension intervals into a
//!    **conservative distance lower bound** (the paper's missing-bit rules
//!    for L2 and inner-product, generalized).
//! 3. [`schedule`] describes the transformed data layout as a sequence of
//!    per-dimension bit steps packed into 64 B lines; [`layout`] performs
//!    the physical bit-plane packing and recovery.
//! 4. [`prefix`] implements outlier-aware common-prefix elimination
//!    (Fig. 4), [`analysis`] the prefix-entropy / ET-frequency profiling
//!    (Fig. 3), [`sampling`] the sampling-based preprocessing, and
//!    [`planner`] the dual-granularity fetch optimization (n_C, T_C, n_F).
//! 5. [`engine`] ties it together: given a vector id, a query, and the
//!    current threshold, it simulates the fetch-by-fetch lower-bound
//!    refinement and reports how many 64 B lines were fetched and whether
//!    the comparison early-terminated — with **no accuracy loss**.
//!
//! # Example
//!
//! ```
//! use ansmet_vecdata::SynthSpec;
//! use ansmet_core::{EtConfig, EtEngine, FetchSchedule};
//!
//! let (data, queries) = SynthSpec::sift().scaled(200, 2).generate();
//! let cfg = EtConfig::new(FetchSchedule::uniform(data.dtype(), 4));
//! let engine = EtEngine::new(&data, cfg);
//! let cost = engine.evaluate(0, &queries[0], 100.0);
//! assert!(cost.lines <= engine.full_lines());
//! ```

pub mod analysis;
pub mod bound;
pub mod encode;
pub mod engine;
pub mod error;
pub mod exact;
pub mod interval;
pub mod layout;
pub mod observe;
pub mod planner;
pub mod prefix;
pub mod sampling;
pub mod schedule;

pub use analysis::{et_frequency_profile, prefix_entropy_profile};
pub use bound::DistanceBounder;
pub use encode::{from_sortable, sortable_to_value, to_sortable};
pub use engine::{EtConfig, EtEngine, EtOracle, EtScratch, EvalCost};
pub use error::EtError;
pub use exact::{et_assign, et_knn, ExactScan};
pub use interval::ValueInterval;
pub use layout::{TransformedDataset, TransformedVector};
pub use observe::{EtObserver, NoopEtObserver};
pub use planner::{optimize_dual_schedule, DualParams};
pub use prefix::PrefixSpec;
pub use sampling::{SamplingConfig, SamplingProfile};
pub use schedule::{FetchSchedule, LinePlan};
