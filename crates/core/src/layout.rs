//! Physical bit-plane layout transformation (§4.1 Fig. 2b, §4.2).
//!
//! [`transform`] packs a vector's sortable-encoded elements into 64 B
//! lines following a [`FetchSchedule`]: step *i* stores the next `n_i`
//! bits of each dimension, most-significant first, `⌊512/n_i⌋` dimensions
//! per line, padded to line granularity. [`recover`] reads prefixes back
//! from a partially-fetched line sequence — the operation the NDP unit's
//! command parser performs when restoring fetched chunks into the QSHR's
//! current-vector field.
//!
//! With common-prefix elimination the schedule covers only the stored
//! payload (`bits − L`); the top `L` bits are kept on-chip (see
//! [`crate::prefix::PrefixSpec`]). This packer implements the normal
//! vector format; outlier vectors additionally interleave per-element
//! metadata (Fig. 4c), which the evaluation engine models analytically.

use ansmet_vecdata::Dataset;

use crate::encode::to_sortable;
use crate::schedule::FetchSchedule;

/// One vector in the transformed layout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransformedVector {
    /// 64 B lines in fetch order.
    pub lines: Vec<[u8; 64]>,
}

impl TransformedVector {
    /// Total bytes occupied (including padding).
    pub fn bytes(&self) -> usize {
        self.lines.len() * 64
    }
}

/// Bit-writer over a sequence of 64 B lines.
struct LineWriter {
    lines: Vec<[u8; 64]>,
    bit: usize,
}

impl LineWriter {
    fn new() -> Self {
        LineWriter {
            lines: Vec::new(),
            bit: 0,
        }
    }

    fn start_line(&mut self) {
        self.lines.push([0u8; 64]);
        self.bit = 0;
    }

    /// Append `n` bits of `value` (MSB of the n-bit field first).
    fn push_bits(&mut self, value: u32, n: u32) {
        let line = self.lines.last_mut().expect("start_line first");
        for i in (0..n).rev() {
            let b = (value >> i) & 1;
            if b != 0 {
                line[self.bit / 8] |= 0x80 >> (self.bit % 8);
            }
            self.bit += 1;
        }
    }
}

/// Extract `n` bits starting at bit offset `off` within a 64 B line.
fn read_bits(line: &[u8; 64], off: usize, n: u32) -> u32 {
    let mut v = 0u32;
    for i in 0..n as usize {
        let bit = off + i;
        let b = (line[bit / 8] >> (7 - (bit % 8))) & 1;
        v = (v << 1) | b as u32;
    }
    v
}

/// Pack one vector's sortable encodings into the transformed layout.
///
/// `sortables` are the LSB-aligned sortable encodings of the vector's
/// elements. With a non-zero schedule prefix the top `prefix_len` bits are
/// omitted (kept on-chip).
pub fn transform(sortables: &[u32], schedule: &FetchSchedule) -> TransformedVector {
    let dim = sortables.len();
    let bits = schedule.dtype().bits();
    let prefix = schedule.prefix_len();
    let mut w = LineWriter::new();
    let cumulative = schedule.cumulative_bits();
    for lp in schedule.line_plan(dim) {
        w.start_line();
        let n = lp.bits;
        let end_bit = prefix + cumulative[lp.step]; // bits consumed so far
        #[allow(clippy::needless_range_loop)] // indexed loops over shared state read clearer here
        for d in lp.dim_start..lp.dim_end {
            // Bits [bits-end_bit, bits-end_bit+n) of the sortable value.
            let shift = bits - end_bit;
            let chunk = (sortables[d] >> shift) & ones(n);
            w.push_bits(chunk, n);
        }
    }
    TransformedVector { lines: w.lines }
}

fn ones(n: u32) -> u32 {
    if n >= 32 {
        u32::MAX
    } else {
        (1u32 << n) - 1
    }
}

/// Recover per-dimension `(prefix_value, prefix_len)` pairs from the first
/// `fetched_lines` lines of a transformed vector. Prefix lengths exclude
/// any on-chip eliminated prefix (they count stored payload bits only).
pub fn recover(
    tv: &TransformedVector,
    schedule: &FetchSchedule,
    dim: usize,
    fetched_lines: usize,
) -> Vec<(u32, u32)> {
    let mut out = vec![(0u32, 0u32); dim];
    for lp in schedule.line_plan(dim).iter().take(fetched_lines) {
        let line = &tv.lines[lines_index(lp, schedule, dim)];
        let n = lp.bits;
        let mut off = 0usize;
        #[allow(clippy::needless_range_loop)] // indexed loops over shared state read clearer here
        for d in lp.dim_start..lp.dim_end {
            let chunk = read_bits(line, off, n);
            let (v, len) = out[d];
            out[d] = ((v << n) | chunk, len + n);
            off += n as usize;
        }
    }
    out
}

/// Index of a line plan entry within the flat line sequence.
fn lines_index(lp: &crate::schedule::LinePlan, schedule: &FetchSchedule, dim: usize) -> usize {
    let mut idx = 0;
    for s in 0..lp.step {
        idx += schedule.lines_in_step(s, dim);
    }
    idx + lp.dim_start / FetchSchedule::dims_per_line(lp.bits)
}

/// The whole dataset in transformed layout.
#[derive(Debug, Clone)]
pub struct TransformedDataset {
    vectors: Vec<TransformedVector>,
    schedule: FetchSchedule,
}

impl TransformedDataset {
    /// Transform every vector of `data` (offline preprocessing; the
    /// paper's Table 4 measures this step).
    pub fn build(data: &Dataset, schedule: FetchSchedule) -> Self {
        let dtype = data.dtype();
        let vectors = (0..data.len())
            .map(|i| {
                let sortables: Vec<u32> = data
                    .raw_vector(i)
                    .iter()
                    .map(|&r| to_sortable(dtype, r))
                    .collect();
                transform(&sortables, &schedule)
            })
            .collect();
        TransformedDataset { vectors, schedule }
    }

    /// The transformed form of vector `i`.
    pub fn vector(&self, i: usize) -> &TransformedVector {
        &self.vectors[i]
    }

    /// The schedule the layout was built with.
    pub fn schedule(&self) -> &FetchSchedule {
        &self.schedule
    }

    /// Number of vectors.
    pub fn len(&self) -> usize {
        self.vectors.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.vectors.is_empty()
    }

    /// Total bytes including padding.
    pub fn total_bytes(&self) -> usize {
        self.vectors.iter().map(TransformedVector::bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ansmet_vecdata::{ElemType, SynthSpec};
    use proptest::prelude::*;

    #[test]
    fn paper_fig2_example() {
        // Fig. 2(b): 2-dim 4-bit vector S3 = (0011, 1101) stored as the
        // top 2 bits of both elements, then the low 2 bits: 00 11 | 11 01.
        // We model 4-bit elements in the top nibble of U8 (values 0x30,
        // 0xD0) with an 8-bit schedule of 2-bit steps; the first two
        // steps correspond to the example.
        let sched = FetchSchedule::uniform(ElemType::U8, 2);
        let tv = transform(&[0x30, 0xD0], &sched);
        // Step 0 line: bits 00 11 (top 2 of 0x30=0011_0000 → 00; of
        // 0xD0=1101_0000 → 11).
        assert_eq!(tv.lines[0][0] >> 4, 0b0011);
        // Step 1 line: next 2 bits: 11 01.
        assert_eq!(tv.lines[1][0] >> 4, 0b1101);
    }

    #[test]
    fn full_recovery_roundtrip() {
        let sched = FetchSchedule::dual(ElemType::F32, 0, 8, 2, 3);
        let sortables: Vec<u32> = (0..10)
            .map(|i| 0x9abc_def0u32.wrapping_mul(i + 1))
            .collect();
        let tv = transform(&sortables, &sched);
        let rec = recover(&tv, &sched, 10, tv.lines.len());
        for (d, &(v, len)) in rec.iter().enumerate() {
            assert_eq!(len, 32);
            assert_eq!(v, sortables[d], "dim {d}");
        }
    }

    #[test]
    fn partial_recovery_gives_prefixes() {
        let sched = FetchSchedule::uniform(ElemType::U8, 4);
        let sortables = vec![0xABu32, 0x12];
        let tv = transform(&sortables, &sched);
        let rec = recover(&tv, &sched, 2, 1);
        assert_eq!(rec[0], (0xA, 4));
        assert_eq!(rec[1], (0x1, 4));
    }

    #[test]
    fn prefix_elimination_drops_top_bits() {
        let sched = FetchSchedule::uniform_after_prefix(ElemType::U8, 3, 5);
        let sortables = vec![0b1011_0110u32];
        let tv = transform(&sortables, &sched);
        let rec = recover(&tv, &sched, 1, tv.lines.len());
        // Stored payload = low 5 bits = 1_0110.
        assert_eq!(rec[0], (0b1_0110, 5));
    }

    #[test]
    fn line_count_matches_schedule() {
        let (data, _) = SynthSpec::gist().scaled(10, 1).generate();
        let sched = FetchSchedule::simple_heuristic(data.dtype());
        let td = TransformedDataset::build(&data, sched.clone());
        assert_eq!(td.vector(0).lines.len(), sched.total_lines(data.dim()));
        assert_eq!(td.len(), 10);
        assert_eq!(td.total_bytes(), 10 * td.vector(0).bytes());
    }

    #[test]
    fn multi_line_step_spans_dimensions() {
        // 200 dims at 8 bits: 64 dims per line → 4 lines per step.
        let sched = FetchSchedule::uniform(ElemType::F32, 8);
        let sortables: Vec<u32> = (0..200u32).map(|i| i * 0x0101_0101).collect();
        let tv = transform(&sortables, &sched);
        assert_eq!(tv.lines.len(), sched.total_lines(200));
        let rec = recover(&tv, &sched, 200, tv.lines.len());
        for (d, &(v, _)) in rec.iter().enumerate() {
            assert_eq!(v, sortables[d]);
        }
    }

    proptest! {
        #[test]
        fn roundtrip_random_u8(vals in proptest::collection::vec(0u32..256, 1..100)) {
            let sched = FetchSchedule::uniform(ElemType::U8, 3);
            let tv = transform(&vals, &sched);
            let rec = recover(&tv, &sched, vals.len(), tv.lines.len());
            for (d, &(v, len)) in rec.iter().enumerate() {
                prop_assert_eq!(len, 8);
                prop_assert_eq!(v, vals[d]);
            }
        }

        #[test]
        fn prefix_of_recovery_matches_top_bits(
            vals in proptest::collection::vec(0u32..u32::MAX, 1..40),
            fetched in 1usize..5,
        ) {
            let sched = FetchSchedule::uniform(ElemType::F32, 7);
            let tv = transform(&vals, &sched);
            let fetched = fetched.min(tv.lines.len());
            let rec = recover(&tv, &sched, vals.len(), fetched);
            for (d, &(v, len)) in rec.iter().enumerate() {
                if len > 0 {
                    prop_assert_eq!(v, vals[d] >> (32 - len), "dim {}", d);
                }
            }
        }
    }
}
