//! Value intervals implied by partially-fetched bit prefixes.

use ansmet_vecdata::ElemType;

use crate::encode::sortable_to_value;

/// The contiguous interval of values an element can take given its known
/// (most-significant) sortable-encoding prefix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ValueInterval {
    /// Smallest possible value.
    pub lo: f32,
    /// Largest possible value.
    pub hi: f32,
}

impl ValueInterval {
    /// Interval given the top `prefix_len` bits of the sortable encoding.
    ///
    /// `prefix` holds the known bits LSB-aligned (i.e. the value of the
    /// top `prefix_len` bits as an integer). With `prefix_len == 0` this
    /// is the full range of the type; with `prefix_len == bits` it
    /// collapses to the exact value.
    ///
    /// # Panics
    ///
    /// Panics if `prefix_len` exceeds the type's width.
    pub fn from_prefix(dtype: ElemType, prefix: u32, prefix_len: u32) -> Self {
        let bits = dtype.bits();
        assert!(prefix_len <= bits, "prefix longer than element");
        let missing = bits - prefix_len;
        let base = if missing >= 32 { 0 } else { prefix << missing };
        let ones = if missing >= 32 {
            u32::MAX
        } else {
            (1u64 << missing) as u32 - 1
        };
        let lo_sortable = base;
        let hi_sortable = base | ones;
        // The extreme sortable patterns of float types decode to NaN
        // payloads (beyond ±∞ in sortable order). Datasets never contain
        // NaN, so widening such endpoints to ±∞ stays conservative.
        let mut lo = sortable_to_value(dtype, lo_sortable);
        let mut hi = sortable_to_value(dtype, hi_sortable);
        if lo.is_nan() {
            lo = f32::NEG_INFINITY;
        }
        if hi.is_nan() {
            hi = f32::INFINITY;
        }
        ValueInterval { lo, hi }
    }

    /// The full range of the type (nothing fetched yet — the
    /// partial-dimension case for unfetched dimensions).
    pub fn full_range(dtype: ElemType) -> Self {
        ValueInterval::from_prefix(dtype, 0, 0)
    }

    /// An exact (degenerate) interval.
    pub fn exact(v: f32) -> Self {
        ValueInterval { lo: v, hi: v }
    }

    /// Whether the interval is a single point.
    pub fn is_exact(&self) -> bool {
        self.lo == self.hi
    }

    /// Whether `v` lies inside the interval.
    pub fn contains(&self, v: f32) -> bool {
        self.lo <= v && v <= self.hi
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn u8_full_range() {
        let iv = ValueInterval::full_range(ElemType::U8);
        assert_eq!(iv.lo, 0.0);
        assert_eq!(iv.hi, 255.0);
    }

    #[test]
    fn i8_full_range() {
        let iv = ValueInterval::full_range(ElemType::I8);
        assert_eq!(iv.lo, -128.0);
        assert_eq!(iv.hi, 127.0);
    }

    #[test]
    fn f32_full_range_is_infinite() {
        let iv = ValueInterval::full_range(ElemType::F32);
        assert_eq!(iv.lo, f32::NEG_INFINITY);
        assert_eq!(iv.hi, f32::INFINITY);
    }

    #[test]
    fn u8_prefix_narrows() {
        // Top 2 bits = 0b01 → values 64..=127.
        let iv = ValueInterval::from_prefix(ElemType::U8, 0b01, 2);
        assert_eq!(iv.lo, 64.0);
        assert_eq!(iv.hi, 127.0);
    }

    #[test]
    fn full_prefix_is_exact() {
        let raw = ElemType::U8.encode(42.0);
        let s = crate::encode::to_sortable(ElemType::U8, raw);
        let iv = ValueInterval::from_prefix(ElemType::U8, s, 8);
        assert!(iv.is_exact());
        assert_eq!(iv.lo, 42.0);
    }

    #[test]
    fn paper_partial_bit_example() {
        // §4.1: vector prefix 00__₂ against query 0110₂ — 4-bit unsigned
        // values. Prefix 00 → interval [0, 3]; query is 6; the closest the
        // element can be is 3 (missing bits set to 11₂), giving |6-3| = 3.
        // We model 4-bit values inside U8 by scaling: prefix 0000_00 of
        // length 6 on U8 gives [0, 3].
        let iv = ValueInterval::from_prefix(ElemType::U8, 0, 6);
        assert_eq!(iv.lo, 0.0);
        assert_eq!(iv.hi, 3.0);
    }

    proptest! {
        #[test]
        fn value_always_inside_its_prefix_interval(
            v in -1e6f32..1e6,
            plen in 0u32..=32,
        ) {
            let dtype = ElemType::F32;
            let s = crate::encode::value_to_sortable(dtype, v);
            let prefix = if plen == 0 { 0 } else { s >> (32 - plen) };
            let iv = ValueInterval::from_prefix(dtype, prefix, plen);
            let stored = dtype.decode(crate::encode::from_sortable(dtype, s));
            prop_assert!(iv.contains(stored), "{stored} not in [{}, {}]", iv.lo, iv.hi);
        }

        #[test]
        fn longer_prefix_never_widens(v in 0u32..256, p1 in 0u32..=8, p2 in 0u32..=8) {
            let (short, long) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
            let dtype = ElemType::U8;
            let s = crate::encode::to_sortable(dtype, v);
            let iv_s = ValueInterval::from_prefix(dtype, if short == 0 {0} else {s >> (8 - short)}, short);
            let iv_l = ValueInterval::from_prefix(dtype, if long == 0 {0} else {s >> (8 - long)}, long);
            prop_assert!(iv_s.lo <= iv_l.lo);
            prop_assert!(iv_l.hi <= iv_s.hi);
        }

        #[test]
        fn lo_never_exceeds_hi(prefix in 0u32..16, plen in 4u32..=4) {
            let iv = ValueInterval::from_prefix(ElemType::I8, prefix, plen);
            prop_assert!(iv.lo <= iv.hi);
        }
    }
}
