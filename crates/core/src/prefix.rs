//! Outlier-aware common-prefix elimination (§4.2, Fig. 4).
//!
//! The high (most-significant) bits of the sortable encoding are often
//! shared across a dataset (the low-entropy range of Fig. 3). Instead of
//! storing them, a single per-dimension prefix of global length `L` is
//! kept on-chip and concatenated to the fetched bits. Elements whose top
//! `L` bits differ from their dimension's prefix are **outliers**: they
//! are stored in place in a special format (01Elm flag + partial-match
//! length + remaining bits), dropping a few of their lowest bits — which
//! only *widens* the element's value interval, keeping bounds
//! conservative. Accuracy is preserved by re-checking an uncompressed
//! backup copy whenever a vector containing outliers lands in-bound.

use ansmet_vecdata::{Dataset, ElemType};

use crate::encode::to_sortable;

/// A chosen common-prefix specification.
#[derive(Debug, Clone, PartialEq)]
pub struct PrefixSpec {
    dtype: ElemType,
    /// Eliminated prefix length `L` in bits (0 disables elimination).
    len: u32,
    /// Per-dimension prefix value (top `L` sortable bits, LSB-aligned).
    dim_prefixes: Vec<u32>,
}

/// Dataset-wide statistics of a [`PrefixSpec`] (Table 5 columns).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PrefixStats {
    /// Fraction of elements that are outliers.
    pub outlier_element_frac: f64,
    /// Fraction of vectors containing at least one outlier element.
    pub outlier_vector_frac: f64,
    /// Fraction of storage saved by eliminating the prefix
    /// (≈ `L / bits`, minus the 01Vec bit).
    pub saved_space_frac: f64,
    /// Extra space for uncompressed backup copies of outlier vectors,
    /// as a fraction of the original dataset size.
    pub extra_space_frac: f64,
}

impl PrefixSpec {
    /// A disabled spec (no prefix elimination).
    pub fn disabled(dtype: ElemType, dim: usize) -> Self {
        PrefixSpec {
            dtype,
            len: 0,
            dim_prefixes: vec![0; dim],
        }
    }

    /// Choose the longest prefix such that at most
    /// `outlier_frac × (|sample| × dim)` sample elements are outliers
    /// (the paper empirically uses 0.1 %).
    ///
    /// Per dimension, the prefix value is grown greedily one bit at a
    /// time along the majority path, so prefixes at successive lengths
    /// are consistent and the outlier count is monotone in `L`.
    ///
    /// # Panics
    ///
    /// Panics if `sample_ids` is empty.
    pub fn choose(data: &Dataset, sample_ids: &[usize], outlier_frac: f64) -> Self {
        assert!(!sample_ids.is_empty(), "sample must be non-empty");
        let dtype = data.dtype();
        let bits = dtype.bits();
        let dim = data.dim();
        let budget = (outlier_frac * (sample_ids.len() * dim) as f64).floor() as usize;

        // Sortable encodings of the sample, dimension-major.
        let sample: Vec<Vec<u32>> = (0..dim)
            .map(|d| {
                sample_ids
                    .iter()
                    .map(|&id| to_sortable(dtype, data.raw_vector(id)[d]))
                    .collect()
            })
            .collect();

        // Greedy majority path per dimension; count mismatches per length.
        let mut dim_prefixes = vec![0u32; dim];
        let mut chosen_len = 0u32;
        let mut prefixes = vec![0u32; dim];
        let max_len = bits.saturating_sub(1);
        for l in 1..=max_len {
            let mut outliers = 0usize;
            let mut next = vec![0u32; dim];
            for d in 0..dim {
                let shift = bits - l;
                let want0 = prefixes[d] << 1;
                let want1 = want0 | 1;
                let c0 = sample[d].iter().filter(|&&s| (s >> shift) == want0).count();
                let c1 = sample[d].iter().filter(|&&s| (s >> shift) == want1).count();
                let (chosen, matched) = if c1 > c0 { (want1, c1) } else { (want0, c0) };
                next[d] = chosen;
                outliers += sample[d].len() - matched;
            }
            if outliers > budget {
                break;
            }
            prefixes = next;
            chosen_len = l;
            dim_prefixes.clone_from(&prefixes);
        }

        PrefixSpec {
            dtype,
            len: chosen_len,
            dim_prefixes,
        }
    }

    /// Reassemble a spec from snapshot parts.
    ///
    /// # Panics
    ///
    /// Panics if `len` is too long for the dtype or a prefix value does
    /// not fit in `len` bits.
    pub fn from_parts(dtype: ElemType, len: u32, dim_prefixes: Vec<u32>) -> Self {
        assert!(
            len < dtype.bits(),
            "prefix length {len} out of range for {dtype:?}"
        );
        assert!(
            len == 0 || dim_prefixes.iter().all(|&p| p >> len == 0),
            "prefix value wider than the declared length"
        );
        PrefixSpec {
            dtype,
            len,
            dim_prefixes,
        }
    }

    /// The element datatype this spec applies to.
    pub fn dtype(&self) -> ElemType {
        self.dtype
    }

    /// Eliminated prefix length `L`.
    pub fn len(&self) -> u32 {
        self.len
    }

    /// Whether no prefix bits are eliminated (clippy-conventional alias
    /// of [`PrefixSpec::is_disabled`]).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether elimination is effectively disabled.
    pub fn is_disabled(&self) -> bool {
        self.len == 0
    }

    /// The per-dimension on-chip prefix values.
    pub fn dim_prefixes(&self) -> &[u32] {
        &self.dim_prefixes
    }

    /// Length of the leading match between `sortable` and dimension `d`'s
    /// prefix (0..=L).
    pub fn matched_len(&self, d: usize, sortable: u32) -> u32 {
        if self.len == 0 {
            return 0;
        }
        let bits = self.dtype.bits();
        let top = sortable >> (bits - self.len);
        let diff = top ^ self.dim_prefixes[d];
        if diff == 0 {
            self.len
        } else {
            // Leading (most-significant within the L-bit field) zeros of
            // the difference = matched length.
            self.len - (32 - diff.leading_zeros())
        }
    }

    /// Whether element `(d, sortable)` is an outlier (top `L` bits differ
    /// from the dimension prefix).
    pub fn is_outlier_element(&self, d: usize, sortable: u32) -> bool {
        self.len > 0 && self.matched_len(d, sortable) < self.len
    }

    /// Whether vector `id` contains any outlier element.
    pub fn vector_has_outlier(&self, data: &Dataset, id: usize) -> bool {
        if self.len == 0 {
            return false;
        }
        data.raw_vector(id)
            .iter()
            .enumerate()
            .any(|(d, &raw)| self.is_outlier_element(d, to_sortable(self.dtype, raw)))
    }

    /// Per-element metadata bits in the outlier vector format: the 01Elm
    /// flag plus the partial-match length field (⌈log₂(L+1)⌉ bits).
    pub fn outlier_meta_bits(&self) -> u32 {
        if self.len == 0 {
            0
        } else {
            1 + 32 - self.len.leading_zeros()
        }
    }

    /// Number of vectors among `ids` that contain at least one outlier
    /// element under this spec — the epoch manager's re-validation
    /// signal: a mutated corpus whose outlier count outgrows the chosen
    /// budget needs its prefix re-chosen (or the affected vectors demoted
    /// to conservative full fetch).
    pub fn outlier_vector_count(&self, data: &Dataset, ids: &[usize]) -> usize {
        ids.iter()
            .filter(|&&id| self.vector_has_outlier(data, id))
            .count()
    }

    /// Dataset-wide statistics (outlier fractions, space saved/added).
    pub fn stats(&self, data: &Dataset) -> PrefixStats {
        let bits = self.dtype.bits() as f64;
        let dim = data.dim();
        let mut outlier_elems = 0usize;
        let mut outlier_vecs = 0usize;
        for id in 0..data.len() {
            let mut has = false;
            for (d, &raw) in data.raw_vector(id).iter().enumerate() {
                if self.is_outlier_element(d, to_sortable(self.dtype, raw)) {
                    outlier_elems += 1;
                    has = true;
                }
            }
            if has {
                outlier_vecs += 1;
            }
        }
        let total_elems = (data.len() * dim).max(1);
        let outlier_vector_frac = outlier_vecs as f64 / data.len().max(1) as f64;
        // Saved: L bits per element minus the 01Vec bit per vector.
        let saved_bits_per_vec = self.len as f64 * dim as f64 - 1.0;
        let total_bits_per_vec = bits * dim as f64;
        PrefixStats {
            outlier_element_frac: outlier_elems as f64 / total_elems as f64,
            outlier_vector_frac,
            saved_space_frac: if self.len == 0 {
                0.0
            } else {
                (saved_bits_per_vec / total_bits_per_vec).max(0.0)
            },
            extra_space_frac: outlier_vector_frac,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ansmet_vecdata::{Metric, SynthSpec};

    fn constant_high_bits_dataset() -> Dataset {
        // All values in [64, 80): u8 top 2 bits are 01 for every element.
        let values: Vec<f32> = (0..200).map(|i| 64.0 + (i % 16) as f32).collect();
        Dataset::from_values("c", ElemType::U8, Metric::L2, 4, values)
    }

    #[test]
    fn finds_shared_prefix() {
        let data = constant_high_bits_dataset();
        let ids: Vec<usize> = (0..data.len()).collect();
        let spec = PrefixSpec::choose(&data, &ids, 0.0);
        // 64..79 = 0b0100_0000..0b0100_1111: top 4 bits shared.
        assert_eq!(spec.len(), 4);
        assert!(spec.dim_prefixes().iter().all(|&p| p == 0b0100));
    }

    #[test]
    fn no_shared_prefix_on_uniform_data() {
        let values: Vec<f32> = (0..512).map(|i| (i % 256) as f32).collect();
        let data = Dataset::from_values("u", ElemType::U8, Metric::L2, 2, values);
        let ids: Vec<usize> = (0..data.len()).collect();
        let spec = PrefixSpec::choose(&data, &ids, 0.0);
        assert_eq!(spec.len(), 0);
        assert!(spec.is_disabled());
    }

    #[test]
    fn outlier_budget_allows_longer_prefix() {
        // 99% of elements share 4 top bits, 1% don't.
        let mut values: Vec<f32> = vec![70.0; 400];
        values[5] = 200.0;
        values[133] = 1.0;
        let data = Dataset::from_values("o", ElemType::U8, Metric::L2, 4, values);
        let ids: Vec<usize> = (0..data.len()).collect();
        let strict = PrefixSpec::choose(&data, &ids, 0.0);
        let loose = PrefixSpec::choose(&data, &ids, 0.01);
        assert_eq!(strict.len(), 0);
        assert!(!loose.is_empty(), "budget should unlock a prefix");
    }

    #[test]
    fn matched_len_cases() {
        let data = constant_high_bits_dataset();
        let ids: Vec<usize> = (0..data.len()).collect();
        let spec = PrefixSpec::choose(&data, &ids, 0.0);
        assert_eq!(spec.len(), 4);
        // Element 0b0100_xxxx matches fully.
        assert_eq!(spec.matched_len(0, 0b0100_0000), 4);
        // 0b0101_xxxx matches 3 bits.
        assert_eq!(spec.matched_len(0, 0b0101_0000), 3);
        // 0b1100_xxxx matches 0 bits.
        assert_eq!(spec.matched_len(0, 0b1100_0000), 0);
        assert!(spec.is_outlier_element(0, 0b0101_0000));
        assert!(!spec.is_outlier_element(0, 0b0100_1111));
    }

    #[test]
    fn paper_fig4_partial_match() {
        // Fig. 4(c): common prefix 1100₂, outlier element prefix 1111₂ —
        // partially matched length 2.
        let mut spec = PrefixSpec::disabled(ElemType::U8, 1);
        spec.len = 4;
        spec.dim_prefixes = vec![0b1100];
        assert_eq!(spec.matched_len(0, 0b1111_0000), 2);
        assert_eq!(spec.outlier_meta_bits(), 1 + 3); // 01Elm + ⌈log₂5⌉
    }

    #[test]
    fn stats_on_synthetic_dataset() {
        let (data, _) = SynthSpec::gist().scaled(200, 1).generate();
        let ids: Vec<usize> = (0..100).collect();
        let spec = PrefixSpec::choose(&data, &ids, 0.001);
        let stats = spec.stats(&data);
        assert!(stats.outlier_element_frac <= 0.05);
        if !spec.is_empty() {
            assert!(stats.saved_space_frac > 0.0);
        }
        assert!(stats.extra_space_frac <= 1.0);
    }

    #[test]
    fn vector_outlier_detection() {
        let mut values: Vec<f32> = vec![70.0; 40];
        values[13] = 250.0;
        let data = Dataset::from_values("v", ElemType::U8, Metric::L2, 4, values);
        let ids: Vec<usize> = (0..10).collect();
        let spec = PrefixSpec::choose(&data, &ids, 0.05);
        assert!(!spec.is_empty());
        assert!(spec.vector_has_outlier(&data, 3)); // vector 3 holds elem 13
        assert!(!spec.vector_has_outlier(&data, 0));
    }
}
