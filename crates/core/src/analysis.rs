//! Bit-prefix profiling (Fig. 3): prefix entropy and early-termination
//! frequency as functions of prefix length.

use std::collections::HashMap;

use ansmet_vecdata::Dataset;

use crate::bound::DistanceBounder;
use crate::encode::to_sortable;
use crate::interval::ValueInterval;

/// Shannon entropy (bits) of the top-`p`-bit prefix patterns, pooled over
/// all elements of the sampled vectors, for every `p` in `1..=bits`.
///
/// Low entropy at small `p` is the paper's *low-entropy range* (shared
/// prefixes); the entropy rises as bits become diverse.
pub fn prefix_entropy_profile(data: &Dataset, sample_ids: &[usize]) -> Vec<f64> {
    let dtype = data.dtype();
    let bits = dtype.bits();
    let mut out = Vec::with_capacity(bits as usize);
    // Collect sortable encodings once.
    let sortables: Vec<u32> = sample_ids
        .iter()
        .flat_map(|&id| data.raw_vector(id).iter().map(|&r| to_sortable(dtype, r)))
        .collect();
    let total = sortables.len() as f64;
    for p in 1..=bits {
        let mut counts: HashMap<u32, usize> = HashMap::new();
        for &s in &sortables {
            *counts.entry(s >> (bits - p)).or_insert(0) += 1;
        }
        let h: f64 = counts
            .values()
            .map(|&c| {
                let f = c as f64 / total;
                -f * f.log2()
            })
            .sum();
        out.push(h);
    }
    out
}

/// Normalized prefix entropy: each entry divided by its prefix length, so
/// the profile is comparable across lengths (bits of surprise per prefix
/// bit, in `[0, 1]`).
pub fn normalized_prefix_entropy_profile(data: &Dataset, sample_ids: &[usize]) -> Vec<f64> {
    prefix_entropy_profile(data, sample_ids)
        .into_iter()
        .enumerate()
        .map(|(i, h)| h / (i + 1) as f64)
        .collect()
}

/// The first prefix length at which the distance lower bound between
/// stored vector `id` and `query` reaches `threshold`, or `None` if even
/// full knowledge stays in-bound.
///
/// All dimensions use the same prefix length `p`, matching the paper's
/// uniform fetch pattern across dimensions. The bound is monotone in `p`,
/// so a binary search finds the position in `O(log bits)` bound
/// evaluations.
pub fn first_termination_position(
    data: &Dataset,
    id: usize,
    query: &[f32],
    threshold: f32,
) -> Option<u32> {
    let dtype = data.dtype();
    let bits = dtype.bits();
    let bounder = DistanceBounder::new(data.metric());
    let sortable: Vec<u32> = data
        .raw_vector(id)
        .iter()
        .map(|&r| to_sortable(dtype, r))
        .collect();
    let bound_at = |p: u32| -> f64 {
        sortable
            .iter()
            .zip(query)
            .map(|(&s, &q)| {
                let prefix = if p == 0 { 0 } else { s >> (bits - p) };
                bounder.contribution(ValueInterval::from_prefix(dtype, prefix, p), q)
            })
            .sum()
    };
    if bound_at(bits) < threshold as f64 {
        return None;
    }
    let (mut lo, mut hi) = (0u32, bits); // bound_at(hi) >= threshold
    while lo < hi {
        let mid = (lo + hi) / 2;
        if bound_at(mid) >= threshold as f64 {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    Some(hi)
}

/// Early-termination frequency per prefix length (Fig. 3): entry `p-1` is
/// the fraction of sampled (vector, query) pairs whose first termination
/// happens exactly at prefix length `p`. Pairs that never terminate under
/// `threshold` contribute to no bucket.
pub fn et_frequency_profile(
    data: &Dataset,
    sample_ids: &[usize],
    queries: &[Vec<f32>],
    threshold: f32,
) -> Vec<f64> {
    let bits = data.dtype().bits() as usize;
    let mut counts = vec![0usize; bits + 1];
    let mut pairs = 0usize;
    for q in queries {
        for &id in sample_ids {
            pairs += 1;
            if let Some(p) = first_termination_position(data, id, q, threshold) {
                counts[p as usize] += 1;
            }
        }
    }
    let total = pairs.max(1) as f64;
    (1..=bits).map(|p| counts[p] as f64 / total).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ansmet_vecdata::{ElemType, Metric, SynthSpec};

    #[test]
    fn entropy_zero_for_constant_data() {
        let data = Dataset::from_values("c", ElemType::U8, Metric::L2, 4, vec![70.0; 40]);
        let ids: Vec<usize> = (0..10).collect();
        let h = prefix_entropy_profile(&data, &ids);
        assert!(h.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn entropy_monotone_nondecreasing() {
        let (data, _) = SynthSpec::deep().scaled(100, 1).generate();
        let ids: Vec<usize> = (0..50).collect();
        let h = prefix_entropy_profile(&data, &ids);
        for w in h.windows(2) {
            assert!(w[1] >= w[0] - 1e-9, "{:?}", w);
        }
    }

    #[test]
    fn float_data_has_low_entropy_head() {
        // DEEP/GIST-like data: sign+exponent bits shared → the first few
        // prefix lengths have much lower entropy than the tail (Fig. 3).
        let (data, _) = SynthSpec::gist().scaled(120, 1).generate();
        let ids: Vec<usize> = (0..100).collect();
        let h = normalized_prefix_entropy_profile(&data, &ids);
        assert!(h[0] < 0.7, "sign bit should be skewed, got {}", h[0]);
        assert!(h[2] < h[14], "entropy should grow into the mantissa");
    }

    #[test]
    fn termination_position_monotone_in_threshold() {
        let (data, queries) = SynthSpec::sift().scaled(60, 2).generate();
        let q = &queries[0];
        let d = data.distance_to(5, q);
        if d <= 0.0 {
            return;
        }
        let tight = first_termination_position(&data, 5, q, d * 0.3);
        let loose = first_termination_position(&data, 5, q, d * 0.9);
        match (tight, loose) {
            (Some(a), Some(b)) => assert!(a <= b),
            (Some(_), None) => {}
            (None, Some(_)) => panic!("loose terminated but tight did not"),
            (None, None) => {}
        }
    }

    #[test]
    fn no_termination_above_true_distance() {
        let (data, queries) = SynthSpec::deep().scaled(50, 1).generate();
        let q = &queries[0];
        let d = data.distance_to(3, q);
        assert_eq!(first_termination_position(&data, 3, q, d * 1.5 + 1.0), None);
    }

    #[test]
    fn termination_position_bound_property() {
        // At the returned position the bound ≥ threshold and at position−1
        // it is < threshold (first-termination semantics).
        let (data, queries) = SynthSpec::spacev().scaled(50, 2).generate();
        let bounder = DistanceBounder::new(data.metric());
        let dtype = data.dtype();
        let bits = dtype.bits();
        for q in &queries {
            for id in 0..10 {
                let d = data.distance_to(id, q);
                let thr = d * 0.5;
                if let Some(p) = first_termination_position(&data, id, q, thr) {
                    let bound = |pl: u32| -> f64 {
                        data.raw_vector(id)
                            .iter()
                            .zip(q)
                            .map(|(&r, &qq)| {
                                let s = to_sortable(dtype, r);
                                let prefix = if pl == 0 { 0 } else { s >> (bits - pl) };
                                bounder
                                    .contribution(ValueInterval::from_prefix(dtype, prefix, pl), qq)
                            })
                            .sum()
                    };
                    assert!(bound(p) >= thr as f64);
                    if p > 0 {
                        assert!(bound(p - 1) < thr as f64);
                    }
                }
            }
        }
    }

    #[test]
    fn frequency_profile_sums_at_most_one() {
        let (data, queries) = SynthSpec::sift().scaled(40, 4).generate();
        let ids: Vec<usize> = (0..20).collect();
        // Use a mid-range threshold.
        let thr = data.distance_to(0, &queries[0]);
        let f = et_frequency_profile(&data, &ids, &queries, thr);
        let sum: f64 = f.iter().sum();
        assert!(sum <= 1.0 + 1e-9);
        assert_eq!(f.len(), 8);
    }
}
