//! The early-termination evaluation engine.
//!
//! [`EtEngine::evaluate`] simulates one distance comparison exactly as the
//! NDP distance-computing unit performs it: 64 B lines of the transformed
//! layout arrive one by one, the conservative lower bound is refined after
//! each line, and the comparison aborts as soon as the bound reaches the
//! threshold. The returned [`EvalCost`] reports how many lines were
//! actually fetched — the quantity the system simulator charges to DRAM.
//!
//! The engine guarantees **no accuracy loss**: a comparison is pruned only
//! when the mathematical lower bound proves the vector is out of bounds,
//! and in-bound results always end with the exact distance (re-checking an
//! uncompressed backup when common-prefix elimination dropped outlier
//! bits).

use ansmet_vecdata::Dataset;

use crate::bound::DistanceBounder;
use crate::encode::to_sortable;
use crate::interval::ValueInterval;
use crate::observe::{EtObserver, NoopEtObserver};
use crate::prefix::PrefixSpec;
use crate::schedule::{FetchSchedule, LinePlan};

/// Early-termination configuration: the fetch schedule plus optional
/// common-prefix elimination.
#[derive(Debug, Clone, PartialEq)]
pub struct EtConfig {
    /// Fetch schedule (defines the transformed layout).
    pub schedule: FetchSchedule,
    /// Common-prefix elimination spec; `None` disables it.
    pub prefix: Option<PrefixSpec>,
    /// Re-check uncompressed backups of outlier vectors for in-bound
    /// results (the paper's default, preserving exact accuracy).
    pub backup_recheck: bool,
}

impl EtConfig {
    /// Config without prefix elimination.
    pub fn new(schedule: FetchSchedule) -> Self {
        EtConfig {
            schedule,
            prefix: None,
            backup_recheck: true,
        }
    }

    /// Config with prefix elimination.
    ///
    /// # Panics
    ///
    /// Panics if the schedule's prefix length disagrees with the spec.
    pub fn with_prefix(schedule: FetchSchedule, prefix: PrefixSpec) -> Self {
        assert_eq!(
            schedule.prefix_len(),
            prefix.len(),
            "schedule and prefix spec disagree on the eliminated length"
        );
        EtConfig {
            schedule,
            prefix: Some(prefix),
            backup_recheck: true,
        }
    }

    /// Disable the backup re-check (trades accuracy for fewer accesses,
    /// Table 5(b)).
    pub fn without_backup(mut self) -> Self {
        self.backup_recheck = false;
        self
    }
}

/// Cost and outcome of one early-terminating distance comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvalCost {
    /// Transformed-layout 64 B lines fetched.
    pub lines: usize,
    /// Extra natural-layout lines fetched for the backup re-check.
    pub backup_lines: usize,
    /// Whether the comparison terminated on a lower bound (no exact
    /// distance computed; the vector is certainly ≥ threshold).
    pub pruned: bool,
    /// Exact distance, when computed.
    pub distance: Option<f32>,
    /// The final lower bound, reported when `backup_recheck` is disabled
    /// and the exact distance is unavailable (accuracy-loss mode).
    pub approx_distance: Option<f32>,
    /// The lower bound in force when the evaluation stopped (equals the
    /// exact distance after a complete, exact fetch). Hosts aggregate
    /// these across sub-vector ranks to decide soundly (§5.3).
    pub final_bound: f64,
}

impl EvalCost {
    /// All 64 B lines charged to memory for this comparison.
    pub fn total_lines(&self) -> usize {
        self.lines + self.backup_lines
    }

    /// The distance the search should use (exact when available,
    /// otherwise the approximate bound).
    pub fn effective_distance(&self) -> Option<f32> {
        self.distance.or(self.approx_distance)
    }
}

/// Reusable buffers for [`EtEngine`] evaluations.
///
/// One comparison needs a per-dimension contribution array and (for
/// sub-vector ranges) a line plan of the sub-range. Allocating them per
/// comparison dominates the replay's host time; threading one scratch
/// through a query's thousands of evaluations amortizes the cost to zero.
#[derive(Debug, Default)]
pub struct EtScratch {
    /// Per-dimension lower-bound contributions (f64, as in the engine).
    contribs: Vec<f64>,
    /// Sub-range line plan buffer.
    subplan: Vec<LinePlan>,
}

impl EtScratch {
    /// Create an empty scratch (buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }
}

/// Blocked 4-accumulator f64 sum (keeps independent addition chains).
fn sum4(xs: &[f64]) -> f64 {
    let mut acc = [0.0f64; 4];
    let mut it = xs.chunks_exact(4);
    for c in &mut it {
        acc[0] += c[0];
        acc[1] += c[1];
        acc[2] += c[2];
        acc[3] += c[3];
    }
    let tail: f64 = it.remainder().iter().sum();
    (acc[0] + acc[1]) + (acc[2] + acc[3]) + tail
}

/// Per-vector precomputed prefix-elimination state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum VectorClass {
    /// No prefix elimination configured.
    Plain,
    /// Prefix applies to every element (normal format, Fig. 4b).
    Normal,
    /// Vector contains outlier elements (outlier format, Fig. 4c).
    Outlier,
}

/// The early-termination evaluation engine for one dataset + config.
#[derive(Debug)]
pub struct EtEngine<'a> {
    data: &'a Dataset,
    cfg: EtConfig,
    bounder: DistanceBounder,
    /// Sortable encodings, vector-major.
    sortable: Vec<u32>,
    /// Full-vector line plan.
    plan: Vec<LinePlan>,
    /// Cumulative payload bits per schedule step (hoisted out of the
    /// per-comparison hot path).
    cumulative: Vec<u32>,
    /// Per-vector format class.
    class: Vec<VectorClass>,
    /// Per-element matched prefix length (only for outlier vectors).
    matched: Vec<u32>,
}

impl<'a> EtEngine<'a> {
    /// Build the engine (precomputes sortable encodings and vector
    /// classification).
    pub fn new(data: &'a Dataset, cfg: EtConfig) -> Self {
        let dtype = data.dtype();
        let dim = data.dim();
        let n = data.len();
        let mut sortable = Vec::with_capacity(n * dim);
        for i in 0..n {
            for &raw in data.raw_vector(i) {
                sortable.push(to_sortable(dtype, raw));
            }
        }
        let (class, matched) = match &cfg.prefix {
            None => (vec![VectorClass::Plain; n], Vec::new()),
            Some(spec) if spec.is_disabled() => (vec![VectorClass::Plain; n], Vec::new()),
            Some(spec) => {
                let mut class = Vec::with_capacity(n);
                let mut matched = vec![0u32; n * dim];
                for i in 0..n {
                    let mut has_outlier = false;
                    for d in 0..dim {
                        let m = spec.matched_len(d, sortable[i * dim + d]);
                        matched[i * dim + d] = m;
                        if m < spec.len() {
                            has_outlier = true;
                        }
                    }
                    class.push(if has_outlier {
                        VectorClass::Outlier
                    } else {
                        VectorClass::Normal
                    });
                }
                (class, matched)
            }
        };
        let plan = cfg.schedule.line_plan(dim);
        let cumulative = cfg.schedule.cumulative_bits();
        let bounder = DistanceBounder::new(data.metric());
        EtEngine {
            data,
            cfg,
            bounder,
            sortable,
            plan,
            cumulative,
            class,
            matched,
        }
    }

    /// The dataset under evaluation.
    pub fn dataset(&self) -> &Dataset {
        self.data
    }

    /// The active configuration.
    pub fn config(&self) -> &EtConfig {
        &self.cfg
    }

    /// Lines of a full transformed-vector fetch.
    pub fn full_lines(&self) -> usize {
        self.plan.len()
    }

    /// Lines of one vector in the natural (untransformed) layout.
    pub fn natural_lines(&self) -> usize {
        self.data.vector_lines()
    }

    /// Effective known prefix length of element `(id, d)` after
    /// `payload_bits` of its stored payload have been fetched. The
    /// vector's format class is passed in (hoisted once per comparison
    /// instead of re-read per element).
    fn known_prefix_for(&self, class: VectorClass, id: usize, d: usize, payload_bits: u32) -> u32 {
        let bits = self.data.dtype().bits();
        match class {
            VectorClass::Plain => payload_bits.min(bits),
            VectorClass::Normal => {
                let prefix = self.cfg.prefix.as_ref().expect("normal implies prefix");
                (prefix.len() + payload_bits).min(bits)
            }
            VectorClass::Outlier => {
                let prefix = self.cfg.prefix.as_ref().expect("outlier implies prefix");
                let m = self.matched[id * self.data.dim() + d];
                let meta = prefix.outlier_meta_bits();
                if m == prefix.len() {
                    // Normal element inside an outlier vector: one 01Elm
                    // flag bit precedes the payload.
                    (prefix.len() + payload_bits.saturating_sub(1)).min(bits)
                } else {
                    // Outlier element: metadata precedes payload; stored
                    // bits resume at the mismatch position. The lowest
                    // bits are dropped (the interval stays conservative).
                    let payload_cap = (bits - prefix.len()).saturating_sub(meta);
                    let usable = payload_bits.saturating_sub(meta).min(payload_cap);
                    (m + usable).min(bits)
                }
            }
        }
    }

    fn interval(&self, id: usize, d: usize, known: u32) -> ValueInterval {
        let dtype = self.data.dtype();
        let bits = dtype.bits();
        let s = self.sortable[id * self.data.dim() + d];
        let prefix = if known == 0 { 0 } else { s >> (bits - known) };
        ValueInterval::from_prefix(dtype, prefix, known)
    }

    /// Whether the fully-fetched compressed form of vector `id` is exact
    /// (false only for outlier vectors, whose dropped bits require the
    /// backup re-check).
    fn fully_exact(&self, id: usize) -> bool {
        self.class[id] != VectorClass::Outlier
    }

    /// Evaluate one comparison over the full vector.
    ///
    /// # Panics
    ///
    /// Panics if `query.len()` differs from the dataset dimensionality
    /// (a programming error at this level; use [`EtEngine::evaluate_range`]
    /// for the fallible form).
    pub fn evaluate(&self, id: usize, query: &[f32], threshold: f32) -> EvalCost {
        self.evaluate_with(id, query, threshold, &mut EtScratch::new())
    }

    /// [`EtEngine::evaluate`] reusing caller-provided scratch buffers
    /// (the allocation-free hot path).
    ///
    /// # Panics
    ///
    /// Panics if `query.len()` differs from the dataset dimensionality.
    pub fn evaluate_with(
        &self,
        id: usize,
        query: &[f32],
        threshold: f32,
        scratch: &mut EtScratch,
    ) -> EvalCost {
        self.evaluate_range_with(id, query, 0..self.data.dim(), threshold, scratch)
            .expect("full-range evaluation is in bounds")
    }

    /// [`EtEngine::evaluate_with`] reporting termination outcomes to
    /// `obs` (see [`EtObserver`]).
    ///
    /// # Panics
    ///
    /// Panics if `query.len()` differs from the dataset dimensionality.
    pub fn evaluate_obs<O: EtObserver>(
        &self,
        id: usize,
        query: &[f32],
        threshold: f32,
        scratch: &mut EtScratch,
        obs: &mut O,
    ) -> EvalCost {
        self.evaluate_range_obs(id, query, 0..self.data.dim(), threshold, scratch, obs)
            .expect("full-range evaluation is in bounds")
    }

    /// Evaluate one comparison restricted to the dimension sub-range
    /// `dims` (vertical partitioning: the rank holding these dimensions
    /// can only bound its local contribution, §5.3).
    ///
    /// # Errors
    ///
    /// Rejects an out-of-range `dims` or a query whose length differs
    /// from the dataset dimensionality.
    pub fn evaluate_range(
        &self,
        id: usize,
        query: &[f32],
        dims: std::ops::Range<usize>,
        threshold: f32,
    ) -> Result<EvalCost, crate::EtError> {
        self.evaluate_range_with(id, query, dims, threshold, &mut EtScratch::new())
    }

    /// [`EtEngine::evaluate_range`] reusing caller-provided scratch
    /// buffers (the allocation-free hot path).
    ///
    /// # Errors
    ///
    /// Rejects an out-of-range `dims` or a query whose length differs
    /// from the dataset dimensionality.
    pub fn evaluate_range_with(
        &self,
        id: usize,
        query: &[f32],
        dims: std::ops::Range<usize>,
        threshold: f32,
        scratch: &mut EtScratch,
    ) -> Result<EvalCost, crate::EtError> {
        self.evaluate_range_obs(id, query, dims, threshold, scratch, &mut NoopEtObserver)
    }

    /// [`EtEngine::evaluate_range_with`] reporting termination outcomes
    /// to `obs` (see [`EtObserver`]). The observer is called exactly at
    /// the decision points — bound-exceeded aborts and backup re-checks
    /// — and never affects the returned [`EvalCost`].
    ///
    /// # Errors
    ///
    /// Rejects an out-of-range `dims` or a query whose length differs
    /// from the dataset dimensionality.
    pub fn evaluate_range_obs<O: EtObserver>(
        &self,
        id: usize,
        query: &[f32],
        dims: std::ops::Range<usize>,
        threshold: f32,
        scratch: &mut EtScratch,
        obs: &mut O,
    ) -> Result<EvalCost, crate::EtError> {
        let dim = self.data.dim();
        if query.len() != dim {
            return Err(crate::EtError::QueryDimMismatch {
                expected: dim,
                got: query.len(),
            });
        }
        if dims.end > dim {
            return Err(crate::EtError::RangeOutOfBounds { end: dims.end, dim });
        }
        let sub = dims.len();
        let full = dims.len() == dim;
        let class = self.class[id];
        let EtScratch { contribs, subplan } = scratch;

        // Line plan: the transformed layout of the sub-vector only.
        let plan: &[LinePlan] = if full {
            &self.plan
        } else {
            self.cfg.schedule.line_plan_into(sub, subplan);
            subplan
        };

        // Initial contributions with zero payload fetched. Unbounded
        // dimensions (−∞, e.g. unfetched FP32 under inner product) are
        // counted separately so incremental updates stay well-defined.
        contribs.clear();
        contribs.resize(sub, 0.0);
        let mut unbounded = 0usize;
        for (j, d) in dims.clone().enumerate() {
            let known = self.known_prefix_for(class, id, d, 0);
            let c = self
                .bounder
                .contribution(self.interval(id, d, known), query[d]);
            contribs[j] = c;
            if c == f64::NEG_INFINITY {
                unbounded += 1;
            }
        }
        // Blocked 4-wide reduction of the finite contributions.
        let mut finite_sum = if unbounded == 0 {
            sum4(contribs)
        } else {
            contribs
                .iter()
                .filter(|&&c| c != f64::NEG_INFINITY)
                .sum::<f64>()
        };
        let bound_of = |unbounded: usize, finite_sum: f64| {
            if unbounded > 0 {
                f64::NEG_INFINITY
            } else {
                finite_sum
            }
        };
        let mut bound = bound_of(unbounded, finite_sum);
        if bound >= threshold as f64 {
            obs.terminated(0, plan.len());
            return Ok(EvalCost {
                lines: 0,
                backup_lines: 0,
                pruned: true,
                distance: None,
                approx_distance: None,
                final_bound: bound,
            });
        }

        // Fetch line by line, refining each covered dimension's interval
        // and accumulating bound deltas in four independent f64 chains.
        let mut lines = 0usize;
        for lp in plan.iter() {
            lines += 1;
            let payload_after = self.cumulative[lp.step];
            let mut delta = [0.0f64; 4];
            #[allow(clippy::needless_range_loop)] // indexed dimension-range loops read clearer here
            for j in lp.dim_start..lp.dim_end {
                let d = dims.start + j;
                let known = self.known_prefix_for(class, id, d, payload_after);
                let c = self
                    .bounder
                    .contribution(self.interval(id, d, known), query[d]);
                let old = contribs[j];
                contribs[j] = c;
                if old == f64::NEG_INFINITY {
                    if c != f64::NEG_INFINITY {
                        unbounded -= 1;
                        delta[j & 3] += c;
                    }
                } else {
                    delta[j & 3] += c - old;
                }
            }
            finite_sum += (delta[0] + delta[1]) + (delta[2] + delta[3]);
            bound = bound_of(unbounded, finite_sum);
            if bound >= threshold as f64 && lines < plan.len() {
                obs.terminated(lines, plan.len());
                return Ok(EvalCost {
                    lines,
                    backup_lines: 0,
                    pruned: true,
                    distance: None,
                    approx_distance: None,
                    final_bound: bound,
                });
            }
        }

        // Fully fetched.
        if full && self.fully_exact(id) {
            // The compressed form reconstructs the exact vector.
            let distance = self.data.distance_to(id, query);
            return Ok(EvalCost {
                lines,
                backup_lines: 0,
                pruned: false,
                distance: Some(distance),
                approx_distance: None,
                final_bound: distance as f64,
            });
        }
        if full {
            // Outlier vector: dropped bits → only a bound is known.
            if bound >= threshold as f64 {
                // Certainly out of bounds; no backup needed.
                obs.terminated(lines, plan.len());
                return Ok(EvalCost {
                    lines,
                    backup_lines: 0,
                    pruned: true,
                    distance: None,
                    approx_distance: None,
                    final_bound: bound,
                });
            }
            if self.cfg.backup_recheck {
                obs.backup_recheck(self.natural_lines());
                let distance = self.data.distance_to(id, query);
                return Ok(EvalCost {
                    lines,
                    backup_lines: self.natural_lines(),
                    pruned: false,
                    distance: Some(distance),
                    approx_distance: None,
                    final_bound: bound,
                });
            }
            return Ok(EvalCost {
                lines,
                backup_lines: 0,
                pruned: false,
                distance: None,
                approx_distance: Some(bound as f32),
                final_bound: bound,
            });
        }
        // Sub-vector evaluation: report the local partial contribution.
        let partial: f64 = dims
            .clone()
            .map(|d| {
                self.bounder
                    .contribution(ValueInterval::exact(self.data.vector(id)[d]), query[d])
            })
            .sum();
        Ok(EvalCost {
            lines,
            backup_lines: 0,
            pruned: false,
            distance: None,
            approx_distance: Some(partial as f32),
            final_bound: partial,
        })
    }
}

/// A [`DistanceOracle`](ansmet_index::DistanceOracle) backed by the
/// engine, proving end-to-end that early termination changes no search
/// result.
#[derive(Debug)]
pub struct EtOracle<'a> {
    engine: &'a EtEngine<'a>,
    comparisons: u64,
    /// Transformed-layout lines fetched so far.
    pub lines: u64,
    /// Backup lines fetched so far.
    pub backup_lines: u64,
    /// Comparisons pruned by early termination.
    pub pruned: u64,
}

impl<'a> EtOracle<'a> {
    /// Wrap an engine as a search oracle.
    pub fn new(engine: &'a EtEngine<'a>) -> Self {
        EtOracle {
            engine,
            comparisons: 0,
            lines: 0,
            backup_lines: 0,
            pruned: 0,
        }
    }

    /// Lines a non-terminating design would have fetched for the same
    /// comparisons.
    pub fn baseline_lines(&self) -> u64 {
        self.comparisons * self.engine.full_lines() as u64
    }
}

impl ansmet_index::DistanceOracle for EtOracle<'_> {
    fn evaluate(
        &mut self,
        id: usize,
        query: &[f32],
        threshold: f32,
    ) -> ansmet_index::DistanceOutcome {
        self.comparisons += 1;
        let cost = self.engine.evaluate(id, query, threshold);
        self.lines += cost.lines as u64;
        self.backup_lines += cost.backup_lines as u64;
        if cost.pruned {
            self.pruned += 1;
            ansmet_index::DistanceOutcome::Pruned
        } else {
            match cost.effective_distance() {
                Some(d) => ansmet_index::DistanceOutcome::Exact(d),
                None => ansmet_index::DistanceOutcome::Pruned,
            }
        }
    }

    fn comparisons(&self) -> u64 {
        self.comparisons
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ansmet_vecdata::{ElemType, Metric, SynthSpec};

    fn engine_for(data: &Dataset, n: u32) -> EtEngine<'_> {
        EtEngine::new(data, EtConfig::new(FetchSchedule::uniform(data.dtype(), n)))
    }

    #[test]
    fn infinite_threshold_fetches_everything() {
        let (data, queries) = SynthSpec::sift().scaled(50, 1).generate();
        let e = engine_for(&data, 4);
        let c = e.evaluate(0, &queries[0], f32::INFINITY);
        assert!(!c.pruned);
        assert_eq!(c.lines, e.full_lines());
        assert_eq!(c.distance, Some(data.distance_to(0, &queries[0])));
    }

    #[test]
    fn tight_threshold_prunes_early() {
        let (data, queries) = SynthSpec::sift().scaled(50, 1).generate();
        let e = engine_for(&data, 4);
        // Threshold of ~0 prunes everything quickly (unless distance is 0).
        let d = data.distance_to(7, &queries[0]);
        if d > 1.0 {
            let c = e.evaluate(7, &queries[0], 1.0);
            assert!(c.pruned);
            assert!(c.lines < e.full_lines());
            assert!(c.distance.is_none());
        }
    }

    #[test]
    fn pruning_is_sound() {
        // Whenever the engine prunes, the true distance is ≥ threshold.
        let (data, queries) = SynthSpec::deep().scaled(200, 4).generate();
        let e = engine_for(&data, 8);
        for q in &queries {
            for id in 0..data.len() {
                let d = data.distance_to(id, q);
                let thr = d * 0.8;
                let c = e.evaluate(id, q, thr);
                if c.pruned {
                    assert!(d >= thr, "pruned although {d} < {thr}");
                }
            }
        }
    }

    #[test]
    fn in_bound_results_are_exact() {
        let (data, queries) = SynthSpec::spacev().scaled(100, 2).generate();
        let e = engine_for(&data, 4);
        for q in &queries {
            for id in 0..20 {
                let d = data.distance_to(id, q);
                let c = e.evaluate(id, q, d * 2.0 + 1.0);
                if !c.pruned {
                    assert_eq!(c.distance, Some(d));
                }
            }
        }
    }

    #[test]
    fn fewer_lines_with_tighter_threshold() {
        let (data, queries) = SynthSpec::gist().scaled(60, 2).generate();
        let e = engine_for(&data, 8);
        let q = &queries[0];
        let d = data.distance_to(30, q);
        let loose = e.evaluate(30, q, d * 4.0);
        let tight = e.evaluate(30, q, d * 0.5);
        assert!(tight.lines <= loose.lines);
    }

    #[test]
    fn prefix_elimination_reduces_lines() {
        let (data, _queries) = SynthSpec::gist().scaled(150, 2).generate();
        let ids: Vec<usize> = (0..100).collect();
        let spec = PrefixSpec::choose(&data, &ids, 0.001);
        if spec.is_empty() {
            return; // dataset had no common prefix this seed
        }
        let plain = EtEngine::new(
            &data,
            EtConfig::new(FetchSchedule::uniform(data.dtype(), 8)),
        );
        let sched = FetchSchedule::uniform_after_prefix(data.dtype(), spec.len(), 8);
        let opt = EtEngine::new(&data, EtConfig::with_prefix(sched, spec));
        assert!(opt.full_lines() <= plain.full_lines());
    }

    #[test]
    fn outlier_vector_triggers_backup_when_in_bound() {
        // Craft: dim prefix comes from constant data; one vector is an
        // outlier; querying near it keeps it in-bound → backup fetch.
        let mut values = vec![70.0f32; 64 * 4];
        values[4 * 4] = 200.0; // vector 4, dim 0 outlier
        let data = Dataset::from_values("o", ElemType::U8, Metric::L2, 4, values);
        let ids: Vec<usize> = (0..64).collect();
        let spec = PrefixSpec::choose(&data, &ids, 0.01);
        assert!(!spec.is_empty());
        assert!(spec.vector_has_outlier(&data, 4));
        let sched = FetchSchedule::uniform_after_prefix(data.dtype(), spec.len(), 4);
        let e = EtEngine::new(&data, EtConfig::with_prefix(sched, spec));
        let q = vec![200.0, 70.0, 70.0, 70.0];
        let c = e.evaluate(4, &q, f32::INFINITY);
        assert!(!c.pruned);
        assert_eq!(c.backup_lines, e.natural_lines());
        assert_eq!(c.distance, Some(data.distance_to(4, &q)));
        // A normal vector needs no backup.
        let c0 = e.evaluate(0, &q, f32::INFINITY);
        assert_eq!(c0.backup_lines, 0);
    }

    #[test]
    fn no_backup_mode_returns_bound() {
        let mut values = vec![70.0f32; 64 * 4];
        values[4 * 4] = 200.0;
        let data = Dataset::from_values("o", ElemType::U8, Metric::L2, 4, values);
        let ids: Vec<usize> = (0..64).collect();
        let spec = PrefixSpec::choose(&data, &ids, 0.01);
        let sched = FetchSchedule::uniform_after_prefix(data.dtype(), spec.len(), 4);
        let e = EtEngine::new(&data, EtConfig::with_prefix(sched, spec).without_backup());
        let q = vec![200.0, 70.0, 70.0, 70.0];
        let c = e.evaluate(4, &q, f32::INFINITY);
        assert!(!c.pruned);
        assert_eq!(c.backup_lines, 0);
        let true_d = data.distance_to(4, &q);
        let approx = c.approx_distance.expect("bound reported");
        assert!(approx <= true_d);
    }

    #[test]
    fn subvector_evaluation_conservative() {
        let (data, queries) = SynthSpec::gist().scaled(40, 1).generate();
        let e = engine_for(&data, 8);
        let q = &queries[0];
        let full_d = data.distance_to(5, q) as f64;
        // Split 960 dims into 4 sub-vectors; partial contributions sum to
        // the full distance.
        let mut sum = 0.0f64;
        for part in 0..4 {
            let r = part * 240..(part + 1) * 240;
            let c = e.evaluate_range(5, q, r, f32::INFINITY).expect("in range");
            sum += c.approx_distance.expect("partial sum") as f64;
        }
        assert!((sum - full_d).abs() / full_d.max(1.0) < 1e-3);
    }

    #[test]
    fn et_oracle_preserves_search_results() {
        use ansmet_index::{DistanceOracle, ExactOracle, Hnsw, HnswParams};
        let (data, queries) = SynthSpec::deep().scaled(400, 4).generate();
        let hnsw = Hnsw::build(&data, HnswParams::quick());
        let e = engine_for(&data, 8);
        for q in &queries {
            let mut exact = ExactOracle::new(&data);
            let mut et = EtOracle::new(&e);
            let r1 = hnsw.search(q, 10, 60, &mut exact);
            let r2 = hnsw.search(q, 10, 60, &mut et);
            assert_eq!(r1.ids(), r2.ids(), "ET changed the search result");
            assert_eq!(exact.comparisons(), et.comparisons());
            // And ET must actually save fetches.
            assert!(et.lines < et.baseline_lines());
            assert!(et.pruned > 0);
        }
    }

    #[test]
    fn bit_serial_wastes_lines_on_narrow_vectors() {
        let (data, queries) = SynthSpec::sift().scaled(60, 1).generate();
        let bitset = EtEngine::new(
            &data,
            EtConfig::new(FetchSchedule::bit_serial(data.dtype())),
        );
        // Full fetch: 8 lines vs 2 natural lines (paper §7.1 NDP-BitET).
        assert_eq!(bitset.full_lines(), 8);
        assert_eq!(bitset.natural_lines(), 2);
        let c = bitset.evaluate(0, &queries[0], f32::INFINITY);
        assert_eq!(c.lines, 8);
    }

    #[test]
    fn dim_et_cannot_prune_fp32_ip() {
        // Paper: partial-dimension-only ET yields no stable bound for IP.
        let (data, queries) = SynthSpec::glove().scaled(80, 2).generate();
        let e = EtEngine::new(
            &data,
            EtConfig::new(FetchSchedule::full_width(data.dtype())),
        );
        for q in &queries {
            for id in 0..20 {
                let d = data.distance_to(id, q);
                let c = e.evaluate(id, q, d - 0.1 * d.abs().max(1.0));
                // May only terminate at the very last line (full info).
                assert!(
                    c.lines >= e.full_lines()
                        || c.lines == 0
                        || !c.pruned
                        || c.lines == e.full_lines()
                );
                if c.pruned && c.lines > 0 {
                    assert_eq!(c.lines, e.full_lines());
                }
            }
        }
    }

    #[test]
    fn observer_reports_termination_and_backup() {
        #[derive(Default)]
        struct Probe {
            terminated: Vec<(usize, usize)>,
            backups: Vec<usize>,
        }
        impl EtObserver for Probe {
            fn terminated(&mut self, lines: usize, planned: usize) {
                self.terminated.push((lines, planned));
            }
            fn backup_recheck(&mut self, lines: usize) {
                self.backups.push(lines);
            }
        }

        // Early termination on a tight threshold reports (lines, planned).
        let (data, queries) = SynthSpec::sift().scaled(50, 1).generate();
        let e = engine_for(&data, 4);
        let d = data.distance_to(7, &queries[0]);
        if d > 1.0 {
            let mut probe = Probe::default();
            let c = e.evaluate_obs(7, &queries[0], 1.0, &mut EtScratch::new(), &mut probe);
            assert!(c.pruned);
            assert_eq!(probe.terminated, vec![(c.lines, e.full_lines())]);
            assert!(probe.backups.is_empty());
        }
        // An observed run returns the same cost as the plain run.
        let plain = e.evaluate(7, &queries[0], f32::INFINITY);
        let mut probe = Probe::default();
        let obs = e.evaluate_obs(
            7,
            &queries[0],
            f32::INFINITY,
            &mut EtScratch::new(),
            &mut probe,
        );
        assert_eq!(plain, obs);
        assert!(probe.terminated.is_empty(), "full fetch never terminates");

        // An in-bound outlier reports the backup re-check.
        let mut values = vec![70.0f32; 64 * 4];
        values[4 * 4] = 200.0;
        let data = Dataset::from_values("o", ElemType::U8, Metric::L2, 4, values);
        let ids: Vec<usize> = (0..64).collect();
        let spec = PrefixSpec::choose(&data, &ids, 0.01);
        let sched = FetchSchedule::uniform_after_prefix(data.dtype(), spec.len(), 4);
        let e = EtEngine::new(&data, EtConfig::with_prefix(sched, spec));
        let q = vec![200.0, 70.0, 70.0, 70.0];
        let mut probe = Probe::default();
        let c = e.evaluate_obs(4, &q, f32::INFINITY, &mut EtScratch::new(), &mut probe);
        assert_eq!(c.backup_lines, e.natural_lines());
        assert_eq!(probe.backups, vec![e.natural_lines()]);
    }

    #[test]
    fn zero_line_prune_with_prefix_knowledge() {
        // With prefix elimination the on-chip prefix alone can prove a
        // vector out of bounds before fetching anything.
        let values: Vec<f32> = vec![200.0; 40];
        let data = Dataset::from_values("z", ElemType::U8, Metric::L2, 4, values);
        let ids: Vec<usize> = (0..10).collect();
        let spec = PrefixSpec::choose(&data, &ids, 0.0);
        assert!(!spec.is_empty());
        let sched = FetchSchedule::uniform_after_prefix(data.dtype(), spec.len(), 4);
        let e = EtEngine::new(&data, EtConfig::with_prefix(sched, spec));
        // Query at 0: prefix already proves distance ≥ threshold.
        let c = e.evaluate(0, &[0.0; 4], 100.0);
        assert!(c.pruned);
        assert_eq!(c.lines, 0);
    }
}
