//! The `serve` experiment: a multi-tenant open-loop serving run with
//! clean and fault-injected passes plus a QPS sweep, rendered as text
//! and as the `BENCH_serving.json` artifact.
//!
//! Not a paper experiment — it answers the question the paper's §5.2
//! wave model raises but cannot: what QPS can the NDP designs sustain at
//! a bounded p99 under realistic arrivals, batching, and faults?

use std::fmt::Write as _;

use ansmet_faults::FaultRates;
use ansmet_host::RetryPolicy;
use ansmet_sim::experiment::Scale;
use ansmet_sim::{Design, SystemConfig, Workload};
use ansmet_vecdata::SynthSpec;

use crate::arrival::{ArrivalProcess, TenantSpec};
use crate::engine::{run_serve, AdmissionConfig, BatchPolicy, FaultProfile, ServeConfig};
use crate::report::cycles_to_ms;
use crate::sweep::sweep_qps;

/// Estimate device capacity (QPS) by executing the whole workload as one
/// saturated cohort through the wave model.
fn estimate_capacity_qps(workload: &Workload, config: &SystemConfig, design: Design) -> f64 {
    let ctx = ansmet_sim::WaveContext::new(design, workload, config);
    let ids: Vec<usize> = (0..workload.traces.len()).collect();
    let exec = ctx.execute(&ids);
    let secs = exec.total_cycles as f64 / (config.dram.clock_mhz as f64 * 1e6);
    ids.len() as f64 / secs.max(1e-12)
}

/// Build the experiment's two-tenant serving config at roughly 60 % of
/// the estimated capacity: an interactive tenant (weight 4, Poisson,
/// tight SLO) and a bulk tenant (weight 1, bursty, loose SLO).
fn experiment_config(seed: u64, capacity_qps: f64, queries: usize, slo_cycles: u64) -> ServeConfig {
    let load = capacity_qps * 0.6;
    ServeConfig {
        seed,
        design: Design::NdpEtOpt,
        tenants: vec![
            TenantSpec {
                name: "interactive".into(),
                weight: 4,
                process: ArrivalProcess::Poisson { qps: load * 0.7 },
                slo_cycles,
                queries,
            },
            TenantSpec {
                name: "bulk".into(),
                weight: 1,
                process: ArrivalProcess::Bursty {
                    base_qps: load * 0.15,
                    burst_qps: load * 0.9,
                    period_cycles: 2_000_000,
                    burst_frac: 0.2,
                },
                slo_cycles: slo_cycles * 4,
                queries: queries / 2,
            },
        ],
        batch: BatchPolicy::default(),
        admission: AdmissionConfig {
            max_queue_depth: 128,
            deadline_cycles: Some(slo_cycles * 8),
        },
        faults: None,
    }
}

/// Run the serving experiment at `scale`; returns `(text, json)` where
/// `json` is the `BENCH_serving.json` artifact body.
pub fn serve_experiment(scale: Scale) -> (String, String) {
    let spec = scale.spec(SynthSpec::sift());
    let wl = Workload::prepare(&spec, 10, None);
    let cfg = SystemConfig::default();
    let mem_clock = cfg.dram.clock_mhz;
    let queries = match scale {
        Scale::Quick => 80,
        Scale::Full => 400,
    };

    let capacity = estimate_capacity_qps(&wl, &cfg, Design::NdpEtOpt);
    // SLO: generous multiple of the saturated per-query service time so
    // a healthy run attains it and queueing/faults measurably erode it.
    let per_query = (mem_clock as f64 * 1e6 / capacity.max(1e-9)) as u64;
    let slo_cycles = per_query * 32;
    let serve_cfg = experiment_config(0x5EED, capacity, queries, slo_cycles);

    let clean = run_serve(&wl, &cfg, &serve_cfg);
    // The faulted pass disables shedding so every query completes and the
    // returned-results fingerprint stays comparable: recovery must show up
    // purely as tail inflation, never as different answers.
    let mut faulted_cfg = serve_cfg.clone().with_faults(FaultProfile {
        rates: FaultRates::mixed(),
        seed: 0xFA11,
        retry: RetryPolicy::default_ndp(),
    });
    faulted_cfg.admission = AdmissionConfig {
        max_queue_depth: usize::MAX,
        deadline_cycles: None,
    };
    let faulted = run_serve(&wl, &cfg, &faulted_cfg);

    let sweep_points: Vec<f64> = [0.3, 0.6, 0.9, 1.2].iter().map(|f| capacity * f).collect();
    let sweep = sweep_qps(&wl, &cfg, &serve_cfg, &sweep_points, slo_cycles);

    let mut text = String::new();
    let _ = writeln!(
        text,
        "serving — {} ({} base queries, est. capacity {:.0} qps, SLO {} cycles = {:.4} ms)",
        wl.name,
        wl.queries.len(),
        capacity,
        slo_cycles,
        cycles_to_ms(slo_cycles, mem_clock),
    );
    text.push_str(&clean.render("serve (clean)"));
    text.push_str(&faulted.render("serve (faults: mixed)"));
    let _ = writeln!(
        text,
        "   fault tail inflation: p99 {} -> {} cycles ({:+.1}%), results identical: {}",
        clean.total.p99,
        faulted.total.p99,
        (faulted.total.p99 as f64 / clean.total.p99.max(1) as f64 - 1.0) * 100.0,
        if clean.results_fingerprint == faulted.results_fingerprint {
            "yes"
        } else {
            "NO"
        },
    );
    let _ = writeln!(text, "   qps sweep (target p99 {} cycles):", slo_cycles);
    for p in &sweep.points {
        let _ = writeln!(
            text,
            "     offered {:>9.0} qps -> achieved {:>9.0}, p99 {:>9} cycles, shed {:>5.1}%, slo {:>5.1}%",
            p.offered_qps,
            p.achieved_qps,
            p.p99_total_cycles,
            p.shed_rate * 100.0,
            p.slo_attainment * 100.0,
        );
    }
    let _ = writeln!(
        text,
        "     max sustainable: {}",
        match sweep.max_sustainable_qps {
            Some(q) => format!("{q:.0} qps"),
            None => "none (target missed at every point)".into(),
        }
    );

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"experiment\": \"serve\",");
    let _ = writeln!(
        json,
        "  \"scale\": \"{}\",",
        match scale {
            Scale::Quick => "quick",
            Scale::Full => "full",
        }
    );
    let _ = writeln!(json, "  \"dataset\": \"{}\",", wl.name);
    let _ = writeln!(json, "  \"estimated_capacity_qps\": {capacity:.3},");
    let _ = writeln!(json, "  \"slo_cycles\": {slo_cycles},");
    let _ = writeln!(json, "  \"report\": {},", clean.to_json());
    let _ = writeln!(json, "  \"faulted\": {},", faulted.to_json());
    let _ = writeln!(json, "  \"sweep\": {}", sweep.to_json());
    json.push_str("}\n");

    (text, json)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_experiment_runs_and_is_deterministic() {
        let (t1, j1) = serve_experiment(Scale::Quick);
        assert!(t1.contains("serve (clean)"));
        assert!(t1.contains("qps sweep"));
        assert!(t1.contains("results identical: yes"), "{t1}");
        assert!(j1.contains("\"experiment\": \"serve\""));
        assert!(j1.contains("\"sweep\""));
        let (t2, j2) = serve_experiment(Scale::Quick);
        assert_eq!(t1, t2, "text report must be bit-identical");
        assert_eq!(j1, j2, "json artifact must be bit-identical");
    }
}
