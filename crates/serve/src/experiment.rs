//! The `serve` and `resilience` experiments: multi-tenant open-loop
//! serving runs rendered as text and as the `BENCH_serving.json` /
//! `BENCH_resilience.json` artifacts.
//!
//! Neither is a paper experiment — `serve` answers the question the
//! paper's §5.2 wave model raises but cannot (what QPS can the NDP
//! designs sustain at a bounded p99 under realistic arrivals, batching,
//! and faults?), and `resilience` is the chaos/soak harness: a scripted
//! rank-group storm served unmitigated, with circuit breakers, and with
//! hedged offloads, reporting SLO attainment before/during/after the
//! storm and the measured MTTR.

use std::fmt::Write as _;

use ansmet_faults::{FaultRates, StormPlan};
use ansmet_host::RetryPolicy;
use ansmet_sim::experiment::Scale;
use ansmet_sim::{saturated_capacity_qps, Design, SystemConfig, Workload};
use ansmet_vecdata::SynthSpec;

use crate::arrival::{generate_arrivals, ArrivalProcess, TenantSpec};
use crate::engine::{run_serve, AdmissionConfig, BatchPolicy, FaultProfile, ServeConfig};
use crate::report::{cycles_to_ms, ServeReport};
use crate::resilience::{ResilienceConfig, StormProfile};
use crate::sweep::sweep_qps;

/// Build the experiment's two-tenant serving config at roughly 60 % of
/// the estimated capacity: an interactive tenant (weight 4, Poisson,
/// tight SLO) and a bulk tenant (weight 1, bursty, loose SLO).
fn experiment_config(seed: u64, capacity_qps: f64, queries: usize, slo_cycles: u64) -> ServeConfig {
    let load = capacity_qps * 0.6;
    ServeConfig {
        seed,
        design: Design::NdpEtOpt,
        tenants: vec![
            TenantSpec {
                name: "interactive".into(),
                weight: 4,
                process: ArrivalProcess::Poisson { qps: load * 0.7 },
                slo_cycles,
                queries,
            },
            TenantSpec {
                name: "bulk".into(),
                weight: 1,
                process: ArrivalProcess::Bursty {
                    base_qps: load * 0.15,
                    burst_qps: load * 0.9,
                    period_cycles: 2_000_000,
                    burst_frac: 0.2,
                },
                slo_cycles: slo_cycles * 4,
                queries: queries / 2,
            },
        ],
        batch: BatchPolicy::default(),
        admission: AdmissionConfig {
            max_queue_depth: 128,
            deadline_cycles: Some(slo_cycles * 8),
        },
        faults: None,
        storm: None,
        resilience: None,
        maintenance: None,
    }
}

/// The `ops` experiment's serving config: the same two-tenant shape the
/// `serve`/`resilience` experiments use, sized from the measured
/// capacity, for the ops-plane storm scenario to decorate with storms,
/// resilience, and maintenance.
pub fn ops_serve_config(
    seed: u64,
    capacity_qps: f64,
    queries: usize,
    slo_cycles: u64,
) -> ServeConfig {
    experiment_config(seed, capacity_qps, queries, slo_cycles)
}

/// Run the serving experiment at `scale`; returns `(text, json)` where
/// `json` is the `BENCH_serving.json` artifact body.
pub fn serve_experiment(scale: Scale) -> (String, String) {
    let spec = scale.spec(SynthSpec::sift());
    let wl = Workload::prepare_shared(&spec, 10, None);
    let cfg = SystemConfig::default();
    let mem_clock = cfg.dram.clock_mhz;
    let queries = match scale {
        Scale::Quick => 80,
        Scale::Full => 400,
    };

    let capacity = saturated_capacity_qps(&wl, &cfg, Design::NdpEtOpt);
    // SLO: generous multiple of the saturated per-query service time so
    // a healthy run attains it and queueing/faults measurably erode it.
    let per_query = (mem_clock as f64 * 1e6 / capacity.max(1e-9)) as u64;
    let slo_cycles = per_query * 32;
    let serve_cfg = experiment_config(0x5EED, capacity, queries, slo_cycles);

    let clean = run_serve(&wl, &cfg, &serve_cfg);
    // The faulted pass disables shedding so every query completes and the
    // returned-results fingerprint stays comparable: recovery must show up
    // purely as tail inflation, never as different answers.
    let mut faulted_cfg = serve_cfg.clone().with_faults(FaultProfile {
        rates: FaultRates::mixed(),
        seed: 0xFA11,
        retry: RetryPolicy::default_ndp(),
    });
    faulted_cfg.admission = AdmissionConfig {
        max_queue_depth: usize::MAX,
        deadline_cycles: None,
    };
    let faulted = run_serve(&wl, &cfg, &faulted_cfg);

    let sweep_points: Vec<f64> = [0.3, 0.6, 0.9, 1.2].iter().map(|f| capacity * f).collect();
    let sweep = sweep_qps(&wl, &cfg, &serve_cfg, &sweep_points, slo_cycles);

    let mut text = String::new();
    let _ = writeln!(
        text,
        "serving — {} ({} base queries, est. capacity {:.0} qps, SLO {} cycles = {:.4} ms)",
        wl.name,
        wl.queries.len(),
        capacity,
        slo_cycles,
        cycles_to_ms(slo_cycles, mem_clock),
    );
    text.push_str(&clean.render("serve (clean)"));
    text.push_str(&faulted.render("serve (faults: mixed)"));
    let _ = writeln!(
        text,
        "   fault tail inflation: p99 {} -> {} cycles ({:+.1}%), results identical: {}",
        clean.total.p99,
        faulted.total.p99,
        (faulted.total.p99 as f64 / clean.total.p99.max(1) as f64 - 1.0) * 100.0,
        if clean.results_fingerprint == faulted.results_fingerprint {
            "yes"
        } else {
            "NO"
        },
    );
    let _ = writeln!(text, "   qps sweep (target p99 {} cycles):", slo_cycles);
    for p in &sweep.points {
        let _ = writeln!(
            text,
            "     offered {:>9.0} qps -> achieved {:>9.0}, p99 {:>9} cycles, shed {:>5.1}%, slo {:>5.1}%",
            p.offered_qps,
            p.achieved_qps,
            p.p99_total_cycles,
            p.shed_rate * 100.0,
            p.slo_attainment * 100.0,
        );
    }
    let _ = writeln!(
        text,
        "     max sustainable: {}",
        match sweep.max_sustainable_qps {
            Some(q) => format!("{q:.0} qps"),
            None => "none (target missed at every point)".into(),
        }
    );

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"experiment\": \"serve\",");
    let _ = writeln!(
        json,
        "  \"scale\": \"{}\",",
        match scale {
            Scale::Quick => "quick",
            Scale::Full => "full",
        }
    );
    let _ = writeln!(json, "  \"dataset\": \"{}\",", wl.name);
    let _ = writeln!(json, "  \"estimated_capacity_qps\": {capacity:.3},");
    let _ = writeln!(json, "  \"slo_cycles\": {slo_cycles},");
    let _ = writeln!(json, "  \"report\": {},", clean.to_json());
    let _ = writeln!(json, "  \"faulted\": {},", faulted.to_json());
    let _ = writeln!(json, "  \"sweep\": {}", sweep.to_json());
    json.push_str("}\n");

    (text, json)
}

/// p99 total latency of the queries that arrived *during* the storm.
fn during_p99(r: &ServeReport) -> u64 {
    r.resilience
        .as_ref()
        .and_then(|res| res.storm)
        .map(|s| s.during.p99_cycles)
        .unwrap_or(0)
}

/// SLO attainment of the queries that arrived during the storm (for the
/// unmitigated pass, which carries no resilience report, this falls back
/// to the aggregate attainment).
fn storm_line(r: &ServeReport) -> String {
    match r.resilience.as_ref().and_then(|res| res.storm) {
        Some(s) => format!(
            "slo {:.1}% -> {:.1}% -> {:.1}%, during p99 {} cycles, mttr {}",
            s.before.slo_attainment() * 100.0,
            s.during.slo_attainment() * 100.0,
            s.after.slo_attainment() * 100.0,
            s.during.p99_cycles,
            match s.mttr_cycles {
                Some(c) => format!("{c} cycles"),
                None => "n/a".into(),
            },
        ),
        None => format!("aggregate slo {:.1}%", r.slo_attainment() * 100.0),
    }
}

/// Run the chaos/soak resilience experiment at `scale`; returns
/// `(text, json)` where `json` is the `BENCH_resilience.json` artifact
/// body.
///
/// Five passes over the same workload and arrival schedule: fault-free
/// baseline; a scripted single-group storm with only the per-query
/// retry/fallback model; the storm with circuit breakers (hedging off);
/// the storm with breakers *and* hedged offloads; and the storm with the
/// full layer plus brownout admission under the normal shedding config.
/// The first four disable shedding so every query completes and the
/// served-results fingerprint must be identical across them.
pub fn resilience_experiment(scale: Scale) -> (String, String) {
    let spec = scale.spec(SynthSpec::sift());
    let wl = Workload::prepare_shared(&spec, 10, None);
    let cfg = SystemConfig::default();
    let mem_clock = cfg.dram.clock_mhz;
    let queries = match scale {
        Scale::Quick => 60,
        Scale::Full => 300,
    };

    let capacity = saturated_capacity_qps(&wl, &cfg, Design::NdpEtOpt);
    let per_query = (mem_clock as f64 * 1e6 / capacity.max(1e-9)) as u64;
    let slo_cycles = per_query * 32;
    let mut base = experiment_config(0xC1A0, capacity, queries, slo_cycles);
    // Fingerprint-compared passes complete everything.
    base.admission = AdmissionConfig {
        max_queue_depth: usize::MAX,
        deadline_cycles: None,
    };

    // Storm envelope: the second quarter of the arrival horizon, rank
    // group 0 hung throughout — derived from the schedule itself so both
    // scales exercise a mid-run outage with recovery headroom.
    let arrivals = generate_arrivals(&base.tenants, wl.queries.len(), base.seed, mem_clock);
    let horizon = arrivals.last().map(|a| a.cycle).unwrap_or(0).max(4);
    let (storm_start, storm_end) = (horizon / 4, horizon / 2);
    let storm = StormProfile {
        plan: StormPlan::single_group_outage(0, storm_start, storm_end),
        retry: RetryPolicy::default_ndp(),
    };

    let clean = run_serve(&wl, &cfg, &base);
    let unmitigated = run_serve(&wl, &cfg, &base.clone().with_storm(storm.clone()));
    let breaker = run_serve(
        &wl,
        &cfg,
        &base
            .clone()
            .with_storm(storm.clone())
            .with_resilience(ResilienceConfig::without_hedging()),
    );
    let hedged = run_serve(
        &wl,
        &cfg,
        &base
            .clone()
            .with_storm(storm.clone())
            .with_resilience(ResilienceConfig::default()),
    );
    // Brownout pass: the normal shedding admission config, so detected
    // capacity loss visibly tightens admission by tenant priority.
    let brownout = run_serve(
        &wl,
        &cfg,
        &experiment_config(0xC1A0, capacity, queries, slo_cycles)
            .with_storm(storm.clone())
            .with_resilience(ResilienceConfig::default()),
    );

    let fingerprints_identical = clean.results_fingerprint == unmitigated.results_fingerprint
        && clean.results_fingerprint == breaker.results_fingerprint
        && clean.results_fingerprint == hedged.results_fingerprint;

    let mut text = String::new();
    let _ = writeln!(
        text,
        "resilience — {} ({} base queries, est. capacity {:.0} qps, SLO {} cycles, storm on group 0 over [{storm_start}, {storm_end}))",
        wl.name,
        wl.queries.len(),
        capacity,
        slo_cycles,
    );
    text.push_str(&clean.render("resilience (clean)"));
    text.push_str(&unmitigated.render("resilience (storm, unmitigated)"));
    text.push_str(&breaker.render("resilience (storm + breakers)"));
    text.push_str(&hedged.render("resilience (storm + breakers + hedging)"));
    text.push_str(&brownout.render("resilience (storm + brownout admission)"));
    let _ = writeln!(
        text,
        "   storm windows (breakers):        {}",
        storm_line(&breaker)
    );
    let _ = writeln!(
        text,
        "   storm windows (hedged):          {}",
        storm_line(&hedged)
    );
    let _ = writeln!(
        text,
        "   during-storm p99: unmitigated {} cycles, breakers {}, hedged {} ({})",
        during_p99(&unmitigated),
        during_p99(&breaker),
        during_p99(&hedged),
        if during_p99(&hedged) <= during_p99(&breaker) {
            "hedging helps"
        } else {
            "hedging DID NOT help"
        },
    );
    let _ = writeln!(
        text,
        "   results identical across clean/storm passes: {}",
        if fingerprints_identical { "yes" } else { "NO" },
    );

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"experiment\": \"resilience\",");
    let _ = writeln!(
        json,
        "  \"scale\": \"{}\",",
        match scale {
            Scale::Quick => "quick",
            Scale::Full => "full",
        }
    );
    let _ = writeln!(json, "  \"dataset\": \"{}\",", wl.name);
    let _ = writeln!(json, "  \"estimated_capacity_qps\": {capacity:.3},");
    let _ = writeln!(json, "  \"slo_cycles\": {slo_cycles},");
    let _ = writeln!(
        json,
        "  \"storm\": {{\"group\": 0, \"start_cycle\": {storm_start}, \"end_cycle\": {storm_end}}},",
    );
    let _ = writeln!(
        json,
        "  \"fingerprints_identical\": {fingerprints_identical},"
    );
    let _ = writeln!(
        json,
        "  \"p99_during_storm\": {{\"unmitigated\": {}, \"breaker\": {}, \"hedged\": {}}},",
        during_p99(&unmitigated),
        during_p99(&breaker),
        during_p99(&hedged),
    );
    let _ = writeln!(json, "  \"clean\": {},", clean.to_json());
    let _ = writeln!(json, "  \"storm_unmitigated\": {},", unmitigated.to_json());
    let _ = writeln!(json, "  \"storm_breaker\": {},", breaker.to_json());
    let _ = writeln!(json, "  \"storm_hedged\": {},", hedged.to_json());
    let _ = writeln!(json, "  \"storm_brownout\": {}", brownout.to_json());
    json.push_str("}\n");

    (text, json)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_experiment_runs_and_is_deterministic() {
        let (t1, j1) = serve_experiment(Scale::Quick);
        assert!(t1.contains("serve (clean)"));
        assert!(t1.contains("qps sweep"));
        assert!(t1.contains("results identical: yes"), "{t1}");
        assert!(j1.contains("\"experiment\": \"serve\""));
        assert!(j1.contains("\"sweep\""));
        let (t2, j2) = serve_experiment(Scale::Quick);
        assert_eq!(t1, t2, "text report must be bit-identical");
        assert_eq!(j1, j2, "json artifact must be bit-identical");
    }

    #[test]
    fn quick_resilience_experiment_holds_its_invariants() {
        let (t, j) = resilience_experiment(Scale::Quick);
        assert!(
            t.contains("results identical across clean/storm passes: yes"),
            "storm passes must serve identical results:\n{t}"
        );
        assert!(t.contains("hedging helps"), "{t}");
        assert!(j.contains("\"experiment\": \"resilience\""));
        assert!(j.contains("\"fingerprints_identical\": true"));
        assert!(j.contains("\"storm_hedged\""));
        assert!(j.contains("\"mttr_cycles\""));
    }
}
