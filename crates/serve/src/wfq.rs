//! Integer weighted-fair queueing (start-time fair queueing variant)
//! shared by the serving engine and the freshness update-admission path.
//!
//! Each admitted item gets a *finish tag*
//! `max(virtual_now, last_tag[tenant]) + WFQ_SCALE / weight`; dispatch
//! order is ascending `(tag, tenant)` and virtual time jumps to each
//! dispatched tag. All arithmetic is integer, so schedules are
//! byte-stable across platforms and thread counts.

/// Virtual-time scale: tags advance by `WFQ_SCALE / weight` per
/// dispatched item, all in integer arithmetic.
pub const WFQ_SCALE: u64 = 1 << 20;

/// Per-tenant weighted-fair-queueing clock state.
#[derive(Debug, Clone)]
pub struct WfqState {
    /// Last tag issued per tenant (monotone within a tenant).
    last_tag: Vec<u64>,
    /// Virtual time: the tag of the most recently dispatched item.
    virtual_now: u64,
}

impl WfqState {
    /// Fresh state for `n_tenants` tenants, virtual time 0.
    pub fn new(n_tenants: usize) -> Self {
        WfqState {
            last_tag: vec![0; n_tenants],
            virtual_now: 0,
        }
    }

    /// Assign the admission tag for one item from `tenant` with WFQ
    /// `weight` (> 0); heavier tenants accrue virtual time more slowly
    /// and therefore dispatch more often.
    pub fn admit_tag(&mut self, tenant: usize, weight: u64) -> u64 {
        let tag = self.virtual_now.max(self.last_tag[tenant]) + WFQ_SCALE / weight;
        self.last_tag[tenant] = tag;
        tag
    }

    /// Advance virtual time to a dispatched item's tag.
    pub fn advance_to(&mut self, tag: u64) {
        self.virtual_now = tag;
    }

    /// Current virtual time.
    pub fn virtual_now(&self) -> u64 {
        self.virtual_now
    }

    /// The tenant to dispatch next among `(tenant, head_tag)` pairs:
    /// minimum by `(tag, tenant)`, so ties break toward the lower tenant
    /// id — deterministic regardless of iteration order as long as
    /// tenant ids are distinct.
    pub fn next_tenant(heads: impl Iterator<Item = (usize, u64)>) -> Option<usize> {
        heads.min_by_key(|&(t, tag)| (tag, t)).map(|(t, _)| t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heavier_tenants_dispatch_more_often() {
        // Tenant 0 weight 4, tenant 1 weight 1: in any long window tenant
        // 0 should dispatch ~4× as often.
        let mut wfq = WfqState::new(2);
        let mut heads = [std::collections::VecDeque::new(), Default::default()];
        for _ in 0..40 {
            heads[0].push_back(wfq.admit_tag(0, 4));
            heads[1].push_back(wfq.admit_tag(1, 1));
        }
        let mut counts = [0usize; 2];
        for _ in 0..50 {
            let t = WfqState::next_tenant(
                heads
                    .iter()
                    .enumerate()
                    .filter_map(|(t, q)| q.front().map(|&tag| (t, tag))),
            )
            .expect("items queued");
            let tag = heads[t].pop_front().expect("non-empty");
            wfq.advance_to(tag);
            counts[t] += 1;
        }
        assert!(
            counts[0] >= 3 * counts[1],
            "weights not honored: {counts:?}"
        );
    }

    #[test]
    fn ties_break_toward_lower_tenant_id() {
        assert_eq!(
            WfqState::next_tenant([(2, 10), (0, 10), (1, 10)].into_iter()),
            Some(0)
        );
        assert_eq!(WfqState::next_tenant(std::iter::empty()), None);
    }

    #[test]
    fn tags_are_monotone_per_tenant() {
        let mut wfq = WfqState::new(1);
        let a = wfq.admit_tag(0, 3);
        let b = wfq.admit_tag(0, 3);
        assert!(b > a);
        wfq.advance_to(b);
        assert_eq!(wfq.virtual_now(), b);
        let c = wfq.admit_tag(0, 3);
        assert!(c > b);
    }
}
