//! Fleet-level resilience: cross-query rank-group health, circuit
//! breakers, hedged offloads, and brownout admission control.
//!
//! The per-query recovery model ([`FaultProfile`](crate::engine::FaultProfile))
//! survives transient faults but rediscovers a *persistently* sick rank
//! group from scratch on every query: each one burns its full retry
//! budget against a unit that has been hung for a million cycles. This
//! module manages NDP health *across* queries on the serving clock:
//!
//! * a [`HealthTracker`] (EWMA failure rates + consecutive-failure
//!   counters, `ansmet-host`) drives a closed → open → half-open circuit
//!   breaker per rank group; while a breaker is open, offloads skip the
//!   group entirely — rerouting to a replica group or falling straight
//!   back to host compute, without waiting out a poll deadline;
//! * *hedged offloads*: when a batch times out on its primary group and
//!   hedging is enabled, the host re-issues it to a replica group after
//!   a histogram-derived hedge delay (p95 of observed service times,
//!   floored at [`HedgeConfig::min_delay_cycles`], capped below the
//!   timeout window) and takes the first valid CRC-checked result;
//! * *brownout* admission: on detected capacity loss (open breakers) the
//!   serving tier tightens queue-depth and deadline shedding by tenant
//!   priority — degrading *admission*, never *answers*;
//! * scripted [`StormPlan`]s from `ansmet-faults` model the sustained
//!   degradation all of this exists for.
//!
//! The zero-accuracy-loss contract is preserved by construction: every
//! path (reroute, hedge, fallback) returns the same distances a
//! fault-free run computes, so served results stay fingerprint-identical
//! — faults and storms cost cycles, never answers. Everything is integer
//! arithmetic on the serving clock: one config and seed produce
//! byte-identical reports at any host thread count.

use std::fmt::Write as _;

use ansmet_faults::{ComputeFault, FaultInjector, FaultKind, StormKind, StormPlan};
use ansmet_host::{BreakerConfig, BreakerState, BreakerTransition, HealthTracker, RetryPolicy};
use ansmet_index::HopKind;
use ansmet_ndp::{Partitioner, ReplicaSet, ResultPayload};
use ansmet_obs::{EventKind, TraceSink};
use ansmet_sim::{RecoveryReport, Workload};

use crate::engine::{FALLBACK_CYCLES_PER_LINE, POLL_MISS_PENALTY_CYCLES, TIMEOUT_PENALTY_CYCLES};
use crate::histogram::LatencyHistogram;
use crate::report::cycles_to_ms;

/// Fixed per-offload overhead (instruction parse + QSHR setup + pipeline
/// drain), also charged for re-routing a batch to another group. Matches
/// `ansmet_sim::degraded`'s task overhead.
const TASK_OVERHEAD_CYCLES: u64 = 110;

/// Hedged-offload policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HedgeConfig {
    /// Whether timed-out offloads are hedged to a replica group.
    pub enabled: bool,
    /// Floor on the hedge delay, in cycles (the delay never drops below
    /// this even when observed service times are tiny).
    pub min_delay_cycles: u64,
    /// Observed-service samples required before the p95-derived delay
    /// replaces the floor.
    pub warmup_samples: u64,
}

impl Default for HedgeConfig {
    fn default() -> Self {
        HedgeConfig {
            enabled: true,
            min_delay_cycles: 512,
            warmup_samples: 32,
        }
    }
}

/// Brownout admission-control policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BrownoutConfig {
    /// Whether detected capacity loss tightens admission.
    pub enabled: bool,
    /// Highest brownout level (each open breaker raises the level by
    /// one, saturating here).
    pub max_level: u32,
}

impl Default for BrownoutConfig {
    fn default() -> Self {
        BrownoutConfig {
            enabled: true,
            max_level: 3,
        }
    }
}

/// Which vectors can be served from a group other than their home.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplicationMode {
    /// Only index-identified hot vectors are replicated (the offline
    /// §5.3 model): everything else must recover in place.
    HotOnly,
    /// Every shard is fully replicated across rank groups (the serving
    /// deployment model this layer assumes): any offload can re-route.
    Full,
}

/// Configuration of the resilience layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResilienceConfig {
    /// Circuit-breaker policy per rank group.
    pub breaker: BreakerConfig,
    /// Hedged-offload policy.
    pub hedge: HedgeConfig,
    /// Brownout admission policy.
    pub brownout: BrownoutConfig,
    /// Replica availability for reroutes and hedges.
    pub replication: ReplicationMode,
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        ResilienceConfig {
            breaker: BreakerConfig::default(),
            hedge: HedgeConfig::default(),
            brownout: BrownoutConfig::default(),
            replication: ReplicationMode::Full,
        }
    }
}

impl ResilienceConfig {
    /// The default layer with hedging switched off (breakers and
    /// brownout only) — the control arm of the hedging comparison.
    pub fn without_hedging() -> Self {
        ResilienceConfig {
            hedge: HedgeConfig {
                enabled: false,
                ..HedgeConfig::default()
            },
            ..ResilienceConfig::default()
        }
    }
}

/// A scripted sustained-degradation profile for a serving run.
#[derive(Debug, Clone, PartialEq)]
pub struct StormProfile {
    /// The storm script (rank groups down over serving-clock windows).
    pub plan: StormPlan,
    /// Host-side per-offload recovery policy during the run.
    pub retry: RetryPolicy,
}

/// Latency/SLO tallies for one storm phase (before / during / after).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WindowStats {
    /// Queries that arrived in the window.
    pub offered: u64,
    /// Of those, queries completed.
    pub completed: u64,
    /// Of those, completions within their tenant's SLO.
    pub slo_attained: u64,
    /// p99 total latency of the window's completions, in cycles.
    pub p99_cycles: u64,
}

impl WindowStats {
    /// SLO attainment over the window's offered queries (sheds count as
    /// misses).
    pub fn slo_attainment(&self) -> f64 {
        if self.offered == 0 {
            1.0
        } else {
            self.slo_attained as f64 / self.offered as f64
        }
    }

    fn json(&self) -> String {
        format!(
            "{{\"offered\": {}, \"completed\": {}, \"slo_attained\": {}, \
             \"slo_attainment\": {:.6}, \"p99_cycles\": {}}}",
            self.offered,
            self.completed,
            self.slo_attained,
            self.slo_attainment(),
            self.p99_cycles,
        )
    }
}

/// Outcome of a scripted storm: SLO attainment before/during/after the
/// storm envelope plus the measured recovery time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StormOutcome {
    /// First cycle of the storm envelope.
    pub start_cycle: u64,
    /// Recovery instant t′ (exclusive end of the envelope).
    pub end_cycle: u64,
    /// Arrivals before the storm.
    pub before: WindowStats,
    /// Arrivals during the storm.
    pub during: WindowStats,
    /// Arrivals after recovery.
    pub after: WindowStats,
    /// Mean time to repair: cycles from t′ until the last breaker close
    /// at or after t′ (`None` when no breaker closed after the storm —
    /// e.g. it never opened).
    pub mttr_cycles: Option<u64>,
}

/// Aggregate resilience-layer outcome of one serving run.
#[derive(Debug, Clone, PartialEq)]
pub struct ResilienceReport {
    /// Breaker open transitions (including re-opens).
    pub breaker_opens: u64,
    /// Breaker close transitions.
    pub breaker_closes: u64,
    /// Every breaker transition, in observation order.
    pub transitions: Vec<BreakerTransition>,
    /// Half-open probes let through.
    pub probes: u64,
    /// Open-breaker offloads rerouted to a replica group without waiting
    /// out a timeout.
    pub fast_reroutes: u64,
    /// Open-breaker offloads sent straight to host compute.
    pub fast_fallbacks: u64,
    /// Final derived hedge delay, in cycles.
    pub hedge_delay_cycles: u64,
    /// Highest brownout level reached.
    pub brownout_max_level: u32,
    /// Queries shed while the brownout level was above zero.
    pub brownout_sheds: u64,
    /// Storm-phase tallies when a storm was scripted.
    pub storm: Option<StormOutcome>,
}

impl ResilienceReport {
    /// Append the human-readable summary lines to a report rendering.
    pub fn render_into(&self, s: &mut String, mem_clock_mhz: u64) {
        let _ = writeln!(
            s,
            "   resilience: {} opens, {} closes, {} probes, {} fast reroutes, {} fast fallbacks, hedge delay {} cycles, brownout max level {} ({} sheds)",
            self.breaker_opens,
            self.breaker_closes,
            self.probes,
            self.fast_reroutes,
            self.fast_fallbacks,
            self.hedge_delay_cycles,
            self.brownout_max_level,
            self.brownout_sheds,
        );
        if let Some(st) = &self.storm {
            let _ = writeln!(
                s,
                "   storm [{}, {}): slo {:.1}% -> {:.1}% -> {:.1}% (before/during/after), p99 {} -> {} -> {} cycles, mttr {}",
                st.start_cycle,
                st.end_cycle,
                st.before.slo_attainment() * 100.0,
                st.during.slo_attainment() * 100.0,
                st.after.slo_attainment() * 100.0,
                st.before.p99_cycles,
                st.during.p99_cycles,
                st.after.p99_cycles,
                match st.mttr_cycles {
                    Some(c) => format!("{} cycles ({:.4} ms)", c, cycles_to_ms(c, mem_clock_mhz)),
                    None => "n/a".into(),
                },
            );
        }
    }

    /// Serialize to a JSON object (hand-rolled, deterministic).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push('{');
        let _ = write!(
            s,
            "\"breaker_opens\": {}, \"breaker_closes\": {}, \"probes\": {}, \
             \"fast_reroutes\": {}, \"fast_fallbacks\": {}, \"hedge_delay_cycles\": {}, \
             \"brownout_max_level\": {}, \"brownout_sheds\": {}, \"transitions\": [",
            self.breaker_opens,
            self.breaker_closes,
            self.probes,
            self.fast_reroutes,
            self.fast_fallbacks,
            self.hedge_delay_cycles,
            self.brownout_max_level,
            self.brownout_sheds,
        );
        for (i, t) in self.transitions.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            let _ = write!(
                s,
                "{{\"cycle\": {}, \"group\": {}, \"to\": \"{}\"}}",
                t.cycle,
                t.group,
                t.to.as_str()
            );
        }
        s.push(']');
        if let Some(st) = &self.storm {
            let _ = write!(
                s,
                ", \"storm\": {{\"start_cycle\": {}, \"end_cycle\": {}, \"mttr_cycles\": {}, \
                 \"before\": {}, \"during\": {}, \"after\": {}}}",
                st.start_cycle,
                st.end_cycle,
                match st.mttr_cycles {
                    Some(c) => c.to_string(),
                    None => "null".into(),
                },
                st.before.json(),
                st.during.json(),
                st.after.json(),
            );
        }
        s.push('}');
        s
    }
}

/// Why one offload attempt failed (or how it succeeded).
enum Attempt {
    /// The batch completed; `extra` penalty cycles beyond the fault-free
    /// execution, `service` the observed end-to-end service time fed to
    /// the hedge-delay histogram.
    Ok { extra: u64, service: u64 },
    /// The poll deadline would pass with no completion (hang, drop, or a
    /// storm-hung group).
    TimedOut,
    /// The payload arrived but failed its CRC.
    Corrupt,
}

/// Shared fleet state for one serving run: the storm script, the
/// optional point-fault injector, the health tracker, and the hedge
/// histogram, plus every resilience counter.
pub(crate) struct FleetState {
    injector: Option<FaultInjector>,
    retry: RetryPolicy,
    storm: StormPlan,
    health: Option<HealthTracker>,
    hedge: HedgeConfig,
    brownout: BrownoutConfig,
    replication: ReplicationMode,
    replicas: ReplicaSet,
    n_groups: usize,
    group_size: usize,
    natural_lines: u64,
    service_hist: LatencyHistogram,
    brownout_level: u32,
    brownout_max_level: u32,
    pub(crate) brownout_sheds: u64,
    probes: u64,
    fast_reroutes: u64,
    fast_fallbacks: u64,
    pub(crate) rec: RecoveryReport,
}

impl FleetState {
    /// Assemble the fleet state for one run. `resilience: None` keeps
    /// the breakers/hedging/brownout machinery off (storm recovery then
    /// relies purely on per-query retries).
    pub(crate) fn new(
        workload: &Workload,
        partitioner: &Partitioner,
        injector: Option<FaultInjector>,
        retry: RetryPolicy,
        storm: StormPlan,
        resilience: Option<ResilienceConfig>,
    ) -> Self {
        let n_groups = partitioner.rank_groups();
        let replication = resilience
            .map(|r| r.replication)
            .unwrap_or(ReplicationMode::HotOnly);
        let replicas = match replication {
            ReplicationMode::Full => ReplicaSet::default(),
            ReplicationMode::HotOnly => ReplicaSet::new(workload.hot_ids()),
        };
        FleetState {
            injector,
            retry,
            storm,
            health: resilience.map(|r| HealthTracker::new(n_groups, r.breaker)),
            hedge: resilience.map(|r| r.hedge).unwrap_or(HedgeConfig {
                enabled: false,
                ..HedgeConfig::default()
            }),
            brownout: resilience.map(|r| r.brownout).unwrap_or(BrownoutConfig {
                enabled: false,
                ..BrownoutConfig::default()
            }),
            replication,
            replicas,
            n_groups,
            group_size: partitioner.group_size(),
            natural_lines: workload.data.vector_lines() as u64,
            service_hist: LatencyHistogram::new(),
            brownout_level: 0,
            brownout_max_level: 0,
            brownout_sheds: 0,
            probes: 0,
            fast_reroutes: 0,
            fast_fallbacks: 0,
            rec: RecoveryReport::default(),
        }
    }

    /// Whether vector `id` can be served from a non-home group.
    fn replicated(&self, id: usize) -> bool {
        match self.replication {
            ReplicationMode::Full => self.n_groups > 1,
            ReplicationMode::HotOnly => self.replicas.contains(id),
        }
    }

    /// The first replica-ring group that would currently accept work.
    fn healthy_replica(&self, home: usize) -> Option<usize> {
        (0..self.n_groups.saturating_sub(1))
            .filter_map(|a| ReplicaSet::replica_group(home, self.n_groups, a))
            .find(|&g| match &self.health {
                Some(h) => h.would_accept(g),
                None => true,
            })
    }

    /// The current hedge delay: p95 of observed service times once
    /// enough samples exist, floored at the configured minimum, capped
    /// below the timeout window (a hedge that fires after the timeout
    /// would never win the race).
    fn hedge_delay(&self) -> u64 {
        let derived = if self.service_hist.count() >= self.hedge.warmup_samples {
            self.service_hist.quantile(0.95)
        } else {
            0
        };
        derived
            .max(self.hedge.min_delay_cycles)
            .min(TIMEOUT_PENALTY_CYCLES / 2)
    }

    /// Re-evaluate the brownout level from the breaker population,
    /// emitting a [`EventKind::Brownout`] event on change. Returns the
    /// current level.
    pub(crate) fn brownout_level<S: TraceSink>(&mut self, now: u64, sink: &mut S) -> u32 {
        if !self.brownout.enabled {
            return 0;
        }
        let level = match &self.health {
            Some(h) => (h.open_groups() as u32).min(self.brownout.max_level),
            None => 0,
        };
        if level != self.brownout_level {
            self.brownout_level = level;
            self.brownout_max_level = self.brownout_max_level.max(level);
            sink.event(now, EventKind::Brownout { level });
        }
        level
    }

    /// One offload attempt against `group` at effective cycle `at`:
    /// consult the storm script first (sustained degradation), then the
    /// point-fault injector, mirroring the per-query recovery model.
    fn attempt<S: TraceSink>(&mut self, group: usize, at: u64, sink: &mut S) -> Attempt {
        self.rec.offloads += 1;
        let lead = group * self.group_size;
        let mut extra = match self.storm.fault_at(group, at) {
            Some(StormKind::Hang) => return Attempt::TimedOut,
            Some(StormKind::Stall { cycles }) => cycles,
            None => 0,
        };
        if let Some(inj) = &mut self.injector {
            if inj.drop_instruction(lead) {
                return Attempt::TimedOut;
            }
            match inj.compute_fault(lead) {
                ComputeFault::None => {}
                ComputeFault::Stall(e) => extra += e,
                ComputeFault::Hang => return Attempt::TimedOut,
            }
            let mut p = ResultPayload::encode(&[0.0]);
            match inj.poll_fault(lead, &mut p) {
                Some(FaultKind::CorruptResult { .. }) | Some(FaultKind::LostResult) => {
                    self.rec.crc_rejections += 1;
                    sink.event(at, EventKind::CrcRejected { rank: lead as u32 });
                    return Attempt::Corrupt;
                }
                Some(FaultKind::PollMiss) => {
                    self.rec.poll_misses += 1;
                    extra += POLL_MISS_PENALTY_CYCLES;
                }
                _ => {}
            }
        }
        Attempt::Ok {
            extra,
            service: TASK_OVERHEAD_CYCLES + self.natural_lines * FALLBACK_CYCLES_PER_LINE + extra,
        }
    }

    fn record_success<S: TraceSink>(&mut self, group: usize, at: u64, sink: &mut S) {
        if let Some(h) = &mut self.health {
            if let Some(t) = h.record_success(group, at) {
                sink.event(
                    at,
                    EventKind::BreakerClose {
                        group: t.group as u32,
                    },
                );
            }
        }
    }

    fn record_failure<S: TraceSink>(&mut self, group: usize, at: u64, sink: &mut S) {
        if let Some(h) = &mut self.health {
            if let Some(t) = h.record_failure(group, at) {
                sink.event(
                    at,
                    EventKind::BreakerOpen {
                        group: t.group as u32,
                    },
                );
            }
        }
    }

    /// Exact host fallback: the host computes the distance itself.
    fn host_fallback<S: TraceSink>(
        &mut self,
        group: usize,
        at: u64,
        penalty: &mut u64,
        sink: &mut S,
    ) {
        self.rec.host_fallbacks += 1;
        *penalty += self.natural_lines * FALLBACK_CYCLES_PER_LINE;
        sink.event(
            at + *penalty,
            EventKind::HostFallback {
                rank: (group * self.group_size) as u32,
                lines: self.natural_lines as u32,
            },
        );
    }

    /// Penalty cycles for one comparison of vector `id` dispatched at
    /// serving cycle `at`, on top of its fault-free execution time.
    fn eval_penalty<S: TraceSink>(&mut self, id: usize, home: usize, at: u64, sink: &mut S) -> u64 {
        self.rec.comparisons += 1;
        let replicated = self.replicated(id);
        let mut penalty = 0u64;
        let mut group = home;

        // Breaker gate: an open breaker means the driver does not wait
        // out a poll deadline at all — it reroutes or host-computes
        // immediately. A breaker past its cooldown promotes to half-open
        // here and this offload becomes the probe.
        if let Some(h) = &mut self.health {
            let before = h.state(group);
            if h.admits(group, at) {
                if before == BreakerState::Open {
                    self.probes += 1;
                    sink.event(
                        at,
                        EventKind::BreakerHalfOpen {
                            group: group as u32,
                        },
                    );
                }
            } else {
                self.rec.breaker_fast_paths += 1;
                match self.healthy_replica(group).filter(|_| replicated) {
                    Some(alt) => {
                        self.fast_reroutes += 1;
                        penalty += TASK_OVERHEAD_CYCLES;
                        group = alt;
                    }
                    None => {
                        self.host_fallback(group, at, &mut penalty, sink);
                        return penalty;
                    }
                }
            }
        }

        let mut attempt_no = 0u32;
        loop {
            match self.attempt(group, at + penalty, sink) {
                Attempt::Ok { extra, service } => {
                    penalty += extra;
                    self.service_hist.record(service);
                    self.record_success(group, at + penalty, sink);
                    return penalty;
                }
                Attempt::TimedOut => {
                    self.rec.timeouts += 1;
                    self.record_failure(group, at + penalty, sink);
                    // Hedge the still-pending batch to a replica group;
                    // a win costs the hedge delay plus one re-issue
                    // instead of the whole timeout window.
                    if self.hedge.enabled && replicated {
                        if let Some(target) = self.healthy_replica(group) {
                            let delay = self.hedge_delay();
                            self.rec.hedges += 1;
                            sink.event(
                                at + penalty + delay,
                                EventKind::HedgeIssued {
                                    from: group as u32,
                                    to: target as u32,
                                },
                            );
                            match self.attempt(target, at + penalty + delay, sink) {
                                Attempt::Ok { extra, service } => {
                                    self.rec.hedge_wins += 1;
                                    penalty += delay + TASK_OVERHEAD_CYCLES + extra;
                                    sink.event(
                                        at + penalty,
                                        EventKind::HedgeWin { to: target as u32 },
                                    );
                                    self.service_hist.record(service);
                                    self.record_success(target, at + penalty, sink);
                                    return penalty;
                                }
                                Attempt::TimedOut => {
                                    // The hedge raced the primary's
                                    // timeout window and also lost; no
                                    // extra wall-clock beyond it.
                                    self.rec.timeouts += 1;
                                    self.record_failure(target, at + penalty, sink);
                                }
                                Attempt::Corrupt => {
                                    self.record_failure(target, at + penalty, sink);
                                }
                            }
                        }
                    }
                    penalty += TIMEOUT_PENALTY_CYCLES;
                }
                Attempt::Corrupt => {
                    self.record_failure(group, at + penalty, sink);
                }
            }
            if self.retry.exhausted(attempt_no) {
                self.host_fallback(group, at, &mut penalty, sink);
                return penalty;
            }
            penalty += self.retry.backoff(attempt_no);
            self.rec.retries += 1;
            sink.event(
                at + penalty,
                EventKind::RecoveryRetry {
                    rank: (group * self.group_size) as u32,
                    attempt: attempt_no,
                },
            );
            attempt_no += 1;
            // Retry away from a group the breaker now distrusts.
            if replicated {
                let suspect = match &self.health {
                    Some(h) => !h.would_accept(group),
                    None => false,
                };
                if suspect {
                    if let Some(alt) = self.healthy_replica(group) {
                        group = alt;
                        self.rec.reoffloads += 1;
                    }
                }
            }
        }
    }

    /// Total penalty cycles for one query's trace dispatched at `at`.
    pub(crate) fn query_penalty<S: TraceSink>(
        &mut self,
        workload: &Workload,
        query: usize,
        partitioner: &Partitioner,
        at: u64,
        sink: &mut S,
    ) -> u64 {
        let mut penalty = 0u64;
        for hop in &workload.traces[query].hops {
            if hop.kind == HopKind::Centroid {
                continue; // host-side arithmetic; no offload to fault
            }
            for e in &hop.evals {
                let home = partitioner.group_of(e.id);
                penalty += self.eval_penalty(e.id, home, at + penalty, sink);
            }
        }
        penalty
    }

    /// The recovery counters with the injector's tallies folded in.
    pub(crate) fn recovery_report(&self) -> RecoveryReport {
        let mut r = self.rec;
        if let Some(inj) = &self.injector {
            r.injected = *inj.stats();
        }
        r
    }

    /// Mean time to repair relative to the storm's recovery instant t′.
    fn mttr_cycles(&self, storm_end: u64) -> Option<u64> {
        let h = self.health.as_ref()?;
        h.transitions()
            .iter()
            .filter(|t| t.to == BreakerState::Closed && t.cycle >= storm_end)
            .map(|t| t.cycle - storm_end)
            .next_back()
    }

    /// Assemble the resilience report. `windows` carries the per-phase
    /// tallies when a storm was scripted.
    pub(crate) fn resilience_report(
        &self,
        windows: Option<(u64, u64, WindowStats, WindowStats, WindowStats)>,
    ) -> ResilienceReport {
        let (opens, closes, transitions) = match &self.health {
            Some(h) => (h.opens(), h.closes(), h.transitions().to_vec()),
            None => (0, 0, Vec::new()),
        };
        ResilienceReport {
            breaker_opens: opens,
            breaker_closes: closes,
            transitions,
            probes: self.probes,
            fast_reroutes: self.fast_reroutes,
            fast_fallbacks: self.fast_fallbacks,
            hedge_delay_cycles: self.hedge_delay(),
            brownout_max_level: self.brownout_max_level,
            brownout_sheds: self.brownout_sheds,
            storm: windows.map(|(start, end, before, during, after)| StormOutcome {
                start_cycle: start,
                end_cycle: end,
                before,
                during,
                after,
                mttr_cycles: self.mttr_cycles(end),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_stats_attainment() {
        let w = WindowStats {
            offered: 10,
            completed: 8,
            slo_attained: 6,
            p99_cycles: 1_000,
        };
        assert!((w.slo_attainment() - 0.6).abs() < 1e-12);
        assert_eq!(WindowStats::default().slo_attainment(), 1.0);
        assert!(w.json().contains("\"p99_cycles\": 1000"));
    }

    #[test]
    fn report_json_is_stable() {
        let r = ResilienceReport {
            breaker_opens: 2,
            breaker_closes: 1,
            transitions: vec![BreakerTransition {
                cycle: 100,
                group: 0,
                to: BreakerState::Open,
            }],
            probes: 3,
            fast_reroutes: 4,
            fast_fallbacks: 5,
            hedge_delay_cycles: 512,
            brownout_max_level: 1,
            brownout_sheds: 0,
            storm: Some(StormOutcome {
                start_cycle: 1_000,
                end_cycle: 2_000,
                before: WindowStats::default(),
                during: WindowStats::default(),
                after: WindowStats::default(),
                mttr_cycles: Some(250),
            }),
        };
        let j = r.to_json();
        assert_eq!(j, r.clone().to_json());
        assert!(j.contains("\"mttr_cycles\": 250"));
        assert!(j.contains("\"to\": \"open\""));
        let mut s = String::new();
        r.render_into(&mut s, 2400);
        assert!(s.contains("resilience:"));
        assert!(s.contains("mttr 250 cycles"));
    }

    #[test]
    fn without_hedging_disables_only_hedging() {
        let r = ResilienceConfig::without_hedging();
        assert!(!r.hedge.enabled);
        assert!(r.brownout.enabled);
        assert_eq!(r.breaker, BreakerConfig::default());
    }
}
