//! Serving-run reports: percentile summaries, SLO attainment, achieved
//! throughput, shed rates — as text tables and deterministic JSON.
//!
//! Everything in a report derives from simulated quantities (cycles and
//! counts), never wall-clock time, so the same seed and config render
//! byte-identical output on every run. Derived milliseconds use the
//! configured memory clock with fixed-precision formatting.

use std::fmt::Write as _;

use ansmet_sim::{Design, RecoveryReport};

use crate::arrival::TenantSpec;
use crate::engine::ServeConfig;
use crate::histogram::LatencyHistogram;
use crate::resilience::ResilienceReport;

/// Percentiles of one latency distribution, in memory cycles.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PercentileSummary {
    /// Samples summarized.
    pub count: u64,
    /// Mean in cycles.
    pub mean: f64,
    /// Median.
    pub p50: u64,
    /// 95th percentile.
    pub p95: u64,
    /// 99th percentile.
    pub p99: u64,
    /// 99.9th percentile.
    pub p999: u64,
    /// Exact maximum.
    pub max: u64,
}

impl PercentileSummary {
    /// Summarize a histogram.
    pub fn from_histogram(h: &LatencyHistogram) -> Self {
        PercentileSummary {
            count: h.count(),
            mean: h.mean(),
            p50: h.quantile(0.50),
            p95: h.quantile(0.95),
            p99: h.quantile(0.99),
            p999: h.quantile(0.999),
            max: h.max(),
        }
    }

    fn json(&self, mem_clock_mhz: u64) -> String {
        format!(
            "{{\"count\": {}, \"mean_cycles\": {:.1}, \"p50_cycles\": {}, \"p95_cycles\": {}, \
             \"p99_cycles\": {}, \"p999_cycles\": {}, \"max_cycles\": {}, \"p50_ms\": {:.6}, \
             \"p95_ms\": {:.6}, \"p99_ms\": {:.6}, \"p999_ms\": {:.6}}}",
            self.count,
            self.mean,
            self.p50,
            self.p95,
            self.p99,
            self.p999,
            self.max,
            cycles_to_ms(self.p50, mem_clock_mhz),
            cycles_to_ms(self.p95, mem_clock_mhz),
            cycles_to_ms(self.p99, mem_clock_mhz),
            cycles_to_ms(self.p999, mem_clock_mhz),
        )
    }
}

impl std::fmt::Display for PercentileSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} mean={:.1} p50={} p95={} p99={} p99.9={} max={} cycles",
            self.count, self.mean, self.p50, self.p95, self.p99, self.p999, self.max
        )
    }
}

/// Memory cycles → milliseconds at `mem_clock_mhz`.
pub fn cycles_to_ms(cycles: u64, mem_clock_mhz: u64) -> f64 {
    cycles as f64 / (mem_clock_mhz as f64 * 1e3)
}

/// One tenant's serving outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantReport {
    /// Tenant name.
    pub name: String,
    /// WFQ weight.
    pub weight: u64,
    /// SLO bound in cycles.
    pub slo_cycles: u64,
    /// Queries offered by the arrival process.
    pub offered: u64,
    /// Arrivals shed by queue-depth backpressure.
    pub shed_queue: u64,
    /// Queries shed at dispatch for an expired deadline.
    pub shed_deadline: u64,
    /// Queries executed to completion.
    pub completed: u64,
    /// Completed queries that met the SLO.
    pub slo_attained: u64,
    /// Achieved queries per second over the run's makespan.
    pub achieved_qps: f64,
    /// Total-latency distribution of completed queries.
    pub total: PercentileSummary,
}

impl TenantReport {
    /// Assemble one tenant's report from the engine's tallies.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        spec: &TenantSpec,
        offered: u64,
        shed_queue: u64,
        shed_deadline: u64,
        completed: u64,
        slo_attained: u64,
        total: &LatencyHistogram,
        makespan_cycles: u64,
        mem_clock_mhz: u64,
    ) -> Self {
        TenantReport {
            name: spec.name.clone(),
            weight: spec.weight,
            slo_cycles: spec.slo_cycles,
            offered,
            shed_queue,
            shed_deadline,
            completed,
            slo_attained,
            achieved_qps: qps_over(completed, makespan_cycles, mem_clock_mhz),
            total: PercentileSummary::from_histogram(total),
        }
    }

    /// SLO attainment over *offered* queries: shed queries count as
    /// misses (they never got an answer at all).
    pub fn slo_attainment(&self) -> f64 {
        if self.offered == 0 {
            1.0
        } else {
            self.slo_attained as f64 / self.offered as f64
        }
    }

    /// Fraction of offered queries shed (either mechanism).
    pub fn shed_rate(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            (self.shed_queue + self.shed_deadline) as f64 / self.offered as f64
        }
    }
}

impl std::fmt::Display for TenantReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "tenant {} (w{}): offered {}, completed {}, shed {}, SLO {:.1}%, p99 {} cycles",
            self.name,
            self.weight,
            self.offered,
            self.completed,
            self.shed_queue + self.shed_deadline,
            self.slo_attainment() * 100.0,
            self.total.p99,
        )
    }
}

/// `completed` queries over `makespan` cycles at `mem_clock_mhz`, in
/// queries per second.
fn qps_over(completed: u64, makespan_cycles: u64, mem_clock_mhz: u64) -> f64 {
    if makespan_cycles == 0 {
        0.0
    } else {
        completed as f64 * mem_clock_mhz as f64 * 1e6 / makespan_cycles as f64
    }
}

/// The full outcome of one serving run.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// The design that served the traffic.
    pub design: Design,
    /// Arrival seed.
    pub seed: u64,
    /// Memory clock used for cycle→time conversions.
    pub mem_clock_mhz: u64,
    /// Cycle at which the last query completed.
    pub makespan_cycles: u64,
    /// Batches dispatched.
    pub batches: u64,
    /// Queries carried by those batches.
    pub batched_queries: u64,
    /// Queueing-delay distribution (arrival → dispatch).
    pub queue: PercentileSummary,
    /// Execution distribution (dispatch → completion, incl. recovery).
    pub execute: PercentileSummary,
    /// End-to-end distribution (arrival → completion).
    pub total: PercentileSummary,
    /// Per-tenant breakdown.
    pub tenants: Vec<TenantReport>,
    /// Recovery counters when fault injection was enabled.
    pub recovery: Option<RecoveryReport>,
    /// Resilience-layer outcome when a storm or the resilience layer
    /// was configured.
    pub resilience: Option<ResilienceReport>,
    /// FNV-1a fingerprint of the served queries' neighbor ids (faults
    /// must never change it).
    pub results_fingerprint: u64,
}

impl ServeReport {
    /// Assemble the aggregate report.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        serve: &ServeConfig,
        mem_clock_mhz: u64,
        makespan_cycles: u64,
        batches: u64,
        batched_queries: u64,
        queue: &LatencyHistogram,
        execute: &LatencyHistogram,
        total: &LatencyHistogram,
        tenants: Vec<TenantReport>,
        recovery: Option<RecoveryReport>,
        resilience: Option<ResilienceReport>,
        results_fingerprint: u64,
    ) -> Self {
        ServeReport {
            design: serve.design,
            seed: serve.seed,
            mem_clock_mhz,
            makespan_cycles,
            batches,
            batched_queries,
            queue: PercentileSummary::from_histogram(queue),
            execute: PercentileSummary::from_histogram(execute),
            total: PercentileSummary::from_histogram(total),
            tenants,
            recovery,
            resilience,
            results_fingerprint,
        }
    }

    /// Queries offered across all tenants.
    pub fn offered(&self) -> u64 {
        self.tenants.iter().map(|t| t.offered).sum()
    }

    /// Queries completed across all tenants.
    pub fn completed(&self) -> u64 {
        self.tenants.iter().map(|t| t.completed).sum()
    }

    /// Queries shed across all tenants (both mechanisms).
    pub fn shed(&self) -> u64 {
        self.tenants
            .iter()
            .map(|t| t.shed_queue + t.shed_deadline)
            .sum()
    }

    /// Fraction of offered queries shed.
    pub fn shed_rate(&self) -> f64 {
        let offered = self.offered();
        if offered == 0 {
            0.0
        } else {
            self.shed() as f64 / offered as f64
        }
    }

    /// Achieved queries per second over the makespan.
    pub fn achieved_qps(&self) -> f64 {
        qps_over(self.completed(), self.makespan_cycles, self.mem_clock_mhz)
    }

    /// Aggregate SLO attainment over offered queries.
    pub fn slo_attainment(&self) -> f64 {
        let offered = self.offered();
        if offered == 0 {
            1.0
        } else {
            self.tenants.iter().map(|t| t.slo_attained).sum::<u64>() as f64 / offered as f64
        }
    }

    /// Mean queries per dispatched batch.
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.batched_queries as f64 / self.batches as f64
        }
    }

    /// Render a human-readable multi-table summary.
    pub fn render(&self, title: &str) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "== {title} == design {:?}, seed {}, {} offered, {} completed, {} shed ({:.1}%)",
            self.design,
            self.seed,
            self.offered(),
            self.completed(),
            self.shed(),
            self.shed_rate() * 100.0,
        );
        let _ = writeln!(
            s,
            "   achieved {:.0} qps, {} batches (mean size {:.2}), makespan {:.3} ms, SLO attainment {:.1}%",
            self.achieved_qps(),
            self.batches,
            self.mean_batch_size(),
            cycles_to_ms(self.makespan_cycles, self.mem_clock_mhz),
            self.slo_attainment() * 100.0,
        );
        for (label, p) in [
            ("queue", &self.queue),
            ("execute", &self.execute),
            ("total", &self.total),
        ] {
            let _ = writeln!(
                s,
                "   {label:>7}: p50 {} p95 {} p99 {} p99.9 {} max {} cycles (p99 {:.4} ms)",
                p.p50,
                p.p95,
                p.p99,
                p.p999,
                p.max,
                cycles_to_ms(p.p99, self.mem_clock_mhz),
            );
        }
        for t in &self.tenants {
            let _ = writeln!(
                s,
                "   tenant {:<10} w{} offered {:>5} done {:>5} shed {:>4} slo {:>5.1}% p99 {} cycles",
                t.name,
                t.weight,
                t.offered,
                t.completed,
                t.shed_queue + t.shed_deadline,
                t.slo_attainment() * 100.0,
                t.total.p99,
            );
        }
        if let Some(rec) = &self.recovery {
            let _ = writeln!(
                s,
                "   faults: {} injected, {} retries, {} timeouts, {} crc-rej, {} fallbacks, +{} recovery cycles",
                rec.injected.total(),
                rec.retries,
                rec.timeouts,
                rec.crc_rejections,
                rec.host_fallbacks,
                rec.added_latency_cycles,
            );
        }
        if let Some(res) = &self.resilience {
            res.render_into(&mut s, self.mem_clock_mhz);
        }
        s
    }

    /// Serialize to a JSON object (hand-rolled; the repo carries no
    /// serde). Deterministic: same report, same bytes.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(s, "    \"design\": \"{:?}\",", self.design);
        let _ = writeln!(s, "    \"seed\": {},", self.seed);
        let _ = writeln!(s, "    \"mem_clock_mhz\": {},", self.mem_clock_mhz);
        let _ = writeln!(s, "    \"makespan_cycles\": {},", self.makespan_cycles);
        let _ = writeln!(
            s,
            "    \"makespan_ms\": {:.6},",
            cycles_to_ms(self.makespan_cycles, self.mem_clock_mhz)
        );
        let _ = writeln!(s, "    \"offered\": {},", self.offered());
        let _ = writeln!(s, "    \"completed\": {},", self.completed());
        let _ = writeln!(s, "    \"shed\": {},", self.shed());
        let _ = writeln!(s, "    \"shed_rate\": {:.6},", self.shed_rate());
        let _ = writeln!(s, "    \"achieved_qps\": {:.3},", self.achieved_qps());
        let _ = writeln!(s, "    \"slo_attainment\": {:.6},", self.slo_attainment());
        let _ = writeln!(s, "    \"batches\": {},", self.batches);
        let _ = writeln!(s, "    \"mean_batch_size\": {:.3},", self.mean_batch_size());
        let _ = writeln!(
            s,
            "    \"results_fingerprint\": \"{:016x}\",",
            self.results_fingerprint
        );
        let _ = writeln!(s, "    \"queue\": {},", self.queue.json(self.mem_clock_mhz));
        let _ = writeln!(
            s,
            "    \"execute\": {},",
            self.execute.json(self.mem_clock_mhz)
        );
        let _ = writeln!(s, "    \"total\": {},", self.total.json(self.mem_clock_mhz));
        if let Some(rec) = &self.recovery {
            let _ = writeln!(
                s,
                "    \"recovery\": {{\"injected\": {}, \"timeouts\": {}, \"crc_rejections\": {}, \
                 \"retries\": {}, \"host_fallbacks\": {}, \"poll_misses\": {}, \
                 \"hedges\": {}, \"hedge_wins\": {}, \"breaker_fast_paths\": {}, \
                 \"added_latency_cycles\": {}}},",
                rec.injected.total(),
                rec.timeouts,
                rec.crc_rejections,
                rec.retries,
                rec.host_fallbacks,
                rec.poll_misses,
                rec.hedges,
                rec.hedge_wins,
                rec.breaker_fast_paths,
                rec.added_latency_cycles,
            );
        }
        if let Some(res) = &self.resilience {
            let _ = writeln!(s, "    \"resilience\": {},", res.to_json());
        }
        s.push_str("    \"tenants\": [\n");
        for (i, t) in self.tenants.iter().enumerate() {
            let _ = write!(
                s,
                "      {{\"name\": \"{}\", \"weight\": {}, \"slo_cycles\": {}, \"offered\": {}, \
                 \"shed_queue\": {}, \"shed_deadline\": {}, \"completed\": {}, \
                 \"slo_attained\": {}, \"slo_attainment\": {:.6}, \"achieved_qps\": {:.3}, \
                 \"total\": {}}}",
                t.name,
                t.weight,
                t.slo_cycles,
                t.offered,
                t.shed_queue,
                t.shed_deadline,
                t.completed,
                t.slo_attained,
                t.slo_attainment(),
                t.achieved_qps,
                t.total.json(self.mem_clock_mhz),
            );
            s.push_str(if i + 1 < self.tenants.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        s.push_str("    ]\n  }");
        s
    }
}

impl std::fmt::Display for ServeReport {
    /// The full multi-table rendering under a generic title.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render("serving run"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_from_histogram() {
        let mut h = LatencyHistogram::new();
        for v in [100u64, 200, 300, 400, 50_000] {
            h.record(v);
        }
        let p = PercentileSummary::from_histogram(&h);
        assert_eq!(p.count, 5);
        assert_eq!(p.max, 50_000);
        assert!(p.p50 >= 200 && p.p50 <= 320, "p50 {}", p.p50);
        assert!(p.p99 >= 50_000);
    }

    #[test]
    fn percentile_display_is_one_line() {
        let mut h = LatencyHistogram::new();
        h.record(100);
        let p = PercentileSummary::from_histogram(&h);
        let s = p.to_string();
        assert!(s.contains("n=1") && s.contains("cycles"));
        assert!(!s.contains('\n'));
    }

    #[test]
    fn cycle_ms_conversion() {
        // 2_400_000 cycles at 2400 MHz = 1 ms.
        assert!((cycles_to_ms(2_400_000, 2400) - 1.0).abs() < 1e-12);
    }
}
