//! Log-bucketed latency histograms.
//!
//! The implementation moved to the observability crate so the metrics
//! registry and the serving tier share one bucket scheme; this module
//! keeps the original `serve::histogram` path working.

pub use ansmet_obs::LatencyHistogram;
