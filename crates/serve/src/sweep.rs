//! QPS sweep: find the maximum sustainable throughput at a tail-latency
//! target.
//!
//! The classic serving question — "how much load can this box take
//! before p99 blows through the SLO?" — is answered by sweeping offered
//! load and watching the knee of the latency curve. Each sweep point
//! re-runs the full serving simulation at a scaled arrival rate; the
//! highest point whose p99 stays at or under the target *and* whose shed
//! rate stays negligible is reported as the max sustainable QPS.

use ansmet_sim::{SystemConfig, Workload};

use crate::engine::{run_serve, ServeConfig};

/// One measured point of the sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPoint {
    /// Offered (nominal) aggregate load in queries per second.
    pub offered_qps: f64,
    /// Achieved completion rate over the makespan.
    pub achieved_qps: f64,
    /// p99 total latency in cycles.
    pub p99_total_cycles: u64,
    /// Fraction of offered queries shed.
    pub shed_rate: f64,
    /// Aggregate SLO attainment.
    pub slo_attainment: f64,
}

/// The outcome of a sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct QpsSweep {
    /// The tail-latency target the sweep was judged against.
    pub target_p99_cycles: u64,
    /// Every measured point, in offered-load order.
    pub points: Vec<SweepPoint>,
    /// Highest offered load meeting the target (p99 ≤ target, shed rate
    /// ≤ 0.1 %), if any point did.
    pub max_sustainable_qps: Option<f64>,
}

impl QpsSweep {
    /// Serialize to a JSON object (deterministic).
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(s, "    \"target_p99_cycles\": {},", self.target_p99_cycles);
        match self.max_sustainable_qps {
            Some(q) => {
                let _ = writeln!(s, "    \"max_sustainable_qps\": {q:.3},");
            }
            None => {
                let _ = writeln!(s, "    \"max_sustainable_qps\": null,");
            }
        }
        s.push_str("    \"points\": [\n");
        for (i, p) in self.points.iter().enumerate() {
            let _ = write!(
                s,
                "      {{\"offered_qps\": {:.3}, \"achieved_qps\": {:.3}, \
                 \"p99_total_cycles\": {}, \"shed_rate\": {:.6}, \"slo_attainment\": {:.6}}}",
                p.offered_qps, p.achieved_qps, p.p99_total_cycles, p.shed_rate, p.slo_attainment,
            );
            s.push_str(if i + 1 < self.points.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        s.push_str("    ]\n  }");
        s
    }
}

/// Shed-rate ceiling for a point to count as "sustainable".
const SUSTAINABLE_SHED_RATE: f64 = 0.001;

/// Sweep the offered load over `qps_points` (aggregate QPS, tenant
/// ratios preserved) and find the max sustainable throughput at a p99
/// target of `target_p99_cycles`.
///
/// # Panics
///
/// Panics if `qps_points` is empty or the base config's aggregate
/// nominal load is zero.
pub fn sweep_qps(
    workload: &Workload,
    config: &SystemConfig,
    base: &ServeConfig,
    qps_points: &[f64],
    target_p99_cycles: u64,
) -> QpsSweep {
    assert!(!qps_points.is_empty(), "empty sweep");
    let mem_clock = config.dram.clock_mhz;
    let mut points = Vec::with_capacity(qps_points.len());
    let mut max_ok: Option<f64> = None;
    for &qps in qps_points {
        let cfg = base.with_total_qps(qps, mem_clock);
        let report = run_serve(workload, config, &cfg);
        let point = SweepPoint {
            offered_qps: qps,
            achieved_qps: report.achieved_qps(),
            p99_total_cycles: report.total.p99,
            shed_rate: report.shed_rate(),
            slo_attainment: report.slo_attainment(),
        };
        if point.p99_total_cycles <= target_p99_cycles
            && point.shed_rate <= SUSTAINABLE_SHED_RATE
            && max_ok.map(|m| qps > m).unwrap_or(true)
        {
            max_ok = Some(qps);
        }
        points.push(point);
    }
    QpsSweep {
        target_p99_cycles,
        points,
        max_sustainable_qps: max_ok,
    }
}
